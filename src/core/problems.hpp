#pragma once
/// \file problems.hpp
/// The problems of Section 5 as legitimacy predicates over configurations,
/// plus output extractors and independent validators used by tests.
///
/// A configuration is *legitimate* for a protocol stabilizing to predicate
/// R iff it conforms to R (Section 2.1). These classes evaluate R directly
/// on the shared variables, so they can audit any configuration — including
/// the stitched counterexamples of the impossibility module.

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/engine.hpp"

namespace sss {

class Problem {
 public:
  virtual ~Problem() = default;
  virtual const std::string& name() const = 0;
  virtual bool holds(const Graph& g, const Configuration& config) const = 0;

  /// Adapter for RunOptions::legitimacy. The Problem must outlive the
  /// returned callable.
  LegitimacyPredicate predicate() const;
};

/// Vertex coloring predicate: for every process p and neighbor q,
/// C.p != C.q (Section 5.1). `color_var` is the comm index of C.
class ColoringProblem final : public Problem {
 public:
  explicit ColoringProblem(int color_var = 0);
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "vertex-coloring";
  int color_var_;
};

/// MIS predicate: {q : S.q = Dominator} is a maximal independent set
/// (Section 5.2). `state_var` is the comm index of S.
class MisProblem final : public Problem {
 public:
  explicit MisProblem(int state_var = 0);
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "maximal-independent-set";
  int state_var_;
};

/// Maximal matching predicate over the output functions of Section 5.3:
/// inMM[q].p ≡ PRmarried(p) ∧ PR.p = q, and the edge set
/// {{p,q} : inMM[q].p ∨ inMM[p].q} must be a maximal matching.
/// Uses MatchingProtocol's variable layout.
class MatchingProblem final : public Problem {
 public:
  MatchingProblem();
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "maximal-matching";
};

// --- Output extractors -----------------------------------------------------

/// Colors per process from comm var `color_var`.
std::vector<int> extract_colors(const Graph& g, const Configuration& config,
                                int color_var = 0);

/// Membership bitmap of the S = Dominator set.
std::vector<bool> extract_mis(const Graph& g, const Configuration& config,
                              int state_var = 0);

/// PRmarried(p) for MatchingProtocol's layout (needs cur, see Fig 10).
bool matching_pr_married(const Graph& g, const Configuration& config,
                         ProcessId p);

/// Edges {p,q} with inMM[q].p ∨ inMM[p].q (the paper's matched set).
std::vector<Edge> extract_matching(const Graph& g,
                                   const Configuration& config);

/// Mutually-pointing PR pairs regardless of cur; in silent configurations
/// this coincides with extract_matching (Lemma 7 forces PR.p = cur.p).
std::vector<Edge> extract_mutual_pr_edges(const Graph& g,
                                          const Configuration& config);

// --- Independent validators (used by tests and checkers) -------------------

bool is_independent_set(const Graph& g, const std::vector<bool>& in_set);
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<bool>& in_set);
bool is_matching(const Graph& g, const std::vector<Edge>& edges);
bool is_maximal_matching(const Graph& g, const std::vector<Edge>& edges);

}  // namespace sss
