#pragma once
/// \file bfs_tree_protocol.hpp
/// Protocol BFS-TREE — deterministic silent self-stabilizing BFS spanning
/// tree construction for rooted networks, with the communication-efficient
/// read pattern of Devismes–Johnen (arXiv:1509.03815) transplanted into
/// this library's cur-pointer idiom: a process reads at most its parent
/// plus one round-robin neighbor per step (2-efficient), against the
/// Delta reads of the classic full-read construction
/// (baselines/full_read_bfs_tree.hpp).
///
///   Communication variables:  D.p  in {0 .. n-1}   (claimed distance)
///                             PR.p in {0 .. delta.p} (parent channel,
///                                                     0 = none)
///   Communication constant:   R.p  in {0, 1}       (1 iff p is the root)
///   Internal variable:        cur.p in [1 .. delta.p]
///   Actions (priority order; cap(x) = min(x, n-1)):
///     A1 fix-root:  R.p ∧ (D.p ≠ 0 ∨ PR.p ≠ 0)
///                      -> D.p <- 0; PR.p <- 0
///     A2 follow:    ¬R.p ∧ PR.p ≠ 0 ∧ D.p ≠ cap(D.(PR.p) + 1)
///                      -> D.p <- cap(D.(PR.p) + 1)
///     A3 adopt:     ¬R.p ∧ PR.p = 0
///                      -> PR.p <- cur.p; D.p <- cap(D.(cur.p) + 1);
///                         cur.p <- (cur.p mod delta.p) + 1
///     A4 improve:   ¬R.p ∧ PR.p ≠ 0 ∧ D.(cur.p) + 1 < D.p
///                      -> PR.p <- cur.p; D.p <- D.(cur.p) + 1;
///                         cur.p <- (cur.p mod delta.p) + 1
///     A5 scan:      ¬R.p -> cur.p <- (cur.p mod delta.p) + 1
///
/// A2 keeps a child glued to its parent's distance, so too-small values in
/// a parent cycle chase each other up to the n-1 cap (where A2 disables)
/// instead of persisting; A4 then pulls every process down to the true BFS
/// level as the root's 0 spreads, because a parent chain that is
/// everywhere A2-consistent below the cap is a real path from the root and
/// can never be shorter than the BFS distance. In the silent configuration
/// D.p is exactly the BFS distance from the root and PR.p points at a
/// distance-(D.p - 1) neighbor; only A5's internal rotation keeps running,
/// which writes no communication variable. Guard evaluation reads at most
/// the parent (A2) and the cur neighbor (A3/A4): k = 2.

#include <string>

#include "runtime/protocol.hpp"

namespace sss {

class BfsTreeProtocol final : public Protocol {
 public:
  /// Variable indices, public for predicates/tests.
  static constexpr int kDistVar = 0;    ///< comm: D
  static constexpr int kParentVar = 1;  ///< comm: PR
  static constexpr int kRootVar = 2;    ///< comm constant: R
  static constexpr int kCurVar = 0;     ///< internal: cur

  /// Requires a connected network with n >= 2 and a root in range.
  explicit BfsTreeProtocol(const Graph& g, ProcessId root = 0);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 5; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  ProcessId root() const { return root_; }
  /// The distance cap n-1 (the largest BFS distance a connected network
  /// can realize), which is what flushes fake parent cycles.
  Value max_distance() const { return max_distance_; }

 private:
  std::string name_ = "BFS-TREE";
  ProcessId root_;
  Value max_distance_;
  ProtocolSpec spec_;
};

}  // namespace sss
