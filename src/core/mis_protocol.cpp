#include "core/mis_protocol.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kDemote = 0;   // first action: Dominator loses to a neighbor
constexpr int kPromote = 1;  // second action: dominated claims domination
constexpr int kScan = 2;     // third action: Dominator keeps patrolling
}  // namespace

MisProtocol::MisProtocol(const Graph& g, Coloring colors,
                         bool promote_on_higher_color)
    : name_(promote_on_higher_color ? "MIS" : "MIS(no-boost)"),
      colors_(std::move(colors)),
      num_colors_(count_colors(colors_)),
      promote_on_higher_color_(promote_on_higher_color) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "MIS requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "MIS requires a proper local coloring (C.p unique among "
              "neighbors)");
  const Value max_color =
      *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("S", VarDomain{kDominated, kDominator});
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
  spec_.internal.emplace_back("cur", domain_channel());
}

void MisProtocol::install_constants(const Graph& g,
                                    Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

int MisProtocol::first_enabled(GuardContext& ctx) const {
  // Guards read the checked neighbor's variables lazily: own-variable
  // conjuncts are tested first and the color is only fetched when the
  // state comparison leaves the guard undecided. This never changes which
  // action fires — it only keeps the measured communication complexity at
  // what the guards actually need (Definition 5).
  const Value own_state = ctx.self_comm(kStateVar);
  const Value own_color = ctx.self_comm(kColorVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  const Value nbr_state = ctx.nbr_comm(cur, kStateVar);

  if (own_state == kDominator) {
    if (nbr_state == kDominator &&
        ctx.nbr_comm(cur, kColorVar) < own_color) {
      return kDemote;
    }
    return kScan;
  }
  // own_state == kDominated.
  if (nbr_state == kDominated ||
      (promote_on_higher_color_ &&
       own_color < ctx.nbr_comm(cur, kColorVar))) {
    return kPromote;
  }
  return kDisabled;
}

void MisProtocol::sweep_enabled_range(BulkGuardContext& ctx,
                                      EnabledBitmap& out, ProcessId begin,
                                      ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot =
      static_cast<std::size_t>(cfg.num_comm() + kCurVar);  // internal cur
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const auto cur = static_cast<std::int32_t>(row[cur_slot]);
    const ProcessId q =
        neighbors[static_cast<std::size_t>(offsets[p] + cur - 1)];
    const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
    // Same lazy read structure as first_enabled: the state always, the
    // color only when the state comparison leaves the guard undecided.
    const Value nbr_state = nbr_row[kStateVar];
    ctx.log(p, q, kStateVar);
    if (row[kStateVar] == kDominator) {
      if (nbr_state == kDominator) {
        ctx.log(p, q, kColorVar);
        actions[p] = static_cast<std::int8_t>(
            nbr_row[kColorVar] < row[kColorVar] ? kDemote : kScan);
      } else {
        actions[p] = static_cast<std::int8_t>(kScan);
      }
      continue;
    }
    if (nbr_state == kDominated) {
      actions[p] = static_cast<std::int8_t>(kPromote);
    } else if (promote_on_higher_color_) {
      ctx.log(p, q, kColorVar);
      actions[p] = static_cast<std::int8_t>(
          row[kColorVar] < nbr_row[kColorVar] ? kPromote : kDisabled);
    }
  }
}

void MisProtocol::execute_selected(BulkExecContext& ctx,
                                   const EnabledBitmap& enabled,
                                   std::span<const ProcessId> selection,
                                   std::size_t begin, std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot = static_cast<std::size_t>(cfg.num_comm() + kCurVar);
  // No action-phase neighbor reads: every action writes only own state
  // and/or advances cur (kDemote deliberately keeps cur on the winner).
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const auto degree = static_cast<Value>(offsets[p + 1] - offsets[p]);
    const Value next = (row[cur_slot] % degree) + 1;
    Value* out = ctx.stage(i, p);
    switch (action) {
      case kDemote:
        out[kStateVar] = kDominated;
        break;
      case kPromote:
        out[kStateVar] = kDominator;
        out[cur_slot] = next;
        break;
      default:  // kScan
        out[cur_slot] = next;
        break;
    }
  }
}

void MisProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  switch (action) {
    case kDemote:
      // Deliberately keeps cur pointing at the winning Dominator.
      ctx.set_comm(kStateVar, kDominated);
      break;
    case kPromote:
      ctx.set_comm(kStateVar, kDominator);
      ctx.set_internal(kCurVar, next);
      break;
    case kScan:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "MIS has exactly three actions");
  }
}

}  // namespace sss
