#include "core/leader_election_protocol.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/require.hpp"
#include "support/rng.hpp"

namespace sss {

namespace {
constexpr int kReset = 0;    // A1
constexpr int kInherit = 1;  // A2
constexpr int kFollow = 2;   // A3
constexpr int kAdopt = 3;    // A4
constexpr int kImprove = 4;  // A5
constexpr int kScan = 5;     // A6
}  // namespace

LeaderElectionProtocol::LeaderElectionProtocol(const Graph& g,
                                               std::vector<Value> ids)
    : ids_(std::move(ids)),
      max_distance_(static_cast<Value>(g.num_vertices() - 1)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "LEADER-ELECTION requires a connected network with n >= 2");
  SSS_REQUIRE(static_cast<int>(ids_.size()) == g.num_vertices(),
              "LEADER-ELECTION needs one identifier per process");
  std::unordered_set<Value> seen;
  for (const Value id : ids_) {
    SSS_REQUIRE(id >= 0, "LEADER-ELECTION identifiers must be non-negative");
    SSS_REQUIRE(seen.insert(id).second,
                "LEADER-ELECTION identifiers must be distinct");
  }
  min_id_ = *std::min_element(ids_.begin(), ids_.end());
  max_id_ = *std::max_element(ids_.begin(), ids_.end());
  spec_.comm.emplace_back("L", VarDomain{min_id_, max_id_});
  spec_.comm.emplace_back("D", VarDomain{0, max_distance_});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("ID", VarDomain{min_id_, max_id_},
                          /*is_constant=*/true);
  spec_.internal.emplace_back("cur", domain_channel());
}

void LeaderElectionProtocol::install_constants(const Graph& g,
                                               Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kIdVar, ids_[static_cast<std::size_t>(p)]);
  }
}

int LeaderElectionProtocol::first_enabled(GuardContext& ctx) const {
  const Value id = ctx.self_comm(kIdVar);
  const Value leader = ctx.self_comm(kLeaderVar);
  const Value dist = ctx.self_comm(kDistVar);
  const Value parent = ctx.self_comm(kParentVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));

  if (leader > id) return kReset;
  if (leader == id) {
    if (dist != 0 || parent != 0) return kReset;
    // Self state: the only remaining duty is checking cur for a better
    // candidate (A4), then rotating.
    if (ctx.nbr_comm(cur, kLeaderVar) < leader &&
        ctx.nbr_comm(cur, kDistVar) + 1 <= max_distance_) {
      return kAdopt;
    }
    return kScan;
  }

  // leader < id: the claim must be backed by a parent chain.
  if (parent == 0 || dist == 0) return kReset;
  const auto pr = static_cast<NbrIndex>(parent);
  const Value parent_leader = ctx.nbr_comm(pr, kLeaderVar);
  const Value parent_dist = ctx.nbr_comm(pr, kDistVar);
  if (parent_leader > leader || parent_dist == max_distance_) return kReset;
  if (parent_leader < leader) return kInherit;
  if (dist != parent_dist + 1) return kFollow;

  const Value cur_leader = ctx.nbr_comm(cur, kLeaderVar);
  const Value cur_dist = ctx.nbr_comm(cur, kDistVar);
  if (cur_leader < leader && cur_dist + 1 <= max_distance_) return kAdopt;
  if (cur_leader == leader && cur_dist + 1 < dist) return kImprove;
  return kScan;
}

void LeaderElectionProtocol::sweep_enabled_range(BulkGuardContext& ctx,
                                                 EnabledBitmap& out, ProcessId begin,
                                                 ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot =
      static_cast<std::size_t>(cfg.num_comm() + kCurVar);  // internal cur
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value id = row[kIdVar];
    const Value leader = row[kLeaderVar];
    const Value dist = row[kDistVar];
    const Value parent = row[kParentVar];
    const std::int32_t base = offsets[p];

    if (leader > id) {
      actions[p] = static_cast<std::int8_t>(kReset);
      continue;
    }
    if (leader == id) {
      if (dist != 0 || parent != 0) {
        actions[p] = static_cast<std::int8_t>(kReset);
        continue;
      }
      const ProcessId cur_nbr = neighbors[static_cast<std::size_t>(
          base + static_cast<std::int32_t>(row[cur_slot]) - 1)];
      const Value* cur_row = data + static_cast<std::size_t>(cur_nbr) * stride;
      // Lazy conjunction: the distance is read only when the leader
      // comparison leaves A4 undecided.
      ctx.log(p, cur_nbr, kLeaderVar);
      if (cur_row[kLeaderVar] < leader) {
        ctx.log(p, cur_nbr, kDistVar);
        if (cur_row[kDistVar] + 1 <= max_distance_) {
          actions[p] = static_cast<std::int8_t>(kAdopt);
          continue;
        }
      }
      actions[p] = static_cast<std::int8_t>(kScan);
      continue;
    }

    // leader < id: the claim must be backed by a parent chain.
    if (parent == 0 || dist == 0) {
      actions[p] = static_cast<std::int8_t>(kReset);
      continue;
    }
    const ProcessId parent_nbr = neighbors[static_cast<std::size_t>(
        base + static_cast<std::int32_t>(parent) - 1)];
    const Value* parent_row =
        data + static_cast<std::size_t>(parent_nbr) * stride;
    const Value parent_leader = parent_row[kLeaderVar];
    ctx.log(p, parent_nbr, kLeaderVar);
    const Value parent_dist = parent_row[kDistVar];
    ctx.log(p, parent_nbr, kDistVar);
    if (parent_leader > leader || parent_dist == max_distance_) {
      actions[p] = static_cast<std::int8_t>(kReset);
      continue;
    }
    if (parent_leader < leader) {
      actions[p] = static_cast<std::int8_t>(kInherit);
      continue;
    }
    if (dist != parent_dist + 1) {
      actions[p] = static_cast<std::int8_t>(kFollow);
      continue;
    }
    const ProcessId cur_nbr = neighbors[static_cast<std::size_t>(
        base + static_cast<std::int32_t>(row[cur_slot]) - 1)];
    const Value* cur_row = data + static_cast<std::size_t>(cur_nbr) * stride;
    const Value cur_leader = cur_row[kLeaderVar];
    ctx.log(p, cur_nbr, kLeaderVar);
    const Value cur_dist = cur_row[kDistVar];
    ctx.log(p, cur_nbr, kDistVar);
    if (cur_leader < leader && cur_dist + 1 <= max_distance_) {
      actions[p] = static_cast<std::int8_t>(kAdopt);
    } else if (cur_leader == leader && cur_dist + 1 < dist) {
      actions[p] = static_cast<std::int8_t>(kImprove);
    } else {
      actions[p] = static_cast<std::int8_t>(kScan);
    }
  }
}

void LeaderElectionProtocol::execute_selected(
    BulkExecContext& ctx, const EnabledBitmap& enabled,
    std::span<const ProcessId> selection, std::size_t begin,
    std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot = static_cast<std::size_t>(cfg.num_comm() + kCurVar);
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const std::int32_t base = offsets[p];
    const Value cur = row[cur_slot];
    const auto degree = static_cast<Value>(offsets[p + 1] - base);
    const Value next = (cur % degree) + 1;
    Value* out = ctx.stage(i, p);
    // Execute-time neighbor reads (logged): the parent for A2/A3, the cur
    // neighbor for A4/A5 — leader before distance, the scalar argument
    // evaluation order.
    switch (action) {
      case kReset:
        out[kLeaderVar] = row[kIdVar];
        out[kDistVar] = 0;
        out[kParentVar] = 0;
        break;
      case kInherit: {
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(row[kParentVar]) - 1)];
        const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
        out[kLeaderVar] = nbr_row[kLeaderVar];
        ctx.log(p, q, kLeaderVar);
        out[kDistVar] = nbr_row[kDistVar] + 1;
        ctx.log(p, q, kDistVar);
        break;
      }
      case kFollow: {
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(row[kParentVar]) - 1)];
        out[kDistVar] = data[static_cast<std::size_t>(q) * stride + kDistVar] + 1;
        ctx.log(p, q, kDistVar);
        break;
      }
      case kAdopt: {
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(cur) - 1)];
        const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
        out[kLeaderVar] = nbr_row[kLeaderVar];
        ctx.log(p, q, kLeaderVar);
        out[kDistVar] = nbr_row[kDistVar] + 1;
        ctx.log(p, q, kDistVar);
        out[kParentVar] = cur;
        out[cur_slot] = next;
        break;
      }
      case kImprove: {
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(cur) - 1)];
        out[kDistVar] = data[static_cast<std::size_t>(q) * stride + kDistVar] + 1;
        ctx.log(p, q, kDistVar);
        out[kParentVar] = cur;
        out[cur_slot] = next;
        break;
      }
      default:  // kScan
        out[cur_slot] = next;
        break;
    }
  }
}

void LeaderElectionProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  const auto cur_ch = static_cast<NbrIndex>(cur);
  switch (action) {
    case kReset:
      ctx.set_comm(kLeaderVar, ctx.self_comm(kIdVar));
      ctx.set_comm(kDistVar, 0);
      ctx.set_comm(kParentVar, 0);
      break;
    case kInherit: {
      const auto pr = static_cast<NbrIndex>(ctx.self_comm(kParentVar));
      ctx.set_comm(kLeaderVar, ctx.nbr_comm(pr, kLeaderVar));
      ctx.set_comm(kDistVar, ctx.nbr_comm(pr, kDistVar) + 1);
      break;
    }
    case kFollow: {
      const auto pr = static_cast<NbrIndex>(ctx.self_comm(kParentVar));
      ctx.set_comm(kDistVar, ctx.nbr_comm(pr, kDistVar) + 1);
      break;
    }
    case kAdopt:
      ctx.set_comm(kLeaderVar, ctx.nbr_comm(cur_ch, kLeaderVar));
      ctx.set_comm(kDistVar, ctx.nbr_comm(cur_ch, kDistVar) + 1);
      ctx.set_comm(kParentVar, cur);
      ctx.set_internal(kCurVar, next);
      break;
    case kImprove:
      ctx.set_comm(kDistVar, ctx.nbr_comm(cur_ch, kDistVar) + 1);
      ctx.set_comm(kParentVar, cur);
      ctx.set_internal(kCurVar, next);
      break;
    case kScan:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "LEADER-ELECTION has exactly six actions");
  }
}

std::vector<Value> make_id_assignment(const Graph& g,
                                      const std::string& scheme,
                                      std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<Value> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  if (scheme == "identity") return ids;
  if (scheme == "reverse") {
    std::reverse(ids.begin(), ids.end());
    return ids;
  }
  if (scheme == "random") {
    Rng rng(seed);
    shuffle(ids, rng);
    return ids;
  }
  throw PreconditionError("unknown id scheme \"" + scheme +
                          "\" (accepted: identity, reverse, random)");
}

}  // namespace sss
