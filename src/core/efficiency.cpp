#include "core/efficiency.hpp"

namespace sss {

EfficiencyCertificate certify_efficiency(Engine& engine,
                                         std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    engine.step();
  }
  EfficiencyCertificate cert;
  cert.k_measured = engine.read_counter().max_reads_per_process_step();
  cert.bits_measured = engine.read_counter().max_bits_per_process_step();
  cert.steps_observed = steps;
  cert.total_reads = engine.read_counter().total_reads();
  cert.total_bits = engine.read_counter().total_bits();
  return cert;
}

}  // namespace sss
