#include "core/problems.hpp"

#include <algorithm>

#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "support/require.hpp"

namespace sss {

LegitimacyPredicate Problem::predicate() const {
  return [this](const Graph& g, const Configuration& config) {
    return holds(g, config);
  };
}

ColoringProblem::ColoringProblem(int color_var) : color_var_(color_var) {}

bool ColoringProblem::holds(const Graph& g, const Configuration& config) const {
  for (const auto& [a, b] : g.edges()) {
    if (config.comm(a, color_var_) == config.comm(b, color_var_)) {
      return false;
    }
  }
  return true;
}

MisProblem::MisProblem(int state_var) : state_var_(state_var) {}

bool MisProblem::holds(const Graph& g, const Configuration& config) const {
  return is_maximal_independent_set(g, extract_mis(g, config, state_var_));
}

MatchingProblem::MatchingProblem() = default;

bool MatchingProblem::holds(const Graph& g, const Configuration& config) const {
  return is_maximal_matching(g, extract_matching(g, config));
}

std::vector<int> extract_colors(const Graph& g, const Configuration& config,
                                int color_var) {
  std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    colors[static_cast<std::size_t>(p)] = config.comm(p, color_var);
  }
  return colors;
}

std::vector<bool> extract_mis(const Graph& g, const Configuration& config,
                              int state_var) {
  std::vector<bool> in_set(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    in_set[static_cast<std::size_t>(p)] =
        config.comm(p, state_var) == MisProtocol::kDominator;
  }
  return in_set;
}

bool matching_pr_married(const Graph& g, const Configuration& config,
                         ProcessId p) {
  const Value pr = config.comm(p, MatchingProtocol::kPrVar);
  const Value cur = config.internal_var(p, MatchingProtocol::kCurVar);
  if (pr == 0 || pr != cur) return false;
  const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(cur));
  return config.comm(q, MatchingProtocol::kPrVar) ==
         static_cast<Value>(g.local_index_of(q, p));
}

std::vector<Edge> extract_matching(const Graph& g,
                                   const Configuration& config) {
  std::vector<Edge> matched;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (!matching_pr_married(g, config, p)) continue;
    const Value pr = config.comm(p, MatchingProtocol::kPrVar);
    const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(pr));
    const Edge e{std::min(p, q), std::max(p, q)};
    if (std::find(matched.begin(), matched.end(), e) == matched.end()) {
      matched.push_back(e);
    }
  }
  return matched;
}

std::vector<Edge> extract_mutual_pr_edges(const Graph& g,
                                          const Configuration& config) {
  std::vector<Edge> matched;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const Value pr = config.comm(p, MatchingProtocol::kPrVar);
    if (pr == 0) continue;
    const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(pr));
    if (q < p) continue;  // handle each pair once
    if (config.comm(q, MatchingProtocol::kPrVar) ==
        static_cast<Value>(g.local_index_of(q, p))) {
      matched.emplace_back(p, q);
    }
  }
  return matched;
}

bool is_independent_set(const Graph& g, const std::vector<bool>& in_set) {
  SSS_REQUIRE(static_cast<int>(in_set.size()) == g.num_vertices(),
              "membership bitmap has the wrong size");
  for (const auto& [a, b] : g.edges()) {
    if (in_set[static_cast<std::size_t>(a)] &&
        in_set[static_cast<std::size_t>(b)]) {
      return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<bool>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (in_set[static_cast<std::size_t>(p)]) continue;
    bool dominated = false;
    for (ProcessId q : g.neighbors(p)) {
      if (in_set[static_cast<std::size_t>(q)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_matching(const Graph& g, const std::vector<Edge>& edges) {
  std::vector<int> incidence(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& [a, b] : edges) {
    if (!g.has_edge(a, b)) return false;
    if (++incidence[static_cast<std::size_t>(a)] > 1) return false;
    if (++incidence[static_cast<std::size_t>(b)] > 1) return false;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<Edge>& edges) {
  if (!is_matching(g, edges)) return false;
  std::vector<bool> covered(static_cast<std::size_t>(g.num_vertices()), false);
  for (const auto& [a, b] : edges) {
    covered[static_cast<std::size_t>(a)] = true;
    covered[static_cast<std::size_t>(b)] = true;
  }
  for (const auto& [a, b] : g.edges()) {
    if (!covered[static_cast<std::size_t>(a)] &&
        !covered[static_cast<std::size_t>(b)]) {
      return false;
    }
  }
  return true;
}

}  // namespace sss
