#include "core/protocol_registry.hpp"

#include <algorithm>

#include "baselines/full_read_bfs_tree.hpp"
#include "baselines/full_read_coloring.hpp"
#include "baselines/full_read_leader_election.hpp"
#include "baselines/full_read_matching.hpp"
#include "baselines/full_read_mis.hpp"
#include "core/bfs_tree_protocol.hpp"
#include "core/coloring_protocol.hpp"
#include "core/leader_election_protocol.hpp"
#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "graph/coloring.hpp"

namespace sss {

namespace {

/// The coloring substrate of the locally-colored protocols, by scheme name.
Coloring make_coloring(const Graph& g, const ParamMap& params) {
  const std::string scheme = param_string(params, "coloring", "greedy");
  if (scheme == "greedy") return greedy_coloring(g);
  if (scheme == "dsatur") return dsatur_coloring(g);
  if (scheme == "identity") return identity_coloring(g);
  if (scheme == "random") {
    Rng rng(static_cast<std::uint64_t>(param_int(params, "coloring_seed", 1)));
    return randomized_greedy_coloring(g, rng);
  }
  throw PreconditionError(
      "unknown coloring scheme \"" + scheme +
      "\" (accepted: greedy, dsatur, random, identity)");
}

int palette_size(const ParamMap& params) {
  return static_cast<int>(param_int(params, "palette_size", 0));
}

/// Root process of the rooted tree protocols, validated against the graph.
ProcessId tree_root(const Graph& g, const ParamMap& params) {
  const std::int64_t root = param_int(params, "root", 0);
  SSS_REQUIRE(root >= 0 && root < g.num_vertices(),
              "parameter \"root\" must name a process id in [0, " +
                  std::to_string(g.num_vertices()) + ")");
  return static_cast<ProcessId>(root);
}

/// Identifier assignment of the identified election protocols.
std::vector<Value> election_ids(const Graph& g, const ParamMap& params) {
  return make_id_assignment(
      g, param_string(params, "id_scheme", "identity"),
      static_cast<std::uint64_t>(param_int(params, "id_seed", 1)));
}

const std::vector<std::string> kColoredParams = {"coloring", "coloring_seed"};
const std::vector<std::string> kRootedParams = {"root"};
const std::vector<std::string> kIdentifiedParams = {"id_scheme", "id_seed"};

}  // namespace

ProtocolRegistry& ProtocolRegistry::instance() {
  // Construct-on-first-use with the built-ins installed here, so linking
  // any registry user links them too (see family_registry.cpp).
  static ProtocolRegistry* registry = [] {
    auto* fresh = new ProtocolRegistry();
    fresh->register_protocol(
        "coloring", {"palette_size"}, "vertex-coloring",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<ColoringProtocol>(g, palette_size(p));
        });
    fresh->register_protocol(
        "full-read-coloring", {"palette_size"}, "vertex-coloring",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadColoring>(g, palette_size(p));
        },
        // Redrawing among the colors the neighbors do not use can leave
        // two deterministically co-fired neighbors one shared free color
        // forever (see Entry::daemons); the claim needs a scheduler that
        // eventually fires conflicting neighbors apart.
        {"central-rr", "central-random", "distributed", "enumerator"});
    fresh->register_protocol(
        "mis", {"coloring", "coloring_seed", "promote_on_higher_color"},
        "maximal-independent-set",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<MisProtocol>(
              g, make_coloring(g, p),
              param_bool(p, "promote_on_higher_color", true));
        });
    fresh->register_protocol(
        "full-read-mis", kColoredParams, "maximal-independent-set",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadMis>(g, make_coloring(g, p));
        });
    fresh->register_protocol(
        "matching", kColoredParams, "maximal-matching",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<MatchingProtocol>(g, make_coloring(g, p));
        });
    // The baseline carries no cur variable, so the Section 5.3 predicate
    // does not apply to its layout; it pairs with the mutual-PR variant.
    fresh->register_protocol(
        "full-read-matching", kColoredParams, "mutual-pr-matching",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadMatching>(g, make_coloring(g, p));
        });
    fresh->register_protocol(
        "bfs-tree", kRootedParams, "bfs-spanning-tree",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<BfsTreeProtocol>(g, tree_root(g, p));
        });
    fresh->register_protocol(
        "full-read-bfs-tree", kRootedParams, "bfs-spanning-tree",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadBfsTree>(g, tree_root(g, p));
        });
    fresh->register_protocol(
        "leader-election", kIdentifiedParams, "leader-election",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<LeaderElectionProtocol>(g,
                                                          election_ids(g, p));
        });
    fresh->register_protocol(
        "full-read-leader-election", kIdentifiedParams, "leader-election",
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadLeaderElection>(
              g, election_ids(g, p));
        });
    return fresh;
  }();
  return *registry;
}

void ProtocolRegistry::register_protocol(std::string name,
                                         std::vector<std::string> params,
                                         std::string problem, Factory make,
                                         std::vector<std::string> daemons) {
  SSS_REQUIRE(!name.empty() && make != nullptr,
              "a protocol entry needs a name and a factory");
  SSS_REQUIRE(!contains(name),
              "protocol \"" + name + "\" is already registered");
  entries_.push_back(Entry{std::move(name), std::move(params),
                           std::move(problem), std::move(daemons),
                           std::move(make)});
}

bool ProtocolRegistry::contains(const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return true;
  }
  return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::info(
    const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return candidate;
  }
  throw PreconditionError("unknown protocol \"" + protocol_name +
                          "\" (known: " + join(names(), ", ") + ")");
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const std::string& protocol_name, const Graph& g,
    const ParamMap& params) const {
  const Entry& chosen = info(protocol_name);
  require_known_params(params, chosen.params,
                       "protocol \"" + chosen.name + "\"");
  return chosen.make(g, params);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& candidate : entries_) out.push_back(candidate.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
