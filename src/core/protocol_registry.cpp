#include "core/protocol_registry.hpp"

#include <algorithm>

#include "baselines/full_read_coloring.hpp"
#include "baselines/full_read_matching.hpp"
#include "baselines/full_read_mis.hpp"
#include "core/coloring_protocol.hpp"
#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "graph/coloring.hpp"

namespace sss {

namespace {

/// The coloring substrate of the locally-colored protocols, by scheme name.
Coloring make_coloring(const Graph& g, const ParamMap& params) {
  const std::string scheme = param_string(params, "coloring", "greedy");
  if (scheme == "greedy") return greedy_coloring(g);
  if (scheme == "dsatur") return dsatur_coloring(g);
  if (scheme == "identity") return identity_coloring(g);
  if (scheme == "random") {
    Rng rng(static_cast<std::uint64_t>(param_int(params, "coloring_seed", 1)));
    return randomized_greedy_coloring(g, rng);
  }
  throw PreconditionError(
      "unknown coloring scheme \"" + scheme +
      "\" (accepted: greedy, dsatur, random, identity)");
}

int palette_size(const ParamMap& params) {
  return static_cast<int>(param_int(params, "palette_size", 0));
}

const std::vector<std::string> kColoredParams = {"coloring", "coloring_seed"};

}  // namespace

ProtocolRegistry& ProtocolRegistry::instance() {
  // Construct-on-first-use with the built-ins installed here, so linking
  // any registry user links them too (see family_registry.cpp).
  static ProtocolRegistry* registry = [] {
    auto* fresh = new ProtocolRegistry();
    fresh->register_protocol(
        "coloring", {"palette_size"},
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<ColoringProtocol>(g, palette_size(p));
        });
    fresh->register_protocol(
        "full-read-coloring", {"palette_size"},
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadColoring>(g, palette_size(p));
        });
    fresh->register_protocol(
        "mis", {"coloring", "coloring_seed", "promote_on_higher_color"},
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<MisProtocol>(
              g, make_coloring(g, p),
              param_bool(p, "promote_on_higher_color", true));
        });
    fresh->register_protocol(
        "full-read-mis", kColoredParams,
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadMis>(g, make_coloring(g, p));
        });
    fresh->register_protocol(
        "matching", kColoredParams,
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<MatchingProtocol>(g, make_coloring(g, p));
        });
    fresh->register_protocol(
        "full-read-matching", kColoredParams,
        [](const Graph& g, const ParamMap& p) -> std::unique_ptr<Protocol> {
          return std::make_unique<FullReadMatching>(g, make_coloring(g, p));
        });
    return fresh;
  }();
  return *registry;
}

void ProtocolRegistry::register_protocol(std::string name,
                                         std::vector<std::string> params,
                                         Factory make) {
  SSS_REQUIRE(!name.empty() && make != nullptr,
              "a protocol entry needs a name and a factory");
  SSS_REQUIRE(!contains(name),
              "protocol \"" + name + "\" is already registered");
  entries_.push_back(Entry{std::move(name), std::move(params),
                           std::move(make)});
}

bool ProtocolRegistry::contains(const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return true;
  }
  return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::entry(
    const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return candidate;
  }
  throw PreconditionError("unknown protocol \"" + protocol_name +
                          "\" (known: " + join(names(), ", ") + ")");
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const std::string& protocol_name, const Graph& g,
    const ParamMap& params) const {
  const Entry& chosen = entry(protocol_name);
  require_known_params(params, chosen.params,
                       "protocol \"" + chosen.name + "\"");
  return chosen.make(g, params);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& candidate : entries_) out.push_back(candidate.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
