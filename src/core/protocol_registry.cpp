#include "core/protocol_registry.hpp"

#include <algorithm>

#include "baselines/full_read_bfs_tree.hpp"
#include "baselines/full_read_coloring.hpp"
#include "baselines/full_read_leader_election.hpp"
#include "baselines/full_read_matching.hpp"
#include "baselines/full_read_mis.hpp"
#include "baselines/full_read_spanning_forest.hpp"
#include "core/bfs_tree_protocol.hpp"
#include "core/coloring_protocol.hpp"
#include "core/leader_election_protocol.hpp"
#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/spanning_forest_protocol.hpp"
#include "graph/coloring.hpp"
#include "transformer/generic_efficiency.hpp"
#include "transformer/rotating_check.hpp"

namespace sss {

namespace {

/// The coloring substrate of the locally-colored protocols, by scheme name.
Coloring make_coloring(const Graph& g, const ParamMap& params) {
  const std::string scheme = param_string(params, "coloring", "greedy");
  if (scheme == "greedy") return greedy_coloring(g);
  if (scheme == "dsatur") return dsatur_coloring(g);
  if (scheme == "identity") return identity_coloring(g);
  if (scheme == "random") {
    Rng rng(static_cast<std::uint64_t>(param_int(params, "coloring_seed", 1)));
    return randomized_greedy_coloring(g, rng);
  }
  throw PreconditionError(
      "unknown coloring scheme \"" + scheme +
      "\" (accepted: greedy, dsatur, random, identity)");
}

int palette_size(const ParamMap& params) {
  return static_cast<int>(param_int(params, "palette_size", 0));
}

/// Root process of the rooted tree protocols, validated against the graph.
ProcessId tree_root(const Graph& g, const ParamMap& params) {
  const std::int64_t root = param_int(params, "root", 0);
  SSS_REQUIRE(root >= 0 && root < g.num_vertices(),
              "parameter \"root\" must name a process id in [0, " +
                  std::to_string(g.num_vertices()) + ")");
  return static_cast<ProcessId>(root);
}

/// Root set of the forest protocols: a comma-separated list of process
/// ids ("0,3,7"), validated against the graph and required distinct.
std::vector<ProcessId> forest_roots(const Graph& g, const ParamMap& params) {
  const std::string spec = param_string(params, "roots", "0");
  std::vector<ProcessId> roots;
  for (const std::string& field : split(spec, ',')) {
    const std::string token = trim(field);
    int id = 0;
    SSS_REQUIRE(parse_non_negative_int(token, &id) && id < g.num_vertices(),
                "parameter \"roots\" must be comma-separated process ids in "
                "[0, " +
                    std::to_string(g.num_vertices()) + "), got \"" + spec +
                    "\"");
    SSS_REQUIRE(std::find(roots.begin(), roots.end(), id) == roots.end(),
                "parameter \"roots\" lists process " + std::to_string(id) +
                    " twice");
    roots.push_back(id);
  }
  return roots;
}

/// Identifier assignment of the identified election protocols.
std::vector<Value> election_ids(const Graph& g, const ParamMap& params) {
  return make_id_assignment(
      g, param_string(params, "id_scheme", "identity"),
      static_cast<std::uint64_t>(param_int(params, "id_seed", 1)));
}

const std::vector<std::string> kColoredParams = {"coloring", "coloring_seed"};
const std::vector<std::string> kRootedParams = {"root"};
const std::vector<std::string> kForestParams = {"roots"};
const std::vector<std::string> kIdentifiedParams = {"id_scheme", "id_seed"};
/// Redrawing among the colors the neighbors do not use can leave two
/// deterministically co-fired neighbors one shared free color forever
/// (see Entry::daemons); these claims need a scheduler that eventually
/// fires conflicting neighbors apart.
const std::vector<std::string> kNoCoFiringDaemons = {
    "central-rr", "central-random", "distributed", "enumerator"};

/// Intersection of two daemon claims; empty = unrestricted (see
/// Entry::daemons). A genuinely empty intersection is a composition error.
std::vector<std::string> intersect_daemons(const std::vector<std::string>& a,
                                           const std::vector<std::string>& b,
                                           const std::string& label) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<std::string> out;
  for (const std::string& name : a) {
    if (std::find(b.begin(), b.end(), name) != b.end()) out.push_back(name);
  }
  SSS_REQUIRE(!out.empty(),
              "composition \"" + label +
                  "\" has no daemon satisfying both the transformer's and "
                  "the inner protocol's stabilization claims");
  return out;
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::instance() {
  // Construct-on-first-use with the built-ins installed here, so linking
  // any registry user links them too (see family_registry.cpp).
  using Kind = Entry::Kind;
  static ProtocolRegistry* registry = [] {
    auto* fresh = new ProtocolRegistry();
    fresh->add({.name = "coloring",
                .params = {"palette_size"},
                .problem = "vertex-coloring",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<ColoringProtocol>(g,
                                                            palette_size(p));
                }});
    fresh->add({.name = "full-read-coloring",
                .params = {"palette_size"},
                .problem = "vertex-coloring",
                .daemons = kNoCoFiringDaemons,
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadColoring>(g,
                                                            palette_size(p));
                }});
    fresh->add({.name = "mis",
                .params = {"coloring", "coloring_seed",
                           "promote_on_higher_color"},
                .problem = "maximal-independent-set",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<MisProtocol>(
                      g, make_coloring(g, p),
                      param_bool(p, "promote_on_higher_color", true));
                }});
    fresh->add({.name = "full-read-mis",
                .params = kColoredParams,
                .problem = "maximal-independent-set",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadMis>(g, make_coloring(g, p));
                }});
    fresh->add({.name = "matching",
                .params = kColoredParams,
                .problem = "maximal-matching",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<MatchingProtocol>(
                      g, make_coloring(g, p));
                }});
    // The baseline carries no cur variable, so the Section 5.3 predicate
    // does not apply to its layout; it pairs with the mutual-PR variant.
    fresh->add({.name = "full-read-matching",
                .params = kColoredParams,
                .problem = "mutual-pr-matching",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadMatching>(
                      g, make_coloring(g, p));
                }});
    fresh->add({.name = "bfs-tree",
                .params = kRootedParams,
                .problem = "bfs-spanning-tree",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<BfsTreeProtocol>(g, tree_root(g, p));
                }});
    fresh->add({.name = "full-read-bfs-tree",
                .params = kRootedParams,
                .problem = "bfs-spanning-tree",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadBfsTree>(g, tree_root(g, p));
                }});
    fresh->add({.name = "spanning-forest",
                .params = kForestParams,
                .problem = "bfs-spanning-forest",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<SpanningForestProtocol>(
                      g, forest_roots(g, p));
                }});
    fresh->add({.name = "full-read-spanning-forest",
                .params = kForestParams,
                .problem = "bfs-spanning-forest",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadSpanningForest>(
                      g, forest_roots(g, p));
                }});
    fresh->add({.name = "leader-election",
                .params = kIdentifiedParams,
                .problem = "leader-election",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<LeaderElectionProtocol>(
                      g, election_ids(g, p));
                }});
    fresh->add({.name = "full-read-leader-election",
                .params = kIdentifiedParams,
                .problem = "leader-election",
                .make = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<FullReadLeaderElection>(
                      g, election_ids(g, p));
                }});
    // Transformers: higher-order entries whose selection nests another
    // entry. Problems and daemon claims resolve through the nesting
    // (inherit / intersect; see resolve()).
    fresh->add({.name = "generic-efficiency",
                .kind = Kind::kTransformer,
                .wraps = Kind::kProtocol,
                .wrap = [](const Graph& g, const ParamMap&,
                           const ProtocolSelection& inner)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<GenericEfficiency>(
                      g, ProtocolRegistry::instance().make(inner, g));
                }});
    // Rotating-check's repair draws among the values the neighbors do not
    // use — the same co-firing caveat as FULL-READ-COLORING.
    fresh->add({.name = "rotating-check",
                .kind = Kind::kTransformer,
                .daemons = kNoCoFiringDaemons,
                .wraps = Kind::kCheckerSource,
                .wrap = [](const Graph& g, const ParamMap&,
                           const ProtocolSelection& inner)
                    -> std::unique_ptr<Protocol> {
                  return std::make_unique<RotatingCheck>(
                      g,
                      ProtocolRegistry::instance().make_checker(inner, g));
                }});
    fresh->add({.name = "pairwise-coloring",
                .kind = Kind::kCheckerSource,
                .params = {"palette_size"},
                .problem = "vertex-coloring",
                .checker = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<PairwiseCheckable> {
                  return std::make_unique<PairwiseColoring>(g,
                                                            palette_size(p));
                }});
    // No registered Problem: the separation predicate lives on
    // PairwiseSeparation::separated (parameterized by `separation`, which
    // the problem registry's nullary factories cannot express).
    fresh->add({.name = "pairwise-separation",
                .kind = Kind::kCheckerSource,
                .params = {"separation", "palette_size"},
                .checker = [](const Graph& g, const ParamMap& p)
                    -> std::unique_ptr<PairwiseCheckable> {
                  return std::make_unique<PairwiseSeparation>(
                      g, static_cast<int>(param_int(p, "separation", 1)),
                      palette_size(p));
                }});
    return fresh;
  }();
  return *registry;
}

void ProtocolRegistry::add(Entry entry) {
  SSS_REQUIRE(!entry.name.empty(), "a protocol entry needs a name");
  switch (entry.kind) {
    case Entry::Kind::kProtocol:
      SSS_REQUIRE(entry.make != nullptr && entry.wrap == nullptr &&
                      entry.checker == nullptr,
                  "protocol entry \"" + entry.name +
                      "\" needs exactly a `make` factory");
      break;
    case Entry::Kind::kTransformer:
      SSS_REQUIRE(entry.wrap != nullptr && entry.make == nullptr &&
                      entry.checker == nullptr,
                  "transformer entry \"" + entry.name +
                      "\" needs exactly a `wrap` factory");
      break;
    case Entry::Kind::kCheckerSource:
      SSS_REQUIRE(entry.checker != nullptr && entry.make == nullptr &&
                      entry.wrap == nullptr,
                  "checker-source entry \"" + entry.name +
                      "\" needs exactly a `checker` factory");
      break;
  }
  SSS_REQUIRE(!contains(entry.name),
              "protocol \"" + entry.name + "\" is already registered");
  entries_.push_back(std::move(entry));
}

bool ProtocolRegistry::contains(const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return true;
  }
  return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::info(
    const std::string& protocol_name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == protocol_name) return candidate;
  }
  throw PreconditionError("unknown protocol \"" + protocol_name +
                          "\" (known: " + join(names(), ", ") + ")");
}

ProtocolRegistry::ComposedInfo ProtocolRegistry::resolve(
    const ProtocolSelection& selection) const {
  const Entry& chosen = info(selection.name);
  require_known_params(selection.params, chosen.params,
                       "protocol \"" + chosen.name + "\"");
  if (chosen.kind != Entry::Kind::kTransformer) {
    SSS_REQUIRE(chosen.runnable(),
                "\"" + chosen.name +
                    "\" is a checker source, not a runnable protocol; "
                    "select it as the inner spec of \"rotating-check\"");
    SSS_REQUIRE(selection.inner == nullptr,
                "protocol \"" + chosen.name +
                    "\" does not take an inner protocol spec");
    return ComposedInfo{chosen.name, chosen.problem, chosen.daemons};
  }
  SSS_REQUIRE(selection.inner != nullptr,
              "transformer \"" + chosen.name +
                  "\" needs an inner protocol spec");
  const Entry& wrapped = info(selection.inner->name);
  if (chosen.wraps == Entry::Kind::kCheckerSource) {
    SSS_REQUIRE(wrapped.kind == Entry::Kind::kCheckerSource,
                "transformer \"" + chosen.name +
                    "\" wraps a checker source, but \"" + wrapped.name +
                    "\" is not one");
    // Checker sources never nest further: validate the leaf directly (the
    // recursive resolve would reject it as non-runnable).
    require_known_params(selection.inner->params, wrapped.params,
                         "protocol \"" + wrapped.name + "\"");
    SSS_REQUIRE(selection.inner->inner == nullptr,
                "protocol \"" + wrapped.name +
                    "\" does not take an inner protocol spec");
    ComposedInfo out;
    out.label = chosen.name + "(" + wrapped.name + ")";
    out.problem = chosen.problem.empty() ? wrapped.problem : chosen.problem;
    out.daemons =
        intersect_daemons(chosen.daemons, wrapped.daemons, out.label);
    return out;
  }
  SSS_REQUIRE(wrapped.runnable(),
              "transformer \"" + chosen.name +
                  "\" wraps a runnable protocol, but \"" + wrapped.name +
                  "\" is a checker source (only \"rotating-check\" wraps "
                  "those)");
  const ComposedInfo inner = resolve(*selection.inner);
  ComposedInfo out;
  out.label = chosen.name + "(" + inner.label + ")";
  out.problem = chosen.problem.empty() ? inner.problem : chosen.problem;
  out.daemons = intersect_daemons(chosen.daemons, inner.daemons, out.label);
  return out;
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const ProtocolSelection& selection, const Graph& g) const {
  resolve(selection);  // full composition validation, with its messages
  const Entry& chosen = info(selection.name);
  if (chosen.kind == Entry::Kind::kTransformer) {
    return chosen.wrap(g, selection.params, *selection.inner);
  }
  return chosen.make(g, selection.params);
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const std::string& protocol_name, const Graph& g,
    const ParamMap& params) const {
  return make(ProtocolSelection::base(protocol_name, params), g);
}

std::unique_ptr<PairwiseCheckable> ProtocolRegistry::make_checker(
    const ProtocolSelection& selection, const Graph& g) const {
  const Entry& chosen = info(selection.name);
  SSS_REQUIRE(chosen.kind == Entry::Kind::kCheckerSource,
              "\"" + chosen.name + "\" is not a checker source");
  require_known_params(selection.params, chosen.params,
                       "protocol \"" + chosen.name + "\"");
  SSS_REQUIRE(selection.inner == nullptr,
              "protocol \"" + chosen.name +
                  "\" does not take an inner protocol spec");
  return chosen.checker(g, selection.params);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& candidate : entries_) out.push_back(candidate.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ProtocolRegistry::protocol_names() const {
  std::vector<std::string> out;
  for (const Entry& candidate : entries_) {
    if (candidate.kind == Entry::Kind::kProtocol) out.push_back(candidate.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
