#pragma once
/// \file leader_election_protocol.hpp
/// Protocol LEADER-ELECTION — deterministic silent self-stabilizing leader
/// election for identified networks, communication-efficient in the style
/// of arXiv:2008.04252: a process reads at most its parent plus one
/// round-robin neighbor per step (2-efficient), against the Delta reads of
/// the classic full-read election (baselines/full_read_leader_election
/// .hpp). The elected process is the one with the minimum identifier, and
/// the parent pointers converge to a BFS spanning tree rooted at it.
///
///   Communication variables:  L.p  — claimed leader id
///                             D.p  in {0 .. n-1} (claimed tree depth)
///                             PR.p in {0 .. delta.p} (parent channel)
///   Communication constant:   ID.p — p's unique identifier
///   Internal variable:        cur.p in [1 .. delta.p]
///
/// Write self(p) ≡ (L.p = ID.p ∧ D.p = 0 ∧ PR.p = 0), dmax = n-1, and
/// q = PR.p's neighbor. Actions (priority order):
///   A1 reset:     L.p > ID.p
///                 ∨ (L.p = ID.p ∧ (D.p ≠ 0 ∨ PR.p ≠ 0))
///                 ∨ (L.p < ID.p ∧ (PR.p = 0 ∨ D.p = 0))
///                 ∨ (L.p < ID.p ∧ (L.q > L.p ∨ D.q = dmax))
///                    -> L.p <- ID.p; D.p <- 0; PR.p <- 0
///   A2 inherit:   L.p < ID.p ∧ L.q < L.p      -> L.p <- L.q; D.p <- D.q+1
///   A3 follow:    L.p < ID.p ∧ L.q = L.p ∧ D.p ≠ D.q + 1
///                                             -> D.p <- D.q + 1
///   A4 adopt:     L.(cur.p) < L.p ∧ D.(cur.p) + 1 <= dmax
///                    -> L.p <- L.(cur.p); D.p <- D.(cur.p) + 1;
///                       PR.p <- cur.p; advance cur
///   A5 improve:   L.p < ID.p ∧ L.(cur.p) = L.p ∧ D.(cur.p) + 1 < D.p
///                    -> D.p <- D.(cur.p) + 1; PR.p <- cur.p; advance cur
///   A6 scan:      true -> advance cur
///
/// Fake leader ids cannot survive: a consistent chain of equal-L parents
/// with depths decreasing by 1 is a real path and must bottom out at a
/// process whose own id *is* that L — for a fake id no such process
/// exists, so the lowest-depth holder resets (A1) while parent cycles
/// chase their depths up to the dmax cap, where A1's D.q = dmax clause
/// cuts them down. Once only real ids remain, the minimum id spreads via
/// A4 (each process checks one candidate per activation through cur) and
/// A5 shrinks depths to BFS distances from the winner. In the silent
/// configuration every process agrees on L = min id, the winner is in the
/// self state, and PR/D form a BFS tree rooted at it; only A6's internal
/// rotation keeps firing. Guard evaluation reads at most the parent
/// (A1-A3) and the cur neighbor (A4-A5): k = 2.

#include <string>
#include <vector>

#include "runtime/protocol.hpp"

namespace sss {

class LeaderElectionProtocol final : public Protocol {
 public:
  /// Variable indices, public for predicates/tests.
  static constexpr int kLeaderVar = 0;  ///< comm: L
  static constexpr int kDistVar = 1;    ///< comm: D
  static constexpr int kParentVar = 2;  ///< comm: PR
  static constexpr int kIdVar = 3;      ///< comm constant: ID
  static constexpr int kCurVar = 0;     ///< internal: cur

  /// `ids` assigns one identifier per process; they must be distinct and
  /// non-negative. Requires a connected network with n >= 2.
  LeaderElectionProtocol(const Graph& g, std::vector<Value> ids);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 6; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const std::vector<Value>& ids() const { return ids_; }
  Value min_id() const { return min_id_; }
  Value max_distance() const { return max_distance_; }

 private:
  std::string name_ = "LEADER-ELECTION";
  std::vector<Value> ids_;
  Value min_id_;
  Value max_id_;
  Value max_distance_;
  ProtocolSpec spec_;
};

/// Identifier assignments for the registry's `id_scheme` parameter:
///   "identity"  ID.p = p
///   "reverse"   ID.p = n-1-p (the winner is the highest-index process)
///   "random"    a seed-deterministic permutation of 0..n-1
std::vector<Value> make_id_assignment(const Graph& g,
                                      const std::string& scheme,
                                      std::uint64_t seed);

}  // namespace sss
