#pragma once
/// \file mis_protocol.hpp
/// Protocol MIS (Figure 8) — deterministic self-stabilizing maximal
/// independent set for locally-colored networks, 1-efficient.
///
///   Communication variable:  S.p in {Dominator, dominated}
///   Communication constant:  C.p — a color, unique in p's neighborhood
///   Internal variable:       cur.p in [1 .. delta.p]
///   Actions (priority order):
///     (S.(cur.p) = Dom ∧ C.(cur.p) < C.p ∧ S.p = Dom)
///         -> S.p <- dominated
///     ((S.(cur.p) = dominated ∨ C.p < C.(cur.p)) ∧ S.p = dominated)
///         -> S.p <- Dominator; cur.p <- (cur.p mod delta.p) + 1
///     (S.p = Dominator)
///         -> cur.p <- (cur.p mod delta.p) + 1
///
/// Note the first action does *not* advance cur: a freshly dominated
/// process keeps pointing at the Dominator that beat it, which is exactly
/// what makes dominated processes eventually 1-stable (Theorem 6). Silent
/// within Delta * #C rounds (Lemma 4).

#include <string>

#include "graph/coloring.hpp"
#include "runtime/protocol.hpp"

namespace sss {

class MisProtocol final : public Protocol {
 public:
  /// S values.
  static constexpr Value kDominated = 0;
  static constexpr Value kDominator = 1;

  /// Variable indices.
  static constexpr int kStateVar = 0;  ///< comm: S
  static constexpr int kColorVar = 1;  ///< comm constant: C
  static constexpr int kCurVar = 0;    ///< internal: cur

  /// `colors` must be a proper coloring of `g` (colors unique between
  /// neighbors); it becomes the communication constant C.
  ///
  /// `promote_on_higher_color` keeps the second action's "∨ C.p < C.(cur.p)"
  /// disjunct, which the paper adds "to have a faster convergence time".
  /// Passing false ablates it: the protocol still stabilizes to a maximal
  /// independent set (a dominated process parks on ANY Dominator), but the
  /// Lemma 4 round-bound argument no longer applies and the silent output
  /// is no longer the unique greedy-by-color MIS. See bench_mis_ablation.
  explicit MisProtocol(const Graph& g, Coloring colors,
                       bool promote_on_higher_color = true);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 3; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const Coloring& colors() const { return colors_; }
  int num_colors() const { return num_colors_; }
  bool promote_on_higher_color() const { return promote_on_higher_color_; }

 private:
  std::string name_;
  Coloring colors_;
  int num_colors_;
  bool promote_on_higher_color_;
  ProtocolSpec spec_;
};

}  // namespace sss
