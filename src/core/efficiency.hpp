#pragma once
/// \file efficiency.hpp
/// k-efficiency certification (Definition 4): a protocol is k-efficient if
/// in every step every process reads communication variables of at most k
/// neighbors. The certifier observes a computation and reports the maximum
/// per-process per-step read count and bit count actually incurred.

#include <cstdint>

#include "runtime/engine.hpp"

namespace sss {

struct EfficiencyCertificate {
  /// Max distinct neighbors any process read in any observed step — the
  /// measured k of Definition 4.
  int k_measured = 0;
  /// Max bits any process read in one step (Definition 5, measured).
  int bits_measured = 0;
  std::uint64_t steps_observed = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_bits = 0;
};

/// Steps `engine` `steps` times from its current configuration and reports
/// the engine-lifetime maxima (which upper-bound the run's maxima).
EfficiencyCertificate certify_efficiency(Engine& engine, std::uint64_t steps);

}  // namespace sss
