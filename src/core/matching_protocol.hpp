#pragma once
/// \file matching_protocol.hpp
/// Protocol MATCHING (Figure 10) — deterministic self-stabilizing maximal
/// matching for locally-colored networks, 1-efficient. Derived from Manne
/// et al. [17] with the cur-pointer adaptation that yields 1-efficiency.
///
///   Communication variables:  M.p in {true, false},
///                             PR.p in {0 .. delta.p}
///   Communication constant:   C.p — a color, unique in p's neighborhood
///   Internal variable:        cur.p in [1 .. delta.p]
///   Predicate:  PRmarried(p) ≡ (PR.p = cur.p ∧ PR.(cur.p) = p)
///   Actions (priority order):
///     A1: PR.p ∉ {0, cur.p}                  -> PR.p <- cur.p
///     A2: M.p ≠ PRmarried(p)                 -> M.p <- PRmarried(p)
///     A3: PR.p = 0 ∧ PR.(cur.p) = p          -> PR.p <- cur.p
///     A4: PR.p = cur.p ∧ PR.(cur.p) ≠ p ∧
///         (M.(cur.p) ∨ C.(cur.p) < C.p)      -> PR.p <- 0
///     A5: PR.p = 0 ∧ PR.(cur.p) = 0 ∧
///         C.p < C.(cur.p) ∧ ¬M.(cur.p)       -> PR.p <- cur.p
///     A6: PR.p = 0 ∧ (PR.(cur.p) ≠ 0 ∨
///         C.(cur.p) < C.p ∨ M.(cur.p))       -> cur.p <- (cur mod delta)+1
///
/// PR holds a local channel index (or 0 = free), so "PR.(cur.p) = p" is
/// evaluated by comparing the neighbor's pointer with the channel number
/// under which that neighbor sees p. Silent within (Delta+1)n + 2 rounds
/// (Lemma 9); married pairs are eventually 1-stable (Theorem 8).

#include <string>

#include "graph/coloring.hpp"
#include "runtime/protocol.hpp"

namespace sss {

class MatchingProtocol final : public Protocol {
 public:
  /// Variable indices.
  static constexpr int kMarriedVar = 0;  ///< comm: M
  static constexpr int kPrVar = 1;       ///< comm: PR
  static constexpr int kColorVar = 2;    ///< comm constant: C
  static constexpr int kCurVar = 0;      ///< internal: cur

  /// `colors` must be a proper coloring of `g`.
  MatchingProtocol(const Graph& g, Coloring colors);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 6; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const Coloring& colors() const { return colors_; }

  /// PRmarried(p) evaluated against a context (used by the predicate too).
  static bool pr_married(const GuardContext& ctx);

 private:
  std::string name_ = "MATCHING";
  Coloring colors_;
  ProtocolSpec spec_;
};

}  // namespace sss
