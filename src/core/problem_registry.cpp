#include "core/problem_registry.hpp"

#include <algorithm>

#include "baselines/full_read_matching.hpp"
#include "support/params.hpp"
#include "verify/forest_predicates.hpp"
#include "verify/tree_predicates.hpp"

namespace sss {

ProblemRegistry& ProblemRegistry::instance() {
  // Construct-on-first-use with the built-ins installed here, so linking
  // any registry user links them too (see family_registry.cpp).
  static ProblemRegistry* registry = [] {
    auto* fresh = new ProblemRegistry();
    fresh->register_problem("vertex-coloring", {"coloring"}, [] {
      return std::make_unique<ColoringProblem>();
    });
    fresh->register_problem("maximal-independent-set", {"mis"}, [] {
      return std::make_unique<MisProblem>();
    });
    fresh->register_problem("maximal-matching", {"matching"}, [] {
      return std::make_unique<MatchingProblem>();
    });
    fresh->register_problem("mutual-pr-matching", {}, [] {
      return std::make_unique<MutualPrMatchingProblem>();
    });
    fresh->register_problem("bfs-spanning-tree", {"bfs-tree", "bfs"}, [] {
      return std::make_unique<BfsTreeProblem>();
    });
    fresh->register_problem("bfs-spanning-forest", {"bfs-forest", "forest"},
                            [] {
      return std::make_unique<BfsForestProblem>();
    });
    fresh->register_problem("leader-election", {"leader"}, [] {
      return std::make_unique<LeaderElectionProblem>();
    });
    return fresh;
  }();
  return *registry;
}

void ProblemRegistry::register_problem(std::string name,
                                       std::vector<std::string> aliases,
                                       Factory make) {
  SSS_REQUIRE(!name.empty() && make != nullptr,
              "a problem entry needs a name and a factory");
  SSS_REQUIRE(!contains(name),
              "problem \"" + name + "\" is already registered");
  for (const std::string& alias : aliases) {
    SSS_REQUIRE(!contains(alias),
                "problem alias \"" + alias + "\" is already registered");
  }
  entries_.push_back(Entry{std::move(name), std::move(aliases),
                           std::move(make)});
}

const ProblemRegistry::Entry* ProblemRegistry::lookup(
    const std::string& name) const {
  for (const Entry& candidate : entries_) {
    if (candidate.name == name) return &candidate;
    for (const std::string& alias : candidate.aliases) {
      if (alias == name) return &candidate;
    }
  }
  return nullptr;
}

bool ProblemRegistry::contains(const std::string& name) const {
  return lookup(name) != nullptr;
}

std::unique_ptr<Problem> ProblemRegistry::make(const std::string& name) const {
  const Entry* found = lookup(name);
  if (found == nullptr) {
    throw PreconditionError("unknown problem \"" + name +
                            "\" (known: " + join(names(), ", ") + ")");
  }
  return found->make();
}

std::vector<std::string> ProblemRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& candidate : entries_) out.push_back(candidate.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
