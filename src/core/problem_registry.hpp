#pragma once
/// \file problem_registry.hpp
/// Name-based factory for the legitimacy predicates of Section 5, the
/// problem half of the manifest-driven experiment lab.
///
/// Canonical names are the Problem::name() strings ("vertex-coloring",
/// "maximal-independent-set", "maximal-matching", "bfs-spanning-tree",
/// "leader-election"); the short aliases "coloring", "mis", "matching",
/// "bfs-tree"/"bfs" and "leader" resolve to the same entries so manifests
/// can use either. Mirrors runtime/daemon.hpp's factory-by-name; open via
/// `register_problem` / `ProblemRegistrar`.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/problems.hpp"

namespace sss {

class ProblemRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Problem>()>;

  /// The process-wide registry, with the built-in problems installed.
  static ProblemRegistry& instance();

  /// Adds a problem under `name` plus optional aliases; re-registering an
  /// existing name or alias throws.
  void register_problem(std::string name, std::vector<std::string> aliases,
                        Factory make);

  /// Instantiates the problem registered under `name` (or one of its
  /// aliases). Throws PreconditionError on unknown names.
  std::unique_ptr<Problem> make(const std::string& name) const;

  bool contains(const std::string& name) const;

  /// Canonical names (no aliases) in sorted order.
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    std::vector<std::string> aliases;
    Factory make;
  };

  const Entry* lookup(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// Static-init helper for self-registration.
struct ProblemRegistrar {
  ProblemRegistrar(std::string name, std::vector<std::string> aliases,
                   ProblemRegistry::Factory make) {
    ProblemRegistry::instance().register_problem(
        std::move(name), std::move(aliases), std::move(make));
  }
};

}  // namespace sss
