#pragma once
/// \file stability.hpp
/// Empirical ♦-(x,k)-stability measurement (Definitions 7-9).
///
/// ♦-(x,k)-stability says: in every computation there is a suffix in which
/// some x processes each read from at most k distinct neighbors. The
/// natural suffix to measure is the one starting at the silence point, so
/// the analyzer (1) drives the engine to a certified silent configuration,
/// (2) resets a StabilityTracker, (3) keeps the computation running for an
/// observation window long enough for every process to be selected through
/// several full cur-pointer cycles, and (4) reports |R_p| per process.

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"

namespace sss {

struct StabilityReport {
  /// False if the run hit max_steps before silence; counts then meaningless.
  bool silent = false;
  std::uint64_t steps_to_silence = 0;
  std::uint64_t rounds_to_silence = 0;
  /// |R_p(C')| for the post-silence suffix C', per process.
  std::vector<int> suffix_read_set_sizes;
  /// Number of processes with |R_p(C')| <= 1 (the measured x of
  /// ♦-(x,1)-stability).
  int one_stable_count = 0;
  /// Steps observed after silence.
  std::uint64_t window_steps = 0;

  int count_at_most(int k) const;
};

/// Runs `engine` to silence under `options`, then observes the suffix for
/// `window_factor * n * (Delta + 2)` further steps. The engine's current
/// configuration is the starting point (call randomize_state() first for
/// an arbitrary start).
StabilityReport analyze_stability(Engine& engine, const RunOptions& options,
                                  int window_factor = 4);

}  // namespace sss
