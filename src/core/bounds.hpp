#pragma once
/// \file bounds.hpp
/// Every closed-form bound the paper states, as checked formulas. Benches
/// print these next to measured values; tests assert the measured side.

#include <cstdint>

#include "support/bits.hpp"

namespace sss {

/// Figure 7: the palette {1..Delta+1} is the minimum that colors every
/// graph of maximum degree Delta (a (Delta+1)-clique needs them all).
int coloring_palette_size(int max_degree);

/// Lemma 4: Protocol MIS reaches a silent configuration within
/// Delta * #C rounds, #C the number of distinct colors in use.
std::int64_t mis_round_bound(int max_degree, int num_colors);

/// Lemma 9: Protocol MATCHING reaches a silent configuration within
/// (Delta + 1) * n + 2 rounds.
std::int64_t matching_round_bound(int n, int max_degree);

/// BFS-tree revision (arXiv:1509.03815), in the Lemma 9 style: the rooted
/// 2-efficient BFS protocol reaches a silent configuration within
/// (Delta + 1) * n + 2 rounds. The distance cap n-1 flushes fake parent
/// chains within n rounds (their minimum claimed distance rises every
/// round), and the round-robin cur pointer re-examines a full
/// neighborhood every Delta rounds, so each of the at most n-1 true BFS
/// layers settles within Delta rounds. Asserted across the
/// daemon x menagerie grid in tests/test_bfs_tree_protocol.cpp.
std::int64_t bfs_tree_round_bound(int n, int max_degree);

/// Multi-root generalization (arXiv:1805.02401): Protocol SPANNING-FOREST
/// reaches a silent configuration within (Delta + 1) * n + 2 rounds
/// regardless of the number of roots. The BFS-TREE argument is
/// root-count-agnostic — the distance cap flushes fake parent chains in n
/// rounds and each true forest layer (w.r.t. the multi-source BFS) settles
/// within Delta rounds of the previous one — and more roots only shrink
/// the layer count. Asserted in tests/test_spanning_forest.cpp.
std::int64_t spanning_forest_round_bound(int n, int max_degree);

/// Same treatment for communication-efficient LEADER-ELECTION
/// (arXiv:2008.04252): electing the minimum identifier builds the BFS
/// tree of the winner after a reset wave clears inflated leader claims —
/// one extra n rounds on top of the tree bound, giving
/// (Delta + 2) * n + 2. Asserted in tests/test_leader_election_protocol.cpp.
std::int64_t leader_election_round_bound(int n, int max_degree);

/// Theorem 6: at least floor((Lmax+1)/2) processes become 1-stable under
/// Protocol MIS, where Lmax is the length of the longest elementary path.
std::int64_t mis_one_stable_lower_bound(int longest_path_len);

/// Biedl et al. [6]: every maximal matching has at least
/// ceil(m / (2*Delta - 1)) edges.
std::int64_t matching_size_lower_bound(int num_edges, int max_degree);

/// Theorem 8: at least 2 * ceil(m / (2*Delta - 1)) processes become
/// 1-stable under Protocol MATCHING.
std::int64_t matching_one_stable_lower_bound(int num_edges, int max_degree);

/// Section 3.2: bits read per step by Protocol COLORING — log2(Delta+1).
int coloring_comm_bits_efficient(int max_degree);

/// Section 3.2: bits read per step by a full-read coloring protocol —
/// delta.p * log2(Delta+1).
int coloring_comm_bits_full_read(int degree, int max_degree);

/// Section 3.2: space complexity of a COLORING process —
/// 2*log2(Delta+1) + log2(delta.p) bits.
int coloring_space_bits(int degree, int max_degree);

}  // namespace sss
