#pragma once
/// \file protocol_registry.hpp
/// Name-based protocol factory: the paper's three 1-efficient protocols,
/// the communication-efficient BFS-tree / leader-election / spanning-forest
/// protocols, their full-read baselines, and the *transformers* that wrap
/// other entries — all constructible from a (possibly nested) protocol
/// selection, the protocol half of the manifest-driven experiment lab.
///
/// Mirrors runtime/daemon.hpp's factory-by-name and
/// graph/family_registry.hpp's parameter handling. Locally-colored
/// protocols (MIS, MATCHING and their baselines) take their coloring
/// substrate as a parameter:
///
///   coloring       "greedy" (default) | "dsatur" | "random" | "identity"
///   coloring_seed  seed for the "random" scheme (default 1)
///
/// "identity" is the globally-unique-ids setting of [13]; the others are
/// proper colorings from graph/coloring.hpp. The coloring protocols take
/// `palette_size` (default 0 = Delta+1). Booleans are spelled 0/1
/// (`promote_on_higher_color` for MIS's convergence-accelerator ablation).
/// The rooted tree protocols take `root` (default 0); the forest protocols
/// take `roots` (comma-separated process ids, default "0"); the identified
/// election protocols take `id_scheme` ("identity" (default) | "reverse"
/// | "random") and `id_seed` (default 1, for the "random" scheme).
///
/// ## Composition
///
/// Entries come in three kinds:
///
///  * `kProtocol` — a runnable protocol, constructed from (graph, params);
///  * `kTransformer` — a higher-order entry whose selection carries a
///    *nested* protocol spec: `generic-efficiency` wraps any runnable
///    entry (including another transformer) into its communication-
///    efficient self-stabilizing version, `rotating-check` wraps a
///    checker source;
///  * `kCheckerSource` — a pairwise-checkable predicate/repair pair
///    (`pairwise-coloring`, `pairwise-separation`) selectable only as the
///    inner spec of `rotating-check`, never runnable on its own.
///
/// A `ProtocolSelection` is the value form of that nesting — what a
/// manifest's `{"transform": ..., "inner": {...}}` object parses into —
/// and `make(selection, graph)` / `resolve(selection)` instantiate and
/// audit a whole composition. Every entry names the ProblemRegistry
/// predicate it stabilizes to; transformers inherit the inner entry's
/// problem (unless they override it) and intersect daemon restrictions,
/// so protocol-agnostic harnesses can audit any composition without a
/// hand-kept table.
///
/// Open registry: `add` / `ProtocolRegistrar` install entries from any
/// translation unit; built-ins are installed by this module.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/protocol.hpp"
#include "support/params.hpp"

namespace sss {

class PairwiseCheckable;

/// One (possibly nested) protocol choice: an entry name, its own
/// parameters, and — when the entry is a transformer — the inner
/// selection it wraps. This is the value a manifest's protocol object
/// expands to and the unit the churn runtime captures to rebuild
/// protocols on churned topologies.
struct ProtocolSelection {
  std::string name;
  ParamMap params;
  /// Inner spec for transformer entries; null for base protocols.
  /// shared_ptr keeps the selection cheaply copyable (factories capture
  /// whole compositions by value).
  std::shared_ptr<ProtocolSelection> inner;

  /// A base (non-nested) selection.
  static ProtocolSelection base(std::string name, ParamMap params = {}) {
    return ProtocolSelection{std::move(name), std::move(params), nullptr};
  }
  /// A transformer selection wrapping `inner`.
  static ProtocolSelection wrap(std::string transform, ProtocolSelection inner,
                                ParamMap params = {}) {
    ProtocolSelection selection{std::move(transform), std::move(params),
                                std::make_shared<ProtocolSelection>(
                                    std::move(inner))};
    return selection;
  }
};

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Protocol>(const Graph&, const ParamMap&)>;
  /// Factory of a transformer entry: own parameters plus the inner
  /// selection to wrap (instantiated via the registry, so transformers
  /// compose).
  using WrapFactory = std::function<std::unique_ptr<Protocol>(
      const Graph&, const ParamMap&, const ProtocolSelection&)>;
  /// Factory of a checker-source entry (rotating-check's admissible
  /// sources).
  using CheckerFactory = std::function<std::unique_ptr<PairwiseCheckable>(
      const Graph&, const ParamMap&)>;

  struct Entry {
    enum class Kind {
      kProtocol,      ///< runnable on its own
      kTransformer,   ///< wraps an inner selection
      kCheckerSource  ///< selectable only inside rotating-check
    };

    std::string name;
    Kind kind = Kind::kProtocol;
    /// Accepted parameter names (all optional for protocols).
    std::vector<std::string> params;
    /// Canonical ProblemRegistry name of the legitimacy predicate this
    /// entry stabilizes to — the hook the registry-wide property-test
    /// harness and `sss_lab list` use to pair every protocol with its
    /// problem automatically. Empty on a transformer means "inherit the
    /// inner entry's problem".
    std::string problem;
    /// Daemon names this entry's stabilization claim assumes; empty =
    /// any registered daemon. FULL-READ-COLORING, for instance, breaks
    /// symmetry by redrawing among the colors its neighbors do not use,
    /// which can leave two synchronously-fired neighbors a single shared
    /// free color forever — its claim excludes the deterministic
    /// co-firing schedulers (synchronous, adversarial). Transformed
    /// selections intersect the transformer's and the inner entry's sets.
    std::vector<std::string> daemons;
    /// For transformers: the entry kind the inner spec must resolve to.
    /// kProtocol accepts anything runnable (base protocols and other
    /// transformer compositions); kCheckerSource accepts exactly a
    /// checker source.
    Kind wraps = Kind::kProtocol;
    Factory make;          ///< kProtocol entries
    WrapFactory wrap;      ///< kTransformer entries
    CheckerFactory checker;  ///< kCheckerSource entries

    /// Capability metadata for `sss_lab list` and the harness: does this
    /// entry take a nested runnable-protocol spec?
    bool wraps_protocol() const {
      return kind == Kind::kTransformer && wraps == Kind::kProtocol;
    }
    /// Runnable = constructible by `make(selection, graph)` when properly
    /// composed (checker sources are not).
    bool runnable() const { return kind != Kind::kCheckerSource; }
  };

  /// What a composed selection stabilizes to and under which schedulers —
  /// resolved without constructing anything, so `sss_lab validate` and
  /// the harness can audit compositions cheaply. Also validates the
  /// composition shape (unknown names/params, missing or stray inner
  /// specs, wrap-kind mismatches all throw PreconditionError).
  struct ComposedInfo {
    /// "generic-efficiency(coloring)"-style display label.
    std::string label;
    /// Canonical problem name; empty when no predicate is registered.
    std::string problem;
    /// Intersected daemon restriction; empty = any registered daemon.
    std::vector<std::string> daemons;
  };

  /// The process-wide registry, with the built-in protocols installed.
  static ProtocolRegistry& instance();

  /// Adds an entry; re-registering an existing name or registering an
  /// entry whose factory slot does not match its kind throws.
  void add(Entry entry);

  /// Instantiates a composed selection on `g`. Unknown names, unknown or
  /// ill-typed parameters, and malformed compositions (an inner spec on a
  /// base protocol, a transformer without one, a bare checker source)
  /// throw PreconditionError.
  std::unique_ptr<Protocol> make(const ProtocolSelection& selection,
                                 const Graph& g) const;

  /// Convenience for the common non-nested case.
  std::unique_ptr<Protocol> make(const std::string& protocol_name,
                                 const Graph& g,
                                 const ParamMap& params = {}) const;

  /// Instantiates a checker-source selection (rotating-check's inner).
  std::unique_ptr<PairwiseCheckable> make_checker(
      const ProtocolSelection& selection, const Graph& g) const;

  /// Validates `selection` and resolves its label / problem / daemon
  /// claim (see ComposedInfo).
  ComposedInfo resolve(const ProtocolSelection& selection) const;

  bool contains(const std::string& protocol_name) const;

  /// The full entry of `protocol_name` (params + problem + factory);
  /// throws PreconditionError on unknown names.
  const Entry& info(const std::string& protocol_name) const;

  /// Registered names in sorted order (all kinds).
  std::vector<std::string> names() const;

  /// Names of the base runnable entries only (kind kProtocol), sorted —
  /// the set constructible without an inner selection, which registry-
  /// wide grids (tests, benches) iterate.
  std::vector<std::string> protocol_names() const;

 private:
  std::vector<Entry> entries_;
};

/// Static-init helper for self-registration.
struct ProtocolRegistrar {
  explicit ProtocolRegistrar(ProtocolRegistry::Entry entry) {
    ProtocolRegistry::instance().add(std::move(entry));
  }
};

}  // namespace sss
