#pragma once
/// \file protocol_registry.hpp
/// Name-based protocol factory: the paper's three 1-efficient protocols
/// and their full-read baselines, constructible from (name, parameter map)
/// — the protocol half of the manifest-driven experiment lab.
///
/// Mirrors runtime/daemon.hpp's factory-by-name and
/// graph/family_registry.hpp's parameter handling. Locally-colored
/// protocols (MIS, MATCHING and their baselines) take their coloring
/// substrate as a parameter:
///
///   coloring       "greedy" (default) | "dsatur" | "random" | "identity"
///   coloring_seed  seed for the "random" scheme (default 1)
///
/// "identity" is the globally-unique-ids setting of [13]; the others are
/// proper colorings from graph/coloring.hpp. The coloring protocols take
/// `palette_size` (default 0 = Delta+1). Booleans are spelled 0/1
/// (`promote_on_higher_color` for MIS's convergence-accelerator ablation).
///
/// Open registry: `register_protocol` / `ProtocolRegistrar` add entries
/// from any translation unit; built-ins are installed by this module.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/protocol.hpp"
#include "support/params.hpp"

namespace sss {

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Protocol>(const Graph&, const ParamMap&)>;

  struct Entry {
    std::string name;
    /// Accepted parameter names (all optional for protocols).
    std::vector<std::string> params;
    Factory make;
  };

  /// The process-wide registry, with the built-in protocols installed.
  static ProtocolRegistry& instance();

  /// Adds a protocol; re-registering an existing name throws.
  void register_protocol(std::string name, std::vector<std::string> params,
                         Factory make);

  /// Instantiates `protocol_name` on `g`. Unknown names and unknown or
  /// ill-typed parameters throw PreconditionError.
  std::unique_ptr<Protocol> make(const std::string& protocol_name,
                                 const Graph& g,
                                 const ParamMap& params = {}) const;

  bool contains(const std::string& protocol_name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

 private:
  const Entry& entry(const std::string& protocol_name) const;

  std::vector<Entry> entries_;
};

/// Static-init helper for self-registration.
struct ProtocolRegistrar {
  ProtocolRegistrar(std::string name, std::vector<std::string> params,
                    ProtocolRegistry::Factory make) {
    ProtocolRegistry::instance().register_protocol(
        std::move(name), std::move(params), std::move(make));
  }
};

}  // namespace sss
