#pragma once
/// \file protocol_registry.hpp
/// Name-based protocol factory: the paper's three 1-efficient protocols,
/// the communication-efficient BFS-tree and leader-election protocols,
/// and their full-read baselines, constructible from (name, parameter
/// map) — the protocol half of the manifest-driven experiment lab.
///
/// Mirrors runtime/daemon.hpp's factory-by-name and
/// graph/family_registry.hpp's parameter handling. Locally-colored
/// protocols (MIS, MATCHING and their baselines) take their coloring
/// substrate as a parameter:
///
///   coloring       "greedy" (default) | "dsatur" | "random" | "identity"
///   coloring_seed  seed for the "random" scheme (default 1)
///
/// "identity" is the globally-unique-ids setting of [13]; the others are
/// proper colorings from graph/coloring.hpp. The coloring protocols take
/// `palette_size` (default 0 = Delta+1). Booleans are spelled 0/1
/// (`promote_on_higher_color` for MIS's convergence-accelerator ablation).
/// The rooted tree protocols take `root` (default 0); the identified
/// election protocols take `id_scheme` ("identity" (default) | "reverse"
/// | "random") and `id_seed` (default 1, for the "random" scheme).
///
/// Every entry names the ProblemRegistry predicate it stabilizes to, so
/// protocol-agnostic harnesses can audit any entry without a hand-kept
/// protocol -> problem table.
///
/// Open registry: `register_protocol` / `ProtocolRegistrar` add entries
/// from any translation unit; built-ins are installed by this module.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/protocol.hpp"
#include "support/params.hpp"

namespace sss {

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Protocol>(const Graph&, const ParamMap&)>;

  struct Entry {
    std::string name;
    /// Accepted parameter names (all optional for protocols).
    std::vector<std::string> params;
    /// Canonical ProblemRegistry name of the legitimacy predicate this
    /// protocol stabilizes to — the hook the registry-wide property-test
    /// harness and `sss_lab list` use to pair every protocol with its
    /// problem automatically.
    std::string problem;
    /// Daemon names this protocol's stabilization claim assumes; empty =
    /// any registered daemon. FULL-READ-COLORING, for instance, breaks
    /// symmetry by redrawing among the colors its neighbors do not use,
    /// which can leave two synchronously-fired neighbors a single shared
    /// free color forever — its claim excludes the deterministic
    /// co-firing schedulers (synchronous, adversarial).
    std::vector<std::string> daemons;
    Factory make;
  };

  /// The process-wide registry, with the built-in protocols installed.
  static ProtocolRegistry& instance();

  /// Adds a protocol; re-registering an existing name throws. `problem`
  /// names the entry's legitimacy predicate in the ProblemRegistry;
  /// `daemons` optionally restricts the stabilization claim (see Entry).
  void register_protocol(std::string name, std::vector<std::string> params,
                         std::string problem, Factory make,
                         std::vector<std::string> daemons = {});

  /// Instantiates `protocol_name` on `g`. Unknown names and unknown or
  /// ill-typed parameters throw PreconditionError.
  std::unique_ptr<Protocol> make(const std::string& protocol_name,
                                 const Graph& g,
                                 const ParamMap& params = {}) const;

  bool contains(const std::string& protocol_name) const;

  /// The full entry of `protocol_name` (params + problem + factory);
  /// throws PreconditionError on unknown names.
  const Entry& info(const std::string& protocol_name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

 private:
  std::vector<Entry> entries_;
};

/// Static-init helper for self-registration.
struct ProtocolRegistrar {
  ProtocolRegistrar(std::string name, std::vector<std::string> params,
                    std::string problem, ProtocolRegistry::Factory make,
                    std::vector<std::string> daemons = {}) {
    ProtocolRegistry::instance().register_protocol(
        std::move(name), std::move(params), std::move(problem),
        std::move(make), std::move(daemons));
  }
};

}  // namespace sss
