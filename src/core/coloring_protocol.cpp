#include "core/coloring_protocol.hpp"

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kConflict = 0;  // first action of Figure 7
constexpr int kAdvance = 1;   // second action of Figure 7
}  // namespace

ColoringProtocol::ColoringProtocol(const Graph& g, int palette_size)
    : palette_size_(palette_size == 0 ? g.max_degree() + 1 : palette_size) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "COLORING requires a connected network with n >= 2");
  SSS_REQUIRE(palette_size_ >= g.max_degree() + 1,
              "COLORING needs at least Delta+1 colors (Figure 7)");
  spec_.comm.emplace_back(
      "C", VarDomain{1, static_cast<Value>(palette_size_)});
  spec_.internal.emplace_back("cur", domain_channel());
}

int ColoringProtocol::first_enabled(GuardContext& ctx) const {
  const Value own = ctx.self_comm(kColorVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  const Value checked = ctx.nbr_comm(cur, kColorVar);
  // Exactly one of the two guards holds, so the process is always enabled.
  return own == checked ? kConflict : kAdvance;
}

void ColoringProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  switch (action) {
    case kConflict:
      ctx.set_comm(kColorVar,
                   ctx.random_range(1, static_cast<Value>(palette_size_)));
      ctx.set_internal(kCurVar, next);
      break;
    case kAdvance:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "COLORING has exactly two actions");
  }
}

}  // namespace sss
