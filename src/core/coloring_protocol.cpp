#include "core/coloring_protocol.hpp"

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kConflict = 0;  // first action of Figure 7
constexpr int kAdvance = 1;   // second action of Figure 7
}  // namespace

ColoringProtocol::ColoringProtocol(const Graph& g, int palette_size)
    : palette_size_(palette_size == 0 ? g.max_degree() + 1 : palette_size) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "COLORING requires a connected network with n >= 2");
  SSS_REQUIRE(palette_size_ >= g.max_degree() + 1,
              "COLORING needs at least Delta+1 colors (Figure 7)");
  spec_.comm.emplace_back(
      "C", VarDomain{1, static_cast<Value>(palette_size_)});
  spec_.internal.emplace_back("cur", domain_channel());
}

int ColoringProtocol::first_enabled(GuardContext& ctx) const {
  const Value own = ctx.self_comm(kColorVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  const Value checked = ctx.nbr_comm(cur, kColorVar);
  // Exactly one of the two guards holds, so the process is always enabled.
  return own == checked ? kConflict : kAdvance;
}

void ColoringProtocol::sweep_enabled_range(BulkGuardContext& ctx,
                                           EnabledBitmap& out, ProcessId begin,
                                           ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot =
      static_cast<std::size_t>(cfg.num_comm() + kCurVar);  // internal cur
  std::int8_t* actions = out.actions();
  // One gather per process (the cur neighbor's color), one compare: the
  // whole guard is a select between the two always-enabled actions.
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const auto cur = static_cast<std::int32_t>(row[cur_slot]);
    const ProcessId q =
        neighbors[static_cast<std::size_t>(offsets[p] + cur - 1)];
    const Value checked =
        data[static_cast<std::size_t>(q) * stride + kColorVar];
    actions[p] = static_cast<std::int8_t>(
        row[kColorVar] == checked ? kConflict : kAdvance);
    ctx.log(p, q, kColorVar);
  }
}

void ColoringProtocol::execute_selected(BulkExecContext& ctx,
                                        const EnabledBitmap& enabled,
                                        std::span<const ProcessId> selection,
                                        std::size_t begin,
                                        std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot = static_cast<std::size_t>(cfg.num_comm() + kCurVar);
  // No action-phase neighbor reads: both actions only advance cur (and
  // kConflict redraws the own color — serial-path model rng, ascending
  // order matching the scalar draw sequence).
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const auto degree = static_cast<Value>(offsets[p + 1] - offsets[p]);
    const Value next = (row[cur_slot] % degree) + 1;
    Value* out = ctx.stage(i, p);
    if (action == kConflict) {
      out[kColorVar] = ctx.random_range(1, static_cast<Value>(palette_size_));
    }
    out[cur_slot] = next;
  }
}

void ColoringProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  switch (action) {
    case kConflict:
      ctx.set_comm(kColorVar,
                   ctx.random_range(1, static_cast<Value>(palette_size_)));
      ctx.set_internal(kCurVar, next);
      break;
    case kAdvance:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "COLORING has exactly two actions");
  }
}

}  // namespace sss
