#include "core/matching_protocol.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
// Action indices, in the priority order of Figure 10.
constexpr int kRepoint = 0;   // A1
constexpr int kAnnounce = 1;  // A2
constexpr int kAccept = 2;    // A3
constexpr int kAbandon = 3;   // A4
constexpr int kPropose = 4;   // A5
constexpr int kAdvance = 5;   // A6

constexpr Value kFalse = 0;
constexpr Value kTrue = 1;
}  // namespace

MatchingProtocol::MatchingProtocol(const Graph& g, Coloring colors)
    : colors_(std::move(colors)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "MATCHING requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "MATCHING requires a proper local coloring");
  const Value max_color = *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("M", VarDomain{kFalse, kTrue});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
  spec_.internal.emplace_back("cur", domain_channel());
}

void MatchingProtocol::install_constants(const Graph& g,
                                         Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

bool MatchingProtocol::pr_married(const GuardContext& ctx) {
  const Value pr = ctx.self_comm(kPrVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  if (pr != static_cast<Value>(cur)) return false;
  // PR.(cur.p) = p: the neighbor's pointer names the channel through which
  // it sees this process.
  const Value nbr_pr = ctx.nbr_comm(cur, kPrVar);
  return nbr_pr == static_cast<Value>(ctx.self_index_at(cur));
}

int MatchingProtocol::first_enabled(GuardContext& ctx) const {
  // Guards evaluate lazily: neighbor variables are read only when the
  // preceding conjuncts leave a guard undecided (a married process, for
  // instance, settles everything after reading only PR.(cur.p)). The
  // fired action never changes; only the measured bit traffic does.
  const Value pr = ctx.self_comm(kPrVar);
  const Value married = ctx.self_comm(kMarriedVar);
  const Value own_color = ctx.self_comm(kColorVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  const Value cur_value = static_cast<Value>(cur);

  // A1: the pointer is stale (neither free nor the checked neighbor).
  if (pr != 0 && pr != cur_value) return kRepoint;

  // From here pr is 0 or cur_value. PR.(cur.p) decides both the marriage
  // predicate and most remaining guards.
  const Value nbr_pr = ctx.nbr_comm(cur, kPrVar);
  const Value back_channel = static_cast<Value>(ctx.self_index_at(cur));
  const bool is_married = pr == cur_value && nbr_pr == back_channel;

  // A2: the marriage announcement is out of date.
  if ((married == kTrue) != is_married) return kAnnounce;

  if (pr == 0) {
    // A3: a free process accepts a proposal from the checked neighbor.
    if (nbr_pr == back_channel) return kAccept;
    // A5/A6: the neighbor's pointer state picks the cheap path first.
    if (nbr_pr != 0) return kAdvance;  // A6 first disjunct
    if (ctx.nbr_comm(cur, kColorVar) < own_color) return kAdvance;
    if (ctx.nbr_comm(cur, kMarriedVar) == kTrue) return kAdvance;
    // nbr free, unmarried, higher-colored: propose (A5).
    return kPropose;
  }

  // pr == cur_value and not married (A2 handled the married case).
  if (!is_married) {
    // A4: give up on a neighbor married elsewhere or lower-colored.
    if (ctx.nbr_comm(cur, kMarriedVar) == kTrue ||
        ctx.nbr_comm(cur, kColorVar) < own_color) {
      return kAbandon;
    }
  }

  return kDisabled;
}

void MatchingProtocol::sweep_enabled_range(BulkGuardContext& ctx,
                                           EnabledBitmap& out, ProcessId begin,
                                           ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const NbrIndex* mirrors = g.csr_mirrors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot =
      static_cast<std::size_t>(cfg.num_comm() + kCurVar);  // internal cur
  std::int8_t* actions = out.actions();
  // The scalar guard transcribed onto the slabs; every lazily-skipped
  // neighbor read stays skipped so the logged sequence is identical.
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value pr = row[kPrVar];
    const auto cur = static_cast<std::int32_t>(row[cur_slot]);
    const auto cur_value = static_cast<Value>(cur);

    if (pr != 0 && pr != cur_value) {  // A1, settled on own state alone
      actions[p] = static_cast<std::int8_t>(kRepoint);
      continue;
    }

    const std::size_t slot = static_cast<std::size_t>(offsets[p] + cur - 1);
    const ProcessId q = neighbors[slot];
    const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
    const Value nbr_pr = nbr_row[kPrVar];
    ctx.log(p, q, kPrVar);
    const auto back_channel = static_cast<Value>(mirrors[slot]);
    const bool is_married = pr == cur_value && nbr_pr == back_channel;

    if ((row[kMarriedVar] == kTrue) != is_married) {  // A2
      actions[p] = static_cast<std::int8_t>(kAnnounce);
      continue;
    }

    if (pr == 0) {
      if (nbr_pr == back_channel) {  // A3
        actions[p] = static_cast<std::int8_t>(kAccept);
        continue;
      }
      if (nbr_pr != 0) {  // A6 first disjunct
        actions[p] = static_cast<std::int8_t>(kAdvance);
        continue;
      }
      ctx.log(p, q, kColorVar);
      if (nbr_row[kColorVar] < row[kColorVar]) {
        actions[p] = static_cast<std::int8_t>(kAdvance);
        continue;
      }
      ctx.log(p, q, kMarriedVar);
      actions[p] = static_cast<std::int8_t>(
          nbr_row[kMarriedVar] == kTrue ? kAdvance : kPropose);
      continue;
    }

    if (!is_married) {  // A4: pr == cur and the proposal went nowhere
      ctx.log(p, q, kMarriedVar);
      if (nbr_row[kMarriedVar] == kTrue) {
        actions[p] = static_cast<std::int8_t>(kAbandon);
        continue;
      }
      ctx.log(p, q, kColorVar);
      if (nbr_row[kColorVar] < row[kColorVar]) {
        actions[p] = static_cast<std::int8_t>(kAbandon);
      }
    }
  }
}

void MatchingProtocol::execute_selected(BulkExecContext& ctx,
                                        const EnabledBitmap& enabled,
                                        std::span<const ProcessId> selection,
                                        std::size_t begin,
                                        std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const NbrIndex* mirrors = g.csr_mirrors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot = static_cast<std::size_t>(cfg.num_comm() + kCurVar);
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const auto cur = static_cast<std::int32_t>(row[cur_slot]);
    const auto cur_value = static_cast<Value>(cur);
    Value* out = ctx.stage(i, p);
    switch (action) {
      case kRepoint:
      case kAccept:
      case kPropose:
        out[kPrVar] = cur_value;
        break;
      case kAnnounce: {
        // pr_married re-reads PR.(cur.p) at execute time — logged, like
        // the scalar nbr_comm — but only when the own pointer matches cur
        // (the short-circuit settles the predicate on own state alone).
        bool married = false;
        if (row[kPrVar] == cur_value) {
          const std::size_t slot =
              static_cast<std::size_t>(offsets[p] + cur - 1);
          const ProcessId q = neighbors[slot];
          const Value nbr_pr =
              data[static_cast<std::size_t>(q) * stride + kPrVar];
          ctx.log(p, q, kPrVar);
          married = nbr_pr == static_cast<Value>(mirrors[slot]);
        }
        out[kMarriedVar] = married ? kTrue : kFalse;
        break;
      }
      case kAbandon:
        out[kPrVar] = 0;
        break;
      default: {  // kAdvance
        const auto degree = static_cast<Value>(offsets[p + 1] - offsets[p]);
        out[cur_slot] = (cur_value % degree) + 1;
        break;
      }
    }
  }
}

void MatchingProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  switch (action) {
    case kRepoint:
      ctx.set_comm(kPrVar, cur);
      break;
    case kAnnounce:
      ctx.set_comm(kMarriedVar, pr_married(ctx) ? kTrue : kFalse);
      break;
    case kAccept:
      ctx.set_comm(kPrVar, cur);
      break;
    case kAbandon:
      ctx.set_comm(kPrVar, 0);
      break;
    case kPropose:
      ctx.set_comm(kPrVar, cur);
      break;
    case kAdvance:
      ctx.set_internal(kCurVar,
                       (cur % static_cast<Value>(ctx.degree())) + 1);
      break;
    default:
      SSS_ASSERT(false, "MATCHING has exactly six actions");
  }
}

}  // namespace sss
