#pragma once
/// \file coloring_protocol.hpp
/// Protocol COLORING (Figure 7) — probabilistic self-stabilizing vertex
/// coloring for arbitrary *anonymous* networks, 1-efficient.
///
///   Communication variable:  C.p in {1 .. Delta+1}
///   Internal variable:       cur.p in [1 .. delta.p]
///   Actions (priority order):
///     (C.p  = C.(cur.p)) -> C.p <- random({1..Delta+1});
///                           cur.p <- (cur.p mod delta.p) + 1
///     (C.p != C.(cur.p)) -> cur.p <- (cur.p mod delta.p) + 1
///
/// Each process checks one neighbor per step, round-robin via cur; on a
/// conflict it redraws its color uniformly. Stabilizes to a proper coloring
/// with probability 1 (Theorem 3) and communicates log2(Delta+1) bits per
/// step instead of the Delta*log2(Delta+1) a full-read protocol needs
/// (Section 3.2).

#include <string>

#include "runtime/protocol.hpp"

namespace sss {

class ColoringProtocol final : public Protocol {
 public:
  /// Variable indices, public for predicates/tests.
  static constexpr int kColorVar = 0;  ///< comm
  static constexpr int kCurVar = 0;    ///< internal

  /// `palette_size` defaults to Delta+1, the minimum that works on every
  /// graph of maximum degree Delta (a Delta-clique needs them all).
  /// Requires palette_size >= Delta+1 and a network with n >= 2.
  explicit ColoringProtocol(const Graph& g, int palette_size = 0);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  bool is_probabilistic() const override { return true; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  int palette_size() const { return palette_size_; }

 private:
  std::string name_ = "COLORING";
  int palette_size_;
  ProtocolSpec spec_;
};

}  // namespace sss
