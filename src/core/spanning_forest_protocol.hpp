#pragma once
/// \file spanning_forest_protocol.hpp
/// Protocol SPANNING-FOREST — deterministic silent self-stabilizing BFS
/// spanning *forest* construction, generalizing Protocol BFS-TREE to a set
/// of roots after the acyclic strategy for silent spanning forests
/// (arXiv:1805.02401). Each process converges to the distance of its
/// nearest root and a parent pointer one level closer to it, so the parent
/// edges form a forest of BFS trees, one per root, partitioning the
/// network into the roots' Voronoi cells.
///
///   Communication variables:  D.p  in {0 .. n-1}   (claimed distance)
///                             PR.p in {0 .. delta.p} (parent channel,
///                                                     0 = none)
///   Communication constant:   R.p  in {0, 1}       (1 iff p is a root)
///   Internal variable:        cur.p in [1 .. delta.p]
///   Actions (priority order; cap(x) = min(x, n-1)):
///     A1 fix-root:  R.p ∧ (D.p ≠ 0 ∨ PR.p ≠ 0)
///                      -> D.p <- 0; PR.p <- 0
///     A2 follow:    ¬R.p ∧ PR.p ≠ 0 ∧ D.p ≠ cap(D.(PR.p) + 1)
///                      -> D.p <- cap(D.(PR.p) + 1)
///     A3 adopt:     ¬R.p ∧ PR.p = 0
///                      -> PR.p <- cur.p; D.p <- cap(D.(cur.p) + 1);
///                         cur.p <- (cur.p mod delta.p) + 1
///     A4 improve:   ¬R.p ∧ PR.p ≠ 0 ∧ D.(cur.p) + 1 < D.p
///                      -> PR.p <- cur.p; D.p <- D.(cur.p) + 1;
///                         cur.p <- (cur.p mod delta.p) + 1
///     A5 scan:      ¬R.p -> cur.p <- (cur.p mod delta.p) + 1
///
/// The convergence argument of BFS-TREE (see bfs_tree_protocol.hpp) is
/// root-count-agnostic: A2 glues a child to its parent so fake too-small
/// distances chase each other up to the n-1 cap, and a parent chain that
/// is everywhere A2-consistent below the cap is a real path to *some*
/// root — never shorter than the multi-source BFS distance — which A4
/// then attains as every root's 0 spreads. Guard evaluation reads at most
/// the parent (A2) and the cur neighbor (A3/A4): k = 2, independent of
/// the degree and of the number of roots.

#include <string>
#include <vector>

#include "runtime/protocol.hpp"

namespace sss {

class SpanningForestProtocol final : public Protocol {
 public:
  /// Variable indices, public for predicates/tests (shared layout with
  /// BfsTreeProtocol, which is the one-root special case).
  static constexpr int kDistVar = 0;    ///< comm: D
  static constexpr int kParentVar = 1;  ///< comm: PR
  static constexpr int kRootVar = 2;    ///< comm constant: R
  static constexpr int kCurVar = 0;     ///< internal: cur

  /// Requires a connected network with n >= 2 and a non-empty set of
  /// distinct in-range roots.
  SpanningForestProtocol(const Graph& g, std::vector<ProcessId> roots);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 5; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const std::vector<ProcessId>& roots() const { return roots_; }
  /// The distance cap n-1, which is what flushes fake parent cycles.
  Value max_distance() const { return max_distance_; }

 private:
  std::string name_ = "SPANNING-FOREST";
  std::vector<ProcessId> roots_;
  Value max_distance_;
  ProtocolSpec spec_;
};

}  // namespace sss
