#include "core/stability.hpp"

#include "support/require.hpp"

namespace sss {

int StabilityReport::count_at_most(int k) const {
  int count = 0;
  for (int size : suffix_read_set_sizes) {
    if (size <= k) ++count;
  }
  return count;
}

StabilityReport analyze_stability(Engine& engine, const RunOptions& options,
                                  int window_factor) {
  SSS_REQUIRE(window_factor >= 1, "window factor must be positive");
  StabilityReport report;

  RunStats stats = engine.run(options);
  report.silent = stats.silent;
  report.steps_to_silence = stats.steps_to_silence;
  report.rounds_to_silence = stats.rounds_to_silence;
  if (!stats.silent) return report;

  const auto n = static_cast<std::uint64_t>(engine.graph().num_vertices());
  const auto delta = static_cast<std::uint64_t>(engine.graph().max_degree());
  const std::uint64_t window =
      static_cast<std::uint64_t>(window_factor) * n * (delta + 2);

  StabilityTracker tracker(engine.graph());
  engine.attach_read_logger(&tracker);
  for (std::uint64_t i = 0; i < window; ++i) {
    engine.step();
  }
  engine.detach_read_logger(&tracker);

  report.window_steps = window;
  report.suffix_read_set_sizes = tracker.read_set_sizes();
  report.one_stable_count = tracker.count_at_most(1);
  return report;
}

}  // namespace sss
