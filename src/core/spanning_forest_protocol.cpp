#include "core/spanning_forest_protocol.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kFixRoot = 0;  // A1
constexpr int kFollow = 1;   // A2
constexpr int kAdopt = 2;    // A3
constexpr int kImprove = 3;  // A4
constexpr int kScan = 4;     // A5
}  // namespace

SpanningForestProtocol::SpanningForestProtocol(const Graph& g,
                                               std::vector<ProcessId> roots)
    : roots_(std::move(roots)),
      max_distance_(static_cast<Value>(g.num_vertices() - 1)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "SPANNING-FOREST requires a connected network with n >= 2");
  SSS_REQUIRE(!roots_.empty(), "SPANNING-FOREST needs at least one root");
  std::sort(roots_.begin(), roots_.end());
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    SSS_REQUIRE(roots_[i] >= 0 && roots_[i] < g.num_vertices(),
                "SPANNING-FOREST roots must be process ids in [0, n)");
    SSS_REQUIRE(i == 0 || roots_[i] != roots_[i - 1],
                "SPANNING-FOREST roots must be distinct");
  }
  spec_.comm.emplace_back("D", VarDomain{0, max_distance_});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("R", VarDomain{0, 1}, /*is_constant=*/true);
  spec_.internal.emplace_back("cur", domain_channel());
}

void SpanningForestProtocol::install_constants(const Graph& g,
                                               Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kRootVar, 0);
  }
  for (const ProcessId root : roots_) config.set_comm(root, kRootVar, 1);
}

int SpanningForestProtocol::first_enabled(GuardContext& ctx) const {
  const Value dist = ctx.self_comm(kDistVar);
  const Value parent = ctx.self_comm(kParentVar);
  if (ctx.self_comm(kRootVar) == 1) {
    return (dist != 0 || parent != 0) ? kFixRoot : kDisabled;
  }
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  if (parent == 0) return kAdopt;
  // Neighbor reads are lazy: the parent settles A2 before the cur
  // neighbor is fetched for A4, so an evaluation costs at most two
  // distinct neighbor reads (the protocol's k = 2 certificate).
  const Value via_parent = std::min<Value>(
      ctx.nbr_comm(static_cast<NbrIndex>(parent), kDistVar) + 1,
      max_distance_);
  if (dist != via_parent) return kFollow;
  if (ctx.nbr_comm(cur, kDistVar) + 1 < dist) return kImprove;
  return kScan;
}

void SpanningForestProtocol::sweep_enabled_range(BulkGuardContext& ctx,
                                                 EnabledBitmap& out,
                                                 ProcessId begin,
                                                 ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot =
      static_cast<std::size_t>(cfg.num_comm() + kCurVar);  // internal cur
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value dist = row[kDistVar];
    const Value parent = row[kParentVar];
    if (row[kRootVar] == 1) {
      actions[p] = static_cast<std::int8_t>(
          (dist != 0 || parent != 0) ? kFixRoot : kDisabled);
      continue;
    }
    if (parent == 0) {
      actions[p] = static_cast<std::int8_t>(kAdopt);
      continue;
    }
    // The parent read settles A2 before the cur neighbor is fetched for
    // A4 — the k = 2 lazy pattern of the scalar guard.
    const std::int32_t base = offsets[p];
    const ProcessId parent_nbr = neighbors[static_cast<std::size_t>(
        base + static_cast<std::int32_t>(parent) - 1)];
    const Value parent_dist =
        data[static_cast<std::size_t>(parent_nbr) * stride + kDistVar];
    ctx.log(p, parent_nbr, kDistVar);
    const Value via_parent = std::min<Value>(parent_dist + 1, max_distance_);
    if (dist != via_parent) {
      actions[p] = static_cast<std::int8_t>(kFollow);
      continue;
    }
    const ProcessId cur_nbr = neighbors[static_cast<std::size_t>(
        base + static_cast<std::int32_t>(row[cur_slot]) - 1)];
    const Value cur_dist =
        data[static_cast<std::size_t>(cur_nbr) * stride + kDistVar];
    ctx.log(p, cur_nbr, kDistVar);
    actions[p] =
        static_cast<std::int8_t>(cur_dist + 1 < dist ? kImprove : kScan);
  }
}

void SpanningForestProtocol::execute_selected(
    BulkExecContext& ctx, const EnabledBitmap& enabled,
    std::span<const ProcessId> selection, std::size_t begin,
    std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  const auto cur_slot = static_cast<std::size_t>(cfg.num_comm() + kCurVar);
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const std::int32_t base = offsets[p];
    const Value cur = row[cur_slot];
    const auto degree = static_cast<Value>(offsets[p + 1] - base);
    const Value next = (cur % degree) + 1;
    Value* out = ctx.stage(i, p);
    switch (action) {
      case kFixRoot:
        out[kDistVar] = 0;
        out[kParentVar] = 0;
        break;
      case kFollow: {
        // Re-reads the parent's distance at execute time, like the scalar
        // nbr_comm (logged).
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(row[kParentVar]) - 1)];
        const Value d = data[static_cast<std::size_t>(q) * stride + kDistVar];
        ctx.log(p, q, kDistVar);
        out[kDistVar] = std::min<Value>(d + 1, max_distance_);
        break;
      }
      case kAdopt:
      case kImprove: {
        const ProcessId q = neighbors[static_cast<std::size_t>(
            base + static_cast<std::int32_t>(cur) - 1)];
        const Value d = data[static_cast<std::size_t>(q) * stride + kDistVar];
        ctx.log(p, q, kDistVar);
        out[kParentVar] = cur;
        // A3 clamps the adopted distance; A4 fires only when the improved
        // value is already in range, so the scalar action leaves it raw.
        out[kDistVar] =
            action == kAdopt ? std::min<Value>(d + 1, max_distance_) : d + 1;
        out[cur_slot] = next;
        break;
      }
      default:  // kScan
        out[cur_slot] = next;
        break;
    }
  }
}

void SpanningForestProtocol::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  switch (action) {
    case kFixRoot:
      ctx.set_comm(kDistVar, 0);
      ctx.set_comm(kParentVar, 0);
      break;
    case kFollow: {
      const auto parent =
          static_cast<NbrIndex>(ctx.self_comm(kParentVar));
      ctx.set_comm(kDistVar,
                   std::min<Value>(ctx.nbr_comm(parent, kDistVar) + 1,
                                   max_distance_));
      break;
    }
    case kAdopt:
      ctx.set_comm(kParentVar, cur);
      ctx.set_comm(
          kDistVar,
          std::min<Value>(
              ctx.nbr_comm(static_cast<NbrIndex>(cur), kDistVar) + 1,
              max_distance_));
      ctx.set_internal(kCurVar, next);
      break;
    case kImprove:
      ctx.set_comm(kParentVar, cur);
      ctx.set_comm(kDistVar,
                   ctx.nbr_comm(static_cast<NbrIndex>(cur), kDistVar) + 1);
      ctx.set_internal(kCurVar, next);
      break;
    case kScan:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "SPANNING-FOREST has exactly five actions");
  }
}

}  // namespace sss
