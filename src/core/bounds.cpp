#include "core/bounds.hpp"

#include "support/require.hpp"

namespace sss {

int coloring_palette_size(int max_degree) {
  SSS_REQUIRE(max_degree >= 1, "max degree must be positive");
  return max_degree + 1;
}

std::int64_t mis_round_bound(int max_degree, int num_colors) {
  SSS_REQUIRE(max_degree >= 1 && num_colors >= 1, "invalid parameters");
  return static_cast<std::int64_t>(max_degree) * num_colors;
}

std::int64_t matching_round_bound(int n, int max_degree) {
  SSS_REQUIRE(n >= 2 && max_degree >= 1, "invalid parameters");
  return (static_cast<std::int64_t>(max_degree) + 1) * n + 2;
}

std::int64_t bfs_tree_round_bound(int n, int max_degree) {
  SSS_REQUIRE(n >= 2 && max_degree >= 1, "invalid parameters");
  return (static_cast<std::int64_t>(max_degree) + 1) * n + 2;
}

std::int64_t spanning_forest_round_bound(int n, int max_degree) {
  SSS_REQUIRE(n >= 2 && max_degree >= 1, "invalid parameters");
  return (static_cast<std::int64_t>(max_degree) + 1) * n + 2;
}

std::int64_t leader_election_round_bound(int n, int max_degree) {
  SSS_REQUIRE(n >= 2 && max_degree >= 1, "invalid parameters");
  return (static_cast<std::int64_t>(max_degree) + 2) * n + 2;
}

std::int64_t mis_one_stable_lower_bound(int longest_path_len) {
  SSS_REQUIRE(longest_path_len >= 0, "invalid path length");
  return (static_cast<std::int64_t>(longest_path_len) + 1) / 2;
}

std::int64_t matching_size_lower_bound(int num_edges, int max_degree) {
  SSS_REQUIRE(num_edges >= 1 && max_degree >= 1, "invalid parameters");
  return ceil_div(num_edges, 2 * static_cast<std::int64_t>(max_degree) - 1);
}

std::int64_t matching_one_stable_lower_bound(int num_edges, int max_degree) {
  return 2 * matching_size_lower_bound(num_edges, max_degree);
}

int coloring_comm_bits_efficient(int max_degree) {
  return ceil_log2(max_degree + 1);
}

int coloring_comm_bits_full_read(int degree, int max_degree) {
  SSS_REQUIRE(degree >= 0, "invalid degree");
  return degree * ceil_log2(max_degree + 1);
}

int coloring_space_bits(int degree, int max_degree) {
  SSS_REQUIRE(degree >= 1, "invalid degree");
  return 2 * ceil_log2(max_degree + 1) + ceil_log2(degree);
}

}  // namespace sss
