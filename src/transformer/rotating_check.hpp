#pragma once
/// \file rotating_check.hpp
/// A prototype of the transformer the paper leaves open (Section 6):
///
///   "the possibility of designing an efficient general transformer for
///    protocols matching the local checking paradigm remains an open
///    question. This transformer would allow to easily get more efficient
///    communication in the stabilized phase ..."
///
/// This module provides such a transformer for the *universally pairwise
/// checkable* fragment of local checking: predicates of the form
/// "for every edge {p,q}, ok(state_p, state_q)". For those, checking can
/// rotate: each process audits one neighbor per step via a cur pointer
/// (1-efficient in every step, exactly like Fig 7) and invokes the source
/// protocol's repair action — which may read the whole neighborhood —
/// only when the audited pair is inconsistent. In the stabilized phase no
/// pair is inconsistent, so every process pays one neighbor per step
/// forever.
///
/// The fragment boundary is the interesting part, and it is the paper's
/// point: MIS-style predicates need an *existential* witness ("some
/// neighbor dominates me"), which a memoryless rotation cannot certify —
/// Fig 8 solves it by *pinning* the cur pointer on the witness. That
/// pinning is problem-specific, which is precisely why the general
/// transformer is open.

#include <memory>
#include <string>

#include "runtime/protocol.hpp"

namespace sss {

/// A source protocol admissible for the rotating-check transformation.
class PairwiseCheckable {
 public:
  virtual ~PairwiseCheckable() = default;

  /// Communication variables of the source protocol (the transformer adds
  /// its own internal cur pointer on top).
  virtual const ProtocolSpec& base_spec() const = 0;

  /// True if the edge to the neighbor on `channel` is locally
  /// inconsistent, reading only that neighbor. Must be symmetric up to
  /// repair: if a pair is inconsistent, at least one endpoint must see it.
  virtual bool pair_suspicious(const GuardContext& ctx,
                               NbrIndex channel) const = 0;

  /// Repair after a suspicion; may read the entire neighborhood and must
  /// write at least one communication variable in a way that resolves the
  /// suspicion with positive probability.
  virtual void repair(ActionContext& ctx) const = 0;

  virtual const std::string& name() const = 0;
  virtual bool is_probabilistic() const { return true; }
};

/// The transformed protocol: 1-efficient audit, full-width repair.
///
///   action 0 (audit fails):  repair(); cur <- (cur mod delta) + 1
///   action 1 (audit passes): cur <- (cur mod delta) + 1
class RotatingCheck final : public Protocol {
 public:
  static constexpr int kCurVar = 0;  ///< internal

  /// Keeps a reference to `source`; it must outlive the transformer.
  /// This ad-hoc construction path is deprecated in favor of the
  /// registry's composable "rotating-check" transformer entry (select a
  /// checker source as its inner spec); it remains as a compat shim for
  /// callers that own their source separately.
  RotatingCheck(const Graph& g, const PairwiseCheckable& source);

  /// Owning variant: the registry's "rotating-check" entry wraps checker
  /// sources it constructs itself.
  RotatingCheck(const Graph& g, std::unique_ptr<PairwiseCheckable> source);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  bool is_probabilistic() const override {
    return source_.is_probabilistic();
  }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;

 private:
  /// Set only by the owning constructor; `source_` points at it then.
  std::unique_ptr<PairwiseCheckable> owned_;
  const PairwiseCheckable& source_;
  std::string name_;
  ProtocolSpec spec_;
};

/// Instance 1: proper vertex coloring. Suspicious = same color; repair =
/// redraw uniformly among the colors no neighbor uses (a full-read
/// Gradinariu-Tixeuil step). RotatingCheck over this instance behaves
/// like Fig 7 with a smarter (but wider) repair.
class PairwiseColoring final : public PairwiseCheckable {
 public:
  static constexpr int kColorVar = 0;

  explicit PairwiseColoring(const Graph& g, int palette_size = 0);

  const ProtocolSpec& base_spec() const override { return spec_; }
  bool pair_suspicious(const GuardContext& ctx,
                       NbrIndex channel) const override;
  void repair(ActionContext& ctx) const override;
  const std::string& name() const override { return name_; }

  int palette_size() const { return palette_size_; }

 private:
  std::string name_ = "pairwise-coloring";
  int palette_size_;
  ProtocolSpec spec_;
};

/// Instance 2: frequency separation — adjacent values must differ by at
/// least `separation` (channel assignment with guard bands; separation=1
/// degenerates to proper coloring). A palette of separation*(2*Delta)+1
/// values always leaves a free slot, since each neighbor blocks an
/// interval of 2*separation-1 values.
class PairwiseSeparation final : public PairwiseCheckable {
 public:
  static constexpr int kValueVar = 0;

  PairwiseSeparation(const Graph& g, int separation, int palette_size = 0);

  const ProtocolSpec& base_spec() const override { return spec_; }
  bool pair_suspicious(const GuardContext& ctx,
                       NbrIndex channel) const override;
  void repair(ActionContext& ctx) const override;
  const std::string& name() const override { return name_; }

  int separation() const { return separation_; }
  int palette_size() const { return palette_size_; }

  /// The separation predicate over a whole configuration.
  static bool separated(const Graph& g, const Configuration& config,
                        int separation, int value_var = kValueVar);

 private:
  std::string name_;
  int separation_;
  int palette_size_;
  ProtocolSpec spec_;
};

}  // namespace sss
