#include "transformer/generic_efficiency.hpp"

#include <utility>

#include "support/require.hpp"

namespace sss {

GenericEfficiency::GenericEfficiency(const Graph& g,
                                     std::unique_ptr<Protocol> inner)
    : inner_(std::move(inner)) {
  SSS_REQUIRE(inner_ != nullptr, "GENERIC-EFFICIENCY needs a protocol");
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "GENERIC-EFFICIENCY requires a connected network with n >= 2");
  name_ = "GENERIC-EFFICIENCY(" + inner_->name() + ")";
  const ProtocolSpec& base = inner_->spec();
  num_comm_ = base.num_comm();
  tcur_index_ = base.num_internal();
  SSS_REQUIRE(num_comm_ >= 1,
              "GENERIC-EFFICIENCY wraps protocols with communication state");
  // The wrapped protocol's variables keep their indices: comm vars are
  // shared (the legitimacy predicate applies unchanged), inner internals
  // come first in the internal section so pass-through reads and writes
  // need no translation.
  spec_.comm = base.comm;
  spec_.internal = base.internal;
  spec_.internal.emplace_back("tcur", domain_channel());
  // The mirror bank: one slot per (channel, comm var) up to the network's
  // maximum degree, channel-major so a process's mirror of one neighbor
  // is a contiguous row the guard overlay can point at. A slot past the
  // process's degree has the degenerate domain {0} — arbitrary
  // initialization cannot put noise where no neighbor exists. An in-range
  // slot ranges over the *neighbor's* domain of that variable (domains
  // may be per-process, e.g. a PR pointer's [0..delta.q]).
  for (NbrIndex ch = 1; ch <= g.max_degree(); ++ch) {
    for (int v = 0; v < num_comm_; ++v) {
      const VarSpec mirrored = base.comm[static_cast<std::size_t>(v)];
      spec_.internal.emplace_back(
          "m" + std::to_string(ch) + "." + mirrored.name(),
          [mirrored, ch](const Graph& graph, ProcessId p) -> VarDomain {
            if (ch > graph.degree(p)) return VarDomain{0, 0};
            return mirrored.domain(graph, graph.neighbor(p, ch));
          });
    }
  }
}

int GenericEfficiency::first_enabled(GuardContext& ctx) const {
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(tcur_index_));
  // Audit: the step's only unconditional communication reads — the
  // variables of the single neighbor the pointer names.
  for (int v = 0; v < num_comm_; ++v) {
    if (ctx.nbr_comm(cur, v) != ctx.self_internal(mirror_index(cur, v))) {
      return collect_action();
    }
  }
  // Evaluate the wrapped protocol's guards against the mirror bank: local
  // memory only, nothing read from the network. The bank is contiguous in
  // the configuration row right behind the audit pointer.
  const Value* mirror =
      ctx.config().row(ctx.self()) + num_comm_ + tcur_index_ + 1;
  GuardContext mirror_ctx(ctx.graph(), ctx.config(), ctx.self(), nullptr);
  mirror_ctx.set_nbr_overlay(mirror, num_comm_);
  if (inner_->first_enabled(mirror_ctx) == kDisabled) {
    return advance_action();
  }
  // Confirm against the real neighborhood before acting: a genuine inner
  // guard must hold on the real state for the move to be a genuine inner
  // move. A mirror that fired where the real state does not is stale in a
  // way the single-channel audit missed — refresh it.
  const int confirmed = inner_->first_enabled(ctx);
  return confirmed == kDisabled ? collect_action() : confirmed;
}

void GenericEfficiency::execute(int action, ActionContext& ctx) const {
  // Every action rotates the audit pointer, so each neighbor is audited
  // within delta.p activations.
  const auto cur = static_cast<Value>(ctx.self_internal(tcur_index_));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  if (action == collect_action()) {
    // Full mirror refresh (the stabilizing-phase full-width read): one
    // collect leaves every channel fresh, so a solo process spends at
    // most one activation here before behaving as the wrapped protocol.
    for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
      for (int v = 0; v < num_comm_; ++v) {
        ctx.set_internal(mirror_index(ch, v), ctx.nbr_comm(ch, v));
      }
    }
    ctx.set_internal(tcur_index_, next);
    return;
  }
  if (action == advance_action()) {
    ctx.set_internal(tcur_index_, next);
    return;
  }
  SSS_ASSERT(action >= 0 && action < inner_->num_actions(),
             "GENERIC-EFFICIENCY action out of range");
  inner_->execute(action, ctx);
  ctx.set_internal(tcur_index_, next);
}

void GenericEfficiency::install_constants(const Graph& g,
                                          Configuration& config) const {
  // Shared comm indices: the wrapped protocol writes its own constants.
  // Mirror slots are NOT constants — arbitrary initialization corrupts
  // them and the audit/collect pair repairs them.
  inner_->install_constants(g, config);
}

}  // namespace sss
