#pragma once
/// \file generic_efficiency.hpp
/// The general communication-efficiency transformer the paper leaves open
/// (Section 6), after "Making local algorithms efficiently self-stabilizing
/// in arbitrary asynchronous environments" (arXiv:2307.06635).
///
/// `rotating_check` covers only the universally-pairwise-checkable
/// fragment: predicates a memoryless one-neighbor-per-step rotation can
/// certify. The general construction removes that restriction by giving
/// each process a *mirror* of every neighbor's communication state (an
/// internal variable bank) plus a rotating audit pointer:
///
///   audit    — read the communication variables of the one neighbor the
///              pointer names and compare them to its mirror (the only
///              communication reads of a quiet step);
///   collect  — on any discrepancy, refresh the whole mirror bank from
///              the real neighborhood (a full-width read, paid only while
///              stabilizing);
///   evaluate — run the wrapped protocol's guards against the mirror at
///              zero communication cost; if some guard fires, *confirm*
///              it against the real neighborhood (this is the witness
///              pinning a memoryless rotation cannot express: the mirror
///              remembers the evidence between steps) and execute the
///              confirmed action with the wrapped protocol's own
///              semantics — every communication write of the transformed
///              protocol is a genuine inner move on the real state;
///   advance  — otherwise just rotate the audit pointer.
///
/// In the stabilized phase no mirror is stale and no comm-writing inner
/// guard fires, so a step costs the communication variables of a *single*
/// neighbor — independent of the degree — while the wrapped protocol, run
/// bare, may pay its whole neighborhood forever (the full-read baselines
/// do). Self-stabilization and silence carry over from the wrapped
/// protocol: confirmed execution means the projected computation (audits
/// and collects erased) is a fair computation of the wrapped protocol.
///
/// The transformed protocol's communication variables are exactly the
/// wrapped protocol's (its legitimacy predicate applies unchanged); the
/// mirror bank, the audit pointer, and the wrapped protocol's own
/// internal variables are all internal.

#include <memory>
#include <string>

#include "runtime/protocol.hpp"

namespace sss {

/// The transformed protocol. Wraps (and owns) any runnable protocol.
class GenericEfficiency final : public Protocol {
 public:
  GenericEfficiency(const Graph& g, std::unique_ptr<Protocol> inner);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  /// The wrapped protocol's actions keep their indices; collect and
  /// advance ride behind them.
  int num_actions() const override { return inner_->num_actions() + 2; }
  bool is_probabilistic() const override { return inner_->is_probabilistic(); }
  /// One activation may be spent on the full mirror refresh before the
  /// wrapped protocol's own solo trace surfaces (see
  /// Protocol::solo_quiescence_margin).
  int solo_quiescence_margin() const override {
    return inner_->solo_quiescence_margin() + 1;
  }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  const Protocol& inner() const { return *inner_; }

  /// Action indices of the transformer's own two actions (the wrapped
  /// protocol's actions occupy [0, inner().num_actions())).
  int collect_action() const { return inner_->num_actions(); }
  int advance_action() const { return inner_->num_actions() + 1; }

  /// Internal-variable index of the audit pointer.
  int tcur_index() const { return tcur_index_; }
  /// Internal-variable index of the mirror of neighbor `ch`'s
  /// communication variable `var`.
  int mirror_index(NbrIndex ch, int var) const {
    return tcur_index_ + 1 + (ch - 1) * num_comm_ + var;
  }

 private:
  std::unique_ptr<Protocol> inner_;
  std::string name_;
  ProtocolSpec spec_;
  int num_comm_ = 0;    ///< = inner spec's num_comm
  int tcur_index_ = 0;  ///< = inner spec's num_internal
};

}  // namespace sss
