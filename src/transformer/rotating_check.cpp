#include "transformer/rotating_check.hpp"

#include <cstdlib>
#include <vector>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kRepair = 0;
constexpr int kAdvance = 1;
}  // namespace

RotatingCheck::RotatingCheck(const Graph& g, const PairwiseCheckable& source)
    : source_(source), name_("ROTATING-CHECK(" + source.name() + ")") {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "ROTATING-CHECK requires a connected network with n >= 2");
  spec_ = source.base_spec();
  SSS_REQUIRE(spec_.num_internal() == 0,
              "pairwise-checkable sources expose communication state only");
  spec_.internal.emplace_back("cur", domain_channel());
}

namespace {
const PairwiseCheckable& require_source(
    const std::unique_ptr<PairwiseCheckable>& source) {
  SSS_REQUIRE(source != nullptr, "ROTATING-CHECK needs a checker source");
  return *source;
}
}  // namespace

RotatingCheck::RotatingCheck(const Graph& g,
                             std::unique_ptr<PairwiseCheckable> source)
    : RotatingCheck(g, require_source(source)) {
  owned_ = std::move(source);
}

int RotatingCheck::first_enabled(GuardContext& ctx) const {
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  return source_.pair_suspicious(ctx, cur) ? kRepair : kAdvance;
}

void RotatingCheck::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const Value next = (cur % static_cast<Value>(ctx.degree())) + 1;
  switch (action) {
    case kRepair:
      source_.repair(ctx);
      ctx.set_internal(kCurVar, next);
      break;
    case kAdvance:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "ROTATING-CHECK has exactly two actions");
  }
}

PairwiseColoring::PairwiseColoring(const Graph& g, int palette_size)
    : palette_size_(palette_size == 0 ? g.max_degree() + 1 : palette_size) {
  SSS_REQUIRE(palette_size_ >= g.max_degree() + 1,
              "palette must have at least Delta+1 colors");
  spec_.comm.emplace_back("C",
                          VarDomain{1, static_cast<Value>(palette_size_)});
}

bool PairwiseColoring::pair_suspicious(const GuardContext& ctx,
                                       NbrIndex channel) const {
  return ctx.nbr_comm(channel, kColorVar) == ctx.self_comm(kColorVar);
}

void PairwiseColoring::repair(ActionContext& ctx) const {
  std::vector<bool> used(static_cast<std::size_t>(palette_size_) + 1, false);
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    used[static_cast<std::size_t>(ctx.nbr_comm(ch, kColorVar))] = true;
  }
  std::vector<Value> free_colors;
  for (Value c = 1; c <= static_cast<Value>(palette_size_); ++c) {
    if (!used[static_cast<std::size_t>(c)]) free_colors.push_back(c);
  }
  SSS_ASSERT(!free_colors.empty(), "Delta+1 colors leave a free one");
  const auto pick = static_cast<std::size_t>(
      ctx.random_range(0, static_cast<Value>(free_colors.size()) - 1));
  ctx.set_comm(kColorVar, free_colors[pick]);
}

PairwiseSeparation::PairwiseSeparation(const Graph& g, int separation,
                                       int palette_size)
    : name_("pairwise-separation(" + std::to_string(separation) + ")"),
      separation_(separation),
      palette_size_(palette_size == 0
                        ? separation * 2 * g.max_degree() + 1
                        : palette_size) {
  SSS_REQUIRE(separation >= 1, "separation must be positive");
  SSS_REQUIRE(palette_size_ >= separation * 2 * g.max_degree() + 1,
              "palette must leave a free slot: need sep*2*Delta + 1 values");
  spec_.comm.emplace_back("F",
                          VarDomain{1, static_cast<Value>(palette_size_)});
}

bool PairwiseSeparation::pair_suspicious(const GuardContext& ctx,
                                         NbrIndex channel) const {
  const Value mine = ctx.self_comm(kValueVar);
  const Value theirs = ctx.nbr_comm(channel, kValueVar);
  return std::abs(mine - theirs) < static_cast<Value>(separation_);
}

void PairwiseSeparation::repair(ActionContext& ctx) const {
  std::vector<Value> neighbor_values;
  neighbor_values.reserve(static_cast<std::size_t>(ctx.degree()));
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    neighbor_values.push_back(ctx.nbr_comm(ch, kValueVar));
  }
  std::vector<Value> free_values;
  for (Value v = 1; v <= static_cast<Value>(palette_size_); ++v) {
    bool blocked = false;
    for (Value nv : neighbor_values) {
      if (std::abs(v - nv) < static_cast<Value>(separation_)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) free_values.push_back(v);
  }
  SSS_ASSERT(!free_values.empty(),
             "the palette sizing guarantees a free slot");
  const auto pick = static_cast<std::size_t>(
      ctx.random_range(0, static_cast<Value>(free_values.size()) - 1));
  ctx.set_comm(kValueVar, free_values[pick]);
}

bool PairwiseSeparation::separated(const Graph& g,
                                   const Configuration& config,
                                   int separation, int value_var) {
  for (const auto& [a, b] : g.edges()) {
    if (std::abs(config.comm(a, value_var) - config.comm(b, value_var)) <
        static_cast<Value>(separation)) {
      return false;
    }
  }
  return true;
}

}  // namespace sss
