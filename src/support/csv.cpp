#include "support/csv.hpp"

namespace sss {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace sss
