#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace sss {

double percentile_sorted(const std::vector<double>& sorted, double pct) {
  SSS_REQUIRE(!sorted.empty(), "percentile of an empty sample");
  SSS_REQUIRE(pct >= 0.0 && pct <= 100.0, "percentile must be in [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.count = sample.size();
  s.min = sample.front();
  s.max = sample.back();
  double sum = 0.0;
  for (double x : sample) sum += x;
  s.mean = sum / static_cast<double>(sample.size());
  s.median = percentile_sorted(sample, 50.0);
  s.p90 = percentile_sorted(sample, 90.0);
  if (sample.size() > 1) {
    double sq = 0.0;
    for (double x : sample) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(sample.size() - 1));
  }
  return s;
}

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  // Welford's online update keeps the variance numerically stable.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace sss
