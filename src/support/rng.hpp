#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component of the simulator (daemons, randomized protocol
/// actions, graph generators, fault injectors) draws from an explicitly
/// seeded `Rng` so that every experiment in this repository is exactly
/// reproducible from its seed. The generator is xoshiro256** seeded through
/// splitmix64, which is both fast and statistically strong for simulation
/// workloads.

#include <array>
#include <cstdint>

namespace sss {

/// splitmix64 step; used for seeding and for hashing small integers.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience range helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw. Satisfies UniformRandomBitGenerator.
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire rejection so the distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with success probability p in [0, 1].
  bool chance(double p);

  /// Derives an independent child generator; stream-splitting for
  /// reproducible parallel experiments.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Fisher-Yates shuffle of a random-access container, using `rng`.
template <typename Container>
void shuffle(Container& items, Rng& rng) {
  const auto n = items.size();
  if (n < 2) return;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = static_cast<decltype(i)>(rng.below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace sss
