#pragma once
/// \file stats.hpp
/// Descriptive statistics for experiment aggregation.

#include <cstddef>
#include <vector>

namespace sss {

/// Summary of a sample of measurements.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double p90 = 0.0;     ///< 90th percentile (nearest-rank interpolation)
};

/// Computes the summary of `sample`. An empty sample yields all zeros.
Summary summarize(std::vector<double> sample);

/// Percentile in [0,100] via linear interpolation between closest ranks.
/// Requires a non-empty, already-sorted sample.
double percentile_sorted(const std::vector<double>& sorted, double pct);

/// Accumulates doubles without storing them; used by long-running sweeps.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1); zero for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sss
