#include "support/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "support/require.hpp"

namespace sss {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string name) : name_(std::move(name)) {
  SSS_REQUIRE(!name_.empty(), "bench name cannot be empty");
}

BenchJsonWriter& BenchJsonWriter::record() {
  records_.emplace_back();
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key,
                                        const std::string& value) {
  SSS_REQUIRE(!records_.empty(), "call record() before field()");
  records_.back().push_back(Field{key, escape(value)});
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key,
                                        const char* value) {
  return field(key, std::string(value));
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key,
                                        std::int64_t value) {
  SSS_REQUIRE(!records_.empty(), "call record() before field()");
  records_.back().push_back(Field{key, std::to_string(value)});
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key,
                                        std::uint64_t value) {
  SSS_REQUIRE(!records_.empty(), "call record() before field()");
  records_.back().push_back(Field{key, std::to_string(value)});
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key, double value) {
  SSS_REQUIRE(!records_.empty(), "call record() before field()");
  char buf[48];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.12g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
  }
  records_.back().push_back(Field{key, buf});
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key, bool value) {
  SSS_REQUIRE(!records_.empty(), "call record() before field()");
  records_.back().push_back(Field{key, value ? "true" : "false"});
  return *this;
}

std::string BenchJsonWriter::str() const {
  std::string out = "{\n  \"bench\": " + escape(name_) + ",\n  \"records\": [";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "    {";
    const auto& fields = records_[r];
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f != 0) out += ", ";
      out += escape(fields[f].key) + ": " + fields[f].encoded;
    }
    out += "}";
  }
  out += records_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string BenchJsonWriter::write(const std::string& directory) const {
  const std::string path = directory + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (out) out << str() << std::flush;
  // Flush before checking: a full disk surfaces at flush time, not at the
  // operator<<, and the destructor would swallow it.
  if (!out) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return path;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return path;
}

std::string BenchJsonWriter::write_strict(const std::string& directory) const {
  const std::string path = directory + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  SSS_REQUIRE(out.good(), "cannot open bench artifact \"" + path + "\"");
  out << str() << std::flush;
  SSS_REQUIRE(out.good(), "write error on bench artifact \"" + path + "\"");
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return path;
}

}  // namespace sss
