#pragma once
/// \file params.hpp
/// The parameter-map currency of the name-based registries.
///
/// A registry entry (graph family, protocol, problem) is keyed by name and
/// configured by a flat map of named scalar parameters — numbers or
/// strings, exactly what a JSON manifest can spell. The helpers here do
/// the strict-lookup legwork every factory needs: typed access with
/// defaults, integral validation, and an unknown-key check so a typo in a
/// manifest ("pallete_size") is an error instead of a silently ignored
/// parameter.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/require.hpp"
#include "support/string_util.hpp"

namespace sss {

/// One scalar parameter value: a number or a string. Booleans travel as
/// numbers (0/1).
struct ParamValue {
  enum class Kind { kNumber, kString };

  ParamValue() = default;
  ParamValue(double value) : kind(Kind::kNumber), number(value) {}  // NOLINT
  ParamValue(int value)  // NOLINT
      : kind(Kind::kNumber), number(static_cast<double>(value)) {}
  ParamValue(std::string value)  // NOLINT
      : kind(Kind::kString), text(std::move(value)) {}
  ParamValue(const char* value) : kind(Kind::kString), text(value) {}  // NOLINT

  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;
};

/// Named parameters, ordered by name (deterministic iteration).
using ParamMap = std::map<std::string, ParamValue>;

/// Number-valued parameter, or `fallback` when absent.
inline double param_double(const ParamMap& params, const std::string& name,
                           double fallback) {
  const auto it = params.find(name);
  if (it == params.end()) return fallback;
  SSS_REQUIRE(it->second.kind == ParamValue::Kind::kNumber,
              "parameter \"" + name + "\" must be a number");
  return it->second.number;
}

/// Integral parameter (validated), or `fallback` when absent.
inline std::int64_t param_int(const ParamMap& params, const std::string& name,
                              std::int64_t fallback) {
  const auto it = params.find(name);
  if (it == params.end()) return fallback;
  SSS_REQUIRE(it->second.kind == ParamValue::Kind::kNumber,
              "parameter \"" + name + "\" must be a number");
  const double value = it->second.number;
  // Range-check BEFORE the cast: double -> int64 outside the target range
  // is undefined behaviour, not a recoverable error.
  SSS_REQUIRE(value >= -9007199254740992.0 && value <= 9007199254740992.0 &&
                  std::floor(value) == value,
              "parameter \"" + name + "\" must be an integer");
  return static_cast<std::int64_t>(value);
}

/// Integral parameter that must be present.
inline std::int64_t require_param_int(const ParamMap& params,
                                      const std::string& name) {
  SSS_REQUIRE(params.find(name) != params.end(),
              "missing required parameter \"" + name + "\"");
  return param_int(params, name, 0);
}

/// String-valued parameter, or `fallback` when absent.
inline std::string param_string(const ParamMap& params,
                                const std::string& name,
                                const std::string& fallback) {
  const auto it = params.find(name);
  if (it == params.end()) return fallback;
  SSS_REQUIRE(it->second.kind == ParamValue::Kind::kString,
              "parameter \"" + name + "\" must be a string");
  return it->second.text;
}

/// Boolean parameter (spelled 0/1 in the map), or `fallback` when absent.
inline bool param_bool(const ParamMap& params, const std::string& name,
                       bool fallback) {
  const std::int64_t value = param_int(params, name, fallback ? 1 : 0);
  SSS_REQUIRE(value == 0 || value == 1,
              "parameter \"" + name + "\" must be a boolean (0 or 1)");
  return value != 0;
}

/// Rejects any parameter name outside `allowed`, naming both the stray key
/// and the accepted set — the registry-wide typo guard.
inline void require_known_params(const ParamMap& params,
                                 const std::vector<std::string>& allowed,
                                 const std::string& owner) {
  for (const auto& [name, value] : params) {
    bool known = false;
    for (const std::string& candidate : allowed) {
      if (candidate == name) {
        known = true;
        break;
      }
    }
    SSS_REQUIRE(known, "unknown parameter \"" + name + "\" for " + owner +
                           " (accepted: " + join(allowed, ", ") + ")");
  }
}

}  // namespace sss
