#include "support/string_util.hpp"

#include <cctype>
#include <limits>

namespace sss {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : text) {
    if (ch == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool parse_non_negative_int(const std::string& text, int* out) {
  if (text.empty()) return false;
  long long value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + (ch - '0');
    if (value > std::numeric_limits<int>::max()) return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace sss
