#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <system_error>

#include "support/require.hpp"

namespace sss {

namespace {

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Recursive-descent reader over the document text. Tracks line/column for
/// error messages; depth is bounded to keep adversarial inputs from
/// exhausting the call stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw PreconditionError("json parse error at " + std::to_string(line_) +
                            ":" + std::to_string(column_) + ": " + message);
  }

  bool at_end() const { return pos_ == text_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char ch = peek();
    ++pos_;
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }

  void expect(char ch, const char* what) {
    if (at_end() || peek() != ch) {
      fail(std::string("expected ") + what);
    }
    advance();
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      advance();
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    // Stamp every parsed value with the position of its first character,
    // so consumers can point schema errors at the value (JsonValue::where).
    const int value_line = line_;
    const int value_column = column_;
    JsonValue value = parse_value_dispatch(depth);
    value.line_ = value_line;
    value.column_ = value_column;
    return value;
  }

  JsonValue parse_value_dispatch(int depth) {
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = ch == 't';
        parse_literal(ch == 't' ? "true" : "false");
        return value;
      }
      case 'n':
        parse_literal("null");
        return JsonValue{};
      default:
        if (ch == '-' || (ch >= '0' && ch <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  void parse_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (at_end() || peek() != *p) {
        fail(std::string("invalid literal (expected \"") + literal + "\")");
      }
      advance();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    expect('{', "'{'");
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      advance();
      return value;
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [existing, unused] : value.members_) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':', "':' after object key");
      value.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "',' or '}' in object");
      return value;
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    expect('[', "'['");
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      advance();
      return value;
    }
    for (;;) {
      value.items_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "',' or ']' in array");
      return value;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("unterminated \\u escape");
      const char ch = advance();
      result <<= 4;
      if (ch >= '0' && ch <= '9') {
        result |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        result |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        result |= static_cast<std::uint32_t>(ch - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return result;
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char ch = advance();
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (at_end() || peek() != '\\') fail("unpaired surrogate");
            advance();
            if (at_end() || peek() != 'u') fail("unpaired surrogate");
            advance();
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    if (at_end()) fail("truncated number");
    if (peek() == '0') {
      advance();
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    } else {
      fail("invalid number");
    }
    if (!at_end() && peek() == '.') {
      advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    // from_chars, not strtod: conversion must be locale-independent (a
    // host program on a comma-decimal locale must not change what "0.15"
    // means).
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value.number_);
    if (ec == std::errc::result_out_of_range) fail("number out of range");
    if (ec != std::errc() || end != last) fail("invalid number");
    if (!std::isfinite(value.number_)) fail("number out of range");
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string JsonValue::where() const {
  return std::to_string(line_) + ":" + std::to_string(column_);
}

const char* JsonValue::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  SSS_REQUIRE(is_bool(), std::string("expected a JSON bool, got ") +
                             kind_name(kind_));
  return bool_;
}

double JsonValue::as_double() const {
  SSS_REQUIRE(is_number(), std::string("expected a JSON number, got ") +
                               kind_name(kind_));
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double value = as_double();
  SSS_REQUIRE(std::floor(value) == value &&
                  value >= -9007199254740992.0 && value <= 9007199254740992.0,
              "expected an integral JSON number");
  return static_cast<std::int64_t>(value);
}

const std::string& JsonValue::as_string() const {
  SSS_REQUIRE(is_string(), std::string("expected a JSON string, got ") +
                               kind_name(kind_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SSS_REQUIRE(is_array(), std::string("expected a JSON array, got ") +
                              kind_name(kind_));
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SSS_REQUIRE(is_object(), std::string("expected a JSON object, got ") +
                               kind_name(kind_));
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  SSS_REQUIRE(value != nullptr, "missing required key \"" + key + "\"");
  return *value;
}

std::size_t JsonValue::size() const {
  if (is_array()) return items_.size();
  return members().size();
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(ch >> 4) & 0xF]);
          out.push_back(kHex[ch & 0xF]);
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void serialize_into(const JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      const double d = value.as_double();
      // The int64 range check must precede the cast (an out-of-range cast
      // is undefined behaviour).
      if (d >= -9.2e18 && d <= 9.2e18 &&
          d == static_cast<double>(static_cast<std::int64_t>(d))) {
        out += std::to_string(static_cast<std::int64_t>(d));
      } else {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.17g", d);
        out += buffer;
      }
      return;
    }
    case JsonValue::Kind::kString:
      out += json_quote(value.as_string());
      return;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      const auto& items = value.items();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        serialize_into(items[i], out);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      const auto& members = value.members();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i) out += ", ";
        out += json_quote(members[i].first);
        out += ": ";
        serialize_into(members[i].second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_into(value, out);
  return out;
}

}  // namespace sss
