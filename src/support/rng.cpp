#include "support/rng.hpp"

#include "support/require.hpp"

namespace sss {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 guarantees the state is not all-zero, which xoshiro requires.
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SSS_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  SSS_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (width == 0) {  // full 64-bit span
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::uniform01() {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() {
  // Deriving the child from two fresh draws keeps parent/child streams
  // decorrelated for simulation purposes.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace sss
