#pragma once
/// \file json.hpp
/// A small strict JSON reader, sibling of bench_json (which only writes).
///
/// The experiment lab reads its plans from JSON manifests
/// (analysis/plan.hpp), so the library needs a parser it fully controls:
/// deterministic, dependency-free, and strict enough that a typo in a
/// manifest is an error with a line/column instead of a silently ignored
/// key. The reader is a classic recursive-descent pass over the full
/// document:
///
///  * the complete JSON grammar (RFC 8259): objects, arrays, strings with
///    escapes (\uXXXX included, encoded back to UTF-8), numbers, the three
///    literals;
///  * object member order is preserved — manifest semantics depend on it
///    (parameter expansion order) — and duplicate keys are rejected;
///  * numbers are stored as double; `as_int()` additionally checks the
///    value is integral and in range, which is what manifest fields
///    (sizes, seeds) want;
///  * all errors throw PreconditionError with 1-based line:column.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sss {

/// One parsed JSON value; a tree of these is a document.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document from `text` (trailing garbage is an
  /// error). Throws PreconditionError on malformed input.
  static JsonValue parse(const std::string& text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each requires the matching kind.
  bool as_bool() const;
  double as_double() const;
  /// Requires an integral number that fits std::int64_t exactly.
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array elements, in document order. Requires an array.
  const std::vector<JsonValue>& items() const;

  /// Object members in document order (see file comment). Requires an
  /// object.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup: the member's value, or nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  /// Object lookup that throws PreconditionError when `key` is absent.
  const JsonValue& at(const std::string& key) const;

  /// Element/member count of an array/object.
  std::size_t size() const;

  /// 1-based source position of this value's first character; 0:0 for
  /// values not produced by `parse`. Consumers interpreting the document
  /// (e.g. the manifest plan builder) use it to point schema errors at
  /// the offending value, matching the parser's own "line:col" style.
  int line() const { return line_; }
  int column() const { return column_; }
  /// "line:col", e.g. "12:7" — for error messages.
  std::string where() const;

  /// Human-readable kind name ("object", "number", ...), for messages.
  static const char* kind_name(Kind kind);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  int line_ = 0;
  int column_ = 0;
};

/// Escapes `text` as a JSON string literal including the surrounding
/// quotes — the emission-side helper the JSONL/CSV sinks share.
std::string json_quote(const std::string& text);

/// Serializes `value` back to compact JSON text (no insignificant
/// whitespace beyond ", " / ": " separators). Member order is the parsed
/// document order, so parse -> serialize -> parse is semantics-preserving
/// — which is what the service checkpoint needs to embed a submitted
/// manifest verbatim. Integral numbers render without exponent or
/// fraction; other numbers use shortest-round-trip %.17g.
std::string json_serialize(const JsonValue& value);

}  // namespace sss
