#pragma once
/// \file bench_json.hpp
/// Machine-readable companions to the bench text tables.
///
/// Every bench binary prints human-oriented tables; `BenchJsonWriter`
/// additionally collects flat records and saves them as
/// `BENCH_<name>.json` next to the process's working directory, so the
/// performance trajectory across PRs is diffable by tooling instead of by
/// eyeballing table diffs. The format is deliberately flat:
///
///   {
///     "bench": "<name>",
///     "records": [ {"key": value, ...}, ... ]
///   }
///
/// with values limited to strings, numbers, and booleans.

#include <cstdint>
#include <string>
#include <vector>

namespace sss {

class BenchJsonWriter {
 public:
  /// `name` keys the output file: BENCH_<name>.json.
  explicit BenchJsonWriter(std::string name);

  /// Starts a new record; subsequent `field` calls append to it.
  BenchJsonWriter& record();

  BenchJsonWriter& field(const std::string& key, const std::string& value);
  BenchJsonWriter& field(const std::string& key, const char* value);
  BenchJsonWriter& field(const std::string& key, std::int64_t value);
  BenchJsonWriter& field(const std::string& key, std::uint64_t value);
  BenchJsonWriter& field(const std::string& key, int value);
  BenchJsonWriter& field(const std::string& key, double value);
  BenchJsonWriter& field(const std::string& key, bool value);

  /// The serialized document.
  std::string str() const;

  /// Writes BENCH_<name>.json into `directory` (default: cwd) and returns
  /// the path. Failures are reported to stderr, not thrown: a bench run's
  /// tables remain useful even when the artifact cannot be saved.
  std::string write(const std::string& directory = ".") const;

  /// Like `write`, but a failed open or a write/flush error throws
  /// PreconditionError instead of warning — for callers whose exit code
  /// must reflect a lost artifact (sss_lab run --bench).
  std::string write_strict(const std::string& directory = ".") const;

 private:
  /// One key plus an already-JSON-encoded value.
  struct Field {
    std::string key;
    std::string encoded;
  };

  std::string name_;
  std::vector<std::vector<Field>> records_;
};

}  // namespace sss
