#include "support/text_table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/require.hpp"

namespace sss {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SSS_REQUIRE(!header_.empty(), "a table needs at least one column");
}

TextTable& TextTable::row() {
  cells_.emplace_back();
  return *this;
}

namespace {
template <typename T>
std::string to_cell(T value) {
  std::ostringstream out;
  out << value;
  return out.str();
}
}  // namespace

TextTable& TextTable::add(std::string cell) {
  SSS_REQUIRE(!cells_.empty(), "call row() before add()");
  cells_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(const char* cell) { return add(std::string(cell)); }
TextTable& TextTable::add(std::int64_t value) { return add(to_cell(value)); }
TextTable& TextTable::add(std::uint64_t value) { return add(to_cell(value)); }
TextTable& TextTable::add(int value) { return add(to_cell(value)); }
TextTable& TextTable::add(bool value) {
  return add(std::string(value ? "yes" : "no"));
}

TextTable& TextTable::add(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return add(out.str());
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << std::left << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < header_.size()) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    total += width[c] + (c + 1 < header_.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
  return out.str();
}

}  // namespace sss
