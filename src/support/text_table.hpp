#pragma once
/// \file text_table.hpp
/// Aligned plain-text tables; the output format of every bench binary.

#include <cstdint>
#include <string>
#include <vector>

namespace sss {

/// Column-aligned text table with a header row. Cells are strings; numeric
/// convenience overloads format with minimal digits.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent `add` calls append cells to it.
  TextTable& row();

  TextTable& add(std::string cell);
  TextTable& add(const char* cell);
  TextTable& add(std::int64_t value);
  TextTable& add(std::uint64_t value);
  TextTable& add(int value);
  /// Formats with `digits` places after the decimal point.
  TextTable& add(double value, int digits = 2);
  TextTable& add(bool value);

  std::size_t rows() const { return cells_.size(); }

  /// Renders the table with a separator line below the header.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace sss
