#pragma once
/// \file require.hpp
/// Checked preconditions and invariants.
///
/// The library throws on contract violations instead of aborting: simulator
/// inputs (graphs, protocol parameters, configurations) frequently come from
/// user code or from randomized test drivers, and a recoverable error with a
/// precise message is worth far more than a core dump.

#include <stdexcept>
#include <string>

namespace sss {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

/// Thrown when an internal invariant fails; indicates a library bug.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& message);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace sss

/// Validate a documented precondition of a public entry point.
#define SSS_REQUIRE(expr, message)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sss::detail::throw_precondition(#expr, __FILE__, __LINE__,        \
                                        (message));                      \
    }                                                                     \
  } while (false)

/// Validate an internal invariant; failure means a bug in this library.
#define SSS_ASSERT(expr, message)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sss::detail::throw_invariant(#expr, __FILE__, __LINE__,           \
                                     (message));                         \
    }                                                                     \
  } while (false)
