#pragma once
/// \file bits.hpp
/// Small integer helpers used by the communication-complexity accounting.

#include <cstdint>

#include "support/require.hpp"

namespace sss {

/// Number of bits needed to distinguish `domain_size` values:
/// ceil(log2(domain_size)), with the convention that a 1-value domain
/// costs 0 bits. This is the unit of the paper's communication complexity
/// measure (Definition 5).
constexpr int ceil_log2(std::int64_t domain_size) {
  if (domain_size <= 1) return 0;
  int bits = 0;
  std::int64_t capacity = 1;
  while (capacity < domain_size) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// Integer ceiling division for non-negative numerators.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace sss
