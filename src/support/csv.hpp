#pragma once
/// \file csv.hpp
/// Minimal CSV emission so experiment sweeps can be post-processed.

#include <ostream>
#include <string>
#include <vector>

namespace sss {

/// Writes rows of cells as RFC-4180-style CSV (quoting only when needed).
class CsvWriter {
 public:
  /// The writer keeps only a reference; `out` must outlive it.
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);

  /// Escapes a single cell per RFC 4180.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace sss
