#pragma once
/// \file string_util.hpp
/// Small string helpers shared by reports and graph I/O.

#include <string>
#include <vector>

namespace sss {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string& text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `text` begins with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace sss
