#pragma once
/// \file string_util.hpp
/// Small string helpers shared by reports and graph I/O.

#include <string>
#include <vector>

namespace sss {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string& text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `text` begins with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Strict non-negative integer parse: `text` must be one or more ASCII
/// digits and nothing else — no sign (not even '+'), no surrounding
/// whitespace, no empty string. Returns false (leaving `*out` untouched)
/// on any violation or on overflow past int range. This is the parse CLI
/// flags documented as "non-negative integer" must use; std::stoi accepts
/// "+5" and "  5", silently widening the contract.
bool parse_non_negative_int(const std::string& text, int* out);

}  // namespace sss
