#include "runtime/context.hpp"

#include "support/require.hpp"

namespace sss {

GuardContext::GuardContext(const Graph& g, const Configuration& pre,
                           ProcessId self, ReadLogger* logger)
    : graph_(g), pre_(pre), self_(self), logger_(logger) {
  SSS_REQUIRE(self >= 0 && self < g.num_vertices(),
              "context process id out of range");
}

Value GuardContext::nbr_comm(NbrIndex channel, int var) const {
  if (nbr_overlay_ != nullptr) {
    SSS_ASSERT(channel >= 1 && channel <= degree() && var >= 0 &&
                   var < overlay_stride_,
               "overlay read out of range");
    return nbr_overlay_[static_cast<std::size_t>(channel - 1) *
                            static_cast<std::size_t>(overlay_stride_) +
                        static_cast<std::size_t>(var)];
  }
  const ProcessId subject = graph_.neighbor(self_, channel);
  if (logger_ != nullptr) logger_->on_read(self_, subject, var);
  return pre_.comm(subject, var);
}

NbrIndex GuardContext::self_index_at(NbrIndex channel) const {
  const NbrIndex back = graph_.mirror_index(self_, channel);
  SSS_ASSERT(back != 0, "neighbor relation must be symmetric");
  return back;
}

ActionContext::ActionContext(const Graph& g, const Configuration& pre,
                             ProcessId self, Rng& rng, ReadLogger* logger)
    : GuardContext(g, pre, self, logger),
      rng_(rng),
      writes_out_(&own_writes_) {}

ActionContext::ActionContext(const Graph& g, const Configuration& pre,
                             ProcessId self, Rng& rng, ReadLogger* logger,
                             std::vector<PendingWrite>* writes_out)
    : GuardContext(g, pre, self, logger), rng_(rng), writes_out_(writes_out) {
  SSS_REQUIRE(writes_out_ != nullptr, "null write arena");
  writes_out_->clear();
}

void ActionContext::set_comm(int var, Value v) {
  comm_write_attempted_ = true;
  writes_out_->push_back(PendingWrite{true, var, v});
}

void ActionContext::set_internal(int var, Value v) {
  writes_out_->push_back(PendingWrite{false, var, v});
}

void ActionContext::set_random_script(const std::vector<Value>* script) {
  script_ = script;
  script_pos_ = 0;
}

Value ActionContext::random_range(Value lo, Value hi) {
  if (script_ != nullptr) {
    draws_.push_back(VarDomain{lo, hi});
    if (script_pos_ < script_->size()) {
      const Value v = (*script_)[script_pos_++];
      SSS_REQUIRE(v >= lo && v <= hi, "scripted draw outside requested range");
      return v;
    }
  }
  return static_cast<Value>(rng_.range(lo, hi));
}

}  // namespace sss
