#include "runtime/engine.hpp"

#include <algorithm>

#include "runtime/fault.hpp"
#include "support/require.hpp"

namespace sss {

SweepMode parse_sweep_mode(const std::string& name) {
  if (name == "auto") return SweepMode::kAuto;
  if (name == "force_scalar") return SweepMode::kForceScalar;
  if (name == "force_bulk") return SweepMode::kForceBulk;
  throw PreconditionError("unknown sweep mode \"" + name +
                          "\" (accepted: auto, force_scalar, force_bulk)");
}

const std::string& sweep_mode_name(SweepMode mode) {
  static const std::string kAuto = "auto";
  static const std::string kScalar = "force_scalar";
  static const std::string kBulk = "force_bulk";
  switch (mode) {
    case SweepMode::kForceScalar:
      return kScalar;
    case SweepMode::kForceBulk:
      return kBulk;
    default:
      return kAuto;
  }
}

Engine::Engine(const Graph& g, const Protocol& protocol,
               std::unique_ptr<Daemon> daemon, std::uint64_t seed)
    : graph_(g),
      protocol_(protocol),
      daemon_(std::move(daemon)),
      rng_(seed),
      config_(g, protocol.spec()),
      enabled_(g.num_vertices()),
      probe_dirty_(static_cast<std::size_t>(g.num_vertices()), 0),
      bulk_supported_(protocol.has_bulk_sweep()),
      bulk_exec_supported_(protocol.has_bulk_execute()),
      active_(g.num_vertices()),
      frozen_(static_cast<std::size_t>(g.num_vertices()), 0),
      probe_action_(static_cast<std::size_t>(g.num_vertices()),
                    Protocol::kDisabled),
      probe_reads_(static_cast<std::size_t>(g.num_vertices())),
      covered_(static_cast<std::size_t>(g.num_vertices()), 0),
      solo_active_(static_cast<std::size_t>(g.num_vertices()), 0),
      solo_dirty_(static_cast<std::size_t>(g.num_vertices()), 0),
      read_counter_(g, protocol.spec()) {
  SSS_REQUIRE(daemon_ != nullptr, "engine needs a daemon");
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "the model requires a connected network with n >= 2");
  // Dedup flags bound both queues by n, so one reservation serves forever.
  dirty_queue_.reserve(static_cast<std::size_t>(g.num_vertices()));
  solo_dirty_queue_.reserve(static_cast<std::size_t>(g.num_vertices()));
  protocol_.install_constants(graph_, config_);
  invalidate_all_probes();
  logger_mux_.add(&read_counter_);
}

void Engine::set_config(const Configuration& config) {
  SSS_REQUIRE(config.num_processes() == graph_.num_vertices() &&
                  config.num_comm() == protocol_.spec().num_comm() &&
                  config.num_internal() == protocol_.spec().num_internal(),
              "configuration shape does not match the protocol");
  config_ = config;
  protocol_.install_constants(graph_, config_);
  SSS_REQUIRE(configuration_in_domains(graph_, protocol_.spec(), config_),
              "configuration has out-of-domain values");
  invalidate_all_probes();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  steps_at_round_start_ = steps_;
}

void Engine::randomize_state() {
  randomize_configuration(graph_, protocol_.spec(), config_, rng_);
  protocol_.install_constants(graph_, config_);
  invalidate_all_probes();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  steps_at_round_start_ = steps_;
}

void Engine::apply_external_corruption(const std::vector<ProcessId>& victims,
                                       Rng& rng) {
  corrupt_processes(graph_, protocol_.spec(), config_, victims, rng);
  // Local cache repair: a victim's own state changed (its guard and solo
  // answers are stale) and its communication state may have changed (its
  // neighbors' answers are stale) — exactly the fired-process treatment
  // in step(), applied without a firing.
  for (const ProcessId p : victims) {
    mark_probe_dirty(p);
    mark_solo_dirty(p);
    note_comm_changed(p);
  }
  // Round covering restarts, like set_config: the pre-fault covering
  // history does not survive an external perturbation. Refresh first so
  // the walk re-establishes the between-steps invariant (cached-disabled
  // => covered) for the restarted round; unlike reset_round, no round is
  // credited as completed. ReferenceEngine resets covering to all-zero and
  // relies on its per-step disabled walk — both engines enter the next
  // step with the same covered set.
  refresh_enabled();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    if (!enabled_.test(p) ||
        (exclude_frozen_ && frozen_[static_cast<std::size_t>(p)])) {
      covered_[static_cast<std::size_t>(p)] = 1;
      ++covered_count_;
    }
  }
  steps_at_round_start_ = steps_;
}

void Engine::invalidate_all_probes() {
  dirty_queue_.clear();
  solo_dirty_queue_.clear();
  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    probe_dirty_[static_cast<std::size_t>(p)] = 1;
    dirty_queue_.push_back(p);
    solo_dirty_[static_cast<std::size_t>(p)] = 1;
    solo_dirty_queue_.push_back(p);
  }
}

void Engine::mark_probe_dirty(ProcessId p) {
  if (!probe_dirty_[static_cast<std::size_t>(p)]) {
    probe_dirty_[static_cast<std::size_t>(p)] = 1;
    dirty_queue_.push_back(p);
  }
}

void Engine::mark_solo_dirty(ProcessId p) {
  if (!solo_dirty_[static_cast<std::size_t>(p)]) {
    solo_dirty_[static_cast<std::size_t>(p)] = 1;
    solo_dirty_queue_.push_back(p);
  }
}

void Engine::cover(ProcessId p) {
  if (!covered_[static_cast<std::size_t>(p)]) {
    covered_[static_cast<std::size_t>(p)] = 1;
    ++covered_count_;
  }
}

void Engine::refresh_enabled() {
  if (dirty_queue_.empty()) return;
  // Frozen exclusion classifies self-loops with the per-process machinery,
  // so it pins the scalar serial path (invariants 5 and 7).
  const bool can_parallel = pool_ != nullptr && !exclude_frozen_;
  // Bulk dispatch (invariant 5): one sweep when the protocol opts in and
  // enough of the network is stale. The 3/4 threshold comes from measured
  // all-dirty refresh ratios (bench_bulk_sweep E15b): the cheapest sweep
  // is ~1.3x a scalar probe pass, so sweeping all n only beats refreshing
  // the dirty subset when that subset covers most of the network.
  if (bulk_supported_ && !exclude_frozen_ &&
      sweep_mode_ != SweepMode::kForceScalar) {
    const bool use_bulk =
        sweep_mode_ == SweepMode::kForceBulk ||
        dirty_queue_.size() * 4 >=
            static_cast<std::size_t>(graph_.num_vertices()) * 3;
    if (use_bulk) {
      if (can_parallel) {
        parallel_bulk_refresh();
      } else {
        bulk_refresh();
      }
      return;
    }
  }
  // Parallel scalar refresh (invariant 7) wants the dirty set large enough
  // to amortize the barrier: at least a quarter of the network. Central
  // daemons dirty O(Delta) processes per step and stay on the cheap serial
  // drain below. Cost gate only — both paths compute identical state.
  if (can_parallel && dirty_queue_.size() >= 2 &&
      dirty_queue_.size() * 4 >=
          static_cast<std::size_t>(graph_.num_vertices())) {
    parallel_scalar_refresh();
    return;
  }
  while (!dirty_queue_.empty()) {
    const ProcessId p = dirty_queue_.back();
    dirty_queue_.pop_back();
    probe_dirty_[static_cast<std::size_t>(p)] = 0;
    // Probes are simulator devices: no rng consumption (guards are
    // deterministic; only actions may draw randomness) and nothing lands
    // in the model's read counters — the guard's reads are recorded into
    // the memo instead, to be replayed if the process is selected.
    auto& reads = probe_reads_[static_cast<std::size_t>(p)];
    reads.clear();
    probe_recorder_.target = &reads;
    GuardContext guard(graph_, config_, p, &probe_recorder_);
    const int action = protocol_.first_enabled(guard);
    probe_action_[static_cast<std::size_t>(p)] = action;
    const bool now = action != Protocol::kDisabled;
    enabled_.assign(p, now);
    // A process observed disabled is covered for the current round; this is
    // the only way "disabled at some moment" can begin mid-round, which is
    // what lets step() skip the all-vertices covering walk.
    if (!now) cover(p);
    if (exclude_frozen_) {
      const bool frozen = now && verified_self_loop(p, action);
      frozen_[static_cast<std::size_t>(p)] = frozen ? 1 : 0;
      active_.assign(p, now && !frozen);
      // A frozen process counts as co-selected every step (its self-loop
      // fires and changes nothing), so it is covered from the moment the
      // classification holds — otherwise rounds could never complete.
      if (frozen) cover(p);
    }
  }
}

void Engine::bulk_refresh() {
  const int n = graph_.num_vertices();
  // The sweep rewrites every memo, clean or dirty: clean guards see
  // unchanged inputs, so the sweep reproduces their action and read log
  // byte for byte — recomputation, never divergence.
  for (auto& log : probe_reads_) log.clear();
  bulk_actions_.reset(n);
  BulkGuardContext ctx(graph_, config_, probe_reads_);
  protocol_.sweep_enabled(ctx, bulk_actions_);
  const std::int8_t* actions = bulk_actions_.actions();
  for (ProcessId p = 0; p < n; ++p) {
    const int action = actions[static_cast<std::size_t>(p)];
    probe_action_[static_cast<std::size_t>(p)] = action;
    const bool now = action != Protocol::kDisabled;
    enabled_.assign(p, now);
    // Same covering rule as the scalar refresh. Re-covering a clean
    // disabled process is a no-op: the between-steps invariant already
    // guarantees it is covered.
    if (!now) cover(p);
  }
  for (const ProcessId p : dirty_queue_) {
    probe_dirty_[static_cast<std::size_t>(p)] = 0;
  }
  dirty_queue_.clear();
}

std::pair<ProcessId, ProcessId> Engine::worker_range(int worker) const {
  const int n = graph_.num_vertices();
  const int threads = pool_->threads();
  // Rounding the chunk up to a multiple of 64 keeps every worker's range
  // inside its own EnabledSet words (and its own covered_/probe_dirty_
  // cache lines); trailing workers may get an empty range on small graphs.
  const int chunk = (((n + threads - 1) / threads) + 63) & ~63;
  const ProcessId begin = static_cast<ProcessId>(
      std::min<long long>(n, static_cast<long long>(worker) * chunk));
  const ProcessId end =
      static_cast<ProcessId>(std::min<long long>(n, begin + chunk));
  return {begin, end};
}

void Engine::parallel_scalar_refresh() {
  // Every worker scans the shared dirty queue and probes the ids in its
  // own range — ranges partition the id space, so each entry is probed
  // exactly once and all writes (memo slot, dirty flag, covered byte,
  // EnabledSet word) stay inside the worker's partition. Probe results
  // are order-independent (the configuration is fixed for the whole
  // refresh), so this produces exactly the serial drain's state.
  pool_->run([&](int w) {
    const auto [begin, end] = worker_range(w);
    WorkerState& ws = worker_states_[static_cast<std::size_t>(w)];
    ws.enabled_delta = 0;
    ws.covered_delta = 0;
    if (begin >= end) return;
    ProbeRecorder recorder;
    for (const ProcessId p : dirty_queue_) {
      if (p < begin || p >= end) continue;
      probe_dirty_[static_cast<std::size_t>(p)] = 0;
      auto& reads = probe_reads_[static_cast<std::size_t>(p)];
      reads.clear();
      recorder.target = &reads;
      GuardContext guard(graph_, config_, p, &recorder);
      const int action = protocol_.first_enabled(guard);
      probe_action_[static_cast<std::size_t>(p)] = action;
      const bool now = action != Protocol::kDisabled;
      ws.enabled_delta += enabled_.assign_deferred(p, now);
      // Same covering rule as the serial drain (cover() inlined against
      // the worker-local counter).
      if (!now && !covered_[static_cast<std::size_t>(p)]) {
        covered_[static_cast<std::size_t>(p)] = 1;
        ++ws.covered_delta;
      }
    }
  });
  for (const WorkerState& ws : worker_states_) {
    enabled_.add_count(ws.enabled_delta);
    covered_count_ += ws.covered_delta;
  }
  dirty_queue_.clear();
}

void Engine::parallel_bulk_refresh() {
  const int n = graph_.num_vertices();
  if (bulk_actions_.universe() != n) bulk_actions_.reset(n);
  BulkGuardContext ctx(graph_, config_, probe_reads_);
  // Like bulk_refresh, the sweep rewrites every memo, clean or dirty —
  // but each worker clears, resets, sweeps, and commits only its own
  // range, so the whole O(n) pass parallelizes.
  pool_->run([&](int w) {
    const auto [begin, end] = worker_range(w);
    WorkerState& ws = worker_states_[static_cast<std::size_t>(w)];
    ws.enabled_delta = 0;
    ws.covered_delta = 0;
    if (begin >= end) return;
    for (ProcessId p = begin; p < end; ++p) {
      probe_reads_[static_cast<std::size_t>(p)].clear();
    }
    bulk_actions_.reset_range(begin, end);
    protocol_.sweep_enabled_range(ctx, bulk_actions_, begin, end);
    const std::int8_t* actions = bulk_actions_.actions();
    for (ProcessId p = begin; p < end; ++p) {
      const int action = actions[static_cast<std::size_t>(p)];
      probe_action_[static_cast<std::size_t>(p)] = action;
      const bool now = action != Protocol::kDisabled;
      ws.enabled_delta += enabled_.assign_deferred(p, now);
      if (!now && !covered_[static_cast<std::size_t>(p)]) {
        covered_[static_cast<std::size_t>(p)] = 1;
        ++ws.covered_delta;
      }
      probe_dirty_[static_cast<std::size_t>(p)] = 0;
    }
  });
  for (const WorkerState& ws : worker_states_) {
    enabled_.add_count(ws.enabled_delta);
    covered_count_ += ws.covered_delta;
  }
  dirty_queue_.clear();
}

void Engine::parallel_phases(std::size_t selected, StepInfo& info) {
  const int threads = pool_->threads();
  const std::size_t chunk =
      (selected + static_cast<std::size_t>(threads) - 1) /
      static_cast<std::size_t>(threads);
  const auto slice = [&](int w) {
    const std::size_t begin =
        std::min(selected, static_cast<std::size_t>(w) * chunk);
    return std::pair<std::size_t, std::size_t>{
        begin, std::min(selected, begin + chunk)};
  };

  // Bulk-execute composition (invariant 6 under invariant 7): the same
  // dispatch the serial step uses, applied per worker slice. The arenas
  // are sized serially here; inside the pool each worker touches only its
  // slice's staged rows, action bytes, and (distinct, ascending) memo
  // entries, so all writes stay disjoint.
  const bool use_bulk = use_bulk_execute(selected);
  if (use_bulk) {
    const auto stride = static_cast<std::size_t>(config_.stride());
    if (bulk_staged_rows_.size() < selected * stride) {
      bulk_staged_rows_.resize(selected * stride);
    }
    if (bulk_actions_.universe() != graph_.num_vertices()) {
      bulk_actions_.reset(graph_.num_vertices());
    }
  }

  // Phase 1 over contiguous selection slices, all against the shared
  // gamma_i snapshot; the barrier below keeps any commit from being
  // visible to a still-evaluating worker. Scalar actions run through
  // execute_certified (scratch rng + empty random script): a protocol
  // that declared is_probabilistic() == false and draws anyway is caught
  // by its assert instead of silently diverging from the serial rng
  // stream. Bulk kernels get a null-rng context, whose random_range
  // asserts on any draw attempt — the same contract, enforced
  // structurally.
  pool_->run([&](int w) {
    const auto [begin, end] = slice(w);
    WorkerState& ws = worker_states_[static_cast<std::size_t>(w)];
    ws.tally.begin_step();
    ws.commits.clear();
    if (use_bulk) {
      stage_bulk_actions(begin, end);
      BulkExecContext ctx(graph_, config_, probe_reads_, ws.tally,
                          bulk_staged_rows_.data(),
                          static_cast<std::size_t>(config_.stride()),
                          /*rng=*/nullptr);
      protocol_.execute_selected(
          ctx, bulk_actions_,
          std::span<const ProcessId>(selection_.data(), selected), begin,
          end);
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      const ProcessId p = selection_[i];
      ProcessStep& staged = staged_[i];
      staged.writes.clear();
      staged.comm_write_attempted = false;
      for (const auto& [subject, var] :
           probe_reads_[static_cast<std::size_t>(p)]) {
        ws.tally.on_read(p, subject, var);
      }
      staged.action = probe_action_[static_cast<std::size_t>(p)];
      if (staged.action == Protocol::kDisabled) continue;
      execute_certified(p, staged.action, &ws.tally, staged.writes,
                        staged.comm_write_attempted);
    }
  });

  // Phase 2a: commit each slice's rows in parallel. A process's writes
  // touch only its own configuration row, and the slices partition the
  // (strictly ascending, distinct) selection, so the rows are disjoint.
  pool_->run([&](int w) {
    const auto [begin, end] = slice(w);
    WorkerState& ws = worker_states_[static_cast<std::size_t>(w)];
    for (std::size_t i = begin; i < end; ++i) {
      const ProcessStep& staged = staged_[i];
      if (staged.action == Protocol::kDisabled) continue;
      const ProcessId p = selection_[i];
      ws.commits.push_back({p, use_bulk
                                   ? commit_staged_row(i)
                                   : commit_writes(config_, p,
                                                   staged.writes)});
    }
  });

  // Phase 2b: serial merge in worker order = ascending selection order,
  // so every dirty-queue push lands in exactly the order the serial
  // engine's commit loop would produce it.
  for (const WorkerState& ws : worker_states_) {
    read_counter_.absorb(ws.tally.total_reads(), ws.tally.total_bits(),
                         ws.tally.max_reads(), ws.tally.max_bits());
    for (const auto& [p, changed] : ws.commits) {
      ++info.fired;
      mark_probe_dirty(p);
      mark_solo_dirty(p);
      if (changed) {
        info.comm_changed = true;
        note_comm_changed(p);
      }
    }
  }
}

bool Engine::use_bulk_execute(std::size_t selected) const {
  // Hard gates first: no kernel, frozen exclusion (phase 1 must consult
  // the frozen classification per process), or an external read logger
  // (order-sensitive mux) all pin the scalar path regardless of mode.
  if (!bulk_exec_supported_ || exclude_frozen_ || external_loggers_ != 0 ||
      sweep_mode_ == SweepMode::kForceScalar) {
    return false;
  }
  if (sweep_mode_ == SweepMode::kForceBulk) return true;
  // kAuto cost gate, calibrated from bench_bulk_execute: the kernel wins
  // once the selection is a large fraction of the network (synchronous and
  // heavy distributed daemons); for small selections the scalar loop's
  // per-process cost is below the kernel's slab-walk overhead. 1/2 is
  // deliberately lower than the sweep's 3/4 — execution has no dirty-queue
  // alternative, so the kernel amortizes sooner.
  return selected * 2 >= static_cast<std::size_t>(graph_.num_vertices());
}

void Engine::stage_bulk_actions(std::size_t begin, std::size_t end) {
  // Mirror the memo actions for [begin, end) of the selection into the
  // kernel-facing bitmap and the trace-facing staged slots. probe_action_
  // is authoritative: bulk_actions_ may hold a stale sweep result when the
  // refresh ran scalar probes since the last bulk sweep.
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection_[i];
    const int action = probe_action_[static_cast<std::size_t>(p)];
    bulk_actions_.set_action(p, action);
    staged_[i].action = action;
  }
}

bool Engine::commit_staged_row(std::size_t i) {
  // Whole-row commit of selection index i's staged post-state. The staged
  // row started as a copy of the snapshot row, so comparing the
  // communication prefix detects exactly what the scalar commit's
  // pending-write walk detects: a written comm slot whose value differs.
  const ProcessId p = selection_[i];
  const auto stride = static_cast<std::size_t>(config_.stride());
  const Value* staged = bulk_staged_rows_.data() + i * stride;
  Value* live = config_.raw().data() + static_cast<std::size_t>(p) * stride;
  const auto num_comm = static_cast<std::size_t>(config_.num_comm());
  const bool changed = !std::equal(staged, staged + num_comm, live);
  std::copy(staged, staged + stride, live);
  return changed;
}

void Engine::bulk_phases(std::size_t selected, StepInfo& info) {
  // Invariant 6's serial deployment: one kernel call covers phase 1 (memo
  // replay + staged execution) for the whole selection, then the commit
  // loop below applies the exact dirty-queue/covering/solo-cache
  // treatment of the scalar phase 2.
  if (bulk_actions_.universe() != graph_.num_vertices()) {
    bulk_actions_.reset(graph_.num_vertices());
  }
  const auto stride = static_cast<std::size_t>(config_.stride());
  if (bulk_staged_rows_.size() < selected * stride) {
    bulk_staged_rows_.resize(selected * stride);
  }
  stage_bulk_actions(0, selected);
  // Probabilistic protocols draw from the model stream: ascending
  // selection order inside the kernel reproduces the scalar rng
  // consumption bit for bit. Deterministic protocols get a null rng whose
  // random_range asserts — the bulk counterpart of execute_certified.
  Rng* rng = protocol_.is_probabilistic() ? &rng_ : nullptr;
  BulkExecContext ctx(graph_, config_, probe_reads_, read_counter_,
                      bulk_staged_rows_.data(), stride, rng);
  protocol_.execute_selected(
      ctx, bulk_actions_, std::span<const ProcessId>(selection_.data(), selected),
      0, selected);
  for (std::size_t i = 0; i < selected; ++i) {
    if (staged_[i].action == Protocol::kDisabled) continue;
    const ProcessId p = selection_[i];
    ++info.fired;
    const bool changed = commit_staged_row(i);
    mark_probe_dirty(p);
    mark_solo_dirty(p);
    if (changed) {
      info.comm_changed = true;
      note_comm_changed(p);
    }
  }
}

void Engine::set_parallel_threads(int threads) {
  SSS_REQUIRE(threads >= 1, "parallel thread count must be at least 1");
  if (threads == parallel_threads_) return;
  parallel_threads_ = threads;
  pool_.reset();
  worker_states_.clear();
  if (threads > 1) {
    pool_ = std::make_unique<StepPool>(threads);
    worker_states_.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      worker_states_.emplace_back(read_counter_);
    }
  }
}

bool Engine::execute_certified(ProcessId p, int action, ReadLogger* logger,
                               std::vector<PendingWrite>& writes,
                               bool& comm_write_attempted) {
  // The shared setup of every execution the engine runs off the model rng
  // stream: a private scratch rng (its values never escape — a draw either
  // asserts or invalidates the result) with the empty random script
  // installed, making draw attempts observable. This is the engine's one
  // "no randomness in certified paths" checkpoint: a protocol that
  // declared is_probabilistic() == false and draws anyway is caught here
  // instead of silently diverging from the serial rng stream. Returns
  // false iff the action attempted a draw (possible only for declared
  // probabilistic protocols, whose callers treat the result as
  // uncertifiable).
  static const std::vector<Value> kNoScript;
  Rng scratch_rng(0x9a7a11e1ULL);
  ActionContext ctx(graph_, config_, p, scratch_rng, logger, &writes);
  ctx.set_random_script(&kNoScript);
  protocol_.execute(action, ctx);
  comm_write_attempted = ctx.comm_write_attempted();
  const bool drew = !ctx.random_draws().empty();
  SSS_ASSERT(!drew || protocol_.is_probabilistic(),
             "a protocol declaring is_probabilistic() == false drew "
             "randomness inside a certified execution path");
  return !drew;
}

bool Engine::verified_self_loop(ProcessId p, int action) {
  // A simulator device like the probes: no read logging, writes discarded
  // before returning. An action that consumes randomness cannot be
  // certified from one sample and is conservatively treated as live.
  bool comm_write_attempted = false;
  if (!execute_certified(p, action, nullptr, frozen_scratch_,
                         comm_write_attempted)) {
    return false;
  }
  for (const PendingWrite& write : frozen_scratch_) {
    const Value current = write.is_comm
                              ? config_.comm(p, write.var)
                              : config_.internal_var(p, write.var);
    if (write.value != current) return false;
  }
  return true;
}

void Engine::set_exclude_frozen(bool on) {
  if (on == exclude_frozen_) return;
  exclude_frozen_ = on;
  if (on) {
    // Classification is refreshed through the probe dirty queue, so force
    // a full pass: clean probes would otherwise keep stale frozen bits.
    std::fill(frozen_.begin(), frozen_.end(), 0);
    active_.reset(graph_.num_vertices());
    for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
      mark_probe_dirty(p);
    }
  }
}

bool Engine::is_frozen(ProcessId p) {
  SSS_REQUIRE(p >= 0 && p < graph_.num_vertices(), "process id out of range");
  if (!exclude_frozen_) return false;
  refresh_enabled();
  return frozen_[static_cast<std::size_t>(p)] != 0;
}

bool Engine::is_enabled(ProcessId p) {
  SSS_REQUIRE(p >= 0 && p < graph_.num_vertices(), "process id out of range");
  refresh_enabled();
  return enabled_.test(p);
}

int Engine::num_enabled() {
  refresh_enabled();
  return enabled_.count();
}

bool Engine::quiescent() const {
  return is_comm_quiescent(graph_, protocol_, config_);
}

bool Engine::comm_quiescent_cached() {
  while (!solo_dirty_queue_.empty()) {
    const ProcessId p = solo_dirty_queue_.back();
    solo_dirty_queue_.pop_back();
    solo_dirty_[static_cast<std::size_t>(p)] = 0;
    // The shared decision procedure of is_comm_quiescent, on this one
    // process; it restores config_ before returning. The margin honors
    // the protocol's own demand (wrapper protocols need deeper probes).
    const std::uint8_t active =
        solo_would_write_comm(graph_, protocol_, config_, p, solo_scratch_,
                              solo_saved_row_,
                              std::max(QuiescenceOptions{}.margin,
                                       protocol_.solo_quiescence_margin()))
            ? 1
            : 0;
    solo_active_count_ +=
        static_cast<int>(active) -
        static_cast<int>(solo_active_[static_cast<std::size_t>(p)]);
    solo_active_[static_cast<std::size_t>(p)] = active;
  }
  return solo_active_count_ == 0;
}

void Engine::attach_read_logger(ReadLogger* logger) {
  logger_mux_.add(logger);
  // An external observer sees reads through the order-sensitive mux, so
  // its presence pins the serial scalar execution path (invariants 6, 7).
  ++external_loggers_;
}

void Engine::detach_read_logger(ReadLogger* logger) {
  logger_mux_.remove(logger);
  if (external_loggers_ > 0) --external_loggers_;
}

std::uint64_t Engine::rounds_inclusive() const {
  return rounds_completed_ + (steps_ > steps_at_round_start_ ? 1 : 0);
}

void Engine::reset_round() {
  // Re-establish the between-steps invariant for the fresh round: the
  // processes disabled right now are "disabled at some moment during the
  // round" from its very first step (their enabledness cannot change
  // before the next step's refresh, which is exactly the pre-step view the
  // full-scan engine used). One O(n) walk per completed round replaces the
  // per-step walk.
  refresh_enabled();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    if (!enabled_.test(p) ||
        (exclude_frozen_ && frozen_[static_cast<std::size_t>(p)])) {
      covered_[static_cast<std::size_t>(p)] = 1;
      ++covered_count_;
    }
  }
  steps_at_round_start_ = steps_;
}

Engine::StepInfo Engine::step() {
  refresh_enabled();

  selection_.clear();
  // Frozen exclusion: hand the daemon the active subset, unless that
  // would empty a non-empty enabled set (all enabled processes frozen) —
  // selection must stay well-formed, and selecting a frozen self-loop is
  // harmless.
  const EnabledSet& sampled =
      exclude_frozen_ && active_.count() > 0 ? active_ : enabled_;
  daemon_->select(graph_, sampled, rng_, selection_);
  SSS_ASSERT(!selection_.empty(), "daemon selected an empty set");
  // The Daemon contract (strictly ascending, hence distinct) replaces the
  // old per-step sort+unique normalization. The check is always on — a
  // duplicate would double-fire a process and silently corrupt metrics —
  // but O(k), unlike the O(k log k) sort it retired.
  for (std::size_t i = 1; i < selection_.size(); ++i) {
    SSS_ASSERT(selection_[i - 1] < selection_[i],
               "daemon selections must be strictly ascending");
  }

  read_counter_.begin_step();

  const std::size_t selected = selection_.size();
  if (staged_.size() < selected) staged_.resize(selected);
  StepInfo info;
  info.selected = static_cast<int>(selected);

  // Parallel dispatch (invariant 7): probabilistic protocols must consume
  // rng_ in ascending selection order, and external read loggers observe
  // reads through the order-sensitive mux — both pin the serial path.
  // The serial path then picks between the bulk-execute kernel
  // (invariant 6) and the scalar loop. Cost gates aside, all three paths
  // produce bit-identical state.
  if (pool_ != nullptr && selected >= 2 && !protocol_.is_probabilistic() &&
      external_loggers_ == 0) {
    parallel_phases(selected, info);
  } else if (use_bulk_execute(selected)) {
    bulk_phases(selected, info);
  } else {
    // Phase 1: every selected process evaluates against the gamma_i
    // snapshot. The guard half is replayed from the memo (invariant 4):
    // the refresh above drained the dirty queue, so each memo holds
    // exactly the action and read log a live first_enabled run would
    // produce now. staged_ grows monotonically and its write buffers keep
    // their capacity, so this loop allocates nothing in steady state.
    for (std::size_t i = 0; i < selected; ++i) {
      const ProcessId p = selection_[i];
      ProcessStep& staged = staged_[i];
      staged.writes.clear();
      staged.comm_write_attempted = false;
      for (const auto& [subject, var] :
           probe_reads_[static_cast<std::size_t>(p)]) {
        logger_mux_.on_read(p, subject, var);
      }
      staged.action = probe_action_[static_cast<std::size_t>(p)];
      if (staged.action == Protocol::kDisabled) continue;
      ActionContext action(graph_, config_, p, rng_, &logger_mux_,
                           &staged.writes);
      protocol_.execute(staged.action, action);
      staged.comm_write_attempted = action.comm_write_attempted();
    }

    // Phase 2: simultaneous commit forms gamma_{i+1}.
    for (std::size_t i = 0; i < selected; ++i) {
      const ProcessId p = selection_[i];
      const ProcessStep& staged = staged_[i];
      if (staged.action == Protocol::kDisabled) continue;
      ++info.fired;
      const bool changed = commit_writes(config_, p, staged.writes);
      // Any fired action may change the process's own state, so its cached
      // enabledness and solo-quiescence answers are stale either way.
      mark_probe_dirty(p);
      mark_solo_dirty(p);
      if (changed) {
        info.comm_changed = true;
        note_comm_changed(p);
      }
    }
  }

  ++steps_;

  // Round accounting: selected processes are covered; every process
  // disabled in the pre-step configuration is already covered by the
  // refresh/reset invariant (see file comment in engine.hpp).
  for (std::size_t i = 0; i < selected; ++i) cover(selection_[i]);
  if (covered_count_ == graph_.num_vertices()) {
    ++rounds_completed_;
    reset_round();
  }

  if (info.comm_changed) {
    last_comm_change_step_ = steps_;
    rounds_at_last_comm_change_ = rounds_inclusive();
  }

  if (trace_ != nullptr) {
    TraceEvent event;
    event.step = steps_;
    event.selected = selection_;
    event.actions.reserve(selected);
    for (std::size_t i = 0; i < selected; ++i) {
      event.actions.push_back(staged_[i].action);
    }
    event.comm_changed = info.comm_changed;
    trace_->record(std::move(event));
  }
  return info;
}

void Engine::note_comm_changed(ProcessId p) {
  // A changed communication variable can flip the enabledness (and the
  // solo-quiescence answer) of every neighbor: their guards read it.
  for (ProcessId q : graph_.neighbors(p)) {
    mark_probe_dirty(q);
    mark_solo_dirty(q);
  }
}

RunStats Engine::run(const RunOptions& options) {
  RunStats stats;
  const std::uint64_t base_steps = steps_;
  const std::uint64_t base_rounds = rounds_inclusive();
  const std::uint64_t base_reads = read_counter_.total_reads();
  const std::uint64_t base_bits = read_counter_.total_bits();
  const std::uint64_t patience =
      options.quiescence_patience != 0
          ? options.quiescence_patience
          : std::max<std::uint64_t>(
                16, static_cast<std::uint64_t>(graph_.num_vertices()));

  auto relative_silence_point = [&](RunStats& out) {
    out.steps_to_silence = last_comm_change_step_ > base_steps
                               ? last_comm_change_step_ - base_steps
                               : 0;
    out.rounds_to_silence = rounds_at_last_comm_change_ > base_rounds
                                ? rounds_at_last_comm_change_ - base_rounds
                                : 0;
  };

  auto check_legitimate = [&]() {
    if (stats.reached_legitimate || !options.legitimacy) return;
    if (options.legitimacy(graph_, config_)) {
      stats.reached_legitimate = true;
      stats.steps_to_legitimate = steps_ - base_steps;
      stats.rounds_to_legitimate = rounds_inclusive() - base_rounds;
    }
  };

  // Certification is the cached check (exact, cost O(stale entries)); the
  // one silence it reports per run is re-confirmed against the full solo
  // simulation so a cache bug can never mis-certify.
  auto certified_silent = [&]() {
    if (!comm_quiescent_cached()) return false;
    SSS_ASSERT(is_comm_quiescent(graph_, protocol_, config_),
               "solo-quiescence cache certified a non-silent configuration");
    return true;
  };

  check_legitimate();
  if (options.stop_on_silence && certified_silent()) {
    stats.silent = true;
    relative_silence_point(stats);
  } else {
    std::uint64_t next_quiescence_check = steps_ + patience;
    while (steps_ - base_steps < options.max_steps) {
      const StepInfo info = step();
      check_legitimate();
      if (info.comm_changed) {
        next_quiescence_check = steps_ + patience;
      } else if (options.stop_on_silence && steps_ >= next_quiescence_check) {
        if (certified_silent()) {
          stats.silent = true;
          relative_silence_point(stats);
          break;
        }
        next_quiescence_check = steps_ + patience;
      }
    }
    if (!stats.silent && options.stop_on_silence && certified_silent()) {
      stats.silent = true;
      relative_silence_point(stats);
    }
  }

  stats.steps = steps_ - base_steps;
  stats.rounds = rounds_inclusive() - base_rounds;
  stats.total_reads = read_counter_.total_reads() - base_reads;
  stats.total_read_bits = read_counter_.total_bits() - base_bits;
  stats.max_reads_per_process_step = read_counter_.max_reads_per_process_step();
  stats.max_bits_per_process_step = read_counter_.max_bits_per_process_step();
  return stats;
}

}  // namespace sss
