#pragma once
/// \file configuration.hpp
/// A configuration is an instance of the states of all processes
/// (Section 2). Stored flat for speed and hashability; the layout is
/// [process 0: comm vars, internal vars][process 1: ...] ...

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/spec.hpp"
#include "support/rng.hpp"

namespace sss {

class Configuration {
 public:
  /// All variables initialized to the low end of their domains.
  Configuration(const Graph& g, const ProtocolSpec& spec);

  int num_processes() const { return num_processes_; }
  int num_comm() const { return num_comm_; }
  int num_internal() const { return num_internal_; }

  Value comm(ProcessId p, int var) const {
    return data_[index_comm(p, var)];
  }
  void set_comm(ProcessId p, int var, Value v) {
    data_[index_comm(p, var)] = v;
  }
  Value internal_var(ProcessId p, int var) const {
    return data_[index_internal(p, var)];
  }
  void set_internal(ProcessId p, int var, Value v) {
    data_[index_internal(p, var)] = v;
  }

  /// The communication state of p (Section 2): its comm variables only.
  std::vector<Value> comm_state(ProcessId p) const;

  /// Allocation-free view of p's communication state. The comm variables
  /// of a process are contiguous in the flat layout, so this is a plain
  /// slice; valid until the configuration is destroyed or reassigned.
  std::span<const Value> comm_span(ProcessId p) const {
    return {data_.data() + index_comm(p, 0),
            static_cast<std::size_t>(num_comm_)};
  }

  /// Row stride of the flat layout: num_comm + num_internal values per
  /// process. With `row`, the slab view bulk guard sweeps iterate over.
  int stride() const { return stride_; }

  /// Pointer to p's row in the flat layout: comm variables at [0,
  /// num_comm), internal variables behind them. Valid until the
  /// configuration is destroyed or reassigned.
  const Value* row(ProcessId p) const {
    return data_.data() +
           static_cast<std::size_t>(p) * static_cast<std::size_t>(stride_);
  }

  /// Copies all of `other`'s state of process p into this configuration.
  /// Used by the Theorem 1/2 stitching constructions, which transplant
  /// process states between silent configurations.
  void copy_process_state(ProcessId p, const Configuration& other,
                          ProcessId other_p);

  /// True if the two configurations agree on every communication variable.
  bool same_comm(const Configuration& other) const;

  bool operator==(const Configuration& other) const = default;

  std::size_t hash() const;

  /// Raw flat storage; used by the exhaustive enumerator.
  const std::vector<Value>& raw() const { return data_; }
  std::vector<Value>& raw() { return data_; }

 private:
  std::size_t index_comm(ProcessId p, int var) const {
    return static_cast<std::size_t>(p) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(var);
  }
  std::size_t index_internal(ProcessId p, int var) const {
    return index_comm(p, num_comm_ + var);
  }

  int num_processes_ = 0;
  int num_comm_ = 0;
  int num_internal_ = 0;
  int stride_ = 0;
  std::vector<Value> data_;
};

/// Draws every non-constant variable uniformly from its domain: an
/// *arbitrary configuration*, the universal starting point of
/// self-stabilization. Constant variables are left untouched.
void randomize_configuration(const Graph& g, const ProtocolSpec& spec,
                             Configuration& config, Rng& rng);

/// Checks every variable is inside its domain (constants included).
bool configuration_in_domains(const Graph& g, const ProtocolSpec& spec,
                              const Configuration& config);

}  // namespace sss
