#pragma once
/// \file churn.hpp
/// Continuous-disruption runtime: the production-shaped regime the clean
/// "randomize once, run to silence" experiments never exercise.
///
/// Self-stabilization is the guarantee that matters when the system is
/// *never* fault-free. `ChurnRunner` drives an engine through a measured
/// window under a seeded stream of disruptions — transient state
/// corruption of random victim sets, whole-node resets, and topology
/// churn (edge add/remove, node join/leave) — and accumulates
/// availability-style service metrics in `ChurnStats`:
///
///  * fraction of window steps the configuration satisfies the bound
///    legitimacy predicate (availability);
///  * recovery-time samples — rounds from each disruption to the next
///    re-certified silence (exact quiescence check), summarized as
///    p50/p90/p99 by `summarize_churn`;
///  * disruptions survived, split by kind, and the reads/bits spent while
///    recovering vs while idling at silence.
///
/// Determinism contract: every stochastic choice — whether a step fires
/// an event, the kind, the victims, the corrupted values, topology picks,
/// the joiner's randomized state — draws from one `Rng` seeded by
/// `ChurnOptions::seed`, owned by the runner. Two runners constructed
/// with identical inputs therefore produce identical trajectories, which
/// is both the thread-count-invariance guarantee the batch runner needs
/// (churn state is per-trial, never shared) and the lockstep proof
/// device: `tests/test_churn.cpp` drives `ChurnRunner<Engine>` against
/// `ChurnRunner<ReferenceEngine>` step for step, topology events
/// included, and asserts identical configurations, rounds, and read
/// metrics throughout.
///
/// Topology churn and the re-attach path: `Graph` is an immutable CSR, so
/// a topology event builds a *new* graph, a new protocol instance (via
/// the caller's factory — registry-backed in the experiment lab), and a
/// new engine with a deterministically derived seed, then carries the
/// surviving state over: each surviving process keeps its variable values
/// clamped into the (possibly shrunk) domains of the new topology,
/// communication constants are re-installed by the new protocol, and
/// joined nodes start from uniformly random state. Process ids stay
/// stable — a join appends id n, a leave removes only the current
/// highest id (and only when it is unprotected and the remainder stays
/// connected) — so id-valued parameters (a BFS root, an election id
/// scheme) survive every event. The daemon and its fairness history
/// restart with the new engine; documented, deterministic, and identical
/// on both engines.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/engine.hpp"

namespace sss {

/// Builds the protocol instance for a (possibly churned) topology. The
/// experiment lab supplies a registry-backed factory capturing the
/// protocol name and parameters.
using ProtocolFactory =
    std::function<std::unique_ptr<Protocol>(const Graph&)>;

struct ChurnOptions {
  /// Per-step Bernoulli event rate; mutually exclusive with `period`.
  double event_probability = 0.0;
  /// Deterministic event period: an event fires before every `period`-th
  /// window step. 0 disables; exactly one of the two schedules must be
  /// set.
  std::uint64_t period = 0;

  /// Measured window length in engine steps (after initial stabilization).
  std::uint64_t window_steps = 2000;
  /// Step budget of the uncounted initial stabilization phase.
  std::uint64_t stabilize_steps = 400'000;
  /// Seed of the churn event stream (schedule, kinds, victims, values,
  /// topology picks). Independent of the engine seed.
  std::uint64_t seed = 0xC4A21ULL;

  /// Corruption events redraw 1..max_victims random victims (clamped to n).
  int max_victims = 2;

  /// Relative weights of the event kinds; at least one must be positive.
  /// Topology events require a ProtocolFactory (owning-mode runner) and
  /// split uniformly between edge add, edge remove, node join, and node
  /// leave.
  int corruption_weight = 1;
  int node_reset_weight = 0;
  int topology_weight = 0;

  /// Comm-change-free steps before attempting the exact re-certification
  /// check; 0 picks max(16, n) like RunOptions::quiescence_patience.
  std::uint64_t recovery_patience = 0;

  /// Ids node-leave events never remove (defaults to the conventional
  /// root/reference process 0). A leave only ever removes the current
  /// highest id, so every protected id below it survives all events.
  std::vector<ProcessId> protected_processes = {0};
  /// Node-count bounds for topology churn; 0 = automatic (initial n + 8,
  /// and max(2, initial n / 2)).
  int max_nodes = 0;
  int min_nodes = 0;

  /// Forwarded to the engine(s) the runner constructs.
  SweepMode sweep_mode = SweepMode::kAuto;
  bool exclude_frozen = false;
};

/// Availability accumulators of one churn window.
struct ChurnStats {
  std::uint64_t window_steps = 0;
  /// Steps whose post-step configuration satisfied the legitimacy
  /// predicate (0 when no predicate is bound).
  std::uint64_t legitimate_steps = 0;

  std::uint64_t disruptions = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t node_resets = 0;
  std::uint64_t edge_adds = 0;
  std::uint64_t edge_removes = 0;
  std::uint64_t node_joins = 0;
  std::uint64_t node_leaves = 0;
  /// Events whose preconditions failed (e.g. no removable edge); they
  /// consume schedule draws but disrupt nothing.
  std::uint64_t skipped_events = 0;

  /// Completed recovery intervals: disruption (a later disruption during
  /// recovery extends the same interval) to re-certified silence.
  std::uint64_t recoveries = 0;
  /// One sample per completed interval, in rounds and in window steps.
  std::vector<std::uint64_t> recovery_rounds;
  std::vector<std::uint64_t> recovery_step_counts;

  /// Window steps (and model reads/bits) spent recovering vs idle-silent.
  std::uint64_t recovering_steps = 0;
  std::uint64_t idle_steps = 0;
  std::uint64_t recovery_reads = 0;
  std::uint64_t idle_reads = 0;
  std::uint64_t recovery_bits = 0;
  std::uint64_t idle_bits = 0;

  /// Whether the uncounted phase-0 stabilization certified silence.
  bool initial_silent = false;

  /// legitimate_steps / window_steps (0 when the window is empty).
  double availability() const;
  std::uint64_t topology_events() const {
    return edge_adds + edge_removes + node_joins + node_leaves;
  }
  /// Nearest-rank percentile of the recovery_rounds samples (0 if none).
  std::uint64_t recovery_rounds_percentile(double pct) const;
  /// recovery_reads / disruptions (0 when no disruption fired).
  double reads_per_disruption() const;
};

/// Per-item churn reduction, pooled over a sweep's trials in trial order.
struct ChurnSweepSummary {
  int runs = 0;
  int initial_silent_runs = 0;
  std::uint64_t disruptions = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t skipped_events = 0;
  std::uint64_t topology_events = 0;
  double availability_mean = 0.0;
  /// Percentiles of the pooled recovery_rounds samples.
  double recovery_rounds_p50 = 0.0;
  double recovery_rounds_p90 = 0.0;
  double recovery_rounds_p99 = 0.0;
  /// Pooled recovery reads / pooled disruptions.
  double reads_per_disruption = 0.0;
  /// Pooled idle reads / pooled idle steps.
  double idle_reads_per_step = 0.0;
};

ChurnSweepSummary summarize_churn(const ChurnStats* stats, int count);

/// Drives one engine through stabilization plus a churn window. EngineT is
/// `Engine` or `ReferenceEngine` (explicitly instantiated in churn.cpp);
/// the template is what makes the lockstep proof a plain side-by-side run
/// of the same driver code.
template <typename EngineT>
class ChurnRunner {
 public:
  /// Owning mode: the runner owns the (initial) graph and rebuilds
  /// graph/protocol/engine on topology events via `factory`.
  ChurnRunner(Graph initial, ProtocolFactory factory, std::string daemon_name,
              std::uint64_t engine_seed, ChurnOptions options,
              LegitimacyPredicate legitimacy = {});

  /// Borrowed mode: runs on the caller's graph/protocol (which must
  /// outlive the runner); topology_weight must be 0.
  ChurnRunner(const Graph& g, const Protocol& protocol,
              std::string daemon_name, std::uint64_t engine_seed,
              ChurnOptions options, LegitimacyPredicate legitimacy = {});

  /// Phase 0: runs to silence (uncounted); records initial_silent.
  RunStats stabilize();

  /// One window step: possibly injects an event, steps the engine, and
  /// accumulates stats. Returns false once the window is exhausted.
  bool step_once();
  void run_window() {
    while (step_once()) {
    }
  }

  const ChurnStats& stats() const { return stats_; }
  const Graph& graph() const { return *graph_; }
  EngineT& engine() { return *engine_; }
  const Configuration& config() const { return engine_->config(); }

  /// Lifetime totals across every engine incarnation (topology re-attach
  /// replaces the engine, whose own counters restart).
  std::uint64_t total_rounds() const;
  std::uint64_t total_reads() const;
  std::uint64_t total_bits() const;

 private:
  void validate_options() const;
  /// Applies sweep-mode / frozen-exclusion options to the current engine
  /// (no-ops on engine types without those knobs).
  void configure_engine();
  void inject_event();
  void corrupt(int victim_count);
  /// Attempts one topology mutation of `subkind` on the current edge
  /// list; returns false when preconditions fail (event skipped).
  bool mutate_topology(int subkind);
  /// Rebuilds graph/protocol/engine for `new_n` and `edges_`, carrying
  /// surviving state over (see file comment). Returns false (and restores
  /// nothing — callers snapshot edges_) when the factory rejects the new
  /// topology.
  bool reattach(int new_n);
  void mark_disruption();
  std::uint64_t recovery_patience() const;

  std::unique_ptr<Graph> owned_graph_;
  std::unique_ptr<Protocol> owned_protocol_;
  const Graph* graph_ = nullptr;
  const Protocol* protocol_ = nullptr;
  ProtocolFactory factory_;
  std::string daemon_name_;
  std::uint64_t engine_seed_ = 0;
  ChurnOptions options_;
  LegitimacyPredicate legitimacy_;
  std::unique_ptr<EngineT> engine_;
  Rng churn_rng_;
  ChurnStats stats_;

  std::vector<Edge> edges_;
  int min_nodes_ = 2;
  int max_nodes_ = 0;

  std::uint64_t window_step_ = 0;
  bool recovering_ = false;
  std::uint64_t recovery_start_rounds_ = 0;
  std::uint64_t recovery_start_step_ = 0;
  std::uint64_t quiet_streak_ = 0;
  bool legit_cached_ = false;
  bool legit_valid_ = false;

  std::uint64_t rounds_offset_ = 0;
  std::uint64_t reads_offset_ = 0;
  std::uint64_t bits_offset_ = 0;
};

}  // namespace sss
