#pragma once
/// \file quiescence.hpp
/// Exact silence detection (Definition 3).
///
/// A configuration is *silent* if no computation from it ever changes a
/// communication variable. Because a process's behaviour depends only on
/// its own state and its neighbors' communication variables, freezing all
/// communication variables decouples the processes: each one evolves solo.
/// For the protocols in this library the internal state (the cur pointer)
/// is periodic within delta.p solo activations, so running each process
/// solo for delta.p + 2 activations on a scratch copy either surfaces an
/// attempted communication write (not silent) or proves none is reachable
/// (silent). Write *attempts* are used rather than value changes so that a
/// randomized action redrawing the old value cannot fake silence.

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/protocol.hpp"

namespace sss {

struct QuiescenceOptions {
  /// Extra solo activations beyond degree(p); 2 covers the pointer cycling
  /// plus one confirmation activation.
  int margin = 2;
};

/// The per-process core of the silence check: would `p`, activated solo
/// against the frozen communication state in `config`, attempt a
/// communication write within degree(p) + margin activations? This single
/// decision procedure backs both the full check below and the Engine's
/// incremental solo-quiescence cache, so the two can never diverge.
///
/// `config` is mutated only transiently: p's row is saved into `saved_row`
/// and restored before returning (solo activations write nothing but p's
/// own variables). `scratch` and `saved_row` are reusable buffers so a
/// caller probing many processes allocates nothing in steady state. The
/// internal scratch rng only feeds randomized actions, whose outcome never
/// affects *whether* a communication write is attempted.
bool solo_would_write_comm(const Graph& g, const Protocol& protocol,
                           Configuration& config, ProcessId p,
                           ProcessStep& scratch, std::vector<Value>& saved_row,
                           int margin);

/// True iff `config` is a silent configuration of `protocol` on `g`.
bool is_comm_quiescent(const Graph& g, const Protocol& protocol,
                       const Configuration& config,
                       const QuiescenceOptions& options = {});

}  // namespace sss
