#pragma once
/// \file bulk.hpp
/// Bulk guard evaluation: the one-pass alternative to n per-process probes.
///
/// Under co-firing daemons (synchronous, distributed) almost every probe
/// cache entry is stale after every step, so the engine's refresh degrades
/// to n virtual `first_enabled` calls, each paying a GuardContext
/// construction, range-checked neighbor lookups, and a virtual read-logger
/// call per neighbor read. A protocol that opts into the bulk path instead
/// evaluates *all* guards in one `sweep_enabled` pass written directly
/// against the CSR slabs (`Graph::csr_*`) and the flat configuration rows
/// (`Configuration::row`) — no virtual dispatch inside the loop, no
/// per-read bounds checks, and loops the compiler can unroll or vectorize.
///
/// The sweep owes the engine exactly what n scalar probes would have
/// produced, because the engine *replays* this data later:
///
///  * the first-enabled action per process (`EnabledBitmap`), which the
///    engine commits into its probe memo and enabled set; and
///  * the guard's neighbor-read log per process (`BulkGuardContext::log`),
///    in the order the scalar guard would have issued the reads — this is
///    the sequence `Engine::step` replays into the model's read counters
///    when the process is selected, so any deviation shows up as a read-
///    metric divergence from `ReferenceEngine`.
///
/// Sweeps must therefore mirror the *lazy* read structure of their scalar
/// guards (a short-circuited conjunct whose left side decides must not
/// read its right side), not just compute the same action. The lockstep
/// suites (tests/test_bulk_sweep.cpp, the property harness with
/// SweepMode::kForceBulk) hold implementations to that contract.
///
/// Bulk *execution* (`BulkExecContext`, `Protocol::execute_selected`) is
/// the same idea applied to the other half of a deployed synchronous step:
/// phase-1 memo replay plus action execution for a whole selection in one
/// pass over the slabs, instead of one ActionContext + virtual `execute`
/// per selected process. The kernel stages each fired process's
/// post-state as a full configuration row; the engine commits the rows
/// under the exact dirty-queue/covering/solo-cache treatment of the
/// scalar commit loop, so trajectories and metrics stay bit-identical by
/// construction. The per-process read discipline is load-bearing: a
/// kernel must interleave reads per process (replay p's guard memo, then
/// log p's action reads, then move to the next process) because the
/// parallel path's WorkerReadTally dedups per contiguous reader run.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/context.hpp"
#include "support/require.hpp"

namespace sss {

/// Per-process outcome of one whole-network guard sweep: the index of the
/// first enabled action, or kDisabled. The name reflects what the engine
/// derives from it — membership of the enabled set — but the action index
/// itself is kept because the engine's guard memo replays it on selection.
class EnabledBitmap {
 public:
  /// Matches Protocol::kDisabled (static_assert'd in protocol.cpp).
  static constexpr std::int8_t kDisabled = -1;

  /// Sizes the bitmap to ids [0, universe) with every process disabled;
  /// a sweep only touches the enabled entries it finds. Reuses capacity.
  void reset(int universe) {
    actions_.assign(static_cast<std::size_t>(universe), kDisabled);
  }

  /// Range variant for partitioned sweeps: disables ids [begin, end) only,
  /// leaving the rest of the slab untouched. The engine's parallel bulk
  /// refresh has each worker reset exactly the range it is about to sweep,
  /// so the whole-slab fill of `reset` is not serialized. The bitmap must
  /// already be sized (reset(universe) once beforehand).
  void reset_range(ProcessId begin, ProcessId end) {
    std::fill(actions_.begin() + begin, actions_.begin() + end, kDisabled);
  }

  int universe() const { return static_cast<int>(actions_.size()); }

  void set_action(ProcessId p, int action) {
    actions_[static_cast<std::size_t>(p)] = static_cast<std::int8_t>(action);
  }
  int action(ProcessId p) const {
    return actions_[static_cast<std::size_t>(p)];
  }
  bool enabled(ProcessId p) const {
    return actions_[static_cast<std::size_t>(p)] != kDisabled;
  }

  /// Raw slab for sweep kernels that fill actions in a tight loop.
  std::int8_t* actions() { return actions_.data(); }
  const std::int8_t* actions() const { return actions_.data(); }

 private:
  std::vector<std::int8_t> actions_;
};

/// Read-only view a sweep evaluates against, plus the per-process read-log
/// sink. The logs alias the engine's guard memo (`Engine::probe_reads_`),
/// cleared by the engine before the sweep, so a sweep appends each
/// process's reads exactly once and in scalar-guard order.
class BulkGuardContext {
 public:
  /// One process's guard read log: (neighbor id, comm var) per read.
  using ReadLog = std::vector<std::pair<ProcessId, int>>;

  BulkGuardContext(const Graph& g, const Configuration& config,
                   std::vector<ReadLog>& logs)
      : graph_(g), config_(config), logs_(logs) {}

  const Graph& graph() const { return graph_; }
  const Configuration& config() const { return config_; }

  /// Records that p's guard read communication variable `comm_var` of its
  /// neighbor `subject` — the bulk counterpart of the probe recorder's
  /// ReadLogger::on_read.
  void log(ProcessId p, ProcessId subject, int comm_var) {
    logs_[static_cast<std::size_t>(p)].push_back({subject, comm_var});
  }

 private:
  const Graph& graph_;
  const Configuration& config_;
  std::vector<ReadLog>& logs_;
};

/// View a bulk-execute kernel runs against: the pre-step snapshot, the
/// guard memo to replay, a read sink, and the staging slab the kernel
/// writes post-state rows into. One context serves one selection slice
/// (the whole selection serially, or a worker's contiguous slice on the
/// parallel path — the read sink is the engine's step counter in the
/// first case and the worker's tally in the second).
///
/// The kernel contract, per selection index i with process p:
///  1. `replay_guard_reads(p)` — always, enabled or not: the scalar phase
///     1 replays the memo for every *selected* process, because its guard
///     really ran.
///  2. If the action is kDisabled, move on (nothing is staged).
///  3. Otherwise `stage(i, p)` and overwrite exactly the slots the scalar
///     action writes, logging every action-time neighbor read through
///     `log` in the scalar order. Values are read from the snapshot
///     (`config()`), never from staged rows — all selected processes see
///     gamma_i.
class BulkExecContext {
 public:
  using ReadLog = BulkGuardContext::ReadLog;

  /// `stride` values per staged row; `rng` is the model stream on the
  /// serial path for probabilistic protocols and nullptr everywhere else
  /// (see random_range).
  BulkExecContext(const Graph& g, const Configuration& config,
                  const std::vector<ReadLog>& guard_logs, ReadLogger& logger,
                  Value* staged_rows, std::size_t stride, Rng* rng)
      : graph_(g),
        config_(config),
        guard_logs_(guard_logs),
        logger_(logger),
        staged_rows_(staged_rows),
        stride_(stride),
        rng_(rng) {}

  const Graph& graph() const { return graph_; }
  const Configuration& config() const { return config_; }

  /// Phase 1's memo replay for one selected process: feeds the guard's
  /// recorded reads into the step's read accounting, exactly as the
  /// scalar path replays them through the logger mux.
  void replay_guard_reads(ProcessId p) {
    for (const auto& [subject, var] : guard_logs_[static_cast<std::size_t>(p)]) {
      logger_.on_read(p, subject, var);
    }
  }

  /// Records an action-phase neighbor read — the bulk counterpart of
  /// ActionContext::nbr_comm's logging half (the kernel fetches the value
  /// itself from the slabs).
  void log(ProcessId p, ProcessId subject, int comm_var) {
    logger_.on_read(p, subject, comm_var);
  }

  /// Copies p's snapshot row into the staged slot of selection index i
  /// and returns it; the kernel overwrites the slots its action writes.
  /// Unwritten slots keeping their snapshot values is what makes the
  /// engine's whole-row commit equivalent to the scalar pending-write
  /// commit.
  Value* stage(std::size_t i, ProcessId p) {
    Value* out = staged_rows_ + i * stride_;
    const Value* src = config_.row(p);
    std::copy(src, src + stride_, out);
    return out;
  }

  /// Uniform draw from {lo..hi}, identical to ActionContext::random_range
  /// without a script. Only legal on the serial path of a protocol that
  /// declares is_probabilistic() — there the engine wires the model rng
  /// and ascending selection order reproduces the scalar stream bit for
  /// bit. Everywhere else rng is null and the assert is the bulk
  /// counterpart of the engine's "no randomness in certified paths"
  /// contract.
  Value random_range(Value lo, Value hi) {
    SSS_ASSERT(rng_ != nullptr,
               "bulk-execute kernels may draw randomness only on the serial "
               "path of a protocol declaring is_probabilistic()");
    return static_cast<Value>(rng_->range(lo, hi));
  }

 private:
  const Graph& graph_;
  const Configuration& config_;
  const std::vector<ReadLog>& guard_logs_;
  ReadLogger& logger_;
  Value* staged_rows_;
  std::size_t stride_;
  Rng* rng_;
};

}  // namespace sss
