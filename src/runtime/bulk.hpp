#pragma once
/// \file bulk.hpp
/// Bulk guard evaluation: the one-pass alternative to n per-process probes.
///
/// Under co-firing daemons (synchronous, distributed) almost every probe
/// cache entry is stale after every step, so the engine's refresh degrades
/// to n virtual `first_enabled` calls, each paying a GuardContext
/// construction, range-checked neighbor lookups, and a virtual read-logger
/// call per neighbor read. A protocol that opts into the bulk path instead
/// evaluates *all* guards in one `sweep_enabled` pass written directly
/// against the CSR slabs (`Graph::csr_*`) and the flat configuration rows
/// (`Configuration::row`) — no virtual dispatch inside the loop, no
/// per-read bounds checks, and loops the compiler can unroll or vectorize.
///
/// The sweep owes the engine exactly what n scalar probes would have
/// produced, because the engine *replays* this data later:
///
///  * the first-enabled action per process (`EnabledBitmap`), which the
///    engine commits into its probe memo and enabled set; and
///  * the guard's neighbor-read log per process (`BulkGuardContext::log`),
///    in the order the scalar guard would have issued the reads — this is
///    the sequence `Engine::step` replays into the model's read counters
///    when the process is selected, so any deviation shows up as a read-
///    metric divergence from `ReferenceEngine`.
///
/// Sweeps must therefore mirror the *lazy* read structure of their scalar
/// guards (a short-circuited conjunct whose left side decides must not
/// read its right side), not just compute the same action. The lockstep
/// suites (tests/test_bulk_sweep.cpp, the property harness with
/// SweepMode::kForceBulk) hold implementations to that contract.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"

namespace sss {

/// Per-process outcome of one whole-network guard sweep: the index of the
/// first enabled action, or kDisabled. The name reflects what the engine
/// derives from it — membership of the enabled set — but the action index
/// itself is kept because the engine's guard memo replays it on selection.
class EnabledBitmap {
 public:
  /// Matches Protocol::kDisabled (static_assert'd in protocol.cpp).
  static constexpr std::int8_t kDisabled = -1;

  /// Sizes the bitmap to ids [0, universe) with every process disabled;
  /// a sweep only touches the enabled entries it finds. Reuses capacity.
  void reset(int universe) {
    actions_.assign(static_cast<std::size_t>(universe), kDisabled);
  }

  /// Range variant for partitioned sweeps: disables ids [begin, end) only,
  /// leaving the rest of the slab untouched. The engine's parallel bulk
  /// refresh has each worker reset exactly the range it is about to sweep,
  /// so the whole-slab fill of `reset` is not serialized. The bitmap must
  /// already be sized (reset(universe) once beforehand).
  void reset_range(ProcessId begin, ProcessId end) {
    std::fill(actions_.begin() + begin, actions_.begin() + end, kDisabled);
  }

  int universe() const { return static_cast<int>(actions_.size()); }

  void set_action(ProcessId p, int action) {
    actions_[static_cast<std::size_t>(p)] = static_cast<std::int8_t>(action);
  }
  int action(ProcessId p) const {
    return actions_[static_cast<std::size_t>(p)];
  }
  bool enabled(ProcessId p) const {
    return actions_[static_cast<std::size_t>(p)] != kDisabled;
  }

  /// Raw slab for sweep kernels that fill actions in a tight loop.
  std::int8_t* actions() { return actions_.data(); }
  const std::int8_t* actions() const { return actions_.data(); }

 private:
  std::vector<std::int8_t> actions_;
};

/// Read-only view a sweep evaluates against, plus the per-process read-log
/// sink. The logs alias the engine's guard memo (`Engine::probe_reads_`),
/// cleared by the engine before the sweep, so a sweep appends each
/// process's reads exactly once and in scalar-guard order.
class BulkGuardContext {
 public:
  /// One process's guard read log: (neighbor id, comm var) per read.
  using ReadLog = std::vector<std::pair<ProcessId, int>>;

  BulkGuardContext(const Graph& g, const Configuration& config,
                   std::vector<ReadLog>& logs)
      : graph_(g), config_(config), logs_(logs) {}

  const Graph& graph() const { return graph_; }
  const Configuration& config() const { return config_; }

  /// Records that p's guard read communication variable `comm_var` of its
  /// neighbor `subject` — the bulk counterpart of the probe recorder's
  /// ReadLogger::on_read.
  void log(ProcessId p, ProcessId subject, int comm_var) {
    logs_[static_cast<std::size_t>(p)].push_back({subject, comm_var});
  }

 private:
  const Graph& graph_;
  const Configuration& config_;
  std::vector<ReadLog>& logs_;
};

}  // namespace sss
