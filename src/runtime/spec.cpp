#include "runtime/spec.hpp"

#include <utility>

#include "support/require.hpp"

namespace sss {

VarSpec::VarSpec(std::string name, VarDomain fixed_domain, bool is_constant)
    : name_(std::move(name)),
      domain_([fixed_domain](const Graph&, ProcessId) { return fixed_domain; }),
      is_constant_(is_constant) {
  SSS_REQUIRE(fixed_domain.lo <= fixed_domain.hi, "empty variable domain");
}

VarSpec::VarSpec(std::string name, DomainFn domain, bool is_constant)
    : name_(std::move(name)),
      domain_(std::move(domain)),
      is_constant_(is_constant) {
  SSS_REQUIRE(static_cast<bool>(domain_), "domain function must be callable");
}

int ProtocolSpec::comm_state_bits(const Graph& g, ProcessId p) const {
  int bits = 0;
  for (const auto& var : comm) bits += var.domain(g, p).bits();
  return bits;
}

VarSpec::DomainFn domain_fixed(Value lo, Value hi) {
  SSS_REQUIRE(lo <= hi, "empty variable domain");
  return [lo, hi](const Graph&, ProcessId) { return VarDomain{lo, hi}; };
}

VarSpec::DomainFn domain_channel() {
  return [](const Graph& g, ProcessId p) {
    // Connected graphs with n >= 2 give every process a neighbor; protocol
    // constructors enforce that, so the domain is never empty here.
    return VarDomain{1, static_cast<Value>(g.degree(p))};
  };
}

VarSpec::DomainFn domain_channel_or_none() {
  return [](const Graph& g, ProcessId p) {
    return VarDomain{0, static_cast<Value>(g.degree(p))};
  };
}

}  // namespace sss
