#include "runtime/configuration.hpp"

#include "support/require.hpp"

namespace sss {

Configuration::Configuration(const Graph& g, const ProtocolSpec& spec)
    : num_processes_(g.num_vertices()),
      num_comm_(spec.num_comm()),
      num_internal_(spec.num_internal()),
      stride_(spec.stride()),
      data_(static_cast<std::size_t>(g.num_vertices()) *
                static_cast<std::size_t>(spec.stride()),
            0) {
  for (ProcessId p = 0; p < num_processes_; ++p) {
    for (int v = 0; v < num_comm_; ++v) {
      set_comm(p, v, spec.comm[static_cast<std::size_t>(v)].domain(g, p).lo);
    }
    for (int v = 0; v < num_internal_; ++v) {
      set_internal(p, v,
                   spec.internal[static_cast<std::size_t>(v)].domain(g, p).lo);
    }
  }
}

std::vector<Value> Configuration::comm_state(ProcessId p) const {
  std::vector<Value> out(static_cast<std::size_t>(num_comm_));
  for (int v = 0; v < num_comm_; ++v) {
    out[static_cast<std::size_t>(v)] = comm(p, v);
  }
  return out;
}

void Configuration::copy_process_state(ProcessId p, const Configuration& other,
                                       ProcessId other_p) {
  SSS_REQUIRE(other.stride_ == stride_,
              "configurations belong to different protocols");
  for (int v = 0; v < stride_; ++v) {
    data_[index_comm(p, v)] = other.data_[other.index_comm(other_p, v)];
  }
}

bool Configuration::same_comm(const Configuration& other) const {
  if (num_processes_ != other.num_processes_ || num_comm_ != other.num_comm_) {
    return false;
  }
  for (ProcessId p = 0; p < num_processes_; ++p) {
    for (int v = 0; v < num_comm_; ++v) {
      if (comm(p, v) != other.comm(p, v)) return false;
    }
  }
  return true;
}

std::size_t Configuration::hash() const {
  // FNV-1a over the flat data; collisions only cost model-checker time.
  std::size_t h = 1469598103934665603ULL;
  for (Value v : data_) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

void randomize_configuration(const Graph& g, const ProtocolSpec& spec,
                             Configuration& config, Rng& rng) {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    for (int v = 0; v < spec.num_comm(); ++v) {
      const auto& var = spec.comm[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      const VarDomain d = var.domain(g, p);
      config.set_comm(p, v, static_cast<Value>(rng.range(d.lo, d.hi)));
    }
    for (int v = 0; v < spec.num_internal(); ++v) {
      const auto& var = spec.internal[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      const VarDomain d = var.domain(g, p);
      config.set_internal(p, v, static_cast<Value>(rng.range(d.lo, d.hi)));
    }
  }
}

bool configuration_in_domains(const Graph& g, const ProtocolSpec& spec,
                              const Configuration& config) {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    for (int v = 0; v < spec.num_comm(); ++v) {
      if (!spec.comm[static_cast<std::size_t>(v)].domain(g, p).contains(
              config.comm(p, v))) {
        return false;
      }
    }
    for (int v = 0; v < spec.num_internal(); ++v) {
      if (!spec.internal[static_cast<std::size_t>(v)].domain(g, p).contains(
              config.internal_var(p, v))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace sss
