#pragma once
/// \file spec.hpp
/// Variable schemas for protocols in the paper's state model (Section 2).
///
/// Each process maintains *communication variables* (readable by neighbors)
/// and *internal variables* (private). Every variable ranges over a fixed
/// finite domain, which may depend on the process (e.g. cur.p ranges over
/// [1..delta.p]). The schema drives four substrates at once: arbitrary
/// initial configurations, fault injection, exhaustive enumeration for the
/// model checker, and communication-complexity accounting in bits.

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/bits.hpp"

namespace sss {

/// Values of protocol variables. Every domain in the paper is tiny; 32 bits
/// is generous.
using Value = std::int32_t;

/// Inclusive value range [lo, hi] of one variable at one process.
struct VarDomain {
  Value lo = 0;
  Value hi = 0;
  std::int64_t size() const {
    return static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo) + 1;
  }
  bool contains(Value v) const { return v >= lo && v <= hi; }
  /// Bits to encode one value (communication complexity unit, Definition 5).
  int bits() const { return ceil_log2(size()); }
};

/// Schema of a single variable. `is_constant` marks communication constants
/// such as the colors C.p of Protocols MIS and MATCHING: they are part of
/// the communication state (neighbors read them) but are never corrupted by
/// arbitrary initialization or transient faults.
class VarSpec {
 public:
  using DomainFn = std::function<VarDomain(const Graph&, ProcessId)>;

  /// Variable whose domain is the same at every process.
  VarSpec(std::string name, VarDomain fixed_domain, bool is_constant = false);

  /// Variable whose domain depends on the process (e.g. [1..delta.p]).
  VarSpec(std::string name, DomainFn domain, bool is_constant = false);

  const std::string& name() const { return name_; }
  bool is_constant() const { return is_constant_; }
  VarDomain domain(const Graph& g, ProcessId p) const { return domain_(g, p); }

 private:
  std::string name_;
  DomainFn domain_;
  bool is_constant_;
};

/// Full variable schema of a protocol: communication variables first
/// (indices 0..num_comm-1), then internal variables (0..num_internal-1).
struct ProtocolSpec {
  std::vector<VarSpec> comm;
  std::vector<VarSpec> internal;

  int num_comm() const { return static_cast<int>(comm.size()); }
  int num_internal() const { return static_cast<int>(internal.size()); }
  int stride() const { return num_comm() + num_internal(); }

  /// Total bits of p's communication state (what a neighbor reading all of
  /// p's communication variables would transfer).
  int comm_state_bits(const Graph& g, ProcessId p) const;
};

/// Convenience domain functions for the recurring cases.
VarSpec::DomainFn domain_fixed(Value lo, Value hi);
/// [1..delta.p] — the domain of the cur pointer in all three protocols.
VarSpec::DomainFn domain_channel();
/// [0..delta.p] — the domain of the PR pointer in Protocol MATCHING.
VarSpec::DomainFn domain_channel_or_none();

}  // namespace sss
