#pragma once
/// \file reference_engine.hpp
/// The pre-rewrite engine, preserved verbatim as a semantic oracle.
///
/// `Engine` (engine.hpp) was rewritten to an incremental dirty-queue hot
/// path. This class keeps the original O(n)-per-step implementation —
/// full probe rescans, per-step round accounting walks, per-process heap
/// allocation, unconditional selection normalization, and the full
/// O(n*Delta) solo-simulation quiescence check at every patience point.
///
/// It exists for two purposes and must not be "optimized":
///  * `tests/test_engine_equivalence.cpp` drives both engines in lockstep
///    and asserts identical configurations, round counts, and read metrics
///    under every daemon, so any behavioural drift in the fast engine is
///    caught step-for-step;
///  * `bench/bench_engine_hotpath.cpp` measures steps/sec of both engines
///    on the same workloads, making the speedup a reproducible number
///    instead of a changelog claim.
///
/// Both engines consume the main rng stream identically (daemon selection
/// and action draws only; probes and quiescence are rng-free or use
/// private streams), which is what makes lockstep comparison exact.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/protocol.hpp"

namespace sss {

/// Original full-scan engine. Mirrors the `Engine` interface subset that
/// the differential tests and the hotpath bench exercise.
class ReferenceEngine {
 public:
  ReferenceEngine(const Graph& g, const Protocol& protocol,
                  std::unique_ptr<Daemon> daemon, std::uint64_t seed);

  const Graph& graph() const { return graph_; }
  const Configuration& config() const { return config_; }

  void set_config(const Configuration& config);
  void randomize_state();

  /// Mid-run transient fault, mirroring Engine::apply_external_corruption:
  /// identical `corrupt_processes` draws from `rng`, followed by the
  /// reference repair — full probe invalidation and a covering restart
  /// (this engine re-walks disabled processes every step anyway). The
  /// churn lockstep suites drive both hooks with the same schedule and
  /// assert step-for-step identity.
  void apply_external_corruption(const std::vector<ProcessId>& victims,
                                 Rng& rng);

  Engine::StepInfo step();
  RunStats run(const RunOptions& options);

  std::uint64_t steps() const { return steps_; }
  std::uint64_t rounds() const { return rounds_completed_; }
  std::uint64_t rounds_inclusive() const;

  bool is_enabled(ProcessId p);
  int num_enabled();
  bool quiescent() const;

  const StepReadCounter& read_counter() const { return read_counter_; }

 private:
  void invalidate_all_probes();
  void refresh_enabled();
  void note_comm_changed(ProcessId p);

  const Graph& graph_;
  const Protocol& protocol_;
  std::unique_ptr<Daemon> daemon_;
  Rng rng_;
  Configuration config_;

  std::vector<std::uint8_t> enabled_;
  /// Rebuilt from `enabled_` by a full O(n) pass before every daemon call —
  /// the reference answer the incremental engine's set must match.
  EnabledSet enabled_set_;
  std::vector<std::uint8_t> probe_valid_;

  std::vector<std::uint8_t> covered_;
  int covered_count_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t steps_at_round_start_ = 0;

  std::uint64_t steps_ = 0;
  std::uint64_t last_comm_change_step_ = 0;
  std::uint64_t rounds_at_last_comm_change_ = 0;

  std::vector<ProcessId> selection_;
  std::vector<ProcessStep> staged_;

  ReadLoggerMux logger_mux_;
  StepReadCounter read_counter_;
};

}  // namespace sss
