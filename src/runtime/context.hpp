#pragma once
/// \file context.hpp
/// The interface through which protocol code sees the network.
///
/// Model fidelity lives here. A `GuardContext` gives a process read access
/// to (a) its own variables and (b) the *communication* variables of its
/// neighbors, addressed only by 1-based local channel index — global ids
/// never leak into protocol code, which is what "anonymous" means in the
/// paper. Every neighbor read is reported to a `ReadLogger`, which is how
/// k-efficiency, communication complexity and ♦-(x,k)-stability are
/// measured (Section 3).
///
/// An `ActionContext` adds deferred writes: statements write into a pending
/// buffer that the engine commits after every process selected in the step
/// has executed, so that all processes of one step read the same pre-step
/// configuration — the paper's atomic-step semantics for distributed
/// daemons. Reads keep returning pre-step values even after a write, which
/// matches the paper's actions (no action reads a variable it just wrote).

#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"

namespace sss {

/// Observer of neighbor communication-variable reads.
class ReadLogger {
 public:
  virtual ~ReadLogger() = default;
  /// `reader` read communication variable `comm_var` of its neighbor
  /// `subject` (global ids; loggers are simulator-side).
  virtual void on_read(ProcessId reader, ProcessId subject, int comm_var) = 0;
};

/// A deferred write produced by an action.
struct PendingWrite {
  bool is_comm = false;
  int var = 0;
  Value value = 0;
};

/// Read-only view for guard evaluation of one process over the pre-step
/// configuration snapshot.
class GuardContext {
 public:
  GuardContext(const Graph& g, const Configuration& pre, ProcessId self,
               ReadLogger* logger);

  /// delta.p of the executing process.
  int degree() const { return graph_.degree(self_); }

  Value self_comm(int var) const { return pre_.comm(self_, var); }
  Value self_internal(int var) const { return pre_.internal_var(self_, var); }

  /// Reads communication variable `var` of the neighbor on channel
  /// `channel` (1-based). Logged.
  Value nbr_comm(NbrIndex channel, int var) const;

  /// The channel number under which the neighbor on `channel` sees *this*
  /// process. This is how "PR.(cur.p) = p" (Fig 10) is evaluated: the
  /// neighbor's pointer is compared against our index in its numbering.
  NbrIndex self_index_at(NbrIndex channel) const;

  /// Neighbor-view overlay: when installed, `nbr_comm(ch, var)` returns
  /// `overlay[(ch - 1) * stride + var]` instead of the neighbor's real
  /// communication row, and the read is NOT logged — an overlay read
  /// touches local memory only. This is how the generic efficiency
  /// transformer evaluates the wrapped protocol's guards against its
  /// *mirrored* neighbor states (its own internal variables) at zero
  /// communication cost. `overlay` must hold degree() * stride values
  /// laid out channel-major and outlive the context.
  void set_nbr_overlay(const Value* overlay, int stride) {
    nbr_overlay_ = overlay;
    overlay_stride_ = stride;
  }

  /// The simulator-side handles a wrapper protocol needs to build a
  /// nested context over the same pre-step snapshot.
  const Graph& graph() const { return graph_; }
  const Configuration& config() const { return pre_; }
  ProcessId self() const { return self_; }

 protected:
  const Graph& graph_;
  const Configuration& pre_;
  ProcessId self_;
  ReadLogger* logger_;
  const Value* nbr_overlay_ = nullptr;
  int overlay_stride_ = 0;
};

/// Guard view plus deferred writes and randomness, for action execution.
class ActionContext final : public GuardContext {
 public:
  ActionContext(const Graph& g, const Configuration& pre, ProcessId self,
                Rng& rng, ReadLogger* logger);

  /// Arena variant: pending writes land in `*writes_out` (cleared first)
  /// instead of an owned vector, so a caller that reuses the buffer across
  /// evaluations performs no per-evaluation allocation. `writes_out` must
  /// outlive the context.
  ActionContext(const Graph& g, const Configuration& pre, ProcessId self,
                Rng& rng, ReadLogger* logger,
                std::vector<PendingWrite>* writes_out);

  // writes_out_ may point into the context itself (own_writes_), so a
  // copy would alias or dangle; contexts are single-use views anyway.
  ActionContext(const ActionContext&) = delete;
  ActionContext& operator=(const ActionContext&) = delete;

  void set_comm(int var, Value v);
  void set_internal(int var, Value v);

  /// Uniform draw from {lo..hi} — the random color choice of Fig 7.
  Value random_range(Value lo, Value hi);

  const std::vector<PendingWrite>& writes() const { return *writes_out_; }

  /// True if any communication variable was written (regardless of value).
  /// Silence detection keys off write *attempts*: in all protocols in this
  /// library a guard only launches a communication write when it changes
  /// the value, and attempts are robust against a randomized action
  /// happening to redraw the old value.
  bool comm_write_attempted() const { return comm_write_attempted_; }

  /// Enumeration support (model checker): when a script is installed,
  /// random_range returns scripted values instead of fresh draws, and
  /// every requested range is recorded. Running an action once with an
  /// empty script discovers its draw ranges; re-running it with every
  /// combination of scripted values enumerates all outcomes. Draw ranges
  /// are only recorded while a script is installed, which keeps the
  /// simulator hot path free of bookkeeping allocations.
  void set_random_script(const std::vector<Value>* script);
  const std::vector<VarDomain>& random_draws() const { return draws_; }

 private:
  Rng& rng_;
  std::vector<PendingWrite> own_writes_;
  std::vector<PendingWrite>* writes_out_;
  bool comm_write_attempted_ = false;
  const std::vector<Value>* script_ = nullptr;
  std::size_t script_pos_ = 0;
  std::vector<VarDomain> draws_;
};

}  // namespace sss
