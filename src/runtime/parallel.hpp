#pragma once
/// \file parallel.hpp
/// Persistent barrier pool for intra-trial parallelism.
///
/// The batch runner (analysis/batch.hpp) parallelizes *across* trials;
/// `StepPool` is the complementary primitive for parallelism *inside* one
/// trial. An `Engine` with a pool partitions the network into contiguous
/// process ranges and fans guard refreshes and selected-set execution out
/// to the workers, merging the results deterministically (engine.hpp,
/// invariant 7) — so the pool only has to provide one operation:
///
///   run(task) — every worker w in [0, threads) executes task(w) once,
///   and run() returns after all of them finished (a full barrier).
///
/// The calling thread participates as worker 0, so `threads == 1` still
/// works (degenerating to a plain call) and `threads == T` spawns T-1
/// OS threads. Workers are spawned once at construction and parked on a
/// condition variable between runs: a synchronous step issues several
/// fan-outs per step, and at that rate thread creation would dominate.
///
/// Exceptions thrown by a task are captured (first one wins) and
/// rethrown from run() on the calling thread after the barrier, matching
/// the batch runner's error contract. Synchronization is mutex +
/// condition variables only — no hand-rolled atomics — which keeps every
/// happens-before edge visible to ThreadSanitizer.
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sss {

class StepPool {
 public:
  /// Spawns `threads - 1` workers (the caller is worker 0).
  /// Requires threads >= 1.
  explicit StepPool(int threads);
  ~StepPool();

  StepPool(const StepPool&) = delete;
  StepPool& operator=(const StepPool&) = delete;

  int threads() const { return threads_; }

  /// Runs task(w) once for every worker id w in [0, threads()); returns
  /// after every call finished. Not reentrant: a task must not call
  /// run() on its own pool.
  void run(const std::function<void(int)>& task);

 private:
  void worker_loop(int worker);

  const int threads_;
  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(int)>* task_ = nullptr;  // valid while a run is live
  std::uint64_t generation_ = 0;  ///< bumped once per run(); wakes workers
  int remaining_ = 0;             ///< spawned workers still inside the run
  bool shutdown_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

}  // namespace sss
