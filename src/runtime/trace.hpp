#pragma once
/// \file trace.hpp
/// Optional step-by-step recording, used by examples and debugging aids.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace sss {

/// One scheduler step as seen from the outside.
struct TraceEvent {
  std::uint64_t step = 0;
  std::vector<ProcessId> selected;
  /// Action index fired per selected process (aligned with `selected`);
  /// -1 when the process was disabled.
  std::vector<int> actions;
  bool comm_changed = false;
};

/// Ring buffer of the most recent `capacity` steps.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 256);

  void record(TraceEvent event);
  const std::deque<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Compact multi-line rendering ("step 12: {0,3} fired {1,0} comm*").
  std::string str() const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
};

}  // namespace sss
