#pragma once
/// \file fault.hpp
/// Transient fault injection.
///
/// Self-stabilization promises recovery from *any* transient corruption of
/// variable state. The injector corrupts the non-constant variables of a
/// chosen set of victims with uniform draws from their domains — the
/// communication constants (colors) are immune by definition of the model
/// (they parameterize the system, they are not state).

#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/spec.hpp"

namespace sss {

/// Corrupts every non-constant variable of every process in `victims`.
void corrupt_processes(const Graph& g, const ProtocolSpec& spec,
                       Configuration& config,
                       const std::vector<ProcessId>& victims, Rng& rng);

/// Picks `count` distinct victims uniformly from [0, n) and returns them
/// sorted, without corrupting anything. The selection half of
/// `inject_random_faults`, split out so callers injecting through
/// `Engine::apply_external_corruption` (which needs the victim list to
/// re-dirty the affected guards) share the exact draw sequence.
/// Requires 0 <= count <= n.
std::vector<ProcessId> choose_victims(int n, int count, Rng& rng);

/// Picks `count` distinct victims uniformly and corrupts them.
/// Returns the victims (sorted). Requires 0 <= count <= n.
std::vector<ProcessId> inject_random_faults(const Graph& g,
                                            const ProtocolSpec& spec,
                                            Configuration& config, int count,
                                            Rng& rng);

}  // namespace sss
