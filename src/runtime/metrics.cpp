#include "runtime/metrics.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

void ReadLoggerMux::add(ReadLogger* logger) {
  SSS_REQUIRE(logger != nullptr, "null logger");
  loggers_.push_back(logger);
}

void ReadLoggerMux::remove(ReadLogger* logger) {
  loggers_.erase(std::remove(loggers_.begin(), loggers_.end(), logger),
                 loggers_.end());
}

void ReadLoggerMux::on_read(ProcessId reader, ProcessId subject,
                            int comm_var) {
  for (ReadLogger* logger : loggers_) {
    logger->on_read(reader, subject, comm_var);
  }
}

StepReadCounter::StepReadCounter(const Graph& g, const ProtocolSpec& spec)
    : graph_(g), readers_(static_cast<std::size_t>(g.num_vertices())) {
  var_bits_.resize(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    auto& bits = var_bits_[static_cast<std::size_t>(p)];
    bits.resize(static_cast<std::size_t>(spec.num_comm()));
    for (int v = 0; v < spec.num_comm(); ++v) {
      bits[static_cast<std::size_t>(v)] =
          spec.comm[static_cast<std::size_t>(v)].domain(g, p).bits();
    }
  }
}

void StepReadCounter::begin_step() {
  for (ProcessId p : touched_) {
    auto& reader = readers_[static_cast<std::size_t>(p)];
    reader.seen.clear();
    reader.subjects.clear();
    reader.bits = 0;
  }
  touched_.clear();
}

void StepReadCounter::on_read(ProcessId reader_id, ProcessId subject,
                              int comm_var) {
  auto& reader = readers_[static_cast<std::size_t>(reader_id)];
  const std::pair<ProcessId, int> key{subject, comm_var};
  if (std::find(reader.seen.begin(), reader.seen.end(), key) !=
      reader.seen.end()) {
    return;  // the same variable re-read within one atomic step is free
  }
  if (reader.seen.empty()) touched_.push_back(reader_id);
  reader.seen.push_back(key);
  if (std::find(reader.subjects.begin(), reader.subjects.end(), subject) ==
      reader.subjects.end()) {
    reader.subjects.push_back(subject);
    ++total_reads_;
    max_reads_ =
        std::max(max_reads_, static_cast<int>(reader.subjects.size()));
  }
  const int bits =
      var_bits_[static_cast<std::size_t>(subject)][static_cast<std::size_t>(
          comm_var)];
  reader.bits += bits;
  total_bits_ += static_cast<std::uint64_t>(bits);
  max_bits_ = std::max(max_bits_, reader.bits);
}

int StepReadCounter::step_reads_of(ProcessId reader) const {
  return static_cast<int>(
      readers_[static_cast<std::size_t>(reader)].subjects.size());
}

void StepReadCounter::absorb(std::uint64_t reads, std::uint64_t bits,
                             int max_reads, int max_bits) {
  total_reads_ += reads;
  total_bits_ += bits;
  max_reads_ = std::max(max_reads_, max_reads);
  max_bits_ = std::max(max_bits_, max_bits);
}

void WorkerReadTally::begin_step() {
  current_reader_ = -1;
  seen.clear();
  subjects.clear();
  bits_ = 0;
  total_reads_ = 0;
  total_bits_ = 0;
  max_reads_ = 0;
  max_bits_ = 0;
}

void WorkerReadTally::on_read(ProcessId reader, ProcessId subject,
                              int comm_var) {
  if (reader != current_reader_) {
    // Selections are strictly ascending and a reader's reads are
    // contiguous, so a reader change means the previous one is finished
    // for this step and its scratch can be recycled.
    current_reader_ = reader;
    seen.clear();
    subjects.clear();
    bits_ = 0;
  }
  const std::pair<ProcessId, int> key{subject, comm_var};
  if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
    return;  // the same variable re-read within one atomic step is free
  }
  seen.push_back(key);
  if (std::find(subjects.begin(), subjects.end(), subject) ==
      subjects.end()) {
    subjects.push_back(subject);
    ++total_reads_;
    max_reads_ = std::max(max_reads_, static_cast<int>(subjects.size()));
  }
  const int bits = source_.bits_of(subject, comm_var);
  bits_ += bits;
  total_bits_ += static_cast<std::uint64_t>(bits);
  max_bits_ = std::max(max_bits_, bits_);
}

StabilityTracker::StabilityTracker(const Graph& g)
    : read_sets_(static_cast<std::size_t>(g.num_vertices())) {}

void StabilityTracker::on_read(ProcessId reader, ProcessId subject, int) {
  auto& set = read_sets_[static_cast<std::size_t>(reader)];
  if (std::find(set.begin(), set.end(), subject) == set.end()) {
    set.push_back(subject);
  }
}

void StabilityTracker::reset() {
  for (auto& set : read_sets_) set.clear();
}

int StabilityTracker::distinct_reads(ProcessId p) const {
  return static_cast<int>(read_sets_[static_cast<std::size_t>(p)].size());
}

int StabilityTracker::count_at_most(int k) const {
  int count = 0;
  for (const auto& set : read_sets_) {
    if (static_cast<int>(set.size()) <= k) ++count;
  }
  return count;
}

std::vector<int> StabilityTracker::read_set_sizes() const {
  std::vector<int> sizes;
  sizes.reserve(read_sets_.size());
  for (const auto& set : read_sets_) {
    sizes.push_back(static_cast<int>(set.size()));
  }
  return sizes;
}

}  // namespace sss
