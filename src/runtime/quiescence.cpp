#include "runtime/quiescence.hpp"

#include "support/require.hpp"

namespace sss {

bool is_comm_quiescent(const Graph& g, const Protocol& protocol,
                       const Configuration& config,
                       const QuiescenceOptions& options) {
  SSS_REQUIRE(options.margin >= 1, "margin must be positive");
  // The scratch rng only feeds randomized actions, whose outcome never
  // affects *whether* a communication write is attempted; any seed works.
  Rng scratch_rng(0x5157u);
  Configuration scratch = config;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    // Earlier processes' solo runs may have advanced their internal state
    // in `scratch`, but internal variables are invisible to other
    // processes, so p still sees exactly the frozen communication state.
    const int budget = g.degree(p) + options.margin;
    for (int i = 0; i < budget; ++i) {
      const ProcessStep step =
          apply_solo_step(g, protocol, scratch, p, scratch_rng);
      if (step.action == Protocol::kDisabled) break;  // stable forever
      if (step.comm_write_attempted) return false;
    }
  }
  return true;
}

}  // namespace sss
