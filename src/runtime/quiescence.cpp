#include "runtime/quiescence.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

bool solo_would_write_comm(const Graph& g, const Protocol& protocol,
                           Configuration& config, ProcessId p,
                           ProcessStep& scratch, std::vector<Value>& saved_row,
                           int margin) {
  SSS_REQUIRE(margin >= 1, "margin must be positive");
  const int num_comm = protocol.spec().num_comm();
  const int num_internal = protocol.spec().num_internal();
  saved_row.clear();
  for (int v = 0; v < num_comm; ++v) saved_row.push_back(config.comm(p, v));
  for (int v = 0; v < num_internal; ++v) {
    saved_row.push_back(config.internal_var(p, v));
  }
  Rng scratch_rng(0x5157u);
  const int budget = g.degree(p) + margin;
  bool active = false;
  for (int i = 0; i < budget; ++i) {
    evaluate_process_into(g, protocol, config, p, scratch_rng, nullptr,
                          scratch);
    if (scratch.action == Protocol::kDisabled) break;  // stable forever
    if (scratch.comm_write_attempted) {
      active = true;
      break;
    }
    commit_writes(config, p, scratch.writes);
  }
  for (int v = 0; v < num_comm; ++v) {
    config.set_comm(p, v, saved_row[static_cast<std::size_t>(v)]);
  }
  for (int v = 0; v < num_internal; ++v) {
    config.set_internal(p, v,
                        saved_row[static_cast<std::size_t>(num_comm + v)]);
  }
  return active;
}

bool is_comm_quiescent(const Graph& g, const Protocol& protocol,
                       const Configuration& config,
                       const QuiescenceOptions& options) {
  // Freezing all communication variables decouples the processes, so each
  // one is probed solo; one scratch copy serves every probe because the
  // probe restores the rows it touches.
  Configuration scratch_config = config;
  ProcessStep scratch;
  std::vector<Value> saved_row;
  // A protocol may demand a deeper probe than the caller's default (see
  // Protocol::solo_quiescence_margin); certifying silence with too small
  // a margin would be unsound, so the larger of the two wins.
  const int margin =
      std::max(options.margin, protocol.solo_quiescence_margin());
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (solo_would_write_comm(g, protocol, scratch_config, p, scratch,
                              saved_row, margin)) {
      return false;
    }
  }
  return true;
}

}  // namespace sss
