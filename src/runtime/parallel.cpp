#include "runtime/parallel.hpp"

#include "support/require.hpp"

namespace sss {

StepPool::StepPool(int threads) : threads_(threads) {
  SSS_REQUIRE(threads >= 1, "a step pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

StepPool::~StepPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void StepPool::run(const std::function<void(int)>& task) {
  if (threads_ == 1) {
    task(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    remaining_ = threads_ - 1;
    error_ = nullptr;
    ++generation_;
  }
  start_.notify_all();
  // The caller is worker 0; its exception must still wait for the barrier
  // (workers may hold references into caller-owned state).
  std::exception_ptr own_error;
  try {
    task(0);
  } catch (...) {
    own_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
  std::exception_ptr error = own_error ? own_error : error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void StepPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      task = task_;
    }
    try {
      (*task)(worker);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --remaining_;
    }
    done_.notify_one();
  }
}

}  // namespace sss
