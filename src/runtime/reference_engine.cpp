#include "runtime/reference_engine.hpp"

#include <algorithm>

#include "runtime/fault.hpp"
#include "runtime/quiescence.hpp"
#include "support/require.hpp"

namespace sss {

ReferenceEngine::ReferenceEngine(const Graph& g, const Protocol& protocol,
                                 std::unique_ptr<Daemon> daemon,
                                 std::uint64_t seed)
    : graph_(g),
      protocol_(protocol),
      daemon_(std::move(daemon)),
      rng_(seed),
      config_(g, protocol.spec()),
      enabled_(static_cast<std::size_t>(g.num_vertices()), 0),
      enabled_set_(g.num_vertices()),
      probe_valid_(static_cast<std::size_t>(g.num_vertices()), 0),
      covered_(static_cast<std::size_t>(g.num_vertices()), 0),
      read_counter_(g, protocol.spec()) {
  SSS_REQUIRE(daemon_ != nullptr, "engine needs a daemon");
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "the model requires a connected network with n >= 2");
  protocol_.install_constants(graph_, config_);
  logger_mux_.add(&read_counter_);
}

void ReferenceEngine::set_config(const Configuration& config) {
  SSS_REQUIRE(config.num_processes() == graph_.num_vertices() &&
                  config.num_comm() == protocol_.spec().num_comm() &&
                  config.num_internal() == protocol_.spec().num_internal(),
              "configuration shape does not match the protocol");
  config_ = config;
  protocol_.install_constants(graph_, config_);
  SSS_REQUIRE(configuration_in_domains(graph_, protocol_.spec(), config_),
              "configuration has out-of-domain values");
  invalidate_all_probes();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  steps_at_round_start_ = steps_;
}

void ReferenceEngine::randomize_state() {
  randomize_configuration(graph_, protocol_.spec(), config_, rng_);
  protocol_.install_constants(graph_, config_);
  invalidate_all_probes();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  steps_at_round_start_ = steps_;
}

void ReferenceEngine::apply_external_corruption(
    const std::vector<ProcessId>& victims, Rng& rng) {
  corrupt_processes(graph_, protocol_.spec(), config_, victims, rng);
  invalidate_all_probes();
  std::fill(covered_.begin(), covered_.end(), 0);
  covered_count_ = 0;
  steps_at_round_start_ = steps_;
}

void ReferenceEngine::invalidate_all_probes() {
  std::fill(probe_valid_.begin(), probe_valid_.end(), 0);
}

void ReferenceEngine::refresh_enabled() {
  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    if (probe_valid_[static_cast<std::size_t>(p)]) continue;
    GuardContext guard(graph_, config_, p, nullptr);
    enabled_[static_cast<std::size_t>(p)] =
        protocol_.first_enabled(guard) != Protocol::kDisabled ? 1 : 0;
    probe_valid_[static_cast<std::size_t>(p)] = 1;
  }
}

bool ReferenceEngine::is_enabled(ProcessId p) {
  SSS_REQUIRE(p >= 0 && p < graph_.num_vertices(), "process id out of range");
  refresh_enabled();
  return enabled_[static_cast<std::size_t>(p)] != 0;
}

int ReferenceEngine::num_enabled() {
  refresh_enabled();
  int count = 0;
  for (std::uint8_t e : enabled_) count += e;
  return count;
}

bool ReferenceEngine::quiescent() const {
  return is_comm_quiescent(graph_, protocol_, config_);
}

std::uint64_t ReferenceEngine::rounds_inclusive() const {
  return rounds_completed_ + (steps_ > steps_at_round_start_ ? 1 : 0);
}

Engine::StepInfo ReferenceEngine::step() {
  refresh_enabled();

  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    enabled_set_.assign(p, enabled_[static_cast<std::size_t>(p)] != 0);
  }

  selection_.clear();
  daemon_->select(graph_, enabled_set_, rng_, selection_);
  SSS_ASSERT(!selection_.empty(), "daemon selected an empty set");
  std::sort(selection_.begin(), selection_.end());
  selection_.erase(std::unique(selection_.begin(), selection_.end()),
                   selection_.end());

  read_counter_.begin_step();

  // Phase 1: every selected process evaluates against the gamma_i snapshot.
  staged_.clear();
  staged_.reserve(selection_.size());
  for (ProcessId p : selection_) {
    staged_.push_back(
        evaluate_process(graph_, protocol_, config_, p, rng_, &logger_mux_));
  }

  // Phase 2: simultaneous commit forms gamma_{i+1}.
  Engine::StepInfo info;
  info.selected = static_cast<int>(selection_.size());
  for (std::size_t i = 0; i < selection_.size(); ++i) {
    const ProcessId p = selection_[i];
    const ProcessStep& staged = staged_[i];
    if (staged.action == Protocol::kDisabled) continue;
    ++info.fired;
    const bool changed = commit_writes(config_, p, staged.writes);
    probe_valid_[static_cast<std::size_t>(p)] = 0;
    if (changed) {
      info.comm_changed = true;
      note_comm_changed(p);
    }
  }

  ++steps_;

  // Round accounting: selected processes are covered; so is every process
  // that was disabled in the pre-step configuration.
  for (ProcessId p : selection_) {
    if (!covered_[static_cast<std::size_t>(p)]) {
      covered_[static_cast<std::size_t>(p)] = 1;
      ++covered_count_;
    }
  }
  for (ProcessId p = 0; p < graph_.num_vertices(); ++p) {
    if (!enabled_[static_cast<std::size_t>(p)] &&
        !covered_[static_cast<std::size_t>(p)]) {
      covered_[static_cast<std::size_t>(p)] = 1;
      ++covered_count_;
    }
  }
  if (covered_count_ == graph_.num_vertices()) {
    ++rounds_completed_;
    std::fill(covered_.begin(), covered_.end(), 0);
    covered_count_ = 0;
    steps_at_round_start_ = steps_;
  }

  if (info.comm_changed) {
    last_comm_change_step_ = steps_;
    rounds_at_last_comm_change_ = rounds_inclusive();
  }
  return info;
}

void ReferenceEngine::note_comm_changed(ProcessId p) {
  for (ProcessId q : graph_.neighbors(p)) {
    probe_valid_[static_cast<std::size_t>(q)] = 0;
  }
}

RunStats ReferenceEngine::run(const RunOptions& options) {
  RunStats stats;
  const std::uint64_t base_steps = steps_;
  const std::uint64_t base_rounds = rounds_inclusive();
  const std::uint64_t base_reads = read_counter_.total_reads();
  const std::uint64_t base_bits = read_counter_.total_bits();
  const std::uint64_t patience =
      options.quiescence_patience != 0
          ? options.quiescence_patience
          : std::max<std::uint64_t>(
                16, static_cast<std::uint64_t>(graph_.num_vertices()));

  auto relative_silence_point = [&](RunStats& out) {
    out.steps_to_silence = last_comm_change_step_ > base_steps
                               ? last_comm_change_step_ - base_steps
                               : 0;
    out.rounds_to_silence = rounds_at_last_comm_change_ > base_rounds
                                ? rounds_at_last_comm_change_ - base_rounds
                                : 0;
  };

  auto check_legitimate = [&]() {
    if (stats.reached_legitimate || !options.legitimacy) return;
    if (options.legitimacy(graph_, config_)) {
      stats.reached_legitimate = true;
      stats.steps_to_legitimate = steps_ - base_steps;
      stats.rounds_to_legitimate = rounds_inclusive() - base_rounds;
    }
  };

  check_legitimate();
  if (options.stop_on_silence && quiescent()) {
    stats.silent = true;
    relative_silence_point(stats);
  } else {
    std::uint64_t next_quiescence_check = steps_ + patience;
    while (steps_ - base_steps < options.max_steps) {
      const Engine::StepInfo info = step();
      check_legitimate();
      if (info.comm_changed) {
        next_quiescence_check = steps_ + patience;
      } else if (options.stop_on_silence && steps_ >= next_quiescence_check) {
        if (quiescent()) {
          stats.silent = true;
          relative_silence_point(stats);
          break;
        }
        next_quiescence_check = steps_ + patience;
      }
    }
    if (!stats.silent && options.stop_on_silence && quiescent()) {
      stats.silent = true;
      relative_silence_point(stats);
    }
  }

  stats.steps = steps_ - base_steps;
  stats.rounds = rounds_inclusive() - base_rounds;
  stats.total_reads = read_counter_.total_reads() - base_reads;
  stats.total_read_bits = read_counter_.total_bits() - base_bits;
  stats.max_reads_per_process_step = read_counter_.max_reads_per_process_step();
  stats.max_bits_per_process_step = read_counter_.max_bits_per_process_step();
  return stats;
}

}  // namespace sss
