#pragma once
/// \file daemon.hpp
/// Schedulers (daemons) of the paper's model: at each step a non-empty
/// subset of processes is chosen and every chosen process executes its
/// first enabled action against the pre-step snapshot, if any (Section 2).
///
/// The paper assumes a *distributed fair* daemon — any non-empty subset may
/// be chosen, and every process is selected infinitely often. Each class
/// below is one member of that adversary class; sweeping over them probes
/// protocol claims against several adversaries:
///
///  * `SynchronousDaemon` — all enabled processes at once.
///  * `CentralRoundRobinDaemon` — one process per step, cyclic among the
///    enabled ones (classic fair central daemon).
///  * `CentralRandomDaemon` — one uniformly random enabled process.
///  * `DistributedRandomDaemon` — every *enabled* process tossed in
///    independently with probability q (redrawn while empty); when nothing
///    is enabled the step is a no-op and one uniformly random process is
///    selected so the computation stays well formed.
///  * `FairEnumeratorDaemon` — step i selects process i mod n; the simplest
///    deterministic fair daemon (a round is exactly n steps).
///  * `AdversarialClusterDaemon` — picks an enabled process and co-selects
///    its whole enabled neighborhood, maximizing simultaneous neighbor
///    moves (the hostile case for randomized symmetry breaking); a
///    starvation patch force-includes any process unselected for 8n steps
///    so the daemon stays fair.
///
/// Selection is fed from an `EnabledSet` the engine maintains
/// incrementally (see enabled_set.hpp), so no daemon rescans an n-entry
/// bitmap per step: the historical O(n) floor of the random daemons is
/// gone, and per-step daemon cost tracks the size of the answer.

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/enabled_set.hpp"
#include "support/rng.hpp"

namespace sss {

class Daemon {
 public:
  virtual ~Daemon() = default;

  virtual const std::string& name() const = 0;

  /// Chooses the step's selection from the current enabled set. Must write
  /// at least one id into `out`, distinct and in strictly ascending order —
  /// the engine commits selections as-is, with no normalization pass.
  virtual void select(const Graph& g, const EnabledSet& enabled, Rng& rng,
                      std::vector<ProcessId>& out) = 0;
};

std::unique_ptr<Daemon> make_synchronous_daemon();
std::unique_ptr<Daemon> make_central_round_robin_daemon();
std::unique_ptr<Daemon> make_central_random_daemon();
std::unique_ptr<Daemon> make_distributed_random_daemon(double q = 0.5);
std::unique_ptr<Daemon> make_fair_enumerator_daemon();
std::unique_ptr<Daemon> make_adversarial_cluster_daemon();

/// The names accepted by `make_daemon`, in canonical order.
const std::vector<std::string>& daemon_names();

/// Factory by name ("synchronous", "central-rr", "central-random",
/// "distributed", "enumerator", "adversarial"). Throws on unknown names.
std::unique_ptr<Daemon> make_daemon(const std::string& name);

}  // namespace sss
