#include "runtime/protocol.hpp"

#include "support/require.hpp"

namespace sss {

// EnabledBitmap stores actions as int8; its disabled sentinel must be the
// value every scalar-path consumer of the memo compares against.
static_assert(EnabledBitmap::kDisabled == Protocol::kDisabled);

void Protocol::install_constants(const Graph&, Configuration&) const {}

void Protocol::sweep_enabled(BulkGuardContext& ctx, EnabledBitmap& out) const {
  sweep_enabled_range(ctx, out, 0,
                      static_cast<ProcessId>(ctx.graph().num_vertices()));
}

void Protocol::sweep_enabled_range(BulkGuardContext&, EnabledBitmap&,
                                   ProcessId, ProcessId) const {
  SSS_ASSERT(false,
             "sweep_enabled_range called on a protocol without a bulk sweep "
             "(has_bulk_sweep() gates the call)");
}

void Protocol::execute_selected(BulkExecContext&, const EnabledBitmap&,
                                std::span<const ProcessId>, std::size_t,
                                std::size_t) const {
  SSS_ASSERT(false,
             "execute_selected called on a protocol without a bulk execute "
             "kernel (has_bulk_execute() gates the call)");
}

ProcessStep evaluate_process(const Graph& g, const Protocol& protocol,
                             const Configuration& pre, ProcessId p, Rng& rng,
                             ReadLogger* logger) {
  ProcessStep result;
  GuardContext guard(g, pre, p, logger);
  result.action = protocol.first_enabled(guard);
  if (result.action == Protocol::kDisabled) return result;
  ActionContext action(g, pre, p, rng, logger);
  protocol.execute(result.action, action);
  result.comm_write_attempted = action.comm_write_attempted();
  result.writes = action.writes();
  return result;
}

void evaluate_process_into(const Graph& g, const Protocol& protocol,
                           const Configuration& pre, ProcessId p, Rng& rng,
                           ReadLogger* logger, ProcessStep& out) {
  out.comm_write_attempted = false;
  out.writes.clear();
  GuardContext guard(g, pre, p, logger);
  out.action = protocol.first_enabled(guard);
  if (out.action == Protocol::kDisabled) return;
  ActionContext action(g, pre, p, rng, logger, &out.writes);
  protocol.execute(out.action, action);
  out.comm_write_attempted = action.comm_write_attempted();
}

bool commit_writes(Configuration& config, ProcessId p,
                   const std::vector<PendingWrite>& writes) {
  bool comm_changed = false;
  for (const auto& w : writes) {
    if (w.is_comm) {
      if (config.comm(p, w.var) != w.value) comm_changed = true;
      config.set_comm(p, w.var, w.value);
    } else {
      config.set_internal(p, w.var, w.value);
    }
  }
  return comm_changed;
}

ProcessStep apply_solo_step(const Graph& g, const Protocol& protocol,
                            Configuration& config, ProcessId p, Rng& rng,
                            ReadLogger* logger) {
  ProcessStep step = evaluate_process(g, protocol, config, p, rng, logger);
  if (step.action != Protocol::kDisabled) {
    commit_writes(config, p, step.writes);
  }
  return step;
}

}  // namespace sss
