#pragma once
/// \file enabled_set.hpp
/// Word-packed set of enabled process ids, maintained incrementally.
///
/// The daemons of the paper's model all ask questions about the set of
/// enabled processes: "everyone enabled" (synchronous), "the next enabled
/// id after mine" (central round-robin), "the k-th smallest enabled id"
/// (central random). The original implementations answered them by
/// rescanning an n-byte bitmap every step — an O(n) floor under every
/// step even when the engine's own hot path is O(activity).
///
/// `EnabledSet` retires those rescans. The engine maintains it with O(1)
/// `assign` calls from its enabledness dirty queue, and daemons consume it
/// through queries whose cost tracks the answer, not n:
///
///  * `count()` — O(1);
///  * `kth(k)`  — k-th smallest member, one popcount pass over n/64 words;
///  * `next_cyclic(p)` — first member after p (wrapping), word-scan;
///  * `for_each(f)` — members in ascending order, O(count + n/64).
///
/// Membership order is always ascending process id, so selections drawn
/// through `kth`/`for_each` are bit-identical to the historical
/// sorted-scratch-vector behaviour.

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"

namespace sss {

class EnabledSet {
 public:
  EnabledSet() = default;
  explicit EnabledSet(int universe) { reset(universe); }

  /// Clears the set and resizes it to ids [0, universe).
  void reset(int universe) {
    SSS_REQUIRE(universe >= 0, "universe cannot be negative");
    universe_ = universe;
    words_.assign(static_cast<std::size_t>((universe + 63) / 64), 0);
    count_ = 0;
  }

  int universe() const { return universe_; }
  int count() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool test(ProcessId p) const {
    return (words_[word_of(p)] >> bit_of(p)) & 1u;
  }

  /// Sets p's membership; O(1) and keeps count() exact either way.
  void assign(ProcessId p, bool member) {
    std::uint64_t& word = words_[word_of(p)];
    const std::uint64_t bit = 1ULL << bit_of(p);
    if (member) {
      count_ += static_cast<int>(~word >> bit_of(p) & 1u);
      word |= bit;
    } else {
      count_ -= static_cast<int>(word >> bit_of(p) & 1u);
      word &= ~bit;
    }
  }

  /// Deferred-count variant of `assign` for partitioned writers: updates
  /// the membership bit but NOT count(), returning the count delta
  /// (+1/-1/0) for the caller to accumulate and apply later through
  /// `add_count`. The engine's parallel refresh hands each worker a
  /// 64-aligned process range — disjoint words, so concurrent
  /// assign_deferred calls from different ranges never touch the same
  /// memory — and folds the deltas in on the serial side of the barrier.
  int assign_deferred(ProcessId p, bool member) {
    std::uint64_t& word = words_[word_of(p)];
    const std::uint64_t bit = 1ULL << bit_of(p);
    int delta;
    if (member) {
      delta = static_cast<int>(~word >> bit_of(p) & 1u);
      word |= bit;
    } else {
      delta = -static_cast<int>(word >> bit_of(p) & 1u);
      word &= ~bit;
    }
    return delta;
  }

  /// Applies accumulated assign_deferred deltas; count() is exact again
  /// once every outstanding delta has been added.
  void add_count(int delta) { count_ += delta; }

  /// The k-th smallest member (0-based). Requires 0 <= k < count().
  ProcessId kth(int k) const {
    SSS_ASSERT(k >= 0 && k < count_, "rank out of range");
    for (std::size_t w = 0;; ++w) {
      std::uint64_t word = words_[w];
      const int pc = std::popcount(word);
      if (k < pc) {
        while (k-- > 0) word &= word - 1;  // clear k lowest members
        return static_cast<ProcessId>(w * 64 +
                                      std::countr_zero(word));
      }
      k -= pc;
    }
  }

  /// First member with id >= from, or -1 when none.
  ProcessId next_at_least(ProcessId from) const {
    if (from < 0) from = 0;
    if (from >= universe_) return -1;
    std::size_t w = word_of(from);
    std::uint64_t word = words_[w] & (~0ULL << bit_of(from));
    for (;;) {
      if (word != 0) {
        return static_cast<ProcessId>(w * 64 + std::countr_zero(word));
      }
      if (++w == words_.size()) return -1;
      word = words_[w];
    }
  }

  /// First member strictly after `after`, wrapping around the universe;
  /// -1 when the set is empty. `after` may be -1 ("before everything").
  ProcessId next_cyclic(ProcessId after) const {
    if (count_ == 0) return -1;
    const ProcessId ahead = next_at_least(after + 1);
    return ahead >= 0 ? ahead : next_at_least(0);
  }

  /// Appends each member independently with probability q, in ascending
  /// order — the distributed daemon's coin pass. For q == 0.5 the coins
  /// are drawn 64 at a time (one rng word masks a whole set word): the
  /// per-member distribution is identical, only the rng stream layout
  /// differs from per-member chance() draws. Zero words draw nothing.
  void sample(Rng& rng, double q, std::vector<ProcessId>& out) const {
    if (q == 0.5) {
      for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t word = words_[w];
        if (word == 0) continue;
        word &= rng();
        while (word != 0) {
          out.push_back(static_cast<ProcessId>(w * 64 +
                                               std::countr_zero(word)));
          word &= word - 1;
        }
      }
      return;
    }
    for_each([&](ProcessId p) {
      if (rng.chance(q)) out.push_back(p);
    });
  }

  /// Calls f(p) for every member in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        f(static_cast<ProcessId>(w * 64 + std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

 private:
  static std::size_t word_of(ProcessId p) {
    return static_cast<std::size_t>(p) >> 6;
  }
  static int bit_of(ProcessId p) { return static_cast<int>(p & 63); }

  std::vector<std::uint64_t> words_;
  int universe_ = 0;
  int count_ = 0;
};

}  // namespace sss
