#include "runtime/daemon.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {

/// Appends every enabled id; if none, appends every id (the step becomes a
/// no-op, which the paper's footnote 1 permits: gamma_{i+1} = gamma_i).
void all_enabled_or_everyone(const Graph& g,
                             const std::vector<std::uint8_t>& enabled,
                             std::vector<ProcessId>& out) {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (enabled[static_cast<std::size_t>(p)]) out.push_back(p);
  }
  if (out.empty()) {
    for (ProcessId p = 0; p < g.num_vertices(); ++p) out.push_back(p);
  }
}

class SynchronousDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "synchronous";
    return kName;
  }
  bool wants_enabled() const override { return true; }
  void select(const Graph& g, const std::vector<std::uint8_t>& enabled, Rng&,
              std::vector<ProcessId>& out) override {
    all_enabled_or_everyone(g, enabled, out);
  }
};

class CentralRoundRobinDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "central-rr";
    return kName;
  }
  bool wants_enabled() const override { return true; }
  void select(const Graph& g, const std::vector<std::uint8_t>& enabled, Rng&,
              std::vector<ProcessId>& out) override {
    const int n = g.num_vertices();
    for (int offset = 1; offset <= n; ++offset) {
      const ProcessId p = static_cast<ProcessId>((last_ + offset) % n);
      if (enabled[static_cast<std::size_t>(p)]) {
        last_ = p;
        out.push_back(p);
        return;
      }
    }
    // Nobody enabled: select the next process anyway (no-op step) so the
    // daemon still covers everyone for round accounting.
    last_ = static_cast<ProcessId>((last_ + 1) % n);
    out.push_back(last_);
  }

 private:
  ProcessId last_ = -1;
};

class CentralRandomDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "central-random";
    return kName;
  }
  bool wants_enabled() const override { return true; }
  void select(const Graph& g, const std::vector<std::uint8_t>& enabled,
              Rng& rng, std::vector<ProcessId>& out) override {
    scratch_.clear();
    all_enabled_or_everyone(g, enabled, scratch_);
    out.push_back(scratch_[rng.below(scratch_.size())]);
  }

 private:
  std::vector<ProcessId> scratch_;
};

class DistributedRandomDaemon final : public Daemon {
 public:
  explicit DistributedRandomDaemon(double q) : q_(q) {
    SSS_REQUIRE(q > 0.0 && q <= 1.0,
                "selection probability must be in (0,1]");
  }
  const std::string& name() const override {
    static const std::string kName = "distributed";
    return kName;
  }
  bool wants_enabled() const override { return false; }
  void select(const Graph& g, const std::vector<std::uint8_t>&, Rng& rng,
              std::vector<ProcessId>& out) override {
    // Redraw until non-empty; expected < 2 draws for any n and q >= 0.5/n.
    while (out.empty()) {
      for (ProcessId p = 0; p < g.num_vertices(); ++p) {
        if (rng.chance(q_)) out.push_back(p);
      }
    }
  }

 private:
  double q_;
};

class FairEnumeratorDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "enumerator";
    return kName;
  }
  bool wants_enabled() const override { return false; }
  void select(const Graph& g, const std::vector<std::uint8_t>&, Rng&,
              std::vector<ProcessId>& out) override {
    out.push_back(next_);
    next_ = static_cast<ProcessId>((next_ + 1) % g.num_vertices());
  }

 private:
  ProcessId next_ = 0;
};

class AdversarialClusterDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "adversarial";
    return kName;
  }
  bool wants_enabled() const override { return true; }
  void select(const Graph& g, const std::vector<std::uint8_t>& enabled,
              Rng& rng, std::vector<ProcessId>& out) override {
    const int n = g.num_vertices();
    if (idle_steps_.empty()) {
      idle_steps_.assign(static_cast<std::size_t>(n), 0);
    }
    scratch_.clear();
    all_enabled_or_everyone(g, enabled, scratch_);
    const ProcessId seed_process = scratch_[rng.below(scratch_.size())];
    out.push_back(seed_process);
    for (ProcessId q : g.neighbors(seed_process)) {
      if (enabled[static_cast<std::size_t>(q)]) out.push_back(q);
    }
    // Starvation patch: stay fair by force-selecting long-idle processes.
    const int patience = 8 * n;
    for (ProcessId p = 0; p < n; ++p) {
      if (idle_steps_[static_cast<std::size_t>(p)] >= patience &&
          std::find(out.begin(), out.end(), p) == out.end()) {
        out.push_back(p);
      }
    }
    for (ProcessId p = 0; p < n; ++p) {
      ++idle_steps_[static_cast<std::size_t>(p)];
    }
    for (ProcessId p : out) idle_steps_[static_cast<std::size_t>(p)] = 0;
    std::sort(out.begin(), out.end());
  }

 private:
  std::vector<ProcessId> scratch_;
  std::vector<int> idle_steps_;
};

}  // namespace

std::unique_ptr<Daemon> make_synchronous_daemon() {
  return std::make_unique<SynchronousDaemon>();
}
std::unique_ptr<Daemon> make_central_round_robin_daemon() {
  return std::make_unique<CentralRoundRobinDaemon>();
}
std::unique_ptr<Daemon> make_central_random_daemon() {
  return std::make_unique<CentralRandomDaemon>();
}
std::unique_ptr<Daemon> make_distributed_random_daemon(double q) {
  return std::make_unique<DistributedRandomDaemon>(q);
}
std::unique_ptr<Daemon> make_fair_enumerator_daemon() {
  return std::make_unique<FairEnumeratorDaemon>();
}
std::unique_ptr<Daemon> make_adversarial_cluster_daemon() {
  return std::make_unique<AdversarialClusterDaemon>();
}

const std::vector<std::string>& daemon_names() {
  static const std::vector<std::string> kNames = {
      "synchronous", "central-rr",  "central-random",
      "distributed", "enumerator",  "adversarial"};
  return kNames;
}

std::unique_ptr<Daemon> make_daemon(const std::string& name) {
  if (name == "synchronous") return make_synchronous_daemon();
  if (name == "central-rr") return make_central_round_robin_daemon();
  if (name == "central-random") return make_central_random_daemon();
  if (name == "distributed") return make_distributed_random_daemon();
  if (name == "enumerator") return make_fair_enumerator_daemon();
  if (name == "adversarial") return make_adversarial_cluster_daemon();
  throw PreconditionError("unknown daemon: " + name);
}

}  // namespace sss
