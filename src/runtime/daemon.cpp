#include "runtime/daemon.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {

/// Appends every enabled id in ascending order; if none, appends every id
/// (the step becomes a no-op, which the paper's footnote 1 permits:
/// gamma_{i+1} = gamma_i).
void all_enabled_or_everyone(const Graph& g, const EnabledSet& enabled,
                             std::vector<ProcessId>& out) {
  if (enabled.empty()) {
    for (ProcessId p = 0; p < g.num_vertices(); ++p) out.push_back(p);
    return;
  }
  enabled.for_each([&](ProcessId p) { out.push_back(p); });
}

/// One uniformly random enabled process; falls back to a uniformly random
/// process (no-op step) when nothing is enabled. The enabled branch indexes
/// the set in ascending id order, exactly the draw the historical
/// sorted-scratch-vector implementation made.
ProcessId uniform_enabled_or_anyone(const Graph& g, const EnabledSet& enabled,
                                    Rng& rng) {
  if (enabled.empty()) {
    return static_cast<ProcessId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
  }
  return enabled.kth(static_cast<int>(
      rng.below(static_cast<std::uint64_t>(enabled.count()))));
}

class SynchronousDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "synchronous";
    return kName;
  }
  void select(const Graph& g, const EnabledSet& enabled, Rng&,
              std::vector<ProcessId>& out) override {
    all_enabled_or_everyone(g, enabled, out);
  }
};

class CentralRoundRobinDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "central-rr";
    return kName;
  }
  void select(const Graph& g, const EnabledSet& enabled, Rng&,
              std::vector<ProcessId>& out) override {
    const ProcessId next = enabled.next_cyclic(last_);
    if (next >= 0) {
      last_ = next;
    } else {
      // Nobody enabled: select the next process anyway (no-op step) so the
      // daemon still covers everyone for round accounting.
      last_ = static_cast<ProcessId>((last_ + 1) % g.num_vertices());
    }
    out.push_back(last_);
  }

 private:
  ProcessId last_ = -1;
};

class CentralRandomDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "central-random";
    return kName;
  }
  void select(const Graph& g, const EnabledSet& enabled, Rng& rng,
              std::vector<ProcessId>& out) override {
    out.push_back(uniform_enabled_or_anyone(g, enabled, rng));
  }
};

class DistributedRandomDaemon final : public Daemon {
 public:
  explicit DistributedRandomDaemon(double q) : q_(q) {
    SSS_REQUIRE(q > 0.0 && q <= 1.0,
                "selection probability must be in (0,1]");
  }
  const std::string& name() const override {
    static const std::string kName = "distributed";
    return kName;
  }
  void select(const Graph& g, const EnabledSet& enabled, Rng& rng,
              std::vector<ProcessId>& out) override {
    if (enabled.empty()) {
      // Silent (or locally quiet) configuration: every selection is a
      // no-op; one uniformly random process keeps the step non-empty and
      // the daemon fair without an O(n) coin pass.
      out.push_back(static_cast<ProcessId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices()))));
      return;
    }
    // Independent q-coins over the enabled set only; redraw until
    // non-empty (expected < 2 passes for q >= 0.5). Disabled processes
    // would be no-ops anyway and are covered for round accounting the
    // moment the engine observes them disabled.
    while (out.empty()) {
      enabled.sample(rng, q_, out);
    }
  }

 private:
  double q_;
};

class FairEnumeratorDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "enumerator";
    return kName;
  }
  void select(const Graph& g, const EnabledSet&, Rng&,
              std::vector<ProcessId>& out) override {
    out.push_back(next_);
    next_ = static_cast<ProcessId>((next_ + 1) % g.num_vertices());
  }

 private:
  ProcessId next_ = 0;
};

class AdversarialClusterDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "adversarial";
    return kName;
  }
  void select(const Graph& g, const EnabledSet& enabled, Rng& rng,
              std::vector<ProcessId>& out) override {
    const int n = g.num_vertices();
    if (idle_steps_.empty()) {
      idle_steps_.assign(static_cast<std::size_t>(n), 0);
    }
    const ProcessId seed_process = uniform_enabled_or_anyone(g, enabled, rng);
    out.push_back(seed_process);
    for (ProcessId q : g.neighbors(seed_process)) {
      if (enabled.test(q)) out.push_back(q);
    }
    // Starvation patch: stay fair by force-selecting long-idle processes.
    const int patience = 8 * n;
    for (ProcessId p = 0; p < n; ++p) {
      if (idle_steps_[static_cast<std::size_t>(p)] >= patience &&
          std::find(out.begin(), out.end(), p) == out.end()) {
        out.push_back(p);
      }
    }
    for (ProcessId p = 0; p < n; ++p) {
      ++idle_steps_[static_cast<std::size_t>(p)];
    }
    for (ProcessId p : out) idle_steps_[static_cast<std::size_t>(p)] = 0;
    std::sort(out.begin(), out.end());
  }

 private:
  std::vector<int> idle_steps_;
};

}  // namespace

std::unique_ptr<Daemon> make_synchronous_daemon() {
  return std::make_unique<SynchronousDaemon>();
}
std::unique_ptr<Daemon> make_central_round_robin_daemon() {
  return std::make_unique<CentralRoundRobinDaemon>();
}
std::unique_ptr<Daemon> make_central_random_daemon() {
  return std::make_unique<CentralRandomDaemon>();
}
std::unique_ptr<Daemon> make_distributed_random_daemon(double q) {
  return std::make_unique<DistributedRandomDaemon>(q);
}
std::unique_ptr<Daemon> make_fair_enumerator_daemon() {
  return std::make_unique<FairEnumeratorDaemon>();
}
std::unique_ptr<Daemon> make_adversarial_cluster_daemon() {
  return std::make_unique<AdversarialClusterDaemon>();
}

const std::vector<std::string>& daemon_names() {
  static const std::vector<std::string> kNames = {
      "synchronous", "central-rr",  "central-random",
      "distributed", "enumerator",  "adversarial"};
  return kNames;
}

std::unique_ptr<Daemon> make_daemon(const std::string& name) {
  if (name == "synchronous") return make_synchronous_daemon();
  if (name == "central-rr") return make_central_round_robin_daemon();
  if (name == "central-random") return make_central_random_daemon();
  if (name == "distributed") return make_distributed_random_daemon();
  if (name == "enumerator") return make_fair_enumerator_daemon();
  if (name == "adversarial") return make_adversarial_cluster_daemon();
  throw PreconditionError("unknown daemon: " + name);
}

}  // namespace sss
