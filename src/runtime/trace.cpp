#include "runtime/trace.hpp"

#include <sstream>

#include "support/require.hpp"

namespace sss {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  SSS_REQUIRE(capacity >= 1, "trace capacity must be positive");
}

void TraceRecorder::record(TraceEvent event) {
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(std::move(event));
}

std::string TraceRecorder::str() const {
  std::ostringstream out;
  for (const auto& e : events_) {
    out << "step " << e.step << ": selected {";
    for (std::size_t i = 0; i < e.selected.size(); ++i) {
      if (i) out << ',';
      out << e.selected[i];
    }
    out << "} actions {";
    for (std::size_t i = 0; i < e.actions.size(); ++i) {
      if (i) out << ',';
      if (e.actions[i] < 0) {
        out << '-';
      } else {
        out << e.actions[i];
      }
    }
    out << '}';
    if (e.comm_changed) out << " comm*";
    out << '\n';
  }
  return out.str();
}

}  // namespace sss
