#include "runtime/fault.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

void corrupt_processes(const Graph& g, const ProtocolSpec& spec,
                       Configuration& config,
                       const std::vector<ProcessId>& victims, Rng& rng) {
  for (ProcessId p : victims) {
    SSS_REQUIRE(p >= 0 && p < g.num_vertices(), "victim id out of range");
    for (int v = 0; v < spec.num_comm(); ++v) {
      const auto& var = spec.comm[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      const VarDomain d = var.domain(g, p);
      config.set_comm(p, v, static_cast<Value>(rng.range(d.lo, d.hi)));
    }
    for (int v = 0; v < spec.num_internal(); ++v) {
      const auto& var = spec.internal[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      const VarDomain d = var.domain(g, p);
      config.set_internal(p, v, static_cast<Value>(rng.range(d.lo, d.hi)));
    }
  }
}

std::vector<ProcessId> choose_victims(int n, int count, Rng& rng) {
  SSS_REQUIRE(count >= 0 && count <= n, "fault count out of range");
  std::vector<ProcessId> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  shuffle(all, rng);
  std::vector<ProcessId> victims(all.begin(), all.begin() + count);
  std::sort(victims.begin(), victims.end());
  return victims;
}

std::vector<ProcessId> inject_random_faults(const Graph& g,
                                            const ProtocolSpec& spec,
                                            Configuration& config, int count,
                                            Rng& rng) {
  std::vector<ProcessId> victims = choose_victims(g.num_vertices(), count, rng);
  corrupt_processes(g, spec, config, victims, rng);
  return victims;
}

}  // namespace sss
