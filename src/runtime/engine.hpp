#pragma once
/// \file engine.hpp
/// The computation engine: drives a protocol over a graph under a daemon,
/// producing computations (gamma_0 s_0 gamma_1), (gamma_1 s_1 gamma_2), ...
/// exactly as Section 2 defines them, while measuring everything Section 3
/// asks about.
///
/// Fidelity notes:
///  * Subset steps use snapshot semantics: every process selected in a step
///    evaluates guards and computes writes against gamma_i; commits happen
///    together to form gamma_{i+1}.
///  * Rounds: a round completes when every process has been covered, where
///    covered means "selected by the daemon" or "disabled at some moment
///    during the round". This is the paper's round for daemons that select
///    disabled processes, and the standard Dolev-Israeli-Moran round for
///    daemons that never waste selections on disabled processes.
///  * Enabledness probes and quiescence checks are simulator devices: they
///    never touch the main rng stream and are never counted as model reads.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/daemon.hpp"
#include "runtime/metrics.hpp"
#include "runtime/protocol.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/trace.hpp"

namespace sss {

/// Legitimacy predicate over (graph, configuration); supplied by the caller
/// because "the problem" is a layer above the runtime.
using LegitimacyPredicate =
    std::function<bool(const Graph&, const Configuration&)>;

struct RunOptions {
  std::uint64_t max_steps = 1'000'000;
  /// Stop as soon as an exact quiescence check certifies silence.
  bool stop_on_silence = true;
  /// Steps without a communication change before attempting the (exact but
  /// not free) quiescence check; 0 picks max(16, n) automatically.
  std::uint64_t quiescence_patience = 0;
  /// Optional legitimacy predicate for first-legitimate bookkeeping.
  LegitimacyPredicate legitimacy;
};

struct RunStats {
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;

  bool reached_legitimate = false;
  std::uint64_t steps_to_legitimate = 0;
  std::uint64_t rounds_to_legitimate = 0;

  bool silent = false;  ///< certified by the exact quiescence check
  /// Step/round count after which no communication variable changed again
  /// (the silence point; meaningful when `silent`).
  std::uint64_t steps_to_silence = 0;
  std::uint64_t rounds_to_silence = 0;

  std::uint64_t total_reads = 0;
  std::uint64_t total_read_bits = 0;
  int max_reads_per_process_step = 0;
  int max_bits_per_process_step = 0;
};

class Engine {
 public:
  /// The engine keeps references to `g` and `protocol`; both must outlive
  /// it. The daemon is owned. The seed fixes every stochastic choice.
  Engine(const Graph& g, const Protocol& protocol,
         std::unique_ptr<Daemon> daemon, std::uint64_t seed);

  const Graph& graph() const { return graph_; }
  const Protocol& protocol() const { return protocol_; }
  const Configuration& config() const { return config_; }
  Daemon& daemon() { return *daemon_; }

  /// Replaces the configuration (domains are validated) and re-installs
  /// protocol constants.
  void set_config(const Configuration& config);

  /// Draws an arbitrary configuration: every non-constant variable uniform
  /// in its domain, constants re-installed.
  void randomize_state();

  /// Executes one scheduler step. Returns whether any process fired and
  /// whether any communication variable changed.
  struct StepInfo {
    int selected = 0;
    int fired = 0;
    bool comm_changed = false;
  };
  StepInfo step();

  /// Runs until silence (if stop_on_silence) or max_steps. Accumulates into
  /// the engine's lifetime counters and returns the stats of this run.
  RunStats run(const RunOptions& options);

  std::uint64_t steps() const { return steps_; }
  /// Completed rounds so far.
  std::uint64_t rounds() const { return rounds_completed_; }
  /// Rounds in the "within k rounds" sense: completed rounds, plus one if
  /// the current round has begun.
  std::uint64_t rounds_inclusive() const;

  /// Enabledness of p in the current configuration (cached probe).
  bool is_enabled(ProcessId p);
  int num_enabled();

  /// Exact silence check of the current configuration.
  bool quiescent() const;

  /// Attach an extra read observer (e.g. StabilityTracker). Not owned.
  void attach_read_logger(ReadLogger* logger);
  void detach_read_logger(ReadLogger* logger);

  /// Attach a trace recorder. Not owned; pass nullptr to detach.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Step-level read metrics for the engine's lifetime.
  const StepReadCounter& read_counter() const { return read_counter_; }

  Rng& rng() { return rng_; }

 private:
  void invalidate_all_probes();
  void refresh_enabled();
  void note_comm_changed(ProcessId p);
  void update_round_accounting();

  const Graph& graph_;
  const Protocol& protocol_;
  std::unique_ptr<Daemon> daemon_;
  Rng rng_;
  Rng probe_rng_;
  Configuration config_;

  // Enabledness cache.
  std::vector<std::uint8_t> enabled_;
  std::vector<std::uint8_t> probe_valid_;

  // Round accounting.
  std::vector<std::uint8_t> covered_;
  int covered_count_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t steps_at_round_start_ = 0;

  // Lifetime counters.
  std::uint64_t steps_ = 0;
  std::uint64_t last_comm_change_step_ = 0;
  std::uint64_t rounds_at_last_comm_change_ = 0;
  bool comm_ever_changed_ = false;

  // Scratch buffers reused across steps.
  std::vector<ProcessId> selection_;
  std::vector<ProcessStep> staged_;

  ReadLoggerMux logger_mux_;
  StepReadCounter read_counter_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace sss
