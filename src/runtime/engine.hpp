#pragma once
/// \file engine.hpp
/// The computation engine: drives a protocol over a graph under a daemon,
/// producing computations (gamma_0 s_0 gamma_1), (gamma_1 s_1 gamma_2), ...
/// exactly as Section 2 defines them, while measuring everything Section 3
/// asks about.
///
/// Fidelity notes:
///  * Subset steps use snapshot semantics: every process selected in a step
///    evaluates guards and computes writes against gamma_i; commits happen
///    together to form gamma_{i+1}.
///  * Rounds: a round completes when every process has been covered, where
///    covered means "selected by the daemon" or "disabled at some moment
///    during the round". This is the paper's round for daemons that select
///    disabled processes, and the standard Dolev-Israeli-Moran round for
///    daemons that never waste selections on disabled processes.
///  * Enabledness probes and quiescence checks are simulator devices: they
///    never touch the main rng stream and are never counted as model reads.
///
/// Hot-path design — the per-step cost is O(|selection| + perturbed
/// neighborhoods), not O(n). Three incremental structures carry this, all
/// exploiting the same locality fact: a process's behaviour depends only on
/// its own state and its neighbors' communication variables, so an event at
/// p can only affect p (it fired: own state changed) and N(p) (its
/// communication state changed). `ReferenceEngine` preserves the original
/// full-scan implementation, and tests/test_engine_equivalence.cpp drives
/// both in lockstep to prove the semantics are bit-identical.
///
///  1. Enabledness dirty queue. `enabled_` (a word-packed `EnabledSet`)
///     caches every process's guard evaluation and counts the members.
///     Invariant: a cached entry is stale only if p sits in `dirty_queue_`
///     (flagged by `probe_dirty_`). Firing marks the process dirty; a
///     communication change marks its neighbors dirty (`note_comm_changed`).
///     `refresh_enabled` drains the queue, so a step re-evaluates only the
///     perturbed guards — and the same set feeds the daemon directly, so
///     selection cost tracks the answer instead of rescanning n entries.
///
///  2. Incremental round accounting. Invariant between steps: every
///     process whose cached enabledness is 0 is covered ("disabled at some
///     moment during the round" can only begin at a refresh that observes
///     it disabled, or at a round boundary). So the per-step work is
///     covering the selection; the O(n) "cover everything disabled" rescan
///     runs once per completed round (`reset_round`), not once per step.
///
///  3. Solo-quiescence cache. `solo_active_[p]` caches "would p, run solo
///     against the frozen communication state, attempt a communication
///     write within degree(p) + margin activations" — exactly the per-
///     process question `is_comm_quiescent` answers; `solo_active_count_`
///     counts the 1s, and the configuration is certified silent iff it
///     drains to zero. The cache goes stale under the same two events as
///     enabledness and is refreshed lazily only when `run` reaches a
///     quiescence checkpoint, so the O(n*Delta) full solo simulation of the
///     original engine happens at most once per run (as a final
///     confirmation assert) instead of at every checkpoint.
///
///  4. Guard memo. A probe must run `first_enabled` anyway, so it records
///     its outcome: the chosen action and the exact sequence of neighbor
///     reads the guard logged (`probe_action_`, `probe_reads_`). The dirty
///     invariant that keeps the enabledness bit current keeps the memo
///     current too — a clean process's guard inputs are unchanged, so a
///     live re-run would log the same reads and return the same action.
///     Phase 1 of `step()` therefore *replays* the memo into the read
///     counters and goes straight to `execute` for enabled processes,
///     instead of re-evaluating every selected guard. Under large
///     selections (synchronous/distributed daemons) this roughly halves
///     the per-selected-process cost; metrics stay bit-identical because
///     the replayed on_read sequence is the one a live evaluation would
///     emit.
///
///  5. Bulk guard sweep. Under co-firing daemons the dirty queue holds
///     almost all of n after every step, so the refresh is n scalar probes
///     — n virtual calls with per-read checked lookups. When the protocol
///     opts in (Protocol::has_bulk_sweep) and the dirty set covers at
///     least 3/4 of the network (or SweepMode::kForceBulk), the refresh
///     instead runs one `sweep_enabled` pass over the CSR slabs that
///     rewrites every memo (action + read log) at once; see
///     runtime/bulk.hpp. Clean processes are recomputed too — their
///     inputs are unchanged, so the sweep reproduces their memos exactly
///     and the dirty-queue invariant is preserved. Frozen-process
///     exclusion needs the per-process self-loop classifier, so it always
///     takes the scalar path.
///
///  6. Bulk execution. The execute half of a deployed synchronous step
///     pays one ActionContext + virtual `execute` + pending-write commit
///     per selected process. When the protocol opts in
///     (Protocol::has_bulk_execute) and the selection covers at least
///     half of the network (or SweepMode::kForceBulk), phase 1 instead
///     runs one `execute_selected` pass over the CSR slabs: the kernel
///     replays each selected guard memo into the read counters and
///     stages each fired process's post-state as a full configuration
///     row; phase 2 commits the rows with the same dirty-queue/covering/
///     solo-cache treatment (and comm-changed detection by comm-prefix
///     compare, equivalent to the pending-write flag because unwritten
///     slots keep their snapshot values). The 1/2 threshold is calibrated
///     from bench_bulk_execute: the bulk pass only amortizes its staging
///     and dispatch overhead under co-firing selections. Frozen-process
///     exclusion and attached external read loggers pin the scalar
///     execute exactly as they pin the scalar sweep / serial step;
///     probabilistic protocols are bulk-executable *serially* (the kernel
///     draws from the model rng in ascending selection order, which is
///     the scalar stream bit for bit) and stay serial under invariant 7's
///     gates.
///
///  7. Intra-trial parallelism (opt-in via set_parallel_threads). The
///     network is partitioned into contiguous 64-aligned process ranges —
///     one per StepPool worker — so each range owns disjoint EnabledSet
///     words, probe memo slots, and covered_/probe_dirty_ bytes. Guard
///     refreshes (scalar probes and bulk sweeps alike; guards never draw
///     randomness) and the selected set's phase-1 evaluation + phase-2
///     row commits fan out over the ranges — phase 1 running the bulk
///     execute kernel over each worker's contiguous selection slice when
///     invariant 6 would engage it serially; everything order-sensitive —
///     daemon selection (it consumes rng_), EnabledSet count deltas,
///     dirty-queue pushes, read-metric absorption — is merged serially in
///     ascending process order after the barrier. The determinism
///     contract: every configuration trajectory, round count, and
///     read/bit metric is bit-identical to the single-threaded engine at
///     any thread count. Three gates keep the contract airtight rather
///     than probabilistic: probabilistic protocols fall back to serial
///     execution (Rng::below consumes a variable number of words, so
///     parallel actions cannot preserve the stream; an empty random
///     script + assert catches a protocol that lies about
///     is_probabilistic), attached external read loggers force the
///     serial path (ReadLoggerMux fan-out is order-sensitive and not
///     thread-safe), and frozen-process exclusion pins the scalar serial
///     refresh exactly as it pins the scalar sweep.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/daemon.hpp"
#include "runtime/enabled_set.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel.hpp"
#include "runtime/protocol.hpp"
#include "runtime/quiescence.hpp"
#include "runtime/trace.hpp"

namespace sss {

/// How the engine runs the bulk-capable halves of a step: guard refresh
/// (invariant 5 in the file comment) and selection execution (invariant
/// 6). kAuto picks the bulk sweep when the protocol opts in and the dirty
/// set covers at least 3/4 of the network, and the bulk execute when the
/// selection covers at least half; the force modes exist for the
/// differential suites and the scalar-vs-bulk benches, and govern both
/// halves at once. Every mode computes the same computation bit for bit —
/// mode only changes cost, and may be flipped mid-trajectory.
enum class SweepMode { kAuto, kForceScalar, kForceBulk };

/// Manifest/CLI spelling of a SweepMode ("auto", "force_scalar",
/// "force_bulk"); throws PreconditionError on anything else.
SweepMode parse_sweep_mode(const std::string& name);
const std::string& sweep_mode_name(SweepMode mode);

/// Legitimacy predicate over (graph, configuration); supplied by the caller
/// because "the problem" is a layer above the runtime.
using LegitimacyPredicate =
    std::function<bool(const Graph&, const Configuration&)>;

struct RunOptions {
  std::uint64_t max_steps = 1'000'000;
  /// Stop as soon as an exact quiescence check certifies silence.
  bool stop_on_silence = true;
  /// Steps without a communication change before attempting the (exact but
  /// not free) quiescence check; 0 picks max(16, n) automatically.
  std::uint64_t quiescence_patience = 0;
  /// Optional legitimacy predicate for first-legitimate bookkeeping.
  LegitimacyPredicate legitimacy;
};

struct RunStats {
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;

  bool reached_legitimate = false;
  std::uint64_t steps_to_legitimate = 0;
  std::uint64_t rounds_to_legitimate = 0;

  bool silent = false;  ///< certified by the exact quiescence check
  /// Step/round count after which no communication variable changed again
  /// (the silence point; meaningful when `silent`).
  std::uint64_t steps_to_silence = 0;
  std::uint64_t rounds_to_silence = 0;

  std::uint64_t total_reads = 0;
  std::uint64_t total_read_bits = 0;
  int max_reads_per_process_step = 0;
  int max_bits_per_process_step = 0;
};

class Engine {
 public:
  /// The engine keeps references to `g` and `protocol`; both must outlive
  /// it. The daemon is owned. The seed fixes every stochastic choice.
  Engine(const Graph& g, const Protocol& protocol,
         std::unique_ptr<Daemon> daemon, std::uint64_t seed);

  const Graph& graph() const { return graph_; }
  const Protocol& protocol() const { return protocol_; }
  const Configuration& config() const { return config_; }
  Daemon& daemon() { return *daemon_; }

  /// Replaces the configuration (domains are validated) and re-installs
  /// protocol constants.
  void set_config(const Configuration& config);

  /// Draws an arbitrary configuration: every non-constant variable uniform
  /// in its domain, constants re-installed.
  void randomize_state();

  /// Injects a transient fault mid-run: redraws every non-constant variable
  /// of every victim uniformly from its domain (the `corrupt_processes`
  /// draw sequence, consumed from `rng`) and repairs the incremental caches
  /// *locally* — the victims and their neighborhoods are re-dirtied in the
  /// enabledness and solo-quiescence queues (the corruption touched only
  /// their guard inputs, by the locality fact in the file comment), the
  /// guard memos of that set are rebuilt on the next refresh, and round
  /// covering restarts exactly as `set_config` restarts it. Unlike
  /// `set_config` this is O(victims * Delta), not O(n), so a churn driver
  /// can inject thousands of disruptions without full invalidation sweeps.
  /// ReferenceEngine has the same hook with full invalidation; the churn
  /// lockstep suites prove both repairs are step-for-step identical.
  void apply_external_corruption(const std::vector<ProcessId>& victims,
                                 Rng& rng);

  /// Executes one scheduler step. Returns whether any process fired and
  /// whether any communication variable changed.
  struct StepInfo {
    int selected = 0;
    int fired = 0;
    bool comm_changed = false;
  };
  StepInfo step();

  /// Runs until silence (if stop_on_silence) or max_steps. Accumulates into
  /// the engine's lifetime counters and returns the stats of this run.
  RunStats run(const RunOptions& options);

  std::uint64_t steps() const { return steps_; }
  /// Completed rounds so far.
  std::uint64_t rounds() const { return rounds_completed_; }
  /// Rounds in the "within k rounds" sense: completed rounds, plus one if
  /// the current round has begun.
  std::uint64_t rounds_inclusive() const;

  /// Enabledness of p in the current configuration (cached probe).
  bool is_enabled(ProcessId p);
  int num_enabled();

  /// Opt-in (off by default): exclude *frozen* processes from the enabled
  /// set handed to the daemon. A process is frozen when its first enabled
  /// action is a verified self-loop — executing it consumes no randomness
  /// and writes only values equal to the current configuration, so firing
  /// it is indistinguishable from not selecting it. The classic case is a
  /// silent COLORING network's degree-1 leaves, whose pointer rotation
  /// cur <- (cur mod 1) + 1 rewrites cur with itself forever: under the
  /// distributed daemon they keep the sampled set at Theta(n) after
  /// silence (the ROADMAP selection-floor item) even though selecting
  /// them can never change anything.
  ///
  /// Semantics: a frozen process is treated exactly as if the daemon
  /// co-selected it every step and its self-loop fired — it is covered
  /// for round accounting at classification time, and the configuration
  /// trajectory is unchanged because the fired action writes no new
  /// values. Daemon rng consumption *does* change (the sampled set is
  /// smaller), so runs with exclusion on are not bit-identical to runs
  /// with it off under randomized daemons; under the synchronous daemon
  /// with a deterministic protocol they are configuration-identical step
  /// for step (equivalence-tested against ReferenceEngine). When every
  /// enabled process is frozen the full enabled set is handed to the
  /// daemon unchanged, keeping selection well-formed.
  void set_exclude_frozen(bool on);
  bool exclude_frozen() const { return exclude_frozen_; }

  /// Frozen status of p under the current configuration; always false
  /// while exclusion is off.
  bool is_frozen(ProcessId p);

  /// Probe-refresh strategy (see SweepMode). kForceBulk on a protocol
  /// without a bulk sweep, or with frozen exclusion on, falls back to the
  /// scalar path — the mode is a preference, the semantics never change.
  void set_sweep_mode(SweepMode mode) { sweep_mode_ = mode; }
  SweepMode sweep_mode() const { return sweep_mode_; }

  /// Intra-trial parallelism (invariant 7 in the file comment): evaluate
  /// guard refreshes and the selected set on `threads` pool workers with a
  /// deterministic merge. 1 (the default) runs fully serial with no pool.
  /// Any value produces the bit-identical computation — thread count only
  /// changes wall-clock — so callers may pick it from the hardware freely.
  void set_parallel_threads(int threads);
  int parallel_threads() const { return parallel_threads_; }

  /// Exact silence check of the current configuration.
  bool quiescent() const;

  /// Attach an extra read observer (e.g. StabilityTracker). Not owned.
  void attach_read_logger(ReadLogger* logger);
  void detach_read_logger(ReadLogger* logger);

  /// Attach a trace recorder. Not owned; pass nullptr to detach.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Step-level read metrics for the engine's lifetime.
  const StepReadCounter& read_counter() const { return read_counter_; }

  Rng& rng() { return rng_; }

 private:
  void invalidate_all_probes();
  void mark_probe_dirty(ProcessId p);
  void mark_solo_dirty(ProcessId p);
  void refresh_enabled();
  /// One sweep_enabled pass committed into the probe memo, enabled set,
  /// and round covering — the bulk equivalent of draining the dirty queue
  /// through scalar probes.
  void bulk_refresh();
  /// Partitioned counterparts of the two refresh paths (invariant 7):
  /// every worker drains the dirty ids (scalar) or sweeps (bulk) its own
  /// 64-aligned range, deferring EnabledSet count and covered_count_
  /// deltas to the serial merge after the barrier.
  void parallel_scalar_refresh();
  void parallel_bulk_refresh();
  /// Phase 1 + 2 of step() over the pool: evaluate the selection in
  /// contiguous index slices (scalar per-process, or the bulk execute
  /// kernel per slice when use_bulk_execute holds), barrier, commit rows
  /// in parallel, barrier, then merge dirty marks and read metrics
  /// serially in ascending selection order. Only called under the
  /// invariant-7 gates.
  void parallel_phases(std::size_t selected, StepInfo& info);
  /// Invariant-6 dispatch: does this step's execution run the protocol's
  /// bulk kernel? A pure cost gate — both paths are bit-identical.
  bool use_bulk_execute(std::size_t selected) const;
  /// Serial bulk execution of the whole selection (invariant 6): mirror
  /// the memo into the action bitmap, run execute_selected, commit the
  /// staged rows.
  void bulk_phases(std::size_t selected, StepInfo& info);
  /// Mirrors probe_action_ into bulk_actions_ (the kernel's input) and
  /// staged_[i].action (what phase 2 and the trace read) for selection
  /// indices [begin, end). The memo is authoritative — the bitmap may be
  /// stale after scalar refreshes.
  void stage_bulk_actions(std::size_t begin, std::size_t end);
  /// Phase 2 of the bulk path for selection index i: comm-changed by
  /// comparing the staged comm prefix against the live row (equivalent to
  /// the pending-write flag, since unwritten slots keep their snapshot
  /// values), then whole-row copy. Returns whether a communication
  /// variable changed value.
  bool commit_staged_row(std::size_t i);
  /// Runs `action` for p through the scalar execute against a scratch rng
  /// with the empty random script installed, staging writes into `writes`
  /// (cleared first) and logging action reads through `logger`. The one
  /// home of the certified-execution setup and its "no randomness in
  /// certified paths" assert: a protocol that declares is_probabilistic()
  /// == false and draws anyway dies here. For probabilistic protocols
  /// (reachable via the frozen classifier only) a draw attempt is an
  /// answer, not an error — the false return says the action cannot be
  /// certified from one sample.
  bool execute_certified(ProcessId p, int action, ReadLogger* logger,
                         std::vector<PendingWrite>& writes,
                         bool& comm_write_attempted);
  /// Worker w's process range [begin, end): contiguous, 64-aligned, so
  /// partitioned writers never share an EnabledSet word.
  std::pair<ProcessId, ProcessId> worker_range(int worker) const;
  /// Would firing `action` (p's memoized first enabled action) provably
  /// leave the configuration unchanged? See set_exclude_frozen.
  bool verified_self_loop(ProcessId p, int action);
  void note_comm_changed(ProcessId p);
  void cover(ProcessId p);
  void reset_round();
  /// Incremental equivalent of is_comm_quiescent on the current
  /// configuration: refreshes stale solo_active_ entries (via the shared
  /// solo_would_write_comm procedure), then answers from
  /// solo_active_count_.
  bool comm_quiescent_cached();

  const Graph& graph_;
  const Protocol& protocol_;
  std::unique_ptr<Daemon> daemon_;
  Rng rng_;
  Configuration config_;

  // Enabledness cache (invariant 1 in the file comment). `enabled_` is the
  // membership + count structure handed to the daemon every step.
  EnabledSet enabled_;
  std::vector<std::uint8_t> probe_dirty_;
  std::vector<ProcessId> dirty_queue_;

  // Bulk sweep (invariant 5) and bulk execute (invariant 6). The
  // `*_supported_` flags cache the protocol's opt-ins; `bulk_actions_` is
  // the sweep's reusable output arena, doubling as the execute kernel's
  // action input (stage_bulk_actions re-syncs it from the memo);
  // `bulk_staged_rows_` holds one full configuration row per selection
  // index for the kernel's staged writes.
  bool bulk_supported_ = false;
  bool bulk_exec_supported_ = false;
  SweepMode sweep_mode_ = SweepMode::kAuto;
  EnabledBitmap bulk_actions_;
  std::vector<Value> bulk_staged_rows_;

  // Frozen-process exclusion (see set_exclude_frozen). `active_` is
  // enabled minus frozen, maintained alongside `enabled_` by the same
  // dirty-queue refresh; both vectors are only consulted while
  // `exclude_frozen_` is on, so the default path pays nothing.
  bool exclude_frozen_ = false;
  EnabledSet active_;
  std::vector<std::uint8_t> frozen_;
  std::vector<PendingWrite> frozen_scratch_;

  // Guard memo (invariant 4): per-process action chosen by the last probe
  // and the neighbor reads its guard evaluation logged, replayed verbatim
  // when the process is selected while clean.
  class ProbeRecorder final : public ReadLogger {
   public:
    std::vector<std::pair<ProcessId, int>>* target = nullptr;
    void on_read(ProcessId, ProcessId subject, int comm_var) override {
      target->push_back({subject, comm_var});
    }
  };
  std::vector<int> probe_action_;
  std::vector<std::vector<std::pair<ProcessId, int>>> probe_reads_;
  ProbeRecorder probe_recorder_;

  // Round accounting (invariant 2).
  std::vector<std::uint8_t> covered_;
  int covered_count_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t steps_at_round_start_ = 0;

  // Solo-quiescence cache (invariant 3).
  std::vector<std::uint8_t> solo_active_;
  std::vector<std::uint8_t> solo_dirty_;
  std::vector<ProcessId> solo_dirty_queue_;
  int solo_active_count_ = 0;

  // Lifetime counters.
  std::uint64_t steps_ = 0;
  std::uint64_t last_comm_change_step_ = 0;
  std::uint64_t rounds_at_last_comm_change_ = 0;

  // Scratch arenas reused across steps; sized up once, never shrunk, so
  // the steady-state step performs no heap allocation.
  std::vector<ProcessId> selection_;
  std::vector<ProcessStep> staged_;
  std::vector<Value> solo_saved_row_;
  ProcessStep solo_scratch_;

  // Intra-trial parallelism (invariant 7). worker_states_ holds one slot
  // per pool worker, reused across steps; external_loggers_ counts
  // attach_read_logger clients, whose presence forces the serial path.
  struct WorkerState {
    explicit WorkerState(const StepReadCounter& counter) : tally(counter) {}
    WorkerReadTally tally;
    /// (process, comm changed) per committed row, in slice order.
    std::vector<std::pair<ProcessId, bool>> commits;
    int enabled_delta = 0;
    int covered_delta = 0;
  };
  int parallel_threads_ = 1;
  std::unique_ptr<StepPool> pool_;
  std::vector<WorkerState> worker_states_;
  int external_loggers_ = 0;

  ReadLoggerMux logger_mux_;
  StepReadCounter read_counter_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace sss
