#pragma once
/// \file protocol.hpp
/// A protocol is a finite list of prioritized guarded actions per process
/// (Section 2). Guard evaluation is separated from action execution so the
/// engine can (a) probe enabledness without disturbing the model's read
/// accounting, and (b) execute the guard+action pair atomically against the
/// pre-step snapshot.

#include <memory>
#include <span>
#include <string>

#include "runtime/bulk.hpp"
#include "runtime/context.hpp"
#include "runtime/spec.hpp"

namespace sss {

class Protocol {
 public:
  /// Returned by first_enabled when no guard holds.
  static constexpr int kDisabled = -1;

  virtual ~Protocol() = default;

  virtual const std::string& name() const = 0;
  virtual const ProtocolSpec& spec() const = 0;
  virtual int num_actions() const = 0;

  /// Index of the highest-priority enabled action (0 = highest, matching
  /// the order of appearance in the paper's figures), or kDisabled.
  virtual int first_enabled(GuardContext& ctx) const = 0;

  /// Executes action `action`; must be the value first_enabled returned for
  /// the same pre-state.
  virtual void execute(int action, ActionContext& ctx) const = 0;

  virtual bool is_probabilistic() const { return false; }

  /// Extra solo activations beyond degree(p) the silence check
  /// (runtime/quiescence.hpp) must run before concluding that a process
  /// frozen against its neighborhood never attempts a communication
  /// write. 2 covers the protocols whose internal state is one rotating
  /// pointer (periodic within degree(p) activations, plus one
  /// confirmation). A wrapper protocol whose internal state needs an
  /// extra activation to settle (e.g. the generic efficiency
  /// transformer's one full mirror refresh) must return its wrapped
  /// protocol's margin plus its own overhead.
  virtual int solo_quiescence_margin() const { return 2; }

  /// Bulk guard evaluation (see runtime/bulk.hpp): true when the protocol
  /// implements `sweep_enabled`, letting the engine refresh every guard in
  /// one pass over the CSR slabs instead of n virtual probes. Protocols
  /// that stay on the scalar path simply keep the default.
  virtual bool has_bulk_sweep() const { return false; }

  /// Evaluates every process's guards in one pass: writes the first
  /// enabled action per process into `out` (pre-reset to all-disabled by
  /// the caller) and logs each guard's neighbor reads through `ctx`, in
  /// the exact order the scalar `first_enabled` would log them. Must be
  /// behaviourally identical to n scalar probes — the engine replays both
  /// outputs, and the lockstep suites compare against `ReferenceEngine`.
  /// Only called when `has_bulk_sweep()` is true. Implemented as the
  /// whole-network case of `sweep_enabled_range`.
  void sweep_enabled(BulkGuardContext& ctx, EnabledBitmap& out) const;

  /// The sweep restricted to processes [begin, end): kernels must touch
  /// only `out` entries and `ctx` logs of that range (reading any process's
  /// configuration is fine — guards read neighbors). This is the partition
  /// primitive of the engine's intra-trial parallel refresh: disjoint
  /// ranges sweep concurrently, each reproducing exactly the actions and
  /// read logs the whole-network sweep would produce for its slice.
  /// Because a kernel body is a loop over p anyway, opting in means
  /// implementing this and inheriting `sweep_enabled` for free. Only
  /// called when `has_bulk_sweep()` is true; the default asserts.
  virtual void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                                   ProcessId begin, ProcessId end) const;

  /// Bulk action execution (see runtime/bulk.hpp): true when the protocol
  /// implements `execute_selected`, letting the engine run phase-1 memo
  /// replay plus action execution for a whole selection in one slab pass
  /// instead of one ActionContext + virtual `execute` per selected
  /// process. Independent of has_bulk_sweep, though every protocol here
  /// implements both.
  virtual bool has_bulk_execute() const { return false; }

  /// Executes selection indices [begin, end) of `selection` (strictly
  /// ascending process ids): for each index i with process p, replay p's
  /// guard memo through `ctx`, and — when `enabled.action(p)` is not
  /// kDisabled — stage p's post-state row via `ctx.stage(i, p)`, applying
  /// exactly the writes and logging exactly the neighbor reads (order
  /// included) the scalar `execute` would produce for that action against
  /// the same snapshot. [begin, end) is the partition primitive of the
  /// engine's parallel composition; the serial path passes the whole
  /// selection. Only called when `has_bulk_execute()` is true; the
  /// default asserts.
  virtual void execute_selected(BulkExecContext& ctx,
                                const EnabledBitmap& enabled,
                                std::span<const ProcessId> selection,
                                std::size_t begin, std::size_t end) const;

  /// Writes the protocol's communication constants (e.g. colors C.p) into
  /// `config`. Called once after construction and again after any state
  /// randomization, so constants survive "arbitrary" initialization.
  virtual void install_constants(const Graph& g, Configuration& config) const;
};

/// Result of evaluating-and-executing one process against a snapshot.
struct ProcessStep {
  int action = Protocol::kDisabled;
  bool comm_write_attempted = false;
  std::vector<PendingWrite> writes;
};

/// Runs guard evaluation and (if enabled) action execution for process `p`
/// against the snapshot `pre`, without committing anything.
ProcessStep evaluate_process(const Graph& g, const Protocol& protocol,
                             const Configuration& pre, ProcessId p, Rng& rng,
                             ReadLogger* logger);

/// Arena variant of evaluate_process: results land in `out`, whose `writes`
/// buffer is cleared and refilled in place. A caller that reuses the same
/// ProcessStep across evaluations pays no per-evaluation allocation once
/// the buffer capacity has grown to the protocol's write count — this is
/// what keeps Engine::step() heap-free in steady state.
void evaluate_process_into(const Graph& g, const Protocol& protocol,
                           const Configuration& pre, ProcessId p, Rng& rng,
                           ReadLogger* logger, ProcessStep& out);

/// Applies a process's pending writes to `config`. Returns true if any
/// communication variable actually changed value.
bool commit_writes(Configuration& config, ProcessId p,
                   const std::vector<PendingWrite>& writes);

/// Convenience: evaluate + commit for a single process ("solo step", the
/// central-daemon semantics). Returns the ProcessStep that was applied.
ProcessStep apply_solo_step(const Graph& g, const Protocol& protocol,
                            Configuration& config, ProcessId p, Rng& rng,
                            ReadLogger* logger = nullptr);

}  // namespace sss
