#include "runtime/churn.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "runtime/fault.hpp"
#include "runtime/reference_engine.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace sss {
namespace {

/// Per-event precondition attempts before giving up (the event is then
/// counted as skipped). Bounded so a saturated precondition (e.g. a
/// complete graph receiving edge-add draws) cannot stall the window.
constexpr int kMutationAttempts = 8;

bool edge_in_list(const std::vector<Edge>& edges, Edge e) {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

int degree_in_list(const std::vector<Edge>& edges, ProcessId p) {
  int d = 0;
  for (const Edge& e : edges) {
    if (e.first == p || e.second == p) ++d;
  }
  return d;
}

/// BFS connectivity of the vertex set [0, n) minus `skip` (-1 = none) over
/// `edges` (edges touching `skip` are ignored). Isolated survivors fail the
/// check too, so "connected with min degree >= 1" is one predicate.
bool remains_connected(int n, const std::vector<Edge>& edges, ProcessId skip) {
  const int expected = skip >= 0 ? n - 1 : n;
  if (expected <= 0) return false;
  std::vector<std::vector<ProcessId>> adj(static_cast<std::size_t>(n));
  for (const Edge& e : edges) {
    if (e.first == skip || e.second == skip) continue;
    adj[static_cast<std::size_t>(e.first)].push_back(e.second);
    adj[static_cast<std::size_t>(e.second)].push_back(e.first);
  }
  const ProcessId start = skip == 0 ? 1 : 0;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<ProcessId> frontier{start};
  seen[static_cast<std::size_t>(start)] = 1;
  int reached = 1;
  while (!frontier.empty()) {
    const ProcessId p = frontier.back();
    frontier.pop_back();
    for (const ProcessId q : adj[static_cast<std::size_t>(p)]) {
      if (seen[static_cast<std::size_t>(q)]) continue;
      seen[static_cast<std::size_t>(q)] = 1;
      ++reached;
      frontier.push_back(q);
    }
  }
  return reached == expected;
}

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& samples,
                           double pct) {
  if (samples.empty()) return 0;
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::ceil(pct / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank, 1.0, static_cast<double>(sorted.size())));
  return sorted[idx - 1];
}

}  // namespace

double ChurnStats::availability() const {
  if (window_steps == 0) return 0.0;
  return static_cast<double>(legitimate_steps) /
         static_cast<double>(window_steps);
}

std::uint64_t ChurnStats::recovery_rounds_percentile(double pct) const {
  return nearest_rank(recovery_rounds, pct);
}

double ChurnStats::reads_per_disruption() const {
  if (disruptions == 0) return 0.0;
  return static_cast<double>(recovery_reads) /
         static_cast<double>(disruptions);
}

ChurnSweepSummary summarize_churn(const ChurnStats* stats, int count) {
  ChurnSweepSummary out;
  out.runs = count;
  std::vector<double> pooled_rounds;
  std::uint64_t recovery_reads = 0;
  std::uint64_t idle_reads = 0;
  std::uint64_t idle_steps = 0;
  double availability_sum = 0.0;
  for (int i = 0; i < count; ++i) {
    const ChurnStats& s = stats[i];
    out.initial_silent_runs += s.initial_silent ? 1 : 0;
    out.disruptions += s.disruptions;
    out.recoveries += s.recoveries;
    out.skipped_events += s.skipped_events;
    out.topology_events += s.topology_events();
    availability_sum += s.availability();
    recovery_reads += s.recovery_reads;
    idle_reads += s.idle_reads;
    idle_steps += s.idle_steps;
    for (const std::uint64_t r : s.recovery_rounds) {
      pooled_rounds.push_back(static_cast<double>(r));
    }
  }
  if (count > 0) availability_sum /= count;
  out.availability_mean = count > 0 ? availability_sum : 0.0;
  if (!pooled_rounds.empty()) {
    std::sort(pooled_rounds.begin(), pooled_rounds.end());
    out.recovery_rounds_p50 = percentile_sorted(pooled_rounds, 50.0);
    out.recovery_rounds_p90 = percentile_sorted(pooled_rounds, 90.0);
    out.recovery_rounds_p99 = percentile_sorted(pooled_rounds, 99.0);
  }
  if (out.disruptions > 0) {
    out.reads_per_disruption = static_cast<double>(recovery_reads) /
                               static_cast<double>(out.disruptions);
  }
  if (idle_steps > 0) {
    out.idle_reads_per_step =
        static_cast<double>(idle_reads) / static_cast<double>(idle_steps);
  }
  return out;
}

template <typename EngineT>
ChurnRunner<EngineT>::ChurnRunner(Graph initial, ProtocolFactory factory,
                                  std::string daemon_name,
                                  std::uint64_t engine_seed,
                                  ChurnOptions options,
                                  LegitimacyPredicate legitimacy)
    : owned_graph_(std::make_unique<Graph>(std::move(initial))),
      factory_(std::move(factory)),
      daemon_name_(std::move(daemon_name)),
      engine_seed_(engine_seed),
      options_(std::move(options)),
      legitimacy_(std::move(legitimacy)),
      churn_rng_(options_.seed) {
  SSS_REQUIRE(factory_ != nullptr,
              "owning-mode churn runner needs a protocol factory");
  graph_ = owned_graph_.get();
  owned_protocol_ = factory_(*graph_);
  SSS_REQUIRE(owned_protocol_ != nullptr,
              "protocol factory returned null for the initial topology");
  protocol_ = owned_protocol_.get();
  validate_options();
  edges_ = graph_->edges();
  const int n0 = graph_->num_vertices();
  max_nodes_ = options_.max_nodes > 0 ? options_.max_nodes : n0 + 8;
  min_nodes_ = std::max(2, options_.min_nodes > 0 ? options_.min_nodes
                                                  : n0 / 2);
  engine_ = std::make_unique<EngineT>(*graph_, *protocol_,
                                      make_daemon(daemon_name_), engine_seed_);
  configure_engine();
}

template <typename EngineT>
ChurnRunner<EngineT>::ChurnRunner(const Graph& g, const Protocol& protocol,
                                  std::string daemon_name,
                                  std::uint64_t engine_seed,
                                  ChurnOptions options,
                                  LegitimacyPredicate legitimacy)
    : graph_(&g),
      protocol_(&protocol),
      daemon_name_(std::move(daemon_name)),
      engine_seed_(engine_seed),
      options_(std::move(options)),
      legitimacy_(std::move(legitimacy)),
      churn_rng_(options_.seed) {
  SSS_REQUIRE(options_.topology_weight == 0,
              "topology churn requires the owning-mode runner (it must "
              "rebuild the graph and protocol)");
  validate_options();
  engine_ = std::make_unique<EngineT>(*graph_, *protocol_,
                                      make_daemon(daemon_name_), engine_seed_);
  configure_engine();
}

template <typename EngineT>
void ChurnRunner<EngineT>::validate_options() const {
  SSS_REQUIRE(options_.event_probability >= 0.0 &&
                  options_.event_probability <= 1.0,
              "event_probability must be in [0, 1]");
  SSS_REQUIRE((options_.event_probability > 0.0) != (options_.period > 0),
              "churn needs exactly one schedule: event_probability or period");
  SSS_REQUIRE(options_.max_victims >= 1, "max_victims must be >= 1");
  SSS_REQUIRE(options_.corruption_weight >= 0 &&
                  options_.node_reset_weight >= 0 &&
                  options_.topology_weight >= 0,
              "event weights must be non-negative");
  SSS_REQUIRE(options_.corruption_weight + options_.node_reset_weight +
                      options_.topology_weight >
                  0,
              "at least one event weight must be positive");
}

template <typename EngineT>
void ChurnRunner<EngineT>::configure_engine() {
  if constexpr (requires(EngineT& e) { e.set_sweep_mode(SweepMode::kAuto); }) {
    engine_->set_sweep_mode(options_.sweep_mode);
  }
  if constexpr (requires(EngineT& e) { e.set_exclude_frozen(true); }) {
    engine_->set_exclude_frozen(options_.exclude_frozen);
  }
}

template <typename EngineT>
RunStats ChurnRunner<EngineT>::stabilize() {
  RunOptions run;
  run.max_steps = options_.stabilize_steps;
  run.stop_on_silence = true;
  run.legitimacy = legitimacy_;
  const RunStats s = engine_->run(run);
  stats_.initial_silent = s.silent;
  // A run that failed to stabilize enters the window already "recovering":
  // no disruption is counted, but the availability clock is honest about
  // the illegitimate prefix.
  recovering_ = !s.silent;
  recovery_start_rounds_ = total_rounds();
  recovery_start_step_ = 0;
  quiet_streak_ = 0;
  legit_valid_ = false;
  return s;
}

template <typename EngineT>
std::uint64_t ChurnRunner<EngineT>::recovery_patience() const {
  return options_.recovery_patience != 0
             ? options_.recovery_patience
             : std::max<std::uint64_t>(
                   16, static_cast<std::uint64_t>(graph_->num_vertices()));
}

template <typename EngineT>
std::uint64_t ChurnRunner<EngineT>::total_rounds() const {
  return rounds_offset_ + engine_->rounds_inclusive();
}

template <typename EngineT>
std::uint64_t ChurnRunner<EngineT>::total_reads() const {
  return reads_offset_ + engine_->read_counter().total_reads();
}

template <typename EngineT>
std::uint64_t ChurnRunner<EngineT>::total_bits() const {
  return bits_offset_ + engine_->read_counter().total_bits();
}

template <typename EngineT>
void ChurnRunner<EngineT>::mark_disruption() {
  ++stats_.disruptions;
  quiet_streak_ = 0;
  legit_valid_ = false;
  if (!recovering_) {
    recovering_ = true;
    recovery_start_rounds_ = total_rounds();
    recovery_start_step_ = window_step_;
  }
}

template <typename EngineT>
void ChurnRunner<EngineT>::corrupt(int victim_count) {
  const std::vector<ProcessId> victims =
      choose_victims(graph_->num_vertices(), victim_count, churn_rng_);
  engine_->apply_external_corruption(victims, churn_rng_);
}

template <typename EngineT>
void ChurnRunner<EngineT>::inject_event() {
  const int wc = options_.corruption_weight;
  const int wr = options_.node_reset_weight;
  const int wt = options_.topology_weight;
  const std::uint64_t draw =
      churn_rng_.below(static_cast<std::uint64_t>(wc + wr + wt));
  if (draw < static_cast<std::uint64_t>(wc)) {
    const int n = graph_->num_vertices();
    const int cap = std::min(options_.max_victims, n);
    const int count =
        1 + static_cast<int>(churn_rng_.below(static_cast<std::uint64_t>(cap)));
    corrupt(count);
    ++stats_.corruptions;
    mark_disruption();
  } else if (draw < static_cast<std::uint64_t>(wc + wr)) {
    // Node reset: one whole process re-randomized in place.
    const ProcessId victim = static_cast<ProcessId>(
        churn_rng_.below(static_cast<std::uint64_t>(graph_->num_vertices())));
    engine_->apply_external_corruption({victim}, churn_rng_);
    ++stats_.node_resets;
    mark_disruption();
  } else {
    const int subkind = static_cast<int>(churn_rng_.below(4));
    if (mutate_topology(subkind)) {
      mark_disruption();
    } else {
      ++stats_.skipped_events;
    }
  }
}

template <typename EngineT>
bool ChurnRunner<EngineT>::mutate_topology(int subkind) {
  const int n = graph_->num_vertices();
  const std::vector<Edge> snapshot = edges_;
  switch (subkind) {
    case 0: {  // edge add
      const std::size_t complete =
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
      if (edges_.size() >= complete) return false;
      for (int attempt = 0; attempt < kMutationAttempts; ++attempt) {
        const ProcessId p = static_cast<ProcessId>(
            churn_rng_.below(static_cast<std::uint64_t>(n)));
        const ProcessId q = static_cast<ProcessId>(
            churn_rng_.below(static_cast<std::uint64_t>(n)));
        if (p == q) continue;
        const Edge e{std::min(p, q), std::max(p, q)};
        if (edge_in_list(edges_, e)) continue;
        edges_.push_back(e);
        std::sort(edges_.begin(), edges_.end());
        if (reattach(n)) {
          ++stats_.edge_adds;
          return true;
        }
        edges_ = snapshot;
        return false;
      }
      return false;
    }
    case 1: {  // edge remove
      for (int attempt = 0; attempt < kMutationAttempts; ++attempt) {
        const std::size_t idx = static_cast<std::size_t>(
            churn_rng_.below(static_cast<std::uint64_t>(edges_.size())));
        const Edge e = edges_[idx];
        if (degree_in_list(edges_, e.first) < 2 ||
            degree_in_list(edges_, e.second) < 2) {
          continue;
        }
        edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(idx));
        if (!remains_connected(n, edges_, -1)) {
          edges_ = snapshot;
          continue;
        }
        if (reattach(n)) {
          ++stats_.edge_removes;
          return true;
        }
        edges_ = snapshot;
        return false;
      }
      return false;
    }
    case 2: {  // node join: new id n, wired to 1-2 existing processes
      if (n >= max_nodes_) return false;
      const ProcessId joiner = n;
      const int links = 1 + static_cast<int>(churn_rng_.below(
                                static_cast<std::uint64_t>(std::min(2, n))));
      const ProcessId first = static_cast<ProcessId>(
          churn_rng_.below(static_cast<std::uint64_t>(n)));
      ProcessId second = -1;
      if (links == 2) {
        for (int attempt = 0; attempt < kMutationAttempts; ++attempt) {
          const ProcessId cand = static_cast<ProcessId>(
              churn_rng_.below(static_cast<std::uint64_t>(n)));
          if (cand != first) {
            second = cand;
            break;
          }
        }
      }
      edges_.push_back({first, joiner});
      if (second >= 0) edges_.push_back({second, joiner});
      std::sort(edges_.begin(), edges_.end());
      if (reattach(n + 1)) {
        ++stats_.node_joins;
        return true;
      }
      edges_ = snapshot;
      return false;
    }
    case 3: {  // node leave: highest id only, ids below it stay stable
      const ProcessId victim = n - 1;
      if (n - 1 < min_nodes_) return false;
      if (std::find(options_.protected_processes.begin(),
                    options_.protected_processes.end(),
                    victim) != options_.protected_processes.end()) {
        return false;
      }
      if (!remains_connected(n, edges_, victim)) return false;
      edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                  [victim](const Edge& e) {
                                    return e.first == victim ||
                                           e.second == victim;
                                  }),
                   edges_.end());
      if (reattach(n - 1)) {
        ++stats_.node_leaves;
        return true;
      }
      edges_ = snapshot;
      return false;
    }
    default:
      return false;
  }
}

template <typename EngineT>
bool ChurnRunner<EngineT>::reattach(int new_n) {
  try {
    auto next_graph = std::make_unique<Graph>(Graph::from_edges(new_n, edges_));
    next_graph->set_name(graph_->name());
    auto next_protocol = factory_(*next_graph);
    SSS_REQUIRE(next_protocol != nullptr,
                "protocol factory returned null for a churned topology");
    const ProtocolSpec& spec = next_protocol->spec();
    SSS_REQUIRE(spec.num_comm() == protocol_->spec().num_comm() &&
                    spec.num_internal() == protocol_->spec().num_internal(),
                "protocol factory changed the variable schema across "
                "topologies");

    // Deterministic per-incarnation engine seed: depends only on the base
    // engine seed and how many topology events have succeeded, so both
    // lockstep runners derive the same stream.
    std::uint64_t seed_state =
        engine_seed_ ^
        (0x9e3779b97f4a7c15ULL * (stats_.topology_events() + 1));
    const std::uint64_t next_seed = splitmix64(seed_state);
    auto next_engine = std::make_unique<EngineT>(
        *next_graph, *next_protocol, make_daemon(daemon_name_), next_seed);

    // State carry-over: survivors keep their values clamped into the new
    // topology's domains (domains may shrink when a degree drops);
    // constants are re-installed by set_config below; joiners start from
    // uniformly random state, drawn from the churn stream.
    Configuration cfg(*next_graph, spec);
    const int old_n = graph_->num_vertices();
    const Configuration& old_cfg = engine_->config();
    const int carry = std::min(old_n, new_n);
    for (ProcessId p = 0; p < carry; ++p) {
      for (int v = 0; v < spec.num_comm(); ++v) {
        if (spec.comm[static_cast<std::size_t>(v)].is_constant()) continue;
        const VarDomain d =
            spec.comm[static_cast<std::size_t>(v)].domain(*next_graph, p);
        cfg.set_comm(p, v, std::clamp(old_cfg.comm(p, v), d.lo, d.hi));
      }
      for (int v = 0; v < spec.num_internal(); ++v) {
        if (spec.internal[static_cast<std::size_t>(v)].is_constant()) continue;
        const VarDomain d =
            spec.internal[static_cast<std::size_t>(v)].domain(*next_graph, p);
        cfg.set_internal(p, v,
                         std::clamp(old_cfg.internal_var(p, v), d.lo, d.hi));
      }
    }
    if (new_n > old_n) {
      std::vector<ProcessId> joiners;
      for (ProcessId p = old_n; p < new_n; ++p) joiners.push_back(p);
      corrupt_processes(*next_graph, spec, cfg, joiners, churn_rng_);
    }
    next_engine->set_config(cfg);

    // Commit: retire the outgoing engine's lifetime counters into the
    // offsets, then swap in dependency order (engine before the protocol
    // and graph it references).
    rounds_offset_ += engine_->rounds_inclusive();
    reads_offset_ += engine_->read_counter().total_reads();
    bits_offset_ += engine_->read_counter().total_bits();
    engine_ = std::move(next_engine);
    owned_protocol_ = std::move(next_protocol);
    owned_graph_ = std::move(next_graph);
    graph_ = owned_graph_.get();
    protocol_ = owned_protocol_.get();
    configure_engine();
    return true;
  } catch (const std::exception&) {
    // The factory (or a validator) rejected the churned topology — e.g. a
    // parameterized protocol whose parameters constrain the graph. The
    // caller restores the edge list and counts the event as skipped;
    // rejection is deterministic, so both lockstep runners agree.
    return false;
  }
}

template <typename EngineT>
bool ChurnRunner<EngineT>::step_once() {
  if (window_step_ >= options_.window_steps) return false;

  bool fire = false;
  if (options_.event_probability > 0.0) {
    fire = churn_rng_.chance(options_.event_probability);
  } else {
    fire = (window_step_ + 1) % options_.period == 0;
  }
  if (fire) inject_event();

  const std::uint64_t reads_before = total_reads();
  const std::uint64_t bits_before = total_bits();
  const bool was_recovering = recovering_;
  const Engine::StepInfo info = engine_->step();
  ++window_step_;
  ++stats_.window_steps;

  const std::uint64_t delta_reads = total_reads() - reads_before;
  const std::uint64_t delta_bits = total_bits() - bits_before;
  if (was_recovering) {
    ++stats_.recovering_steps;
    stats_.recovery_reads += delta_reads;
    stats_.recovery_bits += delta_bits;
  } else {
    ++stats_.idle_steps;
    stats_.idle_reads += delta_reads;
    stats_.idle_bits += delta_bits;
  }

  if (legitimacy_) {
    // The predicate is pure in the configuration: re-evaluate only when
    // something could have changed it (a fired action, or an event — the
    // latter clears legit_valid_ via mark_disruption/reattach).
    if (!legit_valid_ || info.fired > 0) {
      legit_cached_ = legitimacy_(*graph_, engine_->config());
      legit_valid_ = true;
    }
    if (legit_cached_) ++stats_.legitimate_steps;
  }

  if (info.comm_changed) {
    quiet_streak_ = 0;
  } else {
    ++quiet_streak_;
  }

  if (recovering_) {
    // Patience-gated exact re-certification, re-attempted once per
    // patience interval — the same cadence Engine::run uses, and rng-free,
    // so both lockstep runners certify at identical steps.
    const std::uint64_t patience = recovery_patience();
    if (quiet_streak_ >= patience &&
        (quiet_streak_ - patience) % patience == 0 && engine_->quiescent()) {
      recovering_ = false;
      ++stats_.recoveries;
      stats_.recovery_rounds.push_back(total_rounds() - recovery_start_rounds_);
      stats_.recovery_step_counts.push_back(window_step_ -
                                            recovery_start_step_);
    }
  }
  return true;
}

template class ChurnRunner<Engine>;
template class ChurnRunner<ReferenceEngine>;

}  // namespace sss
