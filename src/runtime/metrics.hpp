#pragma once
/// \file metrics.hpp
/// Communication accounting (Section 3).
///
/// `StepReadCounter` measures per-step quantities: the number of distinct
/// neighbors each selected process read (k-efficiency, Definition 4) and
/// the bits it read (communication complexity, Definition 5).
///
/// `StabilityTracker` accumulates R_p(C') — the set of distinct neighbors
/// process p reads over a computation suffix C' — which is what the
/// stability notions of Definitions 7-9 quantify. Reset it at the moment
/// the suffix starts (e.g. when the configuration becomes silent) and read
/// off ♦-(x,k)-stability: x = count_at_most(k).

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/context.hpp"
#include "runtime/spec.hpp"

namespace sss {

/// Fans a read event out to several loggers.
class ReadLoggerMux final : public ReadLogger {
 public:
  void add(ReadLogger* logger);
  void remove(ReadLogger* logger);
  void on_read(ProcessId reader, ProcessId subject, int comm_var) override;

 private:
  std::vector<ReadLogger*> loggers_;
};

/// Per-step read statistics with per-(reader,subject,var) deduplication.
/// The engine calls begin_step() before processing a selection.
class StepReadCounter final : public ReadLogger {
 public:
  StepReadCounter(const Graph& g, const ProtocolSpec& spec);

  void begin_step();
  void on_read(ProcessId reader, ProcessId subject, int comm_var) override;

  /// Distinct neighbors read by `reader` in the current step.
  int step_reads_of(ProcessId reader) const;
  /// Max over all processes and all steps so far (the protocol's measured
  /// k-efficiency).
  int max_reads_per_process_step() const { return max_reads_; }
  /// Max bits any process read in one step (measured communication
  /// complexity).
  int max_bits_per_process_step() const { return max_bits_; }
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_bits() const { return total_bits_; }

  /// Bit width of `comm_var` of `subject` — the per-read cost the counter
  /// charges. Exposed so a WorkerReadTally can charge identically.
  int bits_of(ProcessId subject, int comm_var) const {
    return var_bits_[static_cast<std::size_t>(subject)]
                    [static_cast<std::size_t>(comm_var)];
  }

  /// Merges a worker tally's step contribution (parallel execution path):
  /// totals sum, per-process-step maxima max. Exact because the maxima are
  /// per (reader, step) and each selected reader's reads all land in one
  /// worker's tally; note step_reads_of is not maintained by this path.
  void absorb(std::uint64_t reads, std::uint64_t bits, int max_reads,
              int max_bits);

 private:
  struct PerReader {
    /// (subject, var) pairs seen this step; tiny (<= Delta * vars).
    std::vector<std::pair<ProcessId, int>> seen;
    std::vector<ProcessId> subjects;
    int bits = 0;
  };

  const Graph& graph_;
  std::vector<std::vector<int>> var_bits_;  ///< [process][comm var] bits
  std::vector<PerReader> readers_;
  std::vector<ProcessId> touched_;  ///< readers active this step
  int max_reads_ = 0;
  int max_bits_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// Per-worker read accounting for the engine's parallel execution path.
///
/// A StepReadCounter per worker would be exact but carries O(n) PerReader
/// state per instance — prohibitive at n = 10^6 x 8 workers. The tally
/// exploits the parallel path's access pattern instead: each worker
/// processes its slice of the selection one reader at a time, and all of a
/// reader's reads for the step (memo replay + action-time nbr_comm) are
/// contiguous in that worker. So one scratch dedup set, recycled per
/// reader, reproduces StepReadCounter's per-(reader,subject,var)
/// deduplication exactly, and only the four aggregates survive:
/// totals (summed into the main counter) and per-process-step maxima
/// (maxed in). `StepReadCounter::absorb` is the merge.
class WorkerReadTally final : public ReadLogger {
 public:
  explicit WorkerReadTally(const StepReadCounter& source) : source_(source) {}

  /// Clears the step accumulators; call once per step before the slice.
  void begin_step();

  void on_read(ProcessId reader, ProcessId subject, int comm_var) override;

  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_bits() const { return total_bits_; }
  int max_reads() const { return max_reads_; }
  int max_bits() const { return max_bits_; }

 private:
  const StepReadCounter& source_;  ///< for bits_of only
  /// Scratch state of the reader currently being processed.
  ProcessId current_reader_ = -1;
  std::vector<std::pair<ProcessId, int>> seen;
  std::vector<ProcessId> subjects;
  int bits_ = 0;
  /// Step aggregates absorbed into the main counter after the barrier.
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_bits_ = 0;
  int max_reads_ = 0;
  int max_bits_ = 0;
};

/// Accumulates distinct-neighbor read sets per process since last reset.
class StabilityTracker final : public ReadLogger {
 public:
  explicit StabilityTracker(const Graph& g);

  void on_read(ProcessId reader, ProcessId subject, int comm_var) override;
  void reset();

  /// |R_p| for the tracked suffix.
  int distinct_reads(ProcessId p) const;
  /// Number of processes with |R_p| <= k (the x of ♦-(x,k)-stability).
  int count_at_most(int k) const;
  std::vector<int> read_set_sizes() const;

 private:
  std::vector<std::vector<ProcessId>> read_sets_;
};

}  // namespace sss
