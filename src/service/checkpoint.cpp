#include "service/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/require.hpp"

namespace sss {

std::string checkpoint_path_for(const std::string& sink_path) {
  return sink_path + ".ckpt.json";
}

std::string checkpoint_to_json(const Checkpoint& checkpoint) {
  // The manifest is embedded as a nested object (not a quoted string), so
  // a checkpoint stays a readable, greppable JSON document.
  std::string out = "{\n";
  out += "  \"plan_name\": " + json_quote(checkpoint.plan_name) + ",\n";
  out += "  \"sink\": " + json_quote(checkpoint.sink_path) + ",\n";
  out += "  \"planned_trials\": " +
         std::to_string(checkpoint.planned_trials) + ",\n";
  out += "  \"threads\": " + std::to_string(checkpoint.threads) + ",\n";
  out += "  \"shards\": " + std::to_string(checkpoint.shards) + ",\n";
  out += "  \"parallel_threads\": " +
         std::to_string(checkpoint.parallel_threads) + ",\n";
  out += "  \"sweep_mode\": " + json_quote(checkpoint.sweep_mode) + ",\n";
  out += "  \"manifest\": " + checkpoint.manifest_json + "\n";
  out += "}\n";
  return out;
}

void write_checkpoint(const Checkpoint& checkpoint) {
  const std::string path = checkpoint_path_for(checkpoint.sink_path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SSS_REQUIRE(out.good(), "cannot open checkpoint \"" + path + "\"");
  out << checkpoint_to_json(checkpoint) << std::flush;
  SSS_REQUIRE(out.good(), "write error on checkpoint \"" + path + "\"");
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SSS_REQUIRE(in.good(), "cannot open checkpoint \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  SSS_REQUIRE(!in.bad(), "read error on checkpoint \"" + path + "\"");
  JsonValue doc;
  try {
    doc = JsonValue::parse(text.str());
  } catch (const std::exception& error) {
    throw PreconditionError("checkpoint \"" + path + "\": " + error.what());
  }
  SSS_REQUIRE(doc.is_object(),
              "checkpoint \"" + path + "\" must be a JSON object");
  Checkpoint checkpoint;
  checkpoint.plan_name = doc.at("plan_name").as_string();
  checkpoint.sink_path = doc.at("sink").as_string();
  checkpoint.planned_trials =
      static_cast<int>(doc.at("planned_trials").as_int());
  checkpoint.threads = static_cast<int>(doc.at("threads").as_int());
  checkpoint.shards = static_cast<int>(doc.at("shards").as_int());
  checkpoint.parallel_threads =
      static_cast<int>(doc.at("parallel_threads").as_int());
  checkpoint.sweep_mode = doc.at("sweep_mode").as_string();
  const JsonValue& manifest = doc.at("manifest");
  SSS_REQUIRE(manifest.is_object(),
              "checkpoint \"" + path + "\": \"manifest\" must be an object");
  checkpoint.manifest_json = json_serialize(manifest);
  SSS_REQUIRE(checkpoint.planned_trials >= 1,
              "checkpoint \"" + path + "\": planned_trials must be >= 1");
  return checkpoint;
}

StreamScan scan_result_stream(const std::string& path) {
  StreamScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return scan;  // never written: nothing completed
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SSS_REQUIRE(!in.bad(), "read error on result stream \"" + path + "\"");
  const std::string text = buffer.str();

  std::size_t begin = 0;
  int line_number = 0;
  while (begin < text.size()) {
    const std::size_t newline = text.find('\n', begin);
    if (newline == std::string::npos) {
      // Torn tail: the process died inside a row write. Report it; the
      // caller truncates before resuming.
      scan.tail_bytes = text.size() - begin;
      break;
    }
    ++line_number;
    const std::string line = text.substr(begin, newline - begin);
    if (!line.empty()) {
      JsonValue row;
      try {
        row = JsonValue::parse(line);
      } catch (const std::exception& error) {
        throw PreconditionError(path + ":" + std::to_string(line_number) +
                                ": not a result row: " + error.what());
      }
      SSS_REQUIRE(row.is_object(),
                  path + ":" + std::to_string(line_number) +
                      ": result rows must be JSON objects");
      scan.keys.emplace_back(static_cast<int>(row.at("item").as_int()),
                             static_cast<int>(row.at("trial").as_int()));
      scan.rows.push_back(line);
    }
    begin = newline + 1;
    scan.complete_bytes = begin;
  }
  return scan;
}

void truncate_stream_tail(const std::string& path, const StreamScan& scan) {
  if (scan.tail_bytes == 0) return;
  std::error_code error;
  std::filesystem::resize_file(path, scan.complete_bytes, error);
  SSS_REQUIRE(!error, "cannot truncate torn tail of \"" + path +
                          "\": " + error.message());
}

}  // namespace sss
