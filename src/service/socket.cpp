#include "service/socket.hpp"

#include "service/service.hpp"
#include "service/session.hpp"
#include "support/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SSS_HAVE_UNIX_SOCKETS 1
#else
#define SSS_HAVE_UNIX_SOCKETS 0
#endif

#if SSS_HAVE_UNIX_SOCKETS

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>

namespace sss {

namespace {

/// A minimal bidirectional streambuf over one connected socket fd — just
/// enough iostream for ServeSession's getline/operator<< protocol loop.
/// Unbuffered on write beyond the put area (sync() sends the whole
/// pending block), byte-buffered on read.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t got;
    do {
      got = ::read(fd_, in_, sizeof(in_));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return traits_type::eof();
    setg(in_, in_, in_ + got);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* begin = pbase();
    const char* end = pptr();
    while (begin < end) {
      const ssize_t sent = ::write(fd_, begin, static_cast<std::size_t>(end - begin));
      if (sent < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      begin += sent;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

bool serve_socket_supported() { return true; }

void serve_unix_socket(LabService& service, const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  SSS_REQUIRE(path.size() < sizeof(address.sun_path),
              "socket path \"" + path + "\" is too long");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  SSS_REQUIRE(listener >= 0,
              std::string("socket(): ") + std::strerror(errno));
  ::unlink(path.c_str());  // a stale file from a dead server would block bind
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listener);
    throw PreconditionError("bind(\"" + path +
                            "\"): " + std::strerror(saved));
  }
  if (::listen(listener, 1) != 0) {
    const int saved = errno;
    ::close(listener);
    ::unlink(path.c_str());
    throw PreconditionError("listen(\"" + path +
                            "\"): " + std::strerror(saved));
  }

  ServeSession::Exit exit = ServeSession::Exit::kEof;
  do {
    int connection;
    do {
      connection = ::accept(listener, nullptr, nullptr);
    } while (connection < 0 && errno == EINTR);
    if (connection < 0) break;
    FdStreambuf buffer(connection);
    std::istream in(&buffer);
    std::ostream out(&buffer);
    ServeSession session(service, in, out);
    exit = session.run();
    out.flush();
    ::close(connection);
  } while (exit != ServeSession::Exit::kShutdown);

  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace sss

#else  // !SSS_HAVE_UNIX_SOCKETS

namespace sss {

bool serve_socket_supported() { return false; }

void serve_unix_socket(LabService&, const std::string&) {
  throw PreconditionError(
      "this build has no Unix-domain-socket support; use stdio serve");
}

}  // namespace sss

#endif
