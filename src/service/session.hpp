#pragma once
/// \file session.hpp
/// One serve connection: the command loop that binds a line stream (stdio
/// or a socket connection) to a LabService.
///
/// A session reads one command object per input line (protocol.hpp),
/// dispatches it against the service, and writes replies and events back
/// on one output stream. Events from background workers arrive on worker
/// threads, so every outgoing line goes through a session-level mutex and
/// is flushed whole — the client never sees interleaved partial lines.
///
/// Commands (all keys are strict — an unknown key is an error, matching
/// the manifest reader's posture):
///
///   {"cmd": "ping"}                 liveness check
///   {"cmd": "submit", "sink": S, "manifest": {...} | "manifest_path": P,
///    "threads"?, "shards"?, "parallel_threads"?, "sweep_mode"?,
///    "pace_ms"?, "stream"?}         start a run; reply carries its id
///   {"cmd": "resume", "checkpoint": P, "threads"?, "shards"?,
///    "parallel_threads"?, "sweep_mode"?, "pace_ms"?, "stream"?}
///                                   resume from a checkpoint manifest
///   {"cmd": "status", "run": R}     snapshot one run
///   {"cmd": "runs"}                 list run ids, submission order
///   {"cmd": "stream", "run": R, "from"?}
///                                   replay rows [from, now) as events,
///                                   then follow live; the reply (sent
///                                   after the replayed rows) carries the
///                                   replay count
///   {"cmd": "cancel", "run": R}     stop at the next trial boundary
///   {"cmd": "wait", "run": R, "timeout_ms"?}
///                                   block until terminal (or at most
///                                   timeout_ms, replying state
///                                   "running"); reply = status
///   {"cmd": "diff", "run": R, "baseline": P}
///                                   live byte-diff against a baseline
///   {"cmd": "shutdown"}             reply, then end the session loop
///
/// "stream": true on submit/resume subscribes the session from row 0 in
/// the same step, with no window in which a row could be missed.
///
/// Runs belong to the service, not the session: a socket client can
/// disconnect and a later connection can status/stream/resume the same
/// runs. On exit the session detaches its subscribers and waits out
/// in-flight callbacks, so its streams are never touched after run()
/// returns.

#include <iosfwd>
#include <mutex>
#include <string>

#include "service/service.hpp"

namespace sss {

class ServeSession {
 public:
  /// Why the command loop ended: input exhausted, or an explicit
  /// shutdown command (the serve main loop stops accepting connections
  /// only for the latter).
  enum class Exit { kEof, kShutdown };

  ServeSession(LabService& service, std::istream& in, std::ostream& out);

  /// Runs the command loop until EOF or shutdown. Never throws for
  /// command-level errors (they become error replies); propagates only
  /// stream-fatal conditions.
  Exit run();

 private:
  /// Writes one protocol line atomically (line + '\n', flushed).
  void emit(const std::string& line);

  LabService& service_;
  std::istream& in_;
  std::ostream& out_;
  std::mutex out_mutex_;
};

}  // namespace sss
