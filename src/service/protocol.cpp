#include "service/protocol.hpp"

#include "support/require.hpp"

namespace sss {

ServeCommand parse_serve_command(const std::string& line) {
  ServeCommand command;
  command.doc = JsonValue::parse(line);
  SSS_REQUIRE(command.doc.is_object(), "command must be a JSON object");
  const JsonValue& cmd = command.doc.at("cmd");
  SSS_REQUIRE(cmd.is_string(), "\"cmd\" must be a string");
  command.cmd = cmd.as_string();
  if (const JsonValue* id = command.doc.find("id")) {
    if (id->is_string()) {
      command.id_json = json_quote(id->as_string());
    } else if (id->is_number()) {
      command.id_json = std::to_string(id->as_int());
    } else {
      throw PreconditionError("\"id\" must be a string or an integer, got " +
                              std::string(JsonValue::kind_name(id->kind())) +
                              " at " + id->where());
    }
  }
  return command;
}

JsonLineBuilder& JsonLineBuilder::raw(const std::string& key,
                                      const std::string& json) {
  if (!first_) body_ += ", ";
  first_ = false;
  body_ += json_quote(key) + ": " + json;
  return *this;
}

JsonLineBuilder& JsonLineBuilder::field(const std::string& key,
                                        const std::string& value) {
  return raw(key, json_quote(value));
}

JsonLineBuilder& JsonLineBuilder::field(const std::string& key,
                                        const char* value) {
  return raw(key, json_quote(value));
}

JsonLineBuilder& JsonLineBuilder::field(const std::string& key,
                                        std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonLineBuilder& JsonLineBuilder::field(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonLineBuilder& JsonLineBuilder::field(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonLineBuilder reply_ok(const std::string& id_json) {
  JsonLineBuilder line;
  line.raw("id", id_json).field("ok", true);
  return line;
}

JsonLineBuilder reply_error(const std::string& id_json,
                            const std::string& message) {
  JsonLineBuilder line;
  line.raw("id", id_json).field("ok", false).field("error", message);
  return line;
}

JsonLineBuilder event_line(const std::string& kind,
                           const std::string& run_id) {
  JsonLineBuilder line;
  line.field("event", kind).field("run", run_id);
  return line;
}

}  // namespace sss
