#include "service/service.hpp"

#include <chrono>
#include <fstream>
#include <map>

#include "analysis/sink.hpp"
#include "service/protocol.hpp"
#include "support/require.hpp"

namespace sss {

namespace {

/// Applies the engine-level overrides a submit carries (mirrors the
/// sss_lab run flags: bit-identical output at any value, per engine
/// invariants 5-7, so an override changes cost, never rows).
void apply_engine_overrides(ExperimentPlan& plan, int parallel_threads,
                            const std::string& sweep_mode) {
  if (parallel_threads != 0) {
    SSS_REQUIRE(parallel_threads >= 1, "parallel_threads must be >= 1");
    for (BatchItem& item : plan.items) {
      SSS_REQUIRE(!item.churn_enabled || parallel_threads == 1,
                  "parallel_threads > 1 cannot be applied to churn sweeps");
      item.parallel_threads = parallel_threads;
    }
  }
  if (!sweep_mode.empty()) {
    const SweepMode mode = parse_sweep_mode(sweep_mode);
    for (BatchItem& item : plan.items) item.sweep_mode = mode;
  }
}

/// Per-item trial counts, for validating recovered stream keys.
std::vector<int> trials_per_item(const ExperimentPlan& plan) {
  std::vector<int> counts;
  counts.reserve(plan.items.size());
  for (const BatchItem& item : plan.items) {
    counts.push_back(static_cast<int>(item.daemons.size()) *
                     item.seeds_per_daemon);
  }
  return counts;
}

std::string done_event(const std::string& run_id, const std::string& state,
                       int rows, int planned, int skipped,
                       const std::string& error) {
  JsonLineBuilder line = event_line("done", run_id);
  line.field("state", state)
      .field("rows", rows)
      .field("trials", planned)
      .field("skipped", skipped);
  if (!error.empty()) line.field("error", error);
  return line.str();
}

std::string row_event(const std::string& run_id, int seq,
                      const std::string& row_json) {
  return event_line("row", run_id)
      .field("seq", seq)
      .raw("row", row_json)
      .str();
}

}  // namespace

LabService::~LabService() { shutdown(); }

LabService::Submitted LabService::submit(const std::string& manifest_text,
                                         const std::string& sink_path,
                                         SubmitOptions options) {
  SSS_REQUIRE(!sink_path.empty(), "submit needs a sink path");
  JsonValue manifest;
  try {
    manifest = JsonValue::parse(manifest_text);
  } catch (const std::exception& error) {
    throw PreconditionError(std::string("manifest: ") + error.what());
  }

  auto run = std::make_unique<Run>();
  run->plan = plan_from_manifest(manifest);
  apply_engine_overrides(run->plan, options.parallel_threads,
                         options.sweep_mode);
  run->planned = run->plan.total_trials();
  run->sink_path = sink_path;
  run->pace_ms = options.pace_ms;

  // Claim the sink before touching any file: truncating (or rewriting
  // the checkpoint of) a stream another live run is appending to would
  // silently corrupt it.
  claim_sink(sink_path);
  try {
    // Durability order: checkpoint first, then the (empty) stream — a
    // run that dies after its first row must already have the checkpoint
    // its resume needs.
    Checkpoint checkpoint;
    checkpoint.plan_name = run->plan.name;
    checkpoint.manifest_json = json_serialize(manifest);
    checkpoint.sink_path = sink_path;
    checkpoint.planned_trials = run->planned;
    checkpoint.threads = options.threads;
    checkpoint.shards = options.shards;
    checkpoint.parallel_threads = options.parallel_threads;
    checkpoint.sweep_mode = options.sweep_mode;
    write_checkpoint(checkpoint);

    run->sink.open(sink_path, std::ios::binary | std::ios::trunc);
    SSS_REQUIRE(run->sink.good(), "cannot open sink \"" + sink_path + "\"");
    return launch(std::move(run), options);
  } catch (...) {
    release_sink(sink_path);
    throw;
  }
}

LabService::Submitted LabService::resume(const std::string& checkpoint_path,
                                         SubmitOptions options) {
  const Checkpoint checkpoint = load_checkpoint(checkpoint_path);
  // Zero/empty submit options defer to what the checkpoint recorded.
  if (options.threads == 0) options.threads = checkpoint.threads;
  if (options.shards == 0) options.shards = checkpoint.shards;
  if (options.parallel_threads == 0) {
    options.parallel_threads = checkpoint.parallel_threads;
  }
  if (options.sweep_mode.empty()) options.sweep_mode = checkpoint.sweep_mode;

  auto run = std::make_unique<Run>();
  run->plan = plan_from_manifest_text(checkpoint.manifest_json);
  apply_engine_overrides(run->plan, options.parallel_threads,
                         options.sweep_mode);
  run->planned = run->plan.total_trials();
  SSS_REQUIRE(run->planned == checkpoint.planned_trials,
              "checkpoint \"" + checkpoint_path + "\" plans " +
                  std::to_string(checkpoint.planned_trials) +
                  " trials but its manifest expands to " +
                  std::to_string(run->planned) +
                  " — the registries changed under it");
  run->sink_path = checkpoint.sink_path;
  run->pace_ms = options.pace_ms;

  // Claim the sink before scanning: scanning (and then truncating the
  // tail of) a stream a live run is still appending to would destroy its
  // rows.
  claim_sink(checkpoint.sink_path);
  try {
    // Recover the durable rows; a torn tail (hard kill mid-write) is
    // dropped so the stream returns to whole-rows-only before we append.
    const StreamScan scan = scan_result_stream(checkpoint.sink_path);
    truncate_stream_tail(checkpoint.sink_path, scan);
    const std::vector<int> per_item = trials_per_item(run->plan);
    for (std::size_t i = 0; i < scan.keys.size(); ++i) {
      const auto [item, trial] = scan.keys[i];
      SSS_REQUIRE(item >= 0 && item < static_cast<int>(per_item.size()) &&
                      trial >= 0 &&
                      trial < per_item[static_cast<std::size_t>(item)],
                  "stream \"" + checkpoint.sink_path + "\" row " +
                      std::to_string(i + 1) + " has key (" +
                      std::to_string(item) + ", " + std::to_string(trial) +
                      ") outside the checkpoint's plan");
      SSS_REQUIRE(run->skip_keys.insert(scan.keys[i]).second,
                  "stream \"" + checkpoint.sink_path +
                      "\" holds duplicate key (" + std::to_string(item) +
                      ", " + std::to_string(trial) + ")");
    }
    run->skipped = static_cast<int>(scan.keys.size());
    run->rows = scan.rows;
    run->keys = scan.keys;

    run->sink.open(checkpoint.sink_path, std::ios::binary | std::ios::app);
    SSS_REQUIRE(run->sink.good(),
                "cannot reopen sink \"" + checkpoint.sink_path + "\"");
    return launch(std::move(run), options);
  } catch (...) {
    release_sink(checkpoint.sink_path);
    throw;
  }
}

LabService::Submitted LabService::launch(std::unique_ptr<Run> run,
                                         const SubmitOptions& options) {
  Run* raw = run.get();
  Submitted submitted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SSS_REQUIRE(!shut_down_, "service is shutting down");
    raw->id = "r" + std::to_string(next_id_++);
    raw->subscriber = options.subscriber;
    order_.push_back(raw->id);
    runs_.emplace(raw->id, std::move(run));
    submitted.run_id = raw->id;
    submitted.planned = raw->planned;
    submitted.skipped = raw->skipped;
    submitted.sink_path = raw->sink_path;
    submitted.checkpoint_path = checkpoint_path_for(raw->sink_path);
  }
  raw->worker = std::thread([this, raw, threads = options.threads,
                             shards = options.shards] {
    worker_main(*raw, threads, shards);
  });
  return submitted;
}

void LabService::worker_main(Run& run, int threads, int shards) {
  BatchOptions options;
  options.threads = threads;
  options.shards = shards;
  options.skip_trial = [&run](int item, int trial) {
    return run.skip_keys.count({item, trial}) > 0;
  };
  options.cancelled = [&run] {
    return run.cancel.load(std::memory_order_relaxed);
  };
  options.on_trial = [this, &run](const BatchTrialRow& row) {
    const std::string line = format_trial_row_jsonl(row);
    EventFn subscriber;
    int seq = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Durability before visibility: the row reaches the disk (whole
      // and flushed) before any subscriber or status call can see it.
      run.sink << line << '\n' << std::flush;
      SSS_REQUIRE(run.sink.good(),
                  "write error on sink \"" + run.sink_path + "\"");
      seq = static_cast<int>(run.rows.size());
      run.rows.push_back(line);
      run.keys.emplace_back(row.item, row.trial);
      // The delivery decision commits with the push: a subscribe() that
      // lands after this lock releases finds the row already in run.rows
      // and replays it itself, so a row is never both replayed and
      // delivered live to the same subscriber.
      if (run.subscriber) {
        subscriber = run.subscriber;
        ++run.events_in_flight;
      }
    }
    if (subscriber) {
      deliver_event(run, subscriber, row_event(run.id, seq, line));
    }
    if (run.pace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(run.pace_ms));
    }
  };

  std::string state;
  std::string error;
  try {
    const BatchResult result = run_batch(run.plan.items, options);
    state = result.cancelled ? "cancelled" : "done";
  } catch (const std::exception& exception) {
    state = "failed";
    error = exception.what();
  }
  int rows = 0;
  EventFn subscriber;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run.state = state;
    run.error = error;
    rows = static_cast<int>(run.rows.size());
    // All on_trial calls have returned; the stream is complete. Close it
    // and release the sink claim so the path can be resubmitted/resumed.
    run.sink.close();
    active_sinks_.erase(run.sink_path);
    // Snapshot the subscriber in the critical section that flips the
    // state: a subscribe() after this lock sees a terminal run and
    // synthesizes its own done event instead of installing itself, so
    // every subscription gets exactly one done event.
    if (run.subscriber) {
      subscriber = run.subscriber;
      ++run.events_in_flight;
    }
  }
  cv_.notify_all();
  if (subscriber) {
    try {
      deliver_event(run, subscriber,
                    done_event(run.id, state, rows, run.planned, run.skipped,
                               error));
    } catch (...) {
      // A subscriber throwing out of its done event must not escape the
      // worker thread (std::terminate) — drop it; done_emitted below
      // still unblocks wait().
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run.done_emitted = true;
  }
  cv_.notify_all();
}

void LabService::deliver_event(Run& run, const EventFn& subscriber,
                               const std::string& line) {
  // Outside the lock: the callback may write to a slow client or call
  // back into the service (cancel-after-k-rows). The in-flight count
  // lets detach_subscribers wait the call out.
  try {
    subscriber(line);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    --run.events_in_flight;
    cv_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  --run.events_in_flight;
  cv_.notify_all();
}

void LabService::claim_sink(const std::string& sink_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  SSS_REQUIRE(active_sinks_.insert(sink_path).second,
              "a live run is still writing to sink \"" + sink_path + "\"");
}

void LabService::release_sink(const std::string& sink_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_sinks_.erase(sink_path);
}

LabService::Run& LabService::find_locked(const std::string& run_id) const {
  const auto it = runs_.find(run_id);
  SSS_REQUIRE(it != runs_.end(), "unknown run \"" + run_id + "\"");
  return *it->second;
}

LabService::RunStatus LabService::status_locked(const Run& run) const {
  RunStatus status;
  status.exists = true;
  status.state = run.state;
  status.rows = static_cast<int>(run.rows.size());
  status.planned = run.planned;
  status.skipped = run.skipped;
  status.error = run.error;
  status.sink_path = run.sink_path;
  return status;
}

LabService::RunStatus LabService::status(const std::string& run_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(run_id);
  if (it == runs_.end()) return RunStatus{};
  return status_locked(*it->second);
}

std::vector<std::string> LabService::run_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

bool LabService::cancel(const std::string& run_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(run_id);
  if (it == runs_.end()) return false;
  it->second->cancel.store(true, std::memory_order_relaxed);
  return true;
}

LabService::RunStatus LabService::wait(const std::string& run_id,
                                       int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  Run& run = find_locked(run_id);
  // Wait for the done event too (not just the terminal state): a client
  // that streams and then waits must have its done event by the time the
  // wait reply arrives, and a session that exits right after wait() must
  // not race the event out of existence.
  const auto settled = [&run] {
    return run.state != "running" && run.done_emitted;
  };
  bool done = true;
  if (timeout_ms < 0) {
    cv_.wait(lock, settled);
  } else {
    done = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), settled);
  }
  RunStatus status = status_locked(run);
  // A timed-out wait reports "running" even in the sliver where the
  // state is terminal but the done event is still in flight, keeping the
  // invariant that a wait reply carrying a terminal state means the
  // subscriber already has its done event.
  if (!done) status.state = "running";
  return status;
}

int LabService::subscribe(const std::string& run_id, int from, EventFn fn) {
  SSS_REQUIRE(fn != nullptr, "subscribe needs a callback");
  SSS_REQUIRE(from >= 0, "subscribe \"from\" cannot be negative");
  std::unique_lock<std::mutex> lock(mutex_);
  Run& run = find_locked(run_id);
  // Replay outside the lock, in chunks: a slow client must not stall
  // every run's on_trial behind the service mutex. Each unlocked write
  // window may let new rows land; the loop re-checks until it observes
  // itself caught up *while holding the lock*, and installs the
  // subscriber in that same critical section — since live delivery
  // decisions also commit under the lock (on_trial), no row is missed or
  // delivered twice to this subscription.
  int cursor = from;
  int replayed = 0;
  for (;;) {
    if (cursor < static_cast<int>(run.rows.size())) {
      const std::vector<std::string> chunk(
          run.rows.begin() + cursor, run.rows.end());
      const int base = cursor;
      cursor += static_cast<int>(chunk.size());
      lock.unlock();
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        fn(row_event(run.id, base + static_cast<int>(i), chunk[i]));
        ++replayed;
      }
      lock.lock();
      continue;
    }
    if (run.state == "running") {
      run.subscriber = std::move(fn);
      return replayed;
    }
    // The worker has already emitted (or skipped) its done event;
    // synthesize one so every subscription ends with exactly one.
    const std::string done =
        done_event(run.id, run.state, static_cast<int>(run.rows.size()),
                   run.planned, run.skipped, run.error);
    lock.unlock();
    fn(done);
    return replayed;
  }
}

void LabService::detach_subscribers() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& [id, run] : runs_) run->subscriber = nullptr;
  cv_.wait(lock, [this] {
    for (const auto& [id, run] : runs_) {
      if (run->events_in_flight > 0) return false;
    }
    return true;
  });
}

LabService::DiffReport LabService::diff(
    const std::string& run_id, const std::string& baseline_path) const {
  // Snapshot the run under the lock; file I/O happens outside it.
  std::vector<std::string> rows;
  std::vector<std::pair<int, int>> keys;
  std::string state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Run& run = find_locked(run_id);
    rows = run.rows;
    keys = run.keys;
    state = run.state;
  }
  std::ifstream probe(baseline_path, std::ios::binary);
  SSS_REQUIRE(probe.good(),
              "cannot open baseline \"" + baseline_path + "\"");
  probe.close();
  const StreamScan baseline = scan_result_stream(baseline_path);
  SSS_REQUIRE(baseline.tail_bytes == 0,
              "baseline \"" + baseline_path + "\" has a torn final line");

  std::map<std::pair<int, int>, const std::string*> expected;
  for (std::size_t i = 0; i < baseline.keys.size(); ++i) {
    expected[baseline.keys[i]] = &baseline.rows[i];
  }

  DiffReport report;
  report.state = state;
  constexpr std::size_t kMaxDeltas = 20;
  const auto key_label = [](const std::pair<int, int>& key) {
    return "(item " + std::to_string(key.first) + ", trial " +
           std::to_string(key.second) + ")";
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ++report.compared;
    const auto it = expected.find(keys[i]);
    if (it == expected.end()) {
      ++report.extra;
      if (report.deltas.size() < kMaxDeltas) {
        report.deltas.push_back(key_label(keys[i]) + " not in baseline");
      }
      continue;
    }
    if (*it->second != rows[i]) {
      ++report.changed;
      if (report.deltas.size() < kMaxDeltas) {
        report.deltas.push_back(key_label(keys[i]) + " differs");
      }
    } else {
      ++report.matched;
    }
    expected.erase(it);
  }
  report.pending = static_cast<int>(expected.size());
  report.clean = report.changed == 0 && report.extra == 0 &&
                 (state == "running" || report.pending == 0);
  return report;
}

void LabService::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shut_down_ = true;
    for (auto& [id, run] : runs_) {
      run->cancel.store(true, std::memory_order_relaxed);
      if (run->worker.joinable()) workers.push_back(std::move(run->worker));
    }
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace sss
