#include "service/session.hpp"

#include <fstream>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "service/protocol.hpp"
#include "support/require.hpp"
#include "support/string_util.hpp"

namespace sss {

namespace {

/// Strict command schema: every key in `command.doc` must be one of
/// `allowed` ("cmd" and "id" are always allowed), mirroring the manifest
/// reader's unknown-key-is-an-error posture so typos fail loudly.
void check_keys(const ServeCommand& command,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : command.doc.members()) {
    if (key == "cmd" || key == "id") continue;
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    SSS_REQUIRE(known, "\"" + command.cmd + "\" does not take key \"" + key +
                           "\" at " + value.where());
  }
}

std::string require_string(const ServeCommand& command,
                           const std::string& key) {
  const JsonValue& value = command.doc.at(key);
  SSS_REQUIRE(value.is_string(), "\"" + key + "\" must be a string, got " +
                                     std::string(JsonValue::kind_name(
                                         value.kind())) +
                                     " at " + value.where());
  return value.as_string();
}

std::string optional_string(const ServeCommand& command,
                            const std::string& key) {
  const JsonValue* value = command.doc.find(key);
  if (value == nullptr) return "";
  SSS_REQUIRE(value->is_string(), "\"" + key + "\" must be a string, got " +
                                      std::string(JsonValue::kind_name(
                                          value->kind())) +
                                      " at " + value->where());
  return value->as_string();
}

int optional_int(const ServeCommand& command, const std::string& key,
                 int fallback) {
  const JsonValue* value = command.doc.find(key);
  if (value == nullptr) return fallback;
  SSS_REQUIRE(value->is_number(), "\"" + key + "\" must be an integer, got " +
                                      std::string(JsonValue::kind_name(
                                          value->kind())) +
                                      " at " + value->where());
  const std::int64_t parsed = value->as_int();
  SSS_REQUIRE(parsed >= 0, "\"" + key + "\" cannot be negative at " +
                               value->where());
  SSS_REQUIRE(parsed <= 1 << 20,
              "\"" + key + "\" is implausibly large at " + value->where());
  return static_cast<int>(parsed);
}

bool optional_bool(const ServeCommand& command, const std::string& key) {
  const JsonValue* value = command.doc.find(key);
  if (value == nullptr) return false;
  SSS_REQUIRE(value->is_bool(), "\"" + key + "\" must be a boolean, got " +
                                    std::string(JsonValue::kind_name(
                                        value->kind())) +
                                    " at " + value->where());
  return value->as_bool();
}

/// The manifest text a submit carries: an inline "manifest" object or a
/// "manifest_path" file, exactly one of the two.
std::string manifest_text_for(const ServeCommand& command) {
  const JsonValue* inline_manifest = command.doc.find("manifest");
  const JsonValue* path = command.doc.find("manifest_path");
  SSS_REQUIRE((inline_manifest != nullptr) != (path != nullptr),
              "\"submit\" needs exactly one of \"manifest\" and "
              "\"manifest_path\"");
  if (inline_manifest != nullptr) {
    SSS_REQUIRE(inline_manifest->is_object(),
                "\"manifest\" must be an object, got " +
                    std::string(JsonValue::kind_name(
                        inline_manifest->kind())) +
                    " at " + inline_manifest->where());
    return json_serialize(*inline_manifest);
  }
  SSS_REQUIRE(path->is_string(), "\"manifest_path\" must be a string at " +
                                     path->where());
  std::ifstream in(path->as_string(), std::ios::binary);
  SSS_REQUIRE(in.good(),
              "cannot read manifest \"" + path->as_string() + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  SSS_REQUIRE(!in.bad(),
              "read error on manifest \"" + path->as_string() + "\"");
  return text.str();
}

LabService::SubmitOptions options_for(const ServeCommand& command) {
  LabService::SubmitOptions options;
  options.threads = optional_int(command, "threads", 0);
  options.shards = optional_int(command, "shards", 0);
  options.parallel_threads = optional_int(command, "parallel_threads", 0);
  options.sweep_mode = optional_string(command, "sweep_mode");
  options.pace_ms = optional_int(command, "pace_ms", 0);
  return options;
}

JsonLineBuilder submitted_reply(const std::string& id_json,
                                const LabService::Submitted& submitted) {
  JsonLineBuilder line = reply_ok(id_json);
  line.field("run", submitted.run_id)
      .field("trials", submitted.planned)
      .field("skipped", submitted.skipped)
      .field("sink", submitted.sink_path)
      .field("checkpoint", submitted.checkpoint_path);
  return line;
}

JsonLineBuilder status_reply(const std::string& id_json,
                             const std::string& run_id,
                             const LabService::RunStatus& status) {
  JsonLineBuilder line = reply_ok(id_json);
  line.field("run", run_id)
      .field("state", status.state)
      .field("rows", status.rows)
      .field("trials", status.planned)
      .field("skipped", status.skipped)
      .field("sink", status.sink_path);
  if (!status.error.empty()) line.field("error", status.error);
  return line;
}

std::string json_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_quote(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

ServeSession::ServeSession(LabService& service, std::istream& in,
                           std::ostream& out)
    : service_(service), in_(in), out_(out) {}

void ServeSession::emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(out_mutex_);
  out_ << line << '\n' << std::flush;
}

ServeSession::Exit ServeSession::run() {
  Exit exit = Exit::kEof;
  std::string line;
  while (std::getline(in_, line)) {
    if (trim(line).empty()) continue;  // blank lines keep a session alive
    std::string id_json = "null";
    try {
      const ServeCommand command = parse_serve_command(line);
      id_json = command.id_json;
      const std::string& cmd = command.cmd;

      if (cmd == "ping") {
        check_keys(command, {});
        emit(reply_ok(id_json).str());

      } else if (cmd == "submit" || cmd == "resume") {
        check_keys(command,
                   cmd == "submit"
                       ? std::initializer_list<const char*>{
                             "manifest", "manifest_path", "sink", "threads",
                             "shards", "parallel_threads", "sweep_mode",
                             "pace_ms", "stream"}
                       : std::initializer_list<const char*>{
                             "checkpoint", "threads", "shards",
                             "parallel_threads", "sweep_mode", "pace_ms",
                             "stream"});
        LabService::SubmitOptions options = options_for(command);
        if (optional_bool(command, "stream")) {
          options.subscriber = [this](const std::string& event) {
            emit(event);
          };
        }
        const LabService::Submitted submitted =
            cmd == "submit"
                ? service_.submit(manifest_text_for(command),
                                  require_string(command, "sink"),
                                  std::move(options))
                : service_.resume(require_string(command, "checkpoint"),
                                  std::move(options));
        emit(submitted_reply(id_json, submitted).str());

      } else if (cmd == "status") {
        check_keys(command, {"run"});
        const std::string run_id = require_string(command, "run");
        const LabService::RunStatus status = service_.status(run_id);
        SSS_REQUIRE(status.exists, "unknown run \"" + run_id + "\"");
        emit(status_reply(id_json, run_id, status).str());

      } else if (cmd == "runs") {
        check_keys(command, {});
        JsonLineBuilder reply = reply_ok(id_json);
        reply.raw("runs", json_string_array(service_.run_ids()));
        emit(reply.str());

      } else if (cmd == "stream") {
        check_keys(command, {"run", "from"});
        const std::string run_id = require_string(command, "run");
        const int from = optional_int(command, "from", 0);
        const int replayed = service_.subscribe(
            run_id, from,
            [this](const std::string& event) { emit(event); });
        const LabService::RunStatus status = service_.status(run_id);
        JsonLineBuilder reply = reply_ok(id_json);
        reply.field("run", run_id)
            .field("replayed", replayed)
            .field("live", status.state == "running");
        emit(reply.str());

      } else if (cmd == "cancel") {
        check_keys(command, {"run"});
        const std::string run_id = require_string(command, "run");
        SSS_REQUIRE(service_.cancel(run_id),
                    "unknown run \"" + run_id + "\"");
        JsonLineBuilder reply = reply_ok(id_json);
        reply.field("run", run_id);
        emit(reply.str());

      } else if (cmd == "wait") {
        check_keys(command, {"run", "timeout_ms"});
        const std::string run_id = require_string(command, "run");
        // Blocks the command loop; events for this session keep flowing
        // from worker threads while we wait. An optional timeout returns
        // the command loop to the client (reply state "running") so a
        // wedged run cannot wedge the connection too.
        const int timeout_ms = optional_int(command, "timeout_ms", -1);
        const LabService::RunStatus status = service_.wait(run_id, timeout_ms);
        emit(status_reply(id_json, run_id, status).str());

      } else if (cmd == "diff") {
        check_keys(command, {"run", "baseline"});
        const std::string run_id = require_string(command, "run");
        const std::string baseline = require_string(command, "baseline");
        const LabService::DiffReport report =
            service_.diff(run_id, baseline);
        JsonLineBuilder reply = reply_ok(id_json);
        reply.field("run", run_id)
            .field("baseline", baseline)
            .field("state", report.state)
            .field("compared", report.compared)
            .field("matched", report.matched)
            .field("changed", report.changed)
            .field("extra", report.extra)
            .field("pending", report.pending)
            .field("clean", report.clean)
            .raw("deltas", json_string_array(report.deltas));
        emit(reply.str());

      } else if (cmd == "shutdown") {
        check_keys(command, {});
        emit(reply_ok(id_json).str());
        exit = Exit::kShutdown;
        break;

      } else {
        throw PreconditionError("unknown command \"" + cmd + "\"");
      }
    } catch (const std::exception& error) {
      emit(reply_error(id_json, error.what()).str());
    }
  }
  // No worker may touch this session's output stream once run() returns.
  service_.detach_subscribers();
  return exit;
}

}  // namespace sss
