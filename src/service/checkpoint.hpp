#pragma once
/// \file checkpoint.hpp
/// Durable-run bookkeeping for the serve layer: the checkpoint manifest
/// written next to every durable stream, and the scanner that recovers a
/// stream's completed (item, trial) set after an interruption.
///
/// Durability model: a serve run writes two files.
///
///  * `<sink>` — the per-row-flushed JSONL result stream (analysis/
///    sink.hpp's durability contract: every row on disk is whole and
///    newline-terminated). This is the sole source of truth for which
///    trials completed; there is no separate progress file to fall out of
///    sync.
///  * `<sink>.ckpt.json` — the checkpoint manifest, written once at
///    submit time before the first trial runs: the experiment manifest
///    embedded verbatim plus the run shape (planned trial count, batch
///    options). Resume re-expands the embedded manifest, so it does not
///    depend on the original manifest file still existing or being
///    unchanged.
///
/// Resume = load checkpoint + scan stream + truncate any partial tail +
/// skip the recovered keys. A process killed mid-write can leave at most
/// one torn final line (rows are flushed whole); the scanner reports it
/// and `truncate_stream_tail` drops it, restoring the
/// only-whole-rows invariant before the resumed batch appends.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace sss {

/// The checkpoint manifest: everything needed to re-create a run.
struct Checkpoint {
  std::string plan_name;      ///< expanded plan's name (sanity echo)
  std::string manifest_json;  ///< the experiment manifest, serialized
  std::string sink_path;      ///< the durable JSONL stream
  int planned_trials = 0;     ///< plan size at submit time
  int threads = 1;            ///< batch worker threads used at submit
  int shards = 0;             ///< batch shards
  int parallel_threads = 0;   ///< engine-thread override (0 = manifest's)
  std::string sweep_mode;     ///< sweep-mode override ("" = manifest's)
};

/// The checkpoint's conventional location next to its stream.
std::string checkpoint_path_for(const std::string& sink_path);

/// Serializes `checkpoint` to its JSON document.
std::string checkpoint_to_json(const Checkpoint& checkpoint);

/// Writes `checkpoint` to `checkpoint_path_for(checkpoint.sink_path)`,
/// throwing PreconditionError on I/O failure (an unwritable checkpoint
/// would silently forfeit resumability).
void write_checkpoint(const Checkpoint& checkpoint);

/// Loads and validates a checkpoint document.
Checkpoint load_checkpoint(const std::string& path);

/// What a durable stream holds: the completed keys (document order), each
/// row's exact bytes (for replay and diff), and the byte length of the
/// whole-rows prefix. `tail_bytes` > 0 reports a torn final line (no
/// trailing newline) beyond that prefix.
struct StreamScan {
  std::vector<std::pair<int, int>> keys;  ///< (item, trial) per whole row
  std::vector<std::string> rows;          ///< row bytes, sans newline
  std::size_t complete_bytes = 0;         ///< length of the whole-row prefix
  std::size_t tail_bytes = 0;             ///< torn trailing bytes, if any
};

/// Scans a durable JSONL stream. A missing file is an empty scan (a run
/// that never produced a row). Every newline-terminated line must be a
/// valid row object carrying integer "item" and "trial" (anything else
/// throws — per-row flushing guarantees whole lines, so a malformed
/// *terminated* line means the file is not a result stream); a final
/// unterminated fragment is reported as the tail, not an error.
StreamScan scan_result_stream(const std::string& path);

/// Truncates `path` to `scan.complete_bytes`, dropping a torn tail. No-op
/// when the scan saw none.
void truncate_stream_tail(const std::string& path, const StreamScan& scan);

}  // namespace sss
