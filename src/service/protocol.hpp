#pragma once
/// \file protocol.hpp
/// Line-oriented JSON framing for the `sss_lab serve` command protocol.
///
/// The service speaks newline-delimited JSON in both directions, the
/// shape monotone's `automate stdio` long-lived command server pioneered
/// (persistent session, framed commands, multiplexed replies) translated
/// to JSONL so the lab's existing strict reader/writer pair covers both
/// sides:
///
///  * client -> server: one command object per line,
///      {"cmd": "<name>", "id": <string|int>?, ...command keys}
///    `id` is an optional client-chosen tag; it is echoed verbatim on the
///    command's reply so a pipelining client can match them up.
///
///  * server -> client: one object per line, either a *reply* —
///      {"id": <echo|null>, "ok": true, ...}        on success
///      {"id": <echo|null>, "ok": false, "error": "..."}
///    — or an *event*, pushed outside the request/response rhythm:
///      {"event": "row",  "run": "r1", "seq": 0, "row": {...}}
///      {"event": "done", "run": "r1", "state": "done", "rows": N}
///    Replies and events are multiplexed on one stream; a client
///    distinguishes them by the presence of the "event" member. Row
///    events embed the row object byte-identically to the durable JSONL
///    stream (analysis/sink.hpp's format_trial_row_jsonl), so a client
///    can reconstruct the stream or diff against goldens without
///    re-serialization concerns.
///
/// This header is the framing only: parsing a command line into its name
/// plus tag, and building reply/event lines. Session semantics live in
/// service.hpp / session.hpp.

#include <cstdint>
#include <string>

#include "support/json.hpp"

namespace sss {

/// One parsed command line. `doc` holds every command key; `id_json` is
/// the client tag rendered back to JSON ("null" when absent) for verbatim
/// echo in the reply.
struct ServeCommand {
  JsonValue doc;
  std::string cmd;
  std::string id_json = "null";
};

/// Parses one input line. Throws PreconditionError when the line is not a
/// JSON object, lacks a string "cmd", or carries an "id" that is neither
/// a string nor an integer.
ServeCommand parse_serve_command(const std::string& line);

/// Incremental builder for one reply/event line. All values are encoded
/// immediately; `str()` yields the object without a trailing newline.
class JsonLineBuilder {
 public:
  JsonLineBuilder& field(const std::string& key, const std::string& value);
  JsonLineBuilder& field(const std::string& key, const char* value);
  JsonLineBuilder& field(const std::string& key, std::int64_t value);
  JsonLineBuilder& field(const std::string& key, int value);
  JsonLineBuilder& field(const std::string& key, bool value);
  /// Appends `json` verbatim as the member's value — for pre-encoded
  /// payloads (the echoed id, an embedded row object, a nested array).
  JsonLineBuilder& raw(const std::string& key, const std::string& json);

  std::string str() const { return body_ + "}"; }

 private:
  std::string body_ = "{";
  bool first_ = true;
};

/// Reply-line helpers: every reply leads with the echoed id and the ok
/// flag, so clients can dispatch on a fixed prefix.
JsonLineBuilder reply_ok(const std::string& id_json);
JsonLineBuilder reply_error(const std::string& id_json,
                            const std::string& message);
/// Event-line helper: leads with {"event": <kind>, "run": <run id>}.
JsonLineBuilder event_line(const std::string& kind, const std::string& run_id);

}  // namespace sss
