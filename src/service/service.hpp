#pragma once
/// \file service.hpp
/// The long-lived lab service behind `sss_lab serve`: a registry of
/// asynchronous batch runs with durable live streams and checkpoint
/// resume.
///
/// `LabService` is the session-independent half of the serve layer (the
/// command protocol lives in session.hpp): submit a manifest and it runs
/// on a background worker through the ordinary batch runner, with three
/// properties the one-shot CLI cannot offer:
///
///  * **Durable streaming.** Every completed (item, trial) row is
///    written to the run's JSONL sink and flushed before anything else
///    observes it (analysis/sink.hpp's per-row durability contract), and
///    simultaneously retained in memory for replay — a subscriber that
///    attaches mid-run first receives every earlier row, then live ones,
///    with no gap and no duplicate. Row bytes are exactly JsonlSink's.
///
///  * **Resume.** Submitting writes a checkpoint manifest next to the
///    sink (service/checkpoint.hpp); `resume` re-expands it, scans the
///    durable stream for completed keys (truncating a torn tail left by
///    a hard kill), and re-runs the batch with those trials skipped,
///    appending only the missing rows. Because trial seeds derive from
///    plan coordinates alone, the appended rows are byte-identical to
///    the rows an uninterrupted run would have produced — the
///    concatenated stream equals the golden stream.
///
///  * **Cancellation as checkpointing.** `cancel` stops the batch at the
///    next trial boundary; everything already finished is durable, so a
///    cancelled run is simply a resumable one.
///
/// Thread model: one mutex guards the run registry and every run's
/// mutable state; workers take it per row. The delivery decision for an
/// event (which subscriber, if any, receives it) is made in the same
/// critical section that commits the row, so a subscriber attaching
/// mid-run never sees a row both replayed and delivered live. The
/// callbacks themselves run *outside* the lock (an event handler may
/// write to a slow client or call back into the service, e.g.
/// cancel-after-k-rows), serialized per run by the batch runner's own
/// streaming mutex; `detach_subscribers` blocks until in-flight
/// callbacks drain, so a disconnecting session can safely die.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/plan.hpp"
#include "service/checkpoint.hpp"

namespace sss {

class LabService {
 public:
  /// Receives one protocol line (no trailing newline): row events while a
  /// run produces, then exactly one done event. Must not block
  /// indefinitely; may call back into the service.
  using EventFn = std::function<void(const std::string& line)>;

  /// Options shared by submit and resume. For resume, zero/empty members
  /// defer to the values recorded in the checkpoint.
  struct SubmitOptions {
    int threads = 0;            ///< batch worker threads (0 = hardware;
                                ///< on resume, 0 = checkpoint's value)
    int shards = 0;             ///< batch shards (0 = one per item)
    int parallel_threads = 0;   ///< engine threads override (0 = manifest)
    std::string sweep_mode;     ///< sweep-mode override ("" = manifest)
    /// Artificial delay after each row (milliseconds) — a pacing knob so
    /// tests and demos can observe live streaming deterministically; 0
    /// in production use.
    int pace_ms = 0;
    /// Live subscriber installed at submit time (same as calling
    /// `subscribe(run, 0, fn)` immediately; may be null).
    EventFn subscriber;
  };

  struct Submitted {
    std::string run_id;
    int planned = 0;  ///< plan trial count
    int skipped = 0;  ///< rows recovered from the durable stream (resume)
    std::string sink_path;
    std::string checkpoint_path;
  };

  struct RunStatus {
    bool exists = false;
    std::string state;  ///< "running" | "done" | "cancelled" | "failed"
    int rows = 0;       ///< durable rows, recovered + produced
    int planned = 0;
    int skipped = 0;
    std::string error;  ///< set when state == "failed"
    std::string sink_path;
  };

  /// Live diff of a run's durable rows against a baseline JSONL stream,
  /// keyed by (item, trial), byte-exact per row — usable while the run
  /// is still writing: baseline rows the run has not reached yet count
  /// as `pending`, not as differences.
  struct DiffReport {
    std::string state;  ///< run state at snapshot time
    int compared = 0;   ///< rows the run has produced so far
    int matched = 0;
    int changed = 0;  ///< same key, different bytes
    int extra = 0;    ///< keys the baseline lacks
    int pending = 0;  ///< baseline keys the run has not produced yet
    /// Clean = no changed, no extra, and (once the run is terminal)
    /// nothing pending.
    bool clean = false;
    std::vector<std::string> deltas;  ///< first few differences, rendered
  };

  LabService() = default;
  /// Cancels every running batch and joins all workers.
  ~LabService();

  LabService(const LabService&) = delete;
  LabService& operator=(const LabService&) = delete;

  /// Validates and expands `manifest_text`, truncates `sink_path`, writes
  /// the checkpoint manifest, and starts the batch on a background
  /// worker. Throws PreconditionError on manifest/plan/IO errors (before
  /// any worker starts), and rejects `sink_path` while another live run
  /// is still writing to it — two writers would silently corrupt the
  /// durable stream.
  Submitted submit(const std::string& manifest_text,
                   const std::string& sink_path, SubmitOptions options);

  /// Resumes from a checkpoint: scans the durable stream, truncates a
  /// torn tail, and runs the remaining trials, appending to the stream.
  /// A stream that already holds every row yields a run that completes
  /// immediately with nothing to do. Rejects a sink another live run is
  /// still writing to, like submit.
  Submitted resume(const std::string& checkpoint_path, SubmitOptions options);

  /// Snapshot of one run (`exists == false` for unknown ids).
  RunStatus status(const std::string& run_id) const;

  /// Registered run ids, in submission order.
  std::vector<std::string> run_ids() const;

  /// Requests cancellation at the next trial boundary. Returns false for
  /// unknown ids; idempotent otherwise.
  bool cancel(const std::string& run_id);

  /// Blocks until the run reaches a terminal state; returns its status.
  /// A non-negative `timeout_ms` bounds the wait: on timeout the status
  /// reports state "running" (even in the sliver where the state already
  /// flipped but the done event is still in flight), so a wait reply
  /// carrying a terminal state always means a live subscriber already
  /// has its done event.
  RunStatus wait(const std::string& run_id, int timeout_ms = -1);

  /// Replays rows [from, rows) to `fn` as row events, synthesizes the
  /// done event if the run already ended, and otherwise installs `fn` as
  /// the run's live subscriber (replacing any previous one). Returns the
  /// number of rows replayed. Throws for unknown ids. The replay writes
  /// happen outside the service lock (a slow client does not stall other
  /// runs' workers); `fn` is installed in the same critical section that
  /// observes the replay caught up, so no row is missed or duplicated.
  int subscribe(const std::string& run_id, int from, EventFn fn);

  /// Removes every live subscriber and waits for in-flight callbacks to
  /// return — after this, no callback will touch a disconnecting
  /// session's streams.
  void detach_subscribers();

  /// See DiffReport. Throws for unknown ids or an unreadable baseline.
  DiffReport diff(const std::string& run_id,
                  const std::string& baseline_path) const;

  /// Cancels all runs and joins all workers (idempotent; the destructor
  /// calls it).
  void shutdown();

 private:
  struct Run {
    std::string id;
    ExperimentPlan plan;
    int planned = 0;
    int skipped = 0;
    std::set<std::pair<int, int>> skip_keys;
    std::vector<std::string> rows;          ///< serialized, sans newline
    std::vector<std::pair<int, int>> keys;  ///< parallel to rows
    std::string state = "running";
    /// True once the worker's done event has been emitted; wait() blocks
    /// on this (not just the state) so "wait returned" implies a live
    /// subscriber has already received its done event.
    bool done_emitted = false;
    std::string error;
    std::atomic<bool> cancel{false};
    std::ofstream sink;
    std::string sink_path;
    int pace_ms = 0;
    EventFn subscriber;
    int events_in_flight = 0;
    std::thread worker;
  };

  Submitted launch(std::unique_ptr<Run> run, const SubmitOptions& options);
  void worker_main(Run& run, int threads, int shards);
  /// Calls `subscriber(line)` and settles the in-flight gate. Pre: the
  /// caller snapshotted `subscriber` and incremented `events_in_flight`
  /// under the lock (in the same critical section as the state change the
  /// event announces) and holds no lock now. Rethrows what the callback
  /// throws, after the decrement.
  void deliver_event(Run& run, const EventFn& subscriber,
                     const std::string& line);
  /// Registers `sink_path` as owned by a live run; throws if a live run
  /// already owns it. Every claim is released exactly once: by the
  /// worker on reaching a terminal state, or by the claimant if launch
  /// never happens.
  void claim_sink(const std::string& sink_path);
  void release_sink(const std::string& sink_path);
  RunStatus status_locked(const Run& run) const;
  Run& find_locked(const std::string& run_id) const;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::vector<std::string> order_;
  std::map<std::string, std::unique_ptr<Run>> runs_;
  /// Sink paths with a non-terminal run writing to them (claimed from
  /// submit/resume entry until the worker goes terminal).
  std::set<std::string> active_sinks_;
  int next_id_ = 1;
  bool shut_down_ = false;
};

}  // namespace sss
