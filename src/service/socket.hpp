#pragma once
/// \file socket.hpp
/// Optional Unix-domain-socket transport for `sss_lab serve --socket`.
///
/// The stdio transport (one client, the process's lifetime) is the
/// primary one; this adds a listening AF_UNIX stream socket so a
/// long-lived service can outlive any single client: connections are
/// accepted one at a time, each runs a full ServeSession over the
/// connection's byte stream, and the service — and every run in it —
/// persists across connections. A client can submit, disconnect, and a
/// later connection can status/stream/diff/resume the same runs. The
/// loop ends when a session issues the shutdown command.
///
/// Availability: compiled only where <sys/socket.h>/<sys/un.h> exist
/// (anything POSIX); `serve_socket_supported()` reports it at runtime so
/// the CLI can fail with a message instead of a missing symbol.

#include <string>

namespace sss {

class LabService;

/// True when this build carries the AF_UNIX transport.
bool serve_socket_supported();

/// Binds `path` (unlinking a stale socket file first), accepts
/// connections until a session returns Exit::kShutdown, then unlinks the
/// socket. Throws PreconditionError on bind/listen failure or on an
/// unsupported platform.
void serve_unix_socket(LabService& service, const std::string& path);

}  // namespace sss
