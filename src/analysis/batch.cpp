#include "analysis/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/require.hpp"

namespace sss {

namespace {

/// A trial's coordinates in the plan; the global trial list is the plan
/// flattened item by item.
struct TrialRef {
  int item = 0;
  int index_in_item = 0;
};

}  // namespace

BatchItem make_batch_item(std::string label, const Graph& g,
                          const Protocol& protocol, const Problem* problem,
                          const SweepOptions& options) {
  BatchItem item;
  item.label = std::move(label);
  item.graph = &g;
  item.protocol = &protocol;
  item.problem = problem;
  item.daemons = options.daemons;
  item.seeds_per_daemon = options.seeds_per_daemon;
  item.run = options.run;
  item.base_seed = options.base_seed;
  item.exclude_frozen = options.exclude_frozen;
  return item;
}

SweepSummary summarize_runs(const RunStats* stats, int count) {
  SweepSummary summary;
  std::vector<double> rounds_to_silence;
  std::vector<double> steps_to_silence;
  std::vector<double> rounds_to_legitimate;
  double total_reads = 0.0;
  double total_bits = 0.0;
  for (int i = 0; i < count; ++i) {
    const RunStats& run = stats[i];
    ++summary.runs;
    if (run.silent) {
      ++summary.silent_runs;
      rounds_to_silence.push_back(static_cast<double>(run.rounds_to_silence));
      steps_to_silence.push_back(static_cast<double>(run.steps_to_silence));
      summary.max_rounds_to_silence =
          std::max(summary.max_rounds_to_silence, run.rounds_to_silence);
      summary.max_steps_to_silence =
          std::max(summary.max_steps_to_silence, run.steps_to_silence);
    }
    if (run.reached_legitimate) {
      ++summary.legitimate_runs;
      rounds_to_legitimate.push_back(
          static_cast<double>(run.rounds_to_legitimate));
    }
    summary.k_measured =
        std::max(summary.k_measured, run.max_reads_per_process_step);
    summary.bits_measured =
        std::max(summary.bits_measured, run.max_bits_per_process_step);
    total_reads += static_cast<double>(run.total_reads);
    total_bits += static_cast<double>(run.total_read_bits);
  }
  summary.rounds_to_silence = summarize(std::move(rounds_to_silence));
  summary.steps_to_silence = summarize(std::move(steps_to_silence));
  summary.rounds_to_legitimate = summarize(std::move(rounds_to_legitimate));
  if (summary.runs > 0) {
    summary.mean_total_reads = total_reads / summary.runs;
    summary.mean_total_bits = total_bits / summary.runs;
  }
  return summary;
}

BatchResult run_batch(const std::vector<BatchItem>& items,
                      const BatchOptions& options) {
  SSS_REQUIRE(!items.empty(), "batch needs at least one item");
  SSS_REQUIRE(options.threads >= 0 && options.shards >= 0,
              "thread and shard counts cannot be negative");
  for (const BatchItem& item : items) {
    SSS_REQUIRE(item.graph != nullptr && item.protocol != nullptr,
                "batch item needs a graph and a protocol");
    SSS_REQUIRE(!item.daemons.empty() && item.seeds_per_daemon >= 1,
                "batch item needs at least one daemon and one seed");
    SSS_REQUIRE(item.extra_steps >= 0, "extra_steps cannot be negative");
    SSS_REQUIRE(item.parallel_threads >= 1,
                "parallel_threads must be >= 1");
    if (item.churn_enabled) {
      SSS_REQUIRE(item.extra_steps == 0,
                  "extra_steps and churn windows cannot be combined");
      SSS_REQUIRE(item.parallel_threads == 1,
                  "churn mode runs single-threaded engines; "
                  "parallel_threads must be 1");
      SSS_REQUIRE(item.churn.topology_weight == 0 || item.protocol_factory,
                  "topology churn needs a protocol_factory on the item");
    }
  }

  // Per-item effective run options: a problem supplies the legitimacy
  // predicate unless the caller already set one.
  std::vector<RunOptions> runs;
  runs.reserve(items.size());
  for (const BatchItem& item : items) {
    RunOptions run = item.run;
    if (item.problem != nullptr && !run.legitimacy) {
      run.legitimacy = item.problem->predicate();
    }
    runs.push_back(std::move(run));
  }

  // Flatten the plan. trials[g] for g in [item_offset[i], item_offset[i+1])
  // are item i's trials in (daemon-major, seed-minor) order — the order the
  // original serial sweep produced and the order reduction consumes.
  std::vector<TrialRef> trials;
  std::vector<int> item_offset(items.size() + 1, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int per_item = static_cast<int>(items[i].daemons.size()) *
                         items[i].seeds_per_daemon;
    item_offset[i] = static_cast<int>(trials.size());
    for (int j = 0; j < per_item; ++j) {
      trials.push_back({static_cast<int>(i), j});
    }
  }
  item_offset[items.size()] = static_cast<int>(trials.size());
  const int total = static_cast<int>(trials.size());

  // Shards: one per item by default, so every engine a shard schedules
  // shares its predecessors' graph/protocol slabs (warm caches); work
  // stealing below keeps them from becoming a serialization unit. Shard
  // granularity is per item — an item's trials always stay together — so
  // more shards than items would just sit empty.
  int shards = options.shards != 0 ? options.shards
                                   : static_cast<int>(items.size());
  shards = std::clamp(shards, 1, static_cast<int>(items.size()));
  std::vector<std::vector<int>> shard_trials(static_cast<std::size_t>(shards));
  for (int g = 0; g < total; ++g) {
    shard_trials[static_cast<std::size_t>(trials[static_cast<std::size_t>(g)]
                                              .item %
                                          shards)]
        .push_back(g);
  }

  std::vector<RunStats> results(static_cast<std::size_t>(total));
  std::vector<ChurnStats> churn_results(static_cast<std::size_t>(total));
  // Which trials actually ran: skip_trial excludes resumed-over trials up
  // front, cancellation stops scheduling new ones. Each slot is written
  // by exactly one worker before the join, read only after it.
  std::vector<char> executed(static_cast<std::size_t>(total), 0);
  const auto skip = [&](int global) {
    const TrialRef ref = trials[static_cast<std::size_t>(global)];
    return options.skip_trial &&
           options.skip_trial(ref.item, ref.index_in_item);
  };
  const auto cancel_requested = [&] {
    return options.cancelled && options.cancelled();
  };
  // The streaming hook may be called from any worker; one mutex serializes
  // the calls so sinks never need their own locking. Rows arrive in
  // completion order — the (item, trial) indices they carry make the
  // stream canonically sortable.
  std::mutex stream_mutex;
  auto run_trial = [&](int global) {
    const TrialRef ref = trials[static_cast<std::size_t>(global)];
    const BatchItem& item = items[static_cast<std::size_t>(ref.item)];
    const std::string& daemon_name =
        item.daemons[static_cast<std::size_t>(ref.index_in_item) /
                     static_cast<std::size_t>(item.seeds_per_daemon)];
    const std::uint64_t engine_seed =
        item.base_seed + 1 + static_cast<std::uint64_t>(ref.index_in_item);
    RunStats stats;
    if (item.churn_enabled) {
      // Per-trial churn stream: derived from the item's churn seed and the
      // trial's engine seed alone, so churn windows inherit the batch
      // runner's thread/shard invariance.
      ChurnOptions churn = item.churn;
      std::uint64_t seed_state =
          churn.seed ^ (0x9e3779b97f4a7c15ULL * (engine_seed + 1));
      churn.seed = splitmix64(seed_state);
      churn.exclude_frozen = item.exclude_frozen;
      churn.sweep_mode = item.sweep_mode;
      const LegitimacyPredicate& legitimacy =
          runs[static_cast<std::size_t>(ref.item)].legitimacy;
      auto drive = [&](auto& runner) {
        stats = runner.stabilize();
        runner.run_window();
        churn_results[static_cast<std::size_t>(global)] = runner.stats();
      };
      if (item.protocol_factory) {
        ChurnRunner<Engine> runner(*item.graph, item.protocol_factory,
                                   daemon_name, engine_seed, churn,
                                   legitimacy);
        drive(runner);
      } else {
        ChurnRunner<Engine> runner(*item.graph, *item.protocol, daemon_name,
                                   engine_seed, churn, legitimacy);
        drive(runner);
      }
    } else {
      Engine engine(*item.graph, *item.protocol, make_daemon(daemon_name),
                    engine_seed);
      engine.set_exclude_frozen(item.exclude_frozen);
      engine.set_parallel_threads(item.parallel_threads);
      engine.set_sweep_mode(item.sweep_mode);
      engine.randomize_state();
      stats = engine.run(runs[static_cast<std::size_t>(ref.item)]);
      if (item.extra_steps > 0) {
        for (int e = 0; e < item.extra_steps; ++e) engine.step();
        stats.max_reads_per_process_step =
            engine.read_counter().max_reads_per_process_step();
        stats.max_bits_per_process_step =
            engine.read_counter().max_bits_per_process_step();
      }
    }
    results[static_cast<std::size_t>(global)] = stats;
    executed[static_cast<std::size_t>(global)] = 1;
    if (options.on_trial) {
      BatchTrialRow row;
      row.item = ref.item;
      row.trial = ref.index_in_item;
      row.label = item.label;
      row.graph = item.graph->name();
      row.protocol = item.protocol->name();
      row.daemon = daemon_name;
      row.engine_seed = engine_seed;
      row.stats = stats;
      row.churn = item.churn_enabled;
      if (item.churn_enabled) {
        row.churn_stats = churn_results[static_cast<std::size_t>(global)];
      }
      const std::lock_guard<std::mutex> lock(stream_mutex);
      options.on_trial(row);
    }
  };

  int threads = options.threads != 0
                    ? options.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, total);

  if (threads == 1) {
    for (int g = 0; g < total; ++g) {
      if (skip(g)) continue;
      if (cancel_requested()) break;
      run_trial(g);
    }
  } else {
    // Per-shard cursors; claiming a trial is one fetch_add, stealing is
    // claiming from someone else's shard after your own runs dry.
    std::vector<std::atomic<int>> cursors(static_cast<std::size_t>(shards));
    for (auto& cursor : cursors) cursor.store(0, std::memory_order_relaxed);
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&](int id) {
      for (int probe = 0; probe < shards; ++probe) {
        const std::size_t s = static_cast<std::size_t>((id + probe) % shards);
        for (;;) {
          const int c = cursors[s].fetch_add(1, std::memory_order_relaxed);
          if (c >= static_cast<int>(shard_trials[s].size())) break;
          const int g = shard_trials[s][static_cast<std::size_t>(c)];
          if (skip(g)) continue;
          // Cancellation is per-trial, never mid-trial: claimed trials
          // run to completion and stream whole rows.
          if (cancel_requested()) return;
          try {
            run_trial(g);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& thread : pool) thread.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Reduction in item order, each item over its *executed* trials in
  // trial-index order: bitwise identical for every thread/shard count,
  // and — absent skip/cancel hooks — identical to reducing all trials.
  BatchResult out;
  out.planned_trials = total;
  out.summaries.reserve(items.size());
  out.churn_summaries.reserve(items.size());
  std::vector<RunStats> item_stats;
  std::vector<ChurnStats> item_churn;
  for (std::size_t i = 0; i < items.size(); ++i) {
    item_stats.clear();
    item_churn.clear();
    for (int g = item_offset[i]; g < item_offset[i + 1]; ++g) {
      if (!executed[static_cast<std::size_t>(g)]) continue;
      item_stats.push_back(results[static_cast<std::size_t>(g)]);
      item_churn.push_back(churn_results[static_cast<std::size_t>(g)]);
    }
    out.summaries.push_back(summarize_runs(
        item_stats.data(), static_cast<int>(item_stats.size())));
    out.churn_summaries.push_back(
        items[i].churn_enabled
            ? summarize_churn(item_churn.data(),
                              static_cast<int>(item_churn.size()))
            : ChurnSweepSummary{});
  }
  for (int g = 0; g < total; ++g) {
    if (executed[static_cast<std::size_t>(g)]) {
      ++out.total_trials;
    } else if (skip(g)) {
      ++out.skipped_trials;
    }
  }
  out.cancelled = out.total_trials + out.skipped_trials < total;
  return out;
}

}  // namespace sss
