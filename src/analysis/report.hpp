#pragma once
/// \file report.hpp
/// Console formatting shared by bench binaries and examples.

#include <string>

namespace sss {

/// "==== title ====" banner sized to the title.
void print_banner(const std::string& title);

/// Indented context line ("  note ...").
void print_note(const std::string& note);

/// "measured/bound (pct%)" — the paper-vs-measured cell format.
std::string format_vs_bound(double measured, double bound);

}  // namespace sss
