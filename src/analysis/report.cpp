#include "analysis/report.hpp"

#include <cstdio>
#include <sstream>

namespace sss {

void print_banner(const std::string& title) {
  const std::string bar(title.size() + 10, '=');
  std::printf("\n%s\n==== %s ====\n%s\n", bar.c_str(), title.c_str(),
              bar.c_str());
}

void print_note(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

std::string format_vs_bound(double measured, double bound) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << measured << "/" << bound;
  if (bound > 0) {
    out << " (" << (100.0 * measured / bound) << "%)";
  }
  return out.str();
}

}  // namespace sss
