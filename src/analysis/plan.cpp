#include "analysis/plan.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "core/problem_registry.hpp"
#include "core/protocol_registry.hpp"
#include "graph/family_registry.hpp"
#include "runtime/daemon.hpp"
#include "support/params.hpp"
#include "support/require.hpp"

namespace sss {

namespace {

/// The run-shaping keys accepted in "defaults" and per sweep.
const std::vector<std::string> kRunKeys = {
    "daemons",    "seeds_per_daemon",    "base_seed",
    "max_steps",  "stop_on_silence",     "quiescence_patience",
    "extra_steps", "exclude_frozen",     "churn",
    "parallel_threads", "sweep_mode"};

void require_known_keys(const JsonValue& object,
                        const std::vector<std::string>& allowed,
                        const std::string& owner) {
  for (const auto& [key, value] : object.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw PreconditionError("unknown key \"" + key + "\" in " + owner +
                              " (accepted: " + join(allowed, ", ") + ")");
    }
  }
}

/// Sweep-shaping knobs resolved from manifest defaults + sweep overrides.
struct RunDefaults {
  std::vector<std::string> daemons = default_sweep_daemons();
  int seeds_per_daemon = kDefaultSeedsPerDaemon;
  std::uint64_t base_seed = kDefaultBaseSeed;
  RunOptions run;
  int extra_steps = 0;
  bool exclude_frozen = false;
  int parallel_threads = 1;
  SweepMode sweep_mode = SweepMode::kAuto;
  bool churn_enabled = false;
  ChurnOptions churn;
};

/// Parses a "churn" block (see plan.hpp for the schema). Strict like the
/// rest of the manifest: unknown keys throw.
ChurnOptions parse_churn(const JsonValue& object) {
  require_known_keys(
      object,
      {"event_probability", "period", "window_steps", "seed", "max_victims",
       "corruption_weight", "node_reset_weight", "topology_weight",
       "stabilize_steps", "recovery_patience"},
      "\"churn\"");
  ChurnOptions churn;
  churn.corruption_weight = 1;
  if (const JsonValue* p = object.find("event_probability")) {
    churn.event_probability = p->as_double();
    SSS_REQUIRE(churn.event_probability > 0.0 && churn.event_probability <= 1.0,
                "\"event_probability\" must be in (0, 1]");
  }
  if (const JsonValue* period = object.find("period")) {
    SSS_REQUIRE(period->as_int() >= 1, "\"period\" must be >= 1");
    churn.period = static_cast<std::uint64_t>(period->as_int());
  }
  SSS_REQUIRE((churn.event_probability > 0.0) != (churn.period > 0),
              "\"churn\" needs exactly one of \"event_probability\" and "
              "\"period\"");
  if (const JsonValue* window = object.find("window_steps")) {
    SSS_REQUIRE(window->as_int() >= 1, "\"window_steps\" must be >= 1");
    churn.window_steps = static_cast<std::uint64_t>(window->as_int());
  }
  if (const JsonValue* seed = object.find("seed")) {
    SSS_REQUIRE(seed->as_int() >= 0, "churn \"seed\" cannot be negative");
    churn.seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const JsonValue* victims = object.find("max_victims")) {
    SSS_REQUIRE(victims->as_int() >= 1, "\"max_victims\" must be >= 1");
    churn.max_victims = static_cast<int>(victims->as_int());
  }
  const auto weight = [&](const char* key, int fallback) {
    const JsonValue* value = object.find(key);
    if (value == nullptr) return fallback;
    SSS_REQUIRE(value->as_int() >= 0,
                std::string("\"") + key + "\" cannot be negative");
    return static_cast<int>(value->as_int());
  };
  churn.corruption_weight = weight("corruption_weight", 1);
  churn.node_reset_weight = weight("node_reset_weight", 0);
  churn.topology_weight = weight("topology_weight", 0);
  SSS_REQUIRE(churn.corruption_weight + churn.node_reset_weight +
                      churn.topology_weight >
                  0,
              "\"churn\" needs at least one positive event weight");
  if (const JsonValue* stabilize = object.find("stabilize_steps")) {
    SSS_REQUIRE(stabilize->as_int() >= 1, "\"stabilize_steps\" must be >= 1");
    churn.stabilize_steps = static_cast<std::uint64_t>(stabilize->as_int());
  }
  if (const JsonValue* patience = object.find("recovery_patience")) {
    SSS_REQUIRE(patience->as_int() >= 0,
                "\"recovery_patience\" cannot be negative");
    churn.recovery_patience = static_cast<std::uint64_t>(patience->as_int());
  }
  return churn;
}

std::vector<std::string> parse_daemons(const JsonValue& value) {
  std::vector<std::string> daemons;
  for (const JsonValue& entry : value.items()) {
    const std::string& name = entry.as_string();
    const std::vector<std::string>& known = daemon_names();
    SSS_REQUIRE(std::find(known.begin(), known.end(), name) != known.end(),
                "unknown daemon \"" + name + "\" (known: " +
                    join(known, ", ") + ")");
    daemons.push_back(name);
  }
  SSS_REQUIRE(!daemons.empty(), "\"daemons\" cannot be empty");
  return daemons;
}

/// Applies the run keys present in `object` on top of `base`.
RunDefaults apply_run_keys(RunDefaults base, const JsonValue& object) {
  if (const JsonValue* daemons = object.find("daemons")) {
    base.daemons = parse_daemons(*daemons);
  }
  if (const JsonValue* seeds = object.find("seeds_per_daemon")) {
    // Validate on the int64 BEFORE narrowing — an out-of-int-range value
    // must error, not wrap.
    const std::int64_t count = seeds->as_int();
    SSS_REQUIRE(count >= 1 && count <= std::numeric_limits<int>::max(),
                "\"seeds_per_daemon\" must be >= 1 (and fit an int)");
    base.seeds_per_daemon = static_cast<int>(count);
  }
  if (const JsonValue* seed = object.find("base_seed")) {
    SSS_REQUIRE(seed->as_int() >= 0, "\"base_seed\" cannot be negative");
    base.base_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const JsonValue* steps = object.find("max_steps")) {
    base.run.max_steps = static_cast<std::uint64_t>(steps->as_int());
    SSS_REQUIRE(steps->as_int() >= 1, "\"max_steps\" must be >= 1");
  }
  if (const JsonValue* stop = object.find("stop_on_silence")) {
    base.run.stop_on_silence = stop->as_bool();
  }
  if (const JsonValue* patience = object.find("quiescence_patience")) {
    SSS_REQUIRE(patience->as_int() >= 0,
                "\"quiescence_patience\" cannot be negative");
    base.run.quiescence_patience =
        static_cast<std::uint64_t>(patience->as_int());
  }
  if (const JsonValue* extra = object.find("extra_steps")) {
    const std::int64_t steps = extra->as_int();
    SSS_REQUIRE(steps >= 0 && steps <= std::numeric_limits<int>::max(),
                "\"extra_steps\" must be >= 0 (and fit an int)");
    base.extra_steps = static_cast<int>(steps);
  }
  if (const JsonValue* frozen = object.find("exclude_frozen")) {
    base.exclude_frozen = frozen->as_bool();
  }
  if (const JsonValue* threads = object.find("parallel_threads")) {
    const std::int64_t count = threads->as_int();
    SSS_REQUIRE(count >= 1 && count <= 1024,
                "\"parallel_threads\" must be in [1, 1024]");
    base.parallel_threads = static_cast<int>(count);
  }
  if (const JsonValue* mode = object.find("sweep_mode")) {
    base.sweep_mode = parse_sweep_mode(mode->as_string());
  }
  if (const JsonValue* churn = object.find("churn")) {
    // A churn block replaces any inherited one wholesale (null disables):
    // merging schedules field-by-field would make "defaults says Bernoulli,
    // sweep says periodic" silently ambiguous.
    if (churn->is_null()) {
      base.churn_enabled = false;
    } else {
      base.churn_enabled = true;
      base.churn = parse_churn(*churn);
    }
  }
  return base;
}

ParamValue scalar_param(const std::string& key, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNumber:
      return ParamValue(value.as_double());
    case JsonValue::Kind::kString:
      return ParamValue(value.as_string());
    case JsonValue::Kind::kBool:
      return ParamValue(value.as_bool() ? 1 : 0);
    default:
      throw PreconditionError("parameter \"" + key +
                              "\" must be a number, string, or boolean");
  }
}

/// Expands a {"from": a, "to": b, "step": s} range object (step optional,
/// default 1) into the inclusive integer progression a, a+s, ..., <= b.
/// Schema errors name the offending value's line:col in the manifest.
std::vector<ParamValue> expand_param_range(const std::string& key,
                                           const JsonValue& range) {
  const std::string context =
      "range parameter \"" + key + "\" at " + range.where();
  for (const auto& [name, unused] : range.members()) {
    SSS_REQUIRE(name == "from" || name == "to" || name == "step",
                "unknown key \"" + name + "\" in " + context +
                    " (accepted: from, to, step)");
  }
  SSS_REQUIRE(range.find("from") != nullptr && range.find("to") != nullptr,
              context + " needs \"from\" and \"to\"");
  // Type errors carry the field's own position, like the schema errors.
  const auto range_int = [&](const char* name) {
    const JsonValue& value = range.at(name);
    SSS_REQUIRE(value.is_number(),
                context + ": \"" + name + "\" must be an integer (at " +
                    value.where() + "), got " +
                    JsonValue::kind_name(value.kind()));
    try {
      return value.as_int();
    } catch (const PreconditionError&) {
      throw PreconditionError(context + ": \"" + name +
                              "\" must be an integer (at " + value.where() +
                              ")");
    }
  };
  const std::int64_t from = range_int("from");
  const std::int64_t to = range_int("to");
  const std::int64_t step = range.find("step") != nullptr ? range_int("step") : 1;
  SSS_REQUIRE(step >= 1, context + ": \"step\" must be >= 1");
  SSS_REQUIRE(from <= to, context + ": \"from\" must be <= \"to\"");
  const std::int64_t count = (to - from) / step + 1;
  SSS_REQUIRE(count <= 100'000,
              context + " expands to " + std::to_string(count) +
                  " values (max 100000)");
  std::vector<ParamValue> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::int64_t v = from; v <= to; v += step) {
    values.emplace_back(static_cast<double>(v));
  }
  return values;
}

/// Expands one graph spec into parameter maps: the cartesian product of
/// its list- and range-valued parameters, in member order with the last
/// sweep varying fastest (odometer order).
std::vector<ParamMap> expand_graph_params(const JsonValue& spec) {
  std::vector<ParamMap> combos = {ParamMap{}};
  for (const auto& [key, value] : spec.members()) {
    if (key == "family") continue;
    std::vector<ParamValue> sweep;
    if (value.is_array()) {
      SSS_REQUIRE(!value.items().empty(),
                  "parameter sweep \"" + key + "\" cannot be empty");
      sweep.reserve(value.size());
      for (const JsonValue& element : value.items()) {
        sweep.push_back(scalar_param(key, element));
      }
    } else if (value.is_object()) {
      sweep = expand_param_range(key, value);
    } else {
      sweep.push_back(scalar_param(key, value));
    }
    std::vector<ParamMap> next;
    next.reserve(combos.size() * sweep.size());
    for (const ParamMap& combo : combos) {
      for (const ParamValue& element : sweep) {
        ParamMap extended = combo;
        extended[key] = element;
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

/// Parses one protocol spec object into a (possibly nested) selection.
/// A base spec is {"name": ..., <scalar params>}; a composed spec is
/// {"transform": ..., "inner": {<protocol spec>}, <scalar params>} with
/// the inner object parsed recursively, so transformers nest. Shape
/// errors name the offending object's line:col in the manifest; name/
/// parameter/composition errors are the registry's (attached to the
/// spec's position by the caller).
ProtocolSelection parse_protocol_selection(const JsonValue& spec) {
  const std::string context = "protocol spec at " + spec.where();
  SSS_REQUIRE(spec.is_object(), context + " must be an object, got " +
                                    JsonValue::kind_name(spec.kind()));
  const JsonValue* name = spec.find("name");
  const JsonValue* transform = spec.find("transform");
  SSS_REQUIRE(name == nullptr || transform == nullptr,
              context + " accepts \"name\" or \"transform\", not both");
  SSS_REQUIRE(name != nullptr || transform != nullptr,
              context + " needs \"name\" (base protocol) or \"transform\" + "
                        "\"inner\" (composition)");
  ParamMap params;
  for (const auto& [key, value] : spec.members()) {
    if (key == "name" || key == "transform" || key == "inner") continue;
    SSS_REQUIRE(!value.is_array() && !value.is_object(),
                "protocol parameter \"" + key + "\" at " + value.where() +
                    " must be a scalar");
    params[key] = scalar_param(key, value);
  }
  if (name != nullptr) {
    const JsonValue* inner = spec.find("inner");
    // The message is only built when the check fails, so inner is
    // non-null there.
    SSS_REQUIRE(inner == nullptr,
                context + ": \"inner\" (at " + inner->where() +
                    ") is only valid alongside \"transform\"");
    return ProtocolSelection::base(name->as_string(), std::move(params));
  }
  const JsonValue* inner = spec.find("inner");
  SSS_REQUIRE(inner != nullptr,
              context + ": \"transform\" needs an \"inner\" protocol spec");
  SSS_REQUIRE(inner->is_object(),
              "\"inner\" at " + inner->where() +
                  " must be a protocol spec object, got " +
                  JsonValue::kind_name(inner->kind()));
  return ProtocolSelection::wrap(transform->as_string(),
                                 parse_protocol_selection(*inner),
                                 std::move(params));
}

void expand_sweep(const JsonValue& sweep, const RunDefaults& manifest_defaults,
                  ExperimentPlan& plan) {
  std::vector<std::string> allowed = kRunKeys;
  allowed.insert(allowed.end(),
                 {"graphs", "protocols", "problem", "base_seeds"});
  require_known_keys(sweep, allowed, "sweep");
  SSS_REQUIRE(!(sweep.find("base_seed") != nullptr &&
                sweep.find("base_seeds") != nullptr),
              "a sweep accepts \"base_seed\" or \"base_seeds\", not both");

  const RunDefaults defaults = apply_run_keys(manifest_defaults, sweep);

  const Problem* problem = nullptr;
  if (const JsonValue* problem_name = sweep.find("problem")) {
    if (!problem_name->is_null()) {
      problem = &plan.store.add(
          ProblemRegistry::instance().make(problem_name->as_string()));
    }
  }
  // Churn availability is "fraction of window steps in a legitimate
  // configuration", which needs a predicate; a churn sweep without an
  // explicit "problem" binds each composition's resolved problem instead
  // (one sweep may mix protocols of different problems).
  std::map<std::string, const Problem*> default_problems;
  auto problem_for = [&](const std::string& name) -> const Problem* {
    if (problem != nullptr || !defaults.churn_enabled) return problem;
    if (name.empty()) return nullptr;
    auto [it, fresh] = default_problems.try_emplace(name, nullptr);
    if (fresh) {
      it->second = &plan.store.add(ProblemRegistry::instance().make(name));
    }
    return it->second;
  };

  const JsonValue& graphs = sweep.at("graphs");
  SSS_REQUIRE(!graphs.items().empty(), "\"graphs\" cannot be empty");
  const JsonValue& protocols = sweep.at("protocols");
  SSS_REQUIRE(!protocols.items().empty(), "\"protocols\" cannot be empty");

  // Parse + resolve every protocol spec once, up front: composition
  // errors (unknown transform, bare checker source, daemon-claim
  // conflicts) surface with the spec's manifest position even when the
  // graph sweep would never have reached that spec.
  struct ParsedProtocol {
    ProtocolSelection selection;
    ProtocolRegistry::ComposedInfo info;
  };
  std::vector<ParsedProtocol> parsed;
  parsed.reserve(protocols.items().size());
  for (const JsonValue& protocol_spec : protocols.items()) {
    ProtocolSelection selection = parse_protocol_selection(protocol_spec);
    try {
      ProtocolRegistry::ComposedInfo info =
          ProtocolRegistry::instance().resolve(selection);
      parsed.push_back({std::move(selection), std::move(info)});
    } catch (const PreconditionError& error) {
      throw PreconditionError("protocol spec at " + protocol_spec.where() +
                              ": " + error.what());
    }
  }

  std::vector<BatchItem> sweep_items;
  for (const JsonValue& graph_spec : graphs.items()) {
    const std::string& family = graph_spec.at("family").as_string();
    for (const ParamMap& params : expand_graph_params(graph_spec)) {
      const Graph& graph = plan.store.add(
          GraphFamilyRegistry::instance().build(family, params));
      for (const ParsedProtocol& choice : parsed) {
        const Protocol& protocol = plan.store.add(
            ProtocolRegistry::instance().make(choice.selection, graph));
        BatchItem item;
        item.label = protocol.name() + "/" + graph.name();
        item.graph = &graph;
        item.protocol = &protocol;
        item.problem = problem_for(choice.info.problem);
        item.daemons = defaults.daemons;
        item.seeds_per_daemon = defaults.seeds_per_daemon;
        item.run = defaults.run;
        item.base_seed = defaults.base_seed;
        item.extra_steps = defaults.extra_steps;
        item.exclude_frozen = defaults.exclude_frozen;
        item.parallel_threads = defaults.parallel_threads;
        item.sweep_mode = defaults.sweep_mode;
        if (defaults.churn_enabled) {
          item.churn_enabled = true;
          item.churn = defaults.churn;
          // Registry-backed factory so churn windows can rebuild the
          // protocol on churned topologies (and so every churn trial runs
          // the owning-mode runner uniformly). Captures the whole
          // composed selection, so transformed protocols rebuild too.
          item.protocol_factory = [selection =
                                       choice.selection](const Graph& g) {
            return ProtocolRegistry::instance().make(selection, g);
          };
        }
        sweep_items.push_back(std::move(item));
      }
    }
  }

  if (const JsonValue* base_seeds = sweep.find("base_seeds")) {
    SSS_REQUIRE(base_seeds->items().size() == sweep_items.size(),
                "\"base_seeds\" has " +
                    std::to_string(base_seeds->items().size()) +
                    " entries but the sweep expands to " +
                    std::to_string(sweep_items.size()) + " items");
    for (std::size_t i = 0; i < sweep_items.size(); ++i) {
      const std::int64_t seed = base_seeds->items()[i].as_int();
      SSS_REQUIRE(seed >= 0, "\"base_seeds\" entries cannot be negative");
      sweep_items[i].base_seed = static_cast<std::uint64_t>(seed);
    }
  }

  for (BatchItem& item : sweep_items) {
    plan.items.push_back(std::move(item));
  }
}

}  // namespace

int ExperimentPlan::total_trials() const {
  int total = 0;
  for (const BatchItem& item : items) {
    total += static_cast<int>(item.daemons.size()) * item.seeds_per_daemon;
  }
  return total;
}

ExperimentPlan plan_from_manifest(const JsonValue& manifest) {
  require_known_keys(manifest, {"name", "defaults", "sweeps"}, "manifest");
  ExperimentPlan plan;
  plan.name = manifest.at("name").as_string();
  SSS_REQUIRE(!plan.name.empty(), "manifest \"name\" cannot be empty");

  RunDefaults defaults;
  if (const JsonValue* defaults_object = manifest.find("defaults")) {
    require_known_keys(*defaults_object, kRunKeys, "\"defaults\"");
    defaults = apply_run_keys(defaults, *defaults_object);
  }

  const JsonValue& sweeps = manifest.at("sweeps");
  SSS_REQUIRE(!sweeps.items().empty(),
              "manifest needs at least one entry in \"sweeps\"");
  for (const JsonValue& sweep : sweeps.items()) {
    expand_sweep(sweep, defaults, plan);
  }
  return plan;
}

ExperimentPlan plan_from_manifest_text(const std::string& text) {
  return plan_from_manifest(JsonValue::parse(text));
}

ExperimentPlan plan_from_manifest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SSS_REQUIRE(in.good(), "cannot read manifest file \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return plan_from_manifest_text(buffer.str());
}

}  // namespace sss
