#pragma once
/// \file sink.hpp
/// Streaming result sinks for the batch runner.
///
/// Results leave the process as they are produced instead of only after
/// the whole plan completes: `run_batch_to_sinks` wires sinks into
/// `BatchOptions::on_trial`, so per-trial rows stream out as trials
/// finish (serialized by the runner, completion order) — a caller
/// post-processing a huge plan never buffers rows itself — and per-item
/// summary rows follow after the bit-identical in-order reduction. (The
/// runner still holds one RunStats per trial internally for that
/// reduction; see BatchOptions::on_trial.) Because every trial row
/// carries its (item, trial) coordinates, a streamed file is
/// sortable-deterministic: sorting rows by those indices yields the same
/// bytes at any thread or shard count.
///
/// Implementations:
///  * `JsonlSink` — one flat JSON object per line, integers/bools/strings
///    only, so output is byte-reproducible across platforms;
///  * `CsvSink`  — the same rows as RFC-4180 CSV with a header;
///  * `BenchJsonSink` — per-item summary records through BenchJsonWriter,
///    producing the BENCH_<name>.json artifacts the bench-gate CI diffs.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/batch.hpp"
#include "support/bench_json.hpp"
#include "support/csv.hpp"

namespace sss {

/// Observer of batch results. `on_trial` calls are serialized by the
/// runner but arrive in completion order; `on_item` calls arrive after all
/// trials, in item order. `finish` is the flush point for sinks that
/// buffer or write files.
///
/// Durability contract: the row sinks (JSONL, CSV) write and flush every
/// row as it arrives — each `on_trial` leaves one whole newline-terminated
/// row on the stream. A run killed between rows therefore loses nothing
/// it completed, which is what lets the serve layer resume an interrupted
/// batch from its own output stream and diff a stream while the producing
/// run is still writing. `finish` remains the end-of-run hook (final
/// flush; header backstop for empty CSV streams), not the durability
/// point.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void on_trial(const BatchTrialRow& row) = 0;
  /// `churn` is the item's churn reduction — all-zero (runs included) for
  /// items that did not run churn windows (check item.churn_enabled).
  virtual void on_item(int item_index, const BatchItem& item,
                       const SweepSummary& summary,
                       const ChurnSweepSummary& churn);
  virtual void finish();
};

/// Renders one trial row exactly as JsonlSink writes it, without the
/// trailing newline. Shared by JsonlSink and the serve layer, so a row
/// streamed over the service protocol is byte-identical to the row in the
/// durable JSONL file (and to the golden fixtures).
std::string format_trial_row_jsonl(const BatchTrialRow& row);

/// One JSON object per trial per line. Field order is fixed; values are
/// limited to strings, integers, and booleans (see file comment).
class JsonlSink final : public ResultSink {
 public:
  /// The stream must outlive the sink.
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void on_trial(const BatchTrialRow& row) override;
  void finish() override;

 private:
  std::ostream& out_;
};

/// The same per-trial rows as CSV; the header row is written on first use,
/// or by `finish` when a plan yields zero trials — the column contract
/// holds even for empty result files.
class CsvSink final : public ResultSink {
 public:
  /// The stream must outlive the sink.
  explicit CsvSink(std::ostream& out) : out_(out), writer_(out) {}

  void on_trial(const BatchTrialRow& row) override;
  void finish() override;

 private:
  void write_header();

  std::ostream& out_;
  CsvWriter writer_;
  bool wrote_header_ = false;
};

/// Per-item summary records through the BENCH_<name>.json writer; trial
/// rows are ignored. `finish` writes the artifact into `directory`; with
/// `strict`, a failed artifact write throws from `finish` instead of
/// warning to stderr — callers whose exit code must reflect the loss
/// (sss_lab run --bench) opt in.
class BenchJsonSink final : public ResultSink {
 public:
  explicit BenchJsonSink(std::string bench_name, std::string directory = ".",
                         bool strict = false);

  void on_trial(const BatchTrialRow& row) override {}
  void on_item(int item_index, const BatchItem& item,
               const SweepSummary& summary,
               const ChurnSweepSummary& churn) override;
  void finish() override;

  const BenchJsonWriter& writer() const { return writer_; }

 private:
  BenchJsonWriter writer_;
  std::string directory_;
  bool strict_ = false;
};

/// Runs the plan with every sink attached: trial rows stream through
/// `BatchOptions::on_trial` (any `on_trial` the caller already installed
/// is called first), summaries fan out after reduction, and every sink is
/// `finish`ed before returning. Null sink pointers are rejected.
BatchResult run_batch_to_sinks(const std::vector<BatchItem>& items,
                               BatchOptions options,
                               const std::vector<ResultSink*>& sinks);

}  // namespace sss
