#pragma once
/// \file batch.hpp
/// Sharded multi-graph batch runner: one process, one thread pool, a whole
/// experiment plan (many graphs x daemons x seeds).
///
/// `sweep_convergence` runs one (graph, protocol) pair; every bench that
/// sweeps a menagerie used to call it once per graph, so each call paid
/// its own thread-pool spin-up and a slow graph serialized everything
/// behind it. `run_batch` takes the whole plan instead:
///
///  * every item is a (graph, protocol[, problem]) triple plus the sweep
///    shape to run on it — the graph/protocol immutables are shared by
///    reference across all of the item's engines (engines only ever read
///    them), so a thousand trials on one topology cost one CSR slab;
///  * trials are grouped into *shards* (by default one per item, so a
///    shard's engines revisit the same graph memory) and executed by a
///    pool of workers with per-shard work stealing: a worker drains its
///    own shard first, then pulls from the next shard cyclically, so one
///    slow graph cannot starve the rest of the plan;
///  * results are bit-identical at every thread/shard count: a trial's
///    engine seed derives from its index within its item alone
///    (base_seed + 1 + index, the sequence the original serial loop
///    produced), and per-item reduction happens in trial-index order
///    after all workers join. Scheduling can reorder execution, never
///    results.
///
/// `BatchStore` is the companion slab for callers that build their plan's
/// graphs/protocols/problems on the fly: pointer-stable ownership so
/// `BatchItem`s can hold plain references into it.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/problems.hpp"
#include "runtime/churn.hpp"
#include "runtime/engine.hpp"

namespace sss {

/// One sweep unit of a batch plan. Pointers are non-owning and must
/// outlive `run_batch`; `problem` may be null. Daemon/seed defaults are
/// the shared sweep defaults from analysis/experiment.hpp.
struct BatchItem {
  std::string label;
  const Graph* graph = nullptr;
  const Protocol* protocol = nullptr;
  const Problem* problem = nullptr;
  std::vector<std::string> daemons = default_sweep_daemons();
  int seeds_per_daemon = kDefaultSeedsPerDaemon;
  RunOptions run;
  std::uint64_t base_seed = kDefaultBaseSeed;
  /// Extra engine.step() calls after run() completes, before the trial's
  /// read maxima are sampled — the post-silence window the communication-
  /// complexity measurements need (guards keep being evaluated after
  /// stabilization).
  int extra_steps = 0;
  /// Forwarded to Engine::set_exclude_frozen for every trial (opt-in
  /// verified-self-loop exclusion; see engine.hpp).
  bool exclude_frozen = false;
  /// Forwarded to Engine::set_parallel_threads for every trial: intra-trial
  /// worker threads (engine invariant 7 — bit-identical to single-threaded
  /// at any count, so trajectories and metrics never depend on it). Churn
  /// mode requires 1; ChurnRunner owns its engines and is not plumbed.
  int parallel_threads = 1;
  /// Forwarded to Engine::set_sweep_mode for every trial (and to
  /// ChurnOptions::sweep_mode in churn mode): auto / force_scalar /
  /// force_bulk for the bulk sweep and bulk execute halves (engine
  /// invariants 5 and 6). Mode changes cost only, never results.
  SweepMode sweep_mode = SweepMode::kAuto;

  /// Churn-window mode (runtime/churn.hpp): each trial stabilizes first
  /// (that phase fills the trial's RunStats), then runs a measured window
  /// under the item's churn schedule; the resulting ChurnStats ride along
  /// on the trial rows and reduce into BatchResult::churn_summaries. The
  /// per-trial churn stream is derived from `churn.seed` and the trial's
  /// engine seed, so churn results share the batch runner's
  /// thread/shard-count invariance. `extra_steps` must be 0 in churn mode.
  bool churn_enabled = false;
  ChurnOptions churn;
  /// Topology churn (churn.topology_weight > 0) must rebuild the protocol
  /// per topology; required then, optional otherwise (when present, churn
  /// trials always use the owning-mode runner).
  ProtocolFactory protocol_factory;
};

/// Converts a `sweep_convergence` call into the equivalent batch item.
BatchItem make_batch_item(std::string label, const Graph& g,
                          const Protocol& protocol, const Problem* problem,
                          const SweepOptions& options);

/// One finished trial, as handed to the streaming callback: the trial's
/// plan coordinates plus its raw stats. Everything identifying is carried
/// in the row itself so a sink can emit it without consulting the plan,
/// and `(item, trial)` is a total order — streamed output is
/// sortable-deterministic no matter which worker finished first.
struct BatchTrialRow {
  int item = 0;   ///< index into the plan's item vector
  int trial = 0;  ///< trial index within the item (daemon-major, seed-minor)
  std::string label;     ///< BatchItem::label
  std::string graph;     ///< Graph::name()
  std::string protocol;  ///< Protocol::name()
  std::string daemon;    ///< daemon name of this trial
  std::uint64_t engine_seed = 0;  ///< exact seed the trial's engine used
  /// Stabilization-phase stats (churn trials) or the whole run (others).
  RunStats stats;
  /// Whether this trial ran a churn window (churn_stats is meaningful).
  bool churn = false;
  ChurnStats churn_stats;
};

struct BatchOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = run inline.
  int threads = 0;
  /// Shard count: 0 = one shard per item (the default and the maximum —
  /// an item's trials always share a shard, so the value is clamped to
  /// [1, item count]). Fewer shards trade stealing granularity for fewer
  /// cursors.
  int shards = 0;
  /// Streaming hook: called once per trial as it finishes, so results
  /// reach a sink (file, pipe, live dashboard) incrementally instead of
  /// only after the whole plan completes. Calls are serialized by the
  /// runner (no sink-side locking needed) but arrive in completion order
  /// — sort by (item, trial) for a canonical stream. The in-order
  /// reduction into summaries is unaffected; note the runner itself still
  /// holds one RunStats per trial for that reduction (medians/percentiles
  /// need every sample), so this hook changes when results leave the
  /// process, not the runner's own footprint.
  std::function<void(const BatchTrialRow&)> on_trial;
  /// Resume hook: trials for which this returns true are neither executed
  /// nor streamed — the serve layer passes the completed-(item, trial)
  /// set recovered from a durable stream, so a resumed batch produces
  /// exactly the missing rows. Because a trial's engine seed derives from
  /// its index alone (never from which trials ran), the remaining rows
  /// are byte-identical to the same rows of an uninterrupted run.
  /// Summaries reduce over executed trials only. Called once per trial
  /// before it is scheduled; must be thread-safe and pure.
  std::function<bool(int item, int trial)> skip_trial;
  /// Cooperative cancellation: polled between trials (never mid-trial).
  /// Once it returns true, no new trial starts; already-finished trials
  /// have streamed normally, so a cancelled run's durable output is a
  /// resumable set of whole rows. Must be thread-safe.
  std::function<bool()> cancelled;
};

struct BatchResult {
  /// One summary per item, in item order, reduced over executed trials
  /// (= all trials unless skip_trial/cancelled intervened).
  std::vector<SweepSummary> summaries;
  /// One churn summary per item, in item order; all-zero for items that
  /// did not run churn windows.
  std::vector<ChurnSweepSummary> churn_summaries;
  /// Trials actually executed this call (excludes skipped and
  /// cancelled-away trials).
  int total_trials = 0;
  /// Trials the plan contained (executed + skipped + cancelled-away).
  int planned_trials = 0;
  /// Trials skip_trial excluded.
  int skipped_trials = 0;
  /// True when `cancelled` stopped the run before every non-skipped trial
  /// executed.
  bool cancelled = false;
};

/// Runs every trial of every item and reduces per item. See the file
/// comment for the determinism and scheduling contract.
BatchResult run_batch(const std::vector<BatchItem>& items,
                      const BatchOptions& options);

/// Reduction shared by `run_batch` and anyone aggregating raw trial stats:
/// folds `count` RunStats (in order) into a SweepSummary.
SweepSummary summarize_runs(const RunStats* stats, int count);

/// Pointer-stable storage for plan inputs built on the fly. Everything
/// added lives until the store is destroyed, so batch items can reference
/// it without ownership gymnastics.
class BatchStore {
 public:
  const Graph& add(Graph g) {
    graphs_.push_back(std::move(g));
    return graphs_.back();
  }
  const Protocol& add(std::unique_ptr<Protocol> protocol) {
    protocols_.push_back(std::move(protocol));
    return *protocols_.back();
  }
  const Problem& add(std::unique_ptr<Problem> problem) {
    problems_.push_back(std::move(problem));
    return *problems_.back();
  }

  /// Constructs a protocol in place and returns a reference to it.
  template <typename P, typename... Args>
  const P& emplace_protocol(Args&&... args) {
    protocols_.push_back(std::make_unique<P>(std::forward<Args>(args)...));
    return static_cast<const P&>(*protocols_.back());
  }

 private:
  std::deque<Graph> graphs_;  // deque: growth never moves stored graphs
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<std::unique_ptr<Problem>> problems_;
};

}  // namespace sss
