#pragma once
/// \file experiment.hpp
/// Seeded experiment sweeps shared by the bench harness: run a protocol on
/// a graph across daemons x seeds, aggregate convergence and communication
/// metrics. Everything is deterministic in (base_seed, daemons, seeds) —
/// including under the thread-parallel runner: every (daemon, seed) trial
/// owns a private Engine whose seed is derived from its trial index alone,
/// and aggregation happens in trial-index order after all workers join, so
/// the thread count can never leak into the results.
///
/// A sweep is the single-item case of the sharded multi-graph batch runner
/// (analysis/batch.hpp), which `sweep_convergence` routes through; callers
/// sweeping many graphs should build one batch plan instead of looping.

#include <cstdint>
#include <string>
#include <vector>

#include "core/problems.hpp"
#include "runtime/engine.hpp"
#include "support/stats.hpp"

namespace sss {

/// Defaults shared by every sweep-shaped option struct (SweepOptions here,
/// BatchItem in analysis/batch.hpp), kept in one place so they cannot
/// drift apart.
const std::vector<std::string>& default_sweep_daemons();
inline constexpr int kDefaultSeedsPerDaemon = 5;
inline constexpr std::uint64_t kDefaultBaseSeed = 42;

struct SweepOptions {
  std::vector<std::string> daemons = default_sweep_daemons();
  int seeds_per_daemon = kDefaultSeedsPerDaemon;
  RunOptions run;
  std::uint64_t base_seed = kDefaultBaseSeed;
  /// Worker threads for the trial runner: 0 = one per hardware thread,
  /// 1 = run inline. Results are identical for every value (see file
  /// comment).
  int threads = 0;
  /// Forwarded to Engine::set_exclude_frozen for every trial (opt-in
  /// verified-self-loop exclusion; see engine.hpp).
  bool exclude_frozen = false;
};

struct SweepSummary {
  int runs = 0;
  int silent_runs = 0;
  /// Runs whose trajectory reached the bound legitimacy predicate; stays
  /// 0 when the sweep carries no problem (RunOptions::legitimacy unset).
  int legitimate_runs = 0;
  std::uint64_t max_rounds_to_silence = 0;
  std::uint64_t max_steps_to_silence = 0;
  Summary rounds_to_silence;
  Summary steps_to_silence;
  Summary rounds_to_legitimate;
  /// Worst per-process per-step read count over all runs (measured k).
  int k_measured = 0;
  /// Worst per-process per-step bits over all runs.
  int bits_measured = 0;
  double mean_total_reads = 0.0;
  double mean_total_bits = 0.0;
};

/// Runs `protocol` on `g` from a fresh arbitrary configuration for every
/// (daemon, seed) pair. If `problem` is non-null its predicate feeds the
/// rounds-to-legitimate statistics.
SweepSummary sweep_convergence(const Graph& g, const Protocol& protocol,
                               const Problem* problem,
                               const SweepOptions& options);

}  // namespace sss
