#include "analysis/experiment.hpp"

#include "analysis/batch.hpp"
#include "support/require.hpp"

namespace sss {

const std::vector<std::string>& default_sweep_daemons() {
  static const std::vector<std::string> kDaemons = {"distributed",
                                                    "central-rr",
                                                    "synchronous"};
  return kDaemons;
}

SweepSummary sweep_convergence(const Graph& g, const Protocol& protocol,
                               const Problem* problem,
                               const SweepOptions& options) {
  SSS_REQUIRE(!options.daemons.empty() && options.seeds_per_daemon >= 1,
              "sweep needs at least one daemon and one seed");
  SSS_REQUIRE(options.threads >= 0, "thread count cannot be negative");

  // A sweep is the one-item batch: same trial seeds (base_seed + 1 + index),
  // same daemon-major order, same reduction — run_batch carries the
  // determinism contract.
  const std::vector<BatchItem> plan = {
      make_batch_item(g.name(), g, protocol, problem, options)};
  BatchOptions batch;
  batch.threads = options.threads;
  batch.shards = 1;
  return run_batch(plan, batch).summaries.front();
}

}  // namespace sss
