#include "analysis/experiment.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

SweepSummary sweep_convergence(const Graph& g, const Protocol& protocol,
                               const Problem* problem,
                               const SweepOptions& options) {
  SSS_REQUIRE(!options.daemons.empty() && options.seeds_per_daemon >= 1,
              "sweep needs at least one daemon and one seed");
  SweepSummary summary;
  std::vector<double> rounds_to_silence;
  std::vector<double> steps_to_silence;
  std::vector<double> rounds_to_legitimate;
  double total_reads = 0.0;
  double total_bits = 0.0;

  std::uint64_t seed = options.base_seed;
  for (const std::string& daemon_name : options.daemons) {
    for (int s = 0; s < options.seeds_per_daemon; ++s) {
      ++seed;
      Engine engine(g, protocol, make_daemon(daemon_name), seed);
      engine.randomize_state();
      RunOptions run = options.run;
      if (problem != nullptr && !run.legitimacy) {
        run.legitimacy = problem->predicate();
      }
      const RunStats stats = engine.run(run);
      ++summary.runs;
      if (stats.silent) {
        ++summary.silent_runs;
        rounds_to_silence.push_back(
            static_cast<double>(stats.rounds_to_silence));
        steps_to_silence.push_back(
            static_cast<double>(stats.steps_to_silence));
        summary.max_rounds_to_silence = std::max(
            summary.max_rounds_to_silence, stats.rounds_to_silence);
        summary.max_steps_to_silence =
            std::max(summary.max_steps_to_silence, stats.steps_to_silence);
      }
      if (stats.reached_legitimate) {
        rounds_to_legitimate.push_back(
            static_cast<double>(stats.rounds_to_legitimate));
      }
      summary.k_measured =
          std::max(summary.k_measured, stats.max_reads_per_process_step);
      summary.bits_measured =
          std::max(summary.bits_measured, stats.max_bits_per_process_step);
      total_reads += static_cast<double>(stats.total_reads);
      total_bits += static_cast<double>(stats.total_read_bits);
    }
  }

  summary.rounds_to_silence = summarize(std::move(rounds_to_silence));
  summary.steps_to_silence = summarize(std::move(steps_to_silence));
  summary.rounds_to_legitimate = summarize(std::move(rounds_to_legitimate));
  summary.mean_total_reads = total_reads / summary.runs;
  summary.mean_total_bits = total_bits / summary.runs;
  return summary;
}

}  // namespace sss
