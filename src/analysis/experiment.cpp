#include "analysis/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/require.hpp"

namespace sss {

namespace {

/// Runs `body(index)` for every index in [0, total) across `threads`
/// workers pulling from a shared atomic counter. Exceptions are captured
/// and the first one rethrown after all workers join.
void parallel_for_index(int total, int threads,
                        const std::function<void(int)>& body) {
  if (threads <= 1 || total <= 1) {
    for (int i = 0; i < total; ++i) body(i);
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

SweepSummary sweep_convergence(const Graph& g, const Protocol& protocol,
                               const Problem* problem,
                               const SweepOptions& options) {
  SSS_REQUIRE(!options.daemons.empty() && options.seeds_per_daemon >= 1,
              "sweep needs at least one daemon and one seed");
  SSS_REQUIRE(options.threads >= 0, "thread count cannot be negative");

  const int total =
      static_cast<int>(options.daemons.size()) * options.seeds_per_daemon;
  RunOptions run = options.run;
  if (problem != nullptr && !run.legitimacy) {
    run.legitimacy = problem->predicate();
  }

  // Phase 1: every (daemon, seed) trial runs on its own Engine. The trial
  // seed is base_seed + 1 + index (the same sequence the original serial
  // loop produced), independent of scheduling.
  std::vector<RunStats> results(static_cast<std::size_t>(total));
  auto run_trial = [&](int index) {
    const std::string& daemon_name =
        options.daemons[static_cast<std::size_t>(index) /
                        static_cast<std::size_t>(options.seeds_per_daemon)];
    Engine engine(g, protocol, make_daemon(daemon_name),
                  options.base_seed + 1 + static_cast<std::uint64_t>(index));
    engine.randomize_state();
    results[static_cast<std::size_t>(index)] = engine.run(run);
  };
  int threads = options.threads != 0
                    ? options.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, total);
  parallel_for_index(total, threads, run_trial);

  // Phase 2: sequential reduction in trial order — bitwise identical for
  // every thread count.
  SweepSummary summary;
  std::vector<double> rounds_to_silence;
  std::vector<double> steps_to_silence;
  std::vector<double> rounds_to_legitimate;
  double total_reads = 0.0;
  double total_bits = 0.0;
  for (const RunStats& stats : results) {
    ++summary.runs;
    if (stats.silent) {
      ++summary.silent_runs;
      rounds_to_silence.push_back(static_cast<double>(stats.rounds_to_silence));
      steps_to_silence.push_back(static_cast<double>(stats.steps_to_silence));
      summary.max_rounds_to_silence =
          std::max(summary.max_rounds_to_silence, stats.rounds_to_silence);
      summary.max_steps_to_silence =
          std::max(summary.max_steps_to_silence, stats.steps_to_silence);
    }
    if (stats.reached_legitimate) {
      rounds_to_legitimate.push_back(
          static_cast<double>(stats.rounds_to_legitimate));
    }
    summary.k_measured =
        std::max(summary.k_measured, stats.max_reads_per_process_step);
    summary.bits_measured =
        std::max(summary.bits_measured, stats.max_bits_per_process_step);
    total_reads += static_cast<double>(stats.total_reads);
    total_bits += static_cast<double>(stats.total_read_bits);
  }

  summary.rounds_to_silence = summarize(std::move(rounds_to_silence));
  summary.steps_to_silence = summarize(std::move(steps_to_silence));
  summary.rounds_to_legitimate = summarize(std::move(rounds_to_legitimate));
  summary.mean_total_reads = total_reads / summary.runs;
  summary.mean_total_bits = total_bits / summary.runs;
  return summary;
}

}  // namespace sss
