#pragma once
/// \file plan.hpp
/// Experiment-manifest parser: a JSON manifest in, a ready-to-run batch
/// plan out — the declarative front half of the experiment lab.
///
/// The paper's result grids are (protocol x graph family x daemon x seed)
/// sweeps; a manifest spells one such grid as data and this module expands
/// it into a `BatchStore` (owning the constructed graphs, protocols and
/// problems) plus the `BatchItem` vector `run_batch` consumes. Names
/// resolve through the registries: graph/family_registry.hpp,
/// core/protocol_registry.hpp, core/problem_registry.hpp, and the daemon
/// names of runtime/daemon.hpp.
///
/// Manifest shape (all parsing is strict — unknown keys throw):
///
///   {
///     "name": "comm_complexity",
///     "defaults": { <run keys> },            // optional
///     "sweeps": [
///       {
///         "graphs": [
///           {"family": "star", "leaves": [2, 3, 4]},   // list = sweep
///           {"family": "path", "n": {"from": 4, "to": 64, "step": 4}},
///           {"family": "grid", "rows": 5, "cols": 6}
///         ],
///         "protocols": [
///           {"name": "coloring"},
///           {"name": "full-read-coloring", "palette_size": 5},
///           {"transform": "generic-efficiency",
///            "inner": {"name": "full-read-coloring"}},
///           {"transform": "rotating-check",
///            "inner": {"name": "pairwise-coloring", "palette_size": 5}}
///         ],
///         "problem": "vertex-coloring",      // optional
///         <run keys>                         // override the defaults
///       }
///     ]
///   }
///
/// A protocol spec is either a base entry ({"name": ..., <scalar
/// params>}) or a composition ({"transform": ..., "inner": {<protocol
/// spec>}, <scalar params of the transformer>}); "inner" nests
/// recursively, so transformers compose. Specs resolve through
/// ProtocolRegistry::resolve before any graph is built: unknown names,
/// bad parameters, and malformed compositions (a bare checker source, a
/// transformer without "inner", "name" next to "transform") all throw
/// with the spec's line:col in the manifest.
///
/// Run keys (accepted in "defaults" and per sweep): "daemons" (array of
/// daemon names), "seeds_per_daemon", "base_seed", "base_seeds" (per-sweep
/// only: one base seed per expanded item, for plans that pin historical
/// seeds), "max_steps", "stop_on_silence", "quiescence_patience",
/// "extra_steps", "exclude_frozen", "churn", "parallel_threads" (engine
/// worker threads per trial, default 1; the intra-trial parallel step is
/// bit-identical to single-threaded, so this key changes wall-clock only —
/// it is deliberately NOT a sink column. Churn sweeps require 1), and
/// "sweep_mode" ("auto" | "force_scalar" | "force_bulk", default "auto":
/// the engine's bulk sweep/execute dispatch. Like "parallel_threads" it
/// changes cost, never results, and is NOT a sink column).
///
/// The "churn" key switches a sweep's trials into churn-window mode
/// (runtime/churn.hpp): every trial stabilizes first, then runs a measured
/// window under continuous disruption, and the sinks gain availability/
/// recovery columns. Its value is an object (strict, like everything
/// else):
///
///   "churn": {
///     "event_probability": 0.002,   // XOR "period": N (exactly one)
///     "window_steps": 2000,         // optional, default 2000
///     "seed": 1234,                 // optional churn-stream seed
///     "max_victims": 2,             // optional, default 2
///     "corruption_weight": 1,       // optional event-kind weights;
///     "node_reset_weight": 0,       //   at least one must be positive
///     "topology_weight": 0,         //   (topology = edge/node churn)
///     "stabilize_steps": 400000,    // optional phase-0 budget
///     "recovery_patience": 0        // optional, 0 = max(16, n)
///   }
///
/// A sweep-level "churn" replaces an inherited defaults-level block
/// wholesale; "churn": null disables churn for that sweep. "extra_steps"
/// cannot be combined with churn mode.
///
/// Daemon lists are validated against the registered daemon names only —
/// deliberately NOT against ProtocolRegistry::Entry::daemons, the
/// per-protocol stabilization assumption the property harness enforces:
/// experiments may intentionally probe a protocol outside its claim
/// (that is what an ablation is), so a manifest pairing, say,
/// full-read-coloring with the synchronous daemon expands and runs;
/// expect such trials to report silent=false after max_steps rather
/// than stabilize.
///
/// A graph parameter may be a scalar, an explicit list, or a range object
/// {"from": a, "to": b, "step": s} (step optional, default 1) expanding
/// to the inclusive integer progression a, a+s, ..., <= b; range schema
/// errors report the offending value's line:col.
///
/// Expansion is deterministic: sweeps in order; within a sweep, graph
/// specs in order; within a graph spec, the cartesian product of its
/// list- and range-valued parameters (in member order, the last sweep
/// varying fastest); and for each expanded graph every protocol in
/// order. Item labels are "<protocol name>/<graph name>". Trial
/// semantics (seed derivation, daemon-major order, reduction) are
/// run_batch's.

#include <string>
#include <vector>

#include "analysis/batch.hpp"
#include "support/json.hpp"

namespace sss {

/// A manifest expanded into runnable form. Movable, not copyable; `items`
/// reference `store`, which owns everything the manifest constructed.
struct ExperimentPlan {
  std::string name;
  BatchStore store;
  std::vector<BatchItem> items;

  /// Total trial count of the plan (sum over items of daemons x seeds).
  int total_trials() const;
};

/// Expands a parsed manifest. Throws PreconditionError on schema errors,
/// unknown names, or invalid parameters.
ExperimentPlan plan_from_manifest(const JsonValue& manifest);

/// Parses `text` as JSON and expands it.
ExperimentPlan plan_from_manifest_text(const std::string& text);

/// Reads `path` and expands it. Throws PreconditionError when the file
/// cannot be read.
ExperimentPlan plan_from_manifest_file(const std::string& path);

}  // namespace sss
