#include "analysis/sink.hpp"

#include <utility>

#include "support/json.hpp"
#include "support/require.hpp"
#include "support/string_util.hpp"

namespace sss {

void ResultSink::on_item(int, const BatchItem&, const SweepSummary&,
                         const ChurnSweepSummary&) {}
void ResultSink::finish() {}

namespace {

/// The flat field list shared by the JSONL and CSV sinks, in emission
/// order. Keeping it in one table keeps the two formats column-identical.
struct TrialField {
  const char* name;
  std::uint64_t (*value)(const BatchTrialRow&);
};

constexpr TrialField kIntFields[] = {
    {"steps", [](const BatchTrialRow& r) { return r.stats.steps; }},
    {"rounds", [](const BatchTrialRow& r) { return r.stats.rounds; }},
    {"steps_to_silence",
     [](const BatchTrialRow& r) { return r.stats.steps_to_silence; }},
    {"rounds_to_silence",
     [](const BatchTrialRow& r) { return r.stats.rounds_to_silence; }},
    {"steps_to_legitimate",
     [](const BatchTrialRow& r) { return r.stats.steps_to_legitimate; }},
    {"rounds_to_legitimate",
     [](const BatchTrialRow& r) { return r.stats.rounds_to_legitimate; }},
    {"total_reads",
     [](const BatchTrialRow& r) { return r.stats.total_reads; }},
    {"total_read_bits",
     [](const BatchTrialRow& r) { return r.stats.total_read_bits; }},
    {"max_reads_per_process_step",
     [](const BatchTrialRow& r) {
       return static_cast<std::uint64_t>(r.stats.max_reads_per_process_step);
     }},
    {"max_bits_per_process_step",
     [](const BatchTrialRow& r) {
       return static_cast<std::uint64_t>(r.stats.max_bits_per_process_step);
     }},
    // Churn-window columns: always emitted (all zero for non-churn trials)
    // so a plan mixing churn and plain sweeps stays column-identical.
    {"churn_window_steps",
     [](const BatchTrialRow& r) { return r.churn_stats.window_steps; }},
    {"churn_legitimate_steps",
     [](const BatchTrialRow& r) { return r.churn_stats.legitimate_steps; }},
    {"churn_disruptions",
     [](const BatchTrialRow& r) { return r.churn_stats.disruptions; }},
    {"churn_topology_events",
     [](const BatchTrialRow& r) { return r.churn_stats.topology_events(); }},
    {"churn_recoveries",
     [](const BatchTrialRow& r) { return r.churn_stats.recoveries; }},
    {"churn_recovery_rounds_p50",
     [](const BatchTrialRow& r) {
       return r.churn_stats.recovery_rounds_percentile(50.0);
     }},
    {"churn_recovery_rounds_p99",
     [](const BatchTrialRow& r) {
       return r.churn_stats.recovery_rounds_percentile(99.0);
     }},
    {"churn_recovery_reads",
     [](const BatchTrialRow& r) { return r.churn_stats.recovery_reads; }},
    {"churn_idle_reads",
     [](const BatchTrialRow& r) { return r.churn_stats.idle_reads; }},
};

}  // namespace

std::string format_trial_row_jsonl(const BatchTrialRow& row) {
  std::string line = "{\"item\": " + std::to_string(row.item) +
                     ", \"trial\": " + std::to_string(row.trial) +
                     ", \"label\": " + json_quote(row.label) +
                     ", \"graph\": " + json_quote(row.graph) +
                     ", \"protocol\": " + json_quote(row.protocol) +
                     ", \"daemon\": " + json_quote(row.daemon) +
                     ", \"engine_seed\": " + std::to_string(row.engine_seed) +
                     ", \"silent\": " + (row.stats.silent ? "true" : "false") +
                     ", \"reached_legitimate\": " +
                     (row.stats.reached_legitimate ? "true" : "false");
  for (const TrialField& field : kIntFields) {
    line += ", \"" + std::string(field.name) +
            "\": " + std::to_string(field.value(row));
  }
  line += "}";
  return line;
}

// Per-row durability (see the header's contract): the whole row is built
// first, then written and flushed as one unit, so a killed run leaves
// only whole newline-terminated rows on disk — never a torn row.
void JsonlSink::on_trial(const BatchTrialRow& row) {
  out_ << format_trial_row_jsonl(row) << '\n' << std::flush;
}

void JsonlSink::finish() { out_.flush(); }

void CsvSink::write_header() {
  std::vector<std::string> header = {"item",     "trial",  "label",
                                     "graph",    "protocol", "daemon",
                                     "engine_seed", "silent",
                                     "reached_legitimate"};
  for (const TrialField& field : kIntFields) header.push_back(field.name);
  writer_.write_row(header);
  wrote_header_ = true;
}

void CsvSink::on_trial(const BatchTrialRow& row) {
  if (!wrote_header_) write_header();
  std::vector<std::string> cells = {
      std::to_string(row.item),
      std::to_string(row.trial),
      row.label,
      row.graph,
      row.protocol,
      row.daemon,
      std::to_string(row.engine_seed),
      row.stats.silent ? "true" : "false",
      row.stats.reached_legitimate ? "true" : "false"};
  for (const TrialField& field : kIntFields) {
    cells.push_back(std::to_string(field.value(row)));
  }
  writer_.write_row(cells);
  out_.flush();  // per-row durability, same contract as JsonlSink
}

// The header backstop: a plan whose trials were all skipped (or an empty
// resume remainder) still leaves a file honoring the column contract.
// The flush also surfaces write errors for callers checking stream state
// after run_batch_to_sinks instead of losing them in the destructor.
void CsvSink::finish() {
  if (!wrote_header_) write_header();
  out_.flush();
}

BenchJsonSink::BenchJsonSink(std::string bench_name, std::string directory,
                             bool strict)
    : writer_(std::move(bench_name)),
      directory_(std::move(directory)),
      strict_(strict) {}

void BenchJsonSink::on_item(int, const BatchItem& item,
                            const SweepSummary& summary,
                            const ChurnSweepSummary& churn) {
  writer_.record()
      .field("label", item.label)
      .field("graph", item.graph->name())
      .field("protocol", item.protocol->name())
      .field("runs", summary.runs)
      .field("silent_runs", summary.silent_runs)
      .field("rounds_to_silence_median", summary.rounds_to_silence.median)
      .field("rounds_to_silence_p90", summary.rounds_to_silence.p90)
      .field("rounds_to_silence_max",
             static_cast<std::int64_t>(summary.max_rounds_to_silence))
      .field("steps_to_silence_median", summary.steps_to_silence.median)
      .field("k_measured", summary.k_measured)
      .field("bits_measured", summary.bits_measured)
      .field("mean_total_reads", summary.mean_total_reads)
      .field("mean_total_bits", summary.mean_total_bits);
  if (item.churn_enabled) {
    // Identity fields (strings key bench_diff records): a churn plan
    // typically sweeps the same protocol/graph under several daemon and
    // schedule cells, which must not collide into one record.
    const std::string schedule =
        item.churn.period > 0
            ? "period=" + std::to_string(item.churn.period)
            : "p=" + std::to_string(item.churn.event_probability);
    writer_.field("daemons", join(item.daemons, ","))
        .field("churn_schedule", schedule);
    // "availability" gates higher-is-better and "recovery_rounds_p*" gate
    // lower-is-better in tools/bench_diff.py.
    writer_.field("availability", churn.availability_mean)
        .field("recovery_rounds_p50", churn.recovery_rounds_p50)
        .field("recovery_rounds_p90", churn.recovery_rounds_p90)
        .field("recovery_rounds_p99", churn.recovery_rounds_p99)
        .field("reads_per_disruption", churn.reads_per_disruption)
        .field("idle_reads_per_step", churn.idle_reads_per_step)
        .field("disruptions", static_cast<std::int64_t>(churn.disruptions))
        .field("recoveries", static_cast<std::int64_t>(churn.recoveries))
        .field("skipped_events",
               static_cast<std::int64_t>(churn.skipped_events))
        .field("topology_events",
               static_cast<std::int64_t>(churn.topology_events))
        .field("initial_silent_runs", churn.initial_silent_runs);
  }
}

void BenchJsonSink::finish() {
  if (strict_) {
    writer_.write_strict(directory_);
  } else {
    writer_.write(directory_);
  }
}

BatchResult run_batch_to_sinks(const std::vector<BatchItem>& items,
                               BatchOptions options,
                               const std::vector<ResultSink*>& sinks) {
  for (ResultSink* sink : sinks) {
    SSS_REQUIRE(sink != nullptr, "null result sink");
  }
  auto upstream = std::move(options.on_trial);
  if (!sinks.empty() || upstream) {
    // Only install the wrapper when someone listens: a null on_trial lets
    // run_batch skip per-trial row construction entirely.
    options.on_trial = [&, upstream](const BatchTrialRow& row) {
      if (upstream) upstream(row);
      for (ResultSink* sink : sinks) sink->on_trial(row);
    };
  }
  const BatchResult result = run_batch(items, options);
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (ResultSink* sink : sinks) {
      sink->on_item(static_cast<int>(i), items[i], result.summaries[i],
                    result.churn_summaries[i]);
    }
  }
  for (ResultSink* sink : sinks) sink->finish();
  return result;
}

}  // namespace sss
