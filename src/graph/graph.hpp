#pragma once
/// \file graph.hpp
/// The network topology substrate of the paper's model (Section 2).
///
/// A distributed system is an undirected connected graph G = (Pi, E); each
/// process distinguishes its neighbors only through *local channel indices*
/// numbered 1..delta.p. `Graph` is immutable after construction and exposes
/// exactly that local view, plus the global view needed by checkers and
/// experiment harnesses (which are outside the anonymous model).
///
/// Storage is a flat CSR (compressed sparse row) layout, sized once at
/// construction:
///  * `offsets_` — n+1 entries; the neighbors of p occupy the half-open
///    slot range [offsets_[p], offsets_[p+1]) and their order IS the
///    channel order (slot offsets_[p]+i holds the neighbor on channel i+1);
///  * `neighbors_` — 2m neighbor ids, one per directed edge slot;
///  * `mirror_index_` — 2m entries; for the slot holding edge (p -> q),
///    the 1-based channel under which q sees p. This makes the paper's
///    "PR.(cur.p) = p" evaluation (`GuardContext::self_index_at`) O(1)
///    instead of a scan of q's neighbor list.
/// All three arrays are contiguous, so the engine's hot loop walks
/// neighborhoods with zero pointer chasing and zero allocation.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace sss {

/// Global process identifier, 0-based. Protocol code never sees these;
/// they exist for the simulator, checkers, and reports.
using ProcessId = int;

/// 1-based local channel index, as in the paper ("numbered from 1 to
/// delta.p"). The value 0 is reserved to mean "no neighbor" (e.g. the free
/// state of the PR pointer in Protocol MATCHING).
using NbrIndex = int;

/// An undirected edge between two process ids.
using Edge = std::pair<ProcessId, ProcessId>;

/// Immutable undirected graph with per-process local channel numbering,
/// stored CSR-flat (see file comment).
///
/// With `from_edges`, neighbor lists are sorted by global id and the local
/// index of a neighbor is its 1-based position in that sorted list —
/// deterministic, which keeps every experiment reproducible. The model
/// itself, however, permits *arbitrary* port numberings (the paper's
/// impossibility proofs pick them adversarially: "there exists a possible
/// network where p4 is the neighbor i in the local order of p6"), so
/// `from_ports` accepts explicit per-vertex neighbor orders.
class Graph {
 public:
  /// Builds a graph on `num_vertices` vertices from an edge list.
  /// Requires: num_vertices >= 1; endpoints in range; no self-loops;
  /// duplicate edges are rejected.
  static Graph from_edges(int num_vertices, const std::vector<Edge>& edges);

  /// Builds a graph from explicit port lists: ports[p][i] is the neighbor
  /// of p on channel i+1. Requires a symmetric, loop-free, duplicate-free
  /// relation.
  static Graph from_ports(const std::vector<std::vector<ProcessId>>& ports);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return num_edges_; }

  /// delta.p — the number of neighbors of p.
  int degree(ProcessId p) const;

  /// Delta — the maximum degree over all processes.
  int max_degree() const { return max_degree_; }

  /// Minimum degree over all processes.
  int min_degree() const { return min_degree_; }

  /// The neighbor of `p` on local channel `index` (1-based).
  ProcessId neighbor(ProcessId p, NbrIndex index) const;

  /// The local index of `q` in `p`'s numbering, or 0 if not adjacent.
  NbrIndex local_index_of(ProcessId p, ProcessId q) const;

  /// Global ids of p's neighbors in channel order; position i holds
  /// channel i+1. A view into the CSR slab: valid as long as the graph.
  std::span<const ProcessId> neighbors(ProcessId p) const;

  /// The channel under which `neighbor(p, channel)` sees p. O(1): reads the
  /// precomputed mirror slot (local_index_of would scan the other list).
  NbrIndex mirror_index(ProcessId p, NbrIndex channel) const;

  /// Raw CSR slabs for bulk guard kernels (runtime/bulk.hpp), which walk
  /// whole neighborhoods in tight loops: `csr_offsets()[p]` is the first
  /// slot of p's neighbor range, `csr_neighbors()[slot]` the neighbor id
  /// in channel order, and `csr_mirrors()[slot]` the 1-based channel under
  /// which that neighbor sees p. Unlike the checked per-call accessors
  /// above these are plain spans — callers index within bounds.
  std::span<const std::int32_t> csr_offsets() const { return offsets_; }
  std::span<const ProcessId> csr_neighbors() const { return neighbors_; }
  std::span<const NbrIndex> csr_mirrors() const { return mirror_index_; }

  bool has_edge(ProcessId p, ProcessId q) const;

  /// All edges with first < second, sorted lexicographically.
  std::vector<Edge> edges() const;

  /// Human-readable name, settable by builders ("path(5)", "spider(3)", ...).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  Graph() = default;
  /// Flattens per-vertex neighbor lists into the CSR arrays and fills the
  /// degree summaries and mirror indices.
  void build_csr(const std::vector<std::vector<ProcessId>>& adjacency);

  int num_vertices_ = 0;
  int num_edges_ = 0;
  int max_degree_ = 0;
  int min_degree_ = 0;
  std::vector<std::int32_t> offsets_;   ///< n+1 slot offsets
  std::vector<ProcessId> neighbors_;    ///< 2m neighbor ids, channel order
  std::vector<NbrIndex> mirror_index_;  ///< 2m reverse channel numbers
  std::string name_ = "graph";
};

}  // namespace sss
