#include "graph/io.hpp"

#include <array>
#include <sstream>

#include "support/require.hpp"
#include "support/string_util.hpp"

namespace sss {

std::string to_dot(const Graph& g, const std::optional<Coloring>& colors) {
  static constexpr std::array<const char*, 8> kPalette = {
      "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
      "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};
  std::ostringstream out;
  out << "graph \"" << g.name() << "\" {\n";
  out << "  node [style=filled];\n";
  for (ProcessId v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (colors) {
      const int c = (*colors)[static_cast<std::size_t>(v)];
      out << " [label=\"" << v << ":" << c << "\" fillcolor=\""
          << kPalette[static_cast<std::size_t>(c) % kPalette.size()] << "\"]";
    }
    out << ";\n";
  }
  for (const auto& [a, b] : g.edges()) {
    out << "  " << a << " -- " << b << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [a, b] : g.edges()) out << a << ' ' << b << '\n';
  return out.str();
}

Graph parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  int n = 0;
  int m = 0;
  SSS_REQUIRE(static_cast<bool>(in >> n >> m),
              "edge list must start with 'n m'");
  SSS_REQUIRE(n >= 1 && m >= 0, "invalid vertex or edge count");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    int a = 0;
    int b = 0;
    SSS_REQUIRE(static_cast<bool>(in >> a >> b),
                "edge list ended before all edges were read");
    edges.emplace_back(a, b);
  }
  return Graph::from_edges(n, edges);
}

}  // namespace sss
