#pragma once
/// \file family_registry.hpp
/// Name-based registry of graph families — every builders.hpp family
/// (including the paper's theorem gadgets) reachable as data.
///
/// Mirrors the daemon factory-by-name in runtime/daemon.hpp, extended with
/// parsed parameters so an experiment manifest can spell
/// `{"family": "grid", "rows": 5, "cols": 6}` instead of calling C++. Each
/// entry declares its parameter schema (names, required/optional,
/// defaults); `build` validates the map strictly — unknown parameter names
/// and missing required parameters throw with the accepted set in the
/// message.
///
/// The registry is open: `register_family` (or the `GraphFamilyRegistrar`
/// helper, for self-registration at static-init time) adds new families
/// from any translation unit. The built-in families are registered by this
/// module itself, so any reference to the registry links them in.

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/params.hpp"

namespace sss {

/// Schema of one accepted parameter of a family (or of any other
/// registry entry reusing the type).
struct ParamSpec {
  std::string name;
  bool required = true;
  /// Default for optional numeric parameters (documentation + fallback).
  double fallback = 0.0;
};

class GraphFamilyRegistry {
 public:
  using Builder = std::function<Graph(const ParamMap&)>;

  struct Family {
    std::string name;
    std::vector<ParamSpec> params;
    Builder build;
  };

  /// The process-wide registry, with the built-in families installed.
  static GraphFamilyRegistry& instance();

  /// Adds a family; re-registering an existing name throws.
  void register_family(std::string name, std::vector<ParamSpec> params,
                       Builder build);

  /// Builds `family_name` from `params`. Unknown family, unknown parameter
  /// names, missing required parameters, and non-integral sizes all throw
  /// PreconditionError.
  Graph build(const std::string& family_name, const ParamMap& params) const;

  bool contains(const std::string& family_name) const;
  const Family& family(const std::string& family_name) const;

  /// Registered names in sorted order.
  std::vector<std::string> names() const;

 private:
  std::vector<Family> families_;
};

/// Static-init helper for self-registration:
///   static GraphFamilyRegistrar reg{"my-family", {{"n"}}, build_fn};
struct GraphFamilyRegistrar {
  GraphFamilyRegistrar(std::string name, std::vector<ParamSpec> params,
                       GraphFamilyRegistry::Builder build) {
    GraphFamilyRegistry::instance().register_family(
        std::move(name), std::move(params), std::move(build));
  }
};

}  // namespace sss
