#pragma once
/// \file properties.hpp
/// Structural graph properties used by the checkers and by the paper's
/// bounds: connectivity, diameter D, degree statistics, and the length
/// Lmax of the longest elementary path (Theorem 6's parameter).

#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace sss {

/// BFS distances from `source`; unreachable vertices get -1.
std::vector<int> bfs_distances(const Graph& g, ProcessId source);

bool is_connected(const Graph& g);

/// Exact diameter via n BFS runs; requires a connected graph.
int diameter(const Graph& g);

/// True if the graph is bipartite (2-colorable).
bool is_bipartite(const Graph& g);

/// Exact length (number of edges) of the longest elementary (simple) path,
/// via exhaustive DFS with branch-and-bound. Exponential in the worst case;
/// refuses graphs with more than `max_vertices` vertices.
int longest_path_exact(const Graph& g, int max_vertices = 32);

/// Lower bound on the longest elementary path length found by randomized
/// DFS restarts; cheap and usable at any scale.
int longest_path_lower_bound(const Graph& g, Rng& rng, int restarts = 32);

/// Average degree 2m/n.
double average_degree(const Graph& g);

}  // namespace sss
