#include "graph/builders.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "support/require.hpp"

namespace sss {

namespace {
Graph named(Graph g, const std::string& name) {
  g.set_name(name);
  return g;
}
}  // namespace

Graph path(int n) {
  SSS_REQUIRE(n >= 1, "path requires n >= 1");
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return named(Graph::from_edges(n, edges), "path(" + std::to_string(n) + ")");
}

Graph cycle(int n) {
  SSS_REQUIRE(n >= 3, "cycle requires n >= 3");
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return named(Graph::from_edges(n, edges),
               "cycle(" + std::to_string(n) + ")");
}

Graph complete(int n) {
  SSS_REQUIRE(n >= 1, "complete requires n >= 1");
  std::vector<Edge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return named(Graph::from_edges(n, edges),
               "complete(" + std::to_string(n) + ")");
}

Graph star(int leaves) {
  SSS_REQUIRE(leaves >= 1, "star requires at least one leaf");
  std::vector<Edge> edges;
  for (int i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return named(Graph::from_edges(leaves + 1, edges),
               "star(" + std::to_string(leaves) + ")");
}

Graph wheel(int rim) {
  SSS_REQUIRE(rim >= 3, "wheel requires rim >= 3");
  std::vector<Edge> edges;
  for (int i = 1; i <= rim; ++i) {
    edges.emplace_back(0, i);
    edges.emplace_back(i, i == rim ? 1 : i + 1);
  }
  return named(Graph::from_edges(rim + 1, edges),
               "wheel(" + std::to_string(rim) + ")");
}

Graph grid(int rows, int cols) {
  SSS_REQUIRE(rows >= 1 && cols >= 1, "grid requires positive dimensions");
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return named(Graph::from_edges(rows * cols, edges),
               "grid(" + std::to_string(rows) + "x" + std::to_string(cols) +
                   ")");
}

Graph torus(int rows, int cols) {
  SSS_REQUIRE(rows >= 3 && cols >= 3, "torus requires dimensions >= 3");
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return named(Graph::from_edges(rows * cols, edges),
               "torus(" + std::to_string(rows) + "x" + std::to_string(cols) +
                   ")");
}

Graph hypercube(int dim) {
  SSS_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension out of range");
  const int n = 1 << dim;
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int u = v ^ (1 << b);
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return named(Graph::from_edges(n, edges),
               "hypercube(" + std::to_string(dim) + ")");
}

Graph complete_bipartite(int a, int b) {
  SSS_REQUIRE(a >= 1 && b >= 1, "complete_bipartite requires positive parts");
  std::vector<Edge> edges;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  }
  return named(Graph::from_edges(a + b, edges),
               "K(" + std::to_string(a) + "," + std::to_string(b) + ")");
}

Graph balanced_binary_tree(int n) {
  SSS_REQUIRE(n >= 1, "tree requires n >= 1");
  std::vector<Edge> edges;
  for (int i = 1; i < n; ++i) edges.emplace_back((i - 1) / 2, i);
  return named(Graph::from_edges(n, edges),
               "bintree(" + std::to_string(n) + ")");
}

Graph caterpillar(int spine, int legs) {
  SSS_REQUIRE(spine >= 1 && legs >= 0, "caterpillar parameters invalid");
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < spine; ++i) edges.emplace_back(i, i + 1);
  int next = spine;
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) edges.emplace_back(i, next++);
  }
  return named(Graph::from_edges(next, edges),
               "caterpillar(" + std::to_string(spine) + "," +
                   std::to_string(legs) + ")");
}

Graph lollipop(int clique, int tail) {
  SSS_REQUIRE(clique >= 3 && tail >= 1, "lollipop parameters invalid");
  std::vector<Edge> edges;
  for (int i = 0; i < clique; ++i) {
    for (int j = i + 1; j < clique; ++j) edges.emplace_back(i, j);
  }
  for (int t = 0; t < tail; ++t) {
    edges.emplace_back(t == 0 ? clique - 1 : clique + t - 1, clique + t);
  }
  return named(Graph::from_edges(clique + tail, edges),
               "lollipop(" + std::to_string(clique) + "," +
                   std::to_string(tail) + ")");
}

Graph barbell(int k, int bridge) {
  SSS_REQUIRE(k >= 3 && bridge >= 0, "barbell parameters invalid");
  std::vector<Edge> edges;
  auto add_clique = [&edges](int base, int size) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        edges.emplace_back(base + i, base + j);
      }
    }
  };
  add_clique(0, k);
  add_clique(k, k);
  int prev = k - 1;  // last vertex of the first clique
  for (int b = 0; b < bridge; ++b) {
    edges.emplace_back(prev, 2 * k + b);
    prev = 2 * k + b;
  }
  edges.emplace_back(prev, k);  // into the second clique
  return named(Graph::from_edges(2 * k + bridge, edges),
               "barbell(" + std::to_string(k) + "," + std::to_string(bridge) +
                   ")");
}

Graph petersen() {
  std::vector<Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);        // outer pentagon
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    edges.emplace_back(i, 5 + i);              // spokes
  }
  return named(Graph::from_edges(10, edges), "petersen");
}

Graph random_tree(int n, Rng& rng) {
  SSS_REQUIRE(n >= 1, "random_tree requires n >= 1");
  if (n == 1) return named(Graph::from_edges(1, {}), "rtree(1)");
  if (n == 2) return named(Graph::from_edges(2, {{0, 1}}), "rtree(2)");
  // Decode a uniformly random Pruefer sequence.
  std::vector<int> pruefer(static_cast<std::size_t>(n - 2));
  for (auto& x : pruefer) x = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (int x : pruefer) ++deg[static_cast<std::size_t>(x)];
  std::set<int> leaves;
  for (int v = 0; v < n; ++v) {
    if (deg[static_cast<std::size_t>(v)] == 1) leaves.insert(v);
  }
  std::vector<Edge> edges;
  for (int x : pruefer) {
    const int leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    edges.emplace_back(leaf, x);
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  SSS_ASSERT(leaves.size() == 2, "Pruefer decoding must leave two vertices");
  const int a = *leaves.begin();
  const int b = *std::next(leaves.begin());
  edges.emplace_back(a, b);
  return named(Graph::from_edges(n, edges),
               "rtree(" + std::to_string(n) + ")");
}

namespace {
/// Union-find for the connectivity completion in erdos_renyi_connected.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};
}  // namespace

Graph erdos_renyi_connected(int n, double p, Rng& rng) {
  SSS_REQUIRE(n >= 1, "erdos_renyi requires n >= 1");
  SSS_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  std::vector<Edge> edges;
  DisjointSets components(n);
  int num_components = n;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.chance(p)) {
        edges.emplace_back(i, j);
        if (components.unite(i, j)) --num_components;
      }
    }
  }
  // Join any remaining components with uniformly drawn cross edges.
  std::set<Edge> present(edges.begin(), edges.end());
  while (num_components > 1) {
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b || components.find(a) == components.find(b)) continue;
    const Edge e{std::min(a, b), std::max(a, b)};
    if (present.count(e)) continue;
    present.insert(e);
    edges.push_back(e);
    components.unite(a, b);
    --num_components;
  }
  return named(Graph::from_edges(n, edges),
               "gnp(" + std::to_string(n) + ")");
}

Graph random_regular(int n, int d, Rng& rng) {
  SSS_REQUIRE(n >= 2 && d >= 1 && d < n, "random_regular parameters invalid");
  SSS_REQUIRE((static_cast<long long>(n) * d) % 2 == 0,
              "n*d must be even for a d-regular graph");
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (int v = 0; v < n; ++v) {
      for (int k = 0; k < d; ++k) stubs.push_back(v);
    }
    shuffle(stubs, rng);
    std::set<Edge> chosen;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const int a = std::min(stubs[i], stubs[i + 1]);
      const int b = std::max(stubs[i], stubs[i + 1]);
      if (a == b || chosen.count({a, b})) {
        ok = false;
        break;
      }
      chosen.insert({a, b});
    }
    if (!ok) continue;
    // Connectivity check via union-find.
    DisjointSets components(n);
    int num_components = n;
    for (const auto& [a, b] : chosen) {
      if (components.unite(a, b)) --num_components;
    }
    if (num_components != 1) continue;
    return named(
        Graph::from_edges(n, {chosen.begin(), chosen.end()}),
        "regular(" + std::to_string(n) + "," + std::to_string(d) + ")");
  }
  throw PreconditionError(
      "random_regular: no simple connected graph found in 200 attempts");
}

Graph preferential_attachment(int n, int m, Rng& rng) {
  SSS_REQUIRE(m >= 1, "preferential_attachment requires m >= 1");
  SSS_REQUIRE(n >= m + 1,
              "preferential_attachment requires n >= m + 1 vertices");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m) * (m + 1) / 2 +
                static_cast<std::size_t>(n - m - 1) *
                    static_cast<std::size_t>(m));
  // Seed core: an (m+1)-clique, so every arriving vertex can find m
  // distinct targets from the very first attachment.
  for (int i = 0; i <= m; ++i) {
    for (int j = i + 1; j <= m; ++j) edges.emplace_back(i, j);
  }
  // Degree-proportional sampling via the classic endpoint list: each edge
  // contributes both endpoints, so a uniform draw from the list lands on a
  // vertex with probability degree / (2 * |edges|). Duplicate targets are
  // redrawn, which keeps the graph simple (and connected by construction).
  std::vector<int> endpoints;
  endpoints.reserve(edges.capacity() * 2);
  for (const auto& [a, b] : edges) {
    endpoints.push_back(a);
    endpoints.push_back(b);
  }
  std::vector<int> targets;
  for (int v = m + 1; v < n; ++v) {
    targets.clear();
    while (static_cast<int>(targets.size()) < m) {
      const int t = endpoints[static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(endpoints.size())))];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const int t : targets) {
      edges.emplace_back(t, v);
      endpoints.push_back(t);
      endpoints.push_back(v);
    }
  }
  return named(Graph::from_edges(n, edges),
               "pa(" + std::to_string(n) + "," + std::to_string(m) + ")");
}

Graph random_geometric(int n, double radius, Rng& rng) {
  SSS_REQUIRE(n >= 1, "random_geometric requires n >= 1");
  SSS_REQUIRE(radius > 0.0 && radius <= 1.5,
              "connection radius must be in (0, 1.5]");
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::vector<double> ys(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    xs[static_cast<std::size_t>(v)] = rng.uniform01();
    ys[static_cast<std::size_t>(v)] = rng.uniform01();
  }
  // Cell grid with cell side >= radius: all neighbors of a point live in
  // its own or the eight adjacent cells, so the pair scan is O(n * local
  // density) instead of the O(n^2) all-pairs test — the difference between
  // feasible and not at the bench tiers.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<int>> grid_cells(
      static_cast<std::size_t>(cells) * static_cast<std::size_t>(cells));
  const auto cell_of = [&](double coord) {
    return std::min(cells - 1, static_cast<int>(coord / cell_size));
  };
  for (int v = 0; v < n; ++v) {
    grid_cells[static_cast<std::size_t>(cell_of(ys[static_cast<std::size_t>(
                   v)])) *
                   static_cast<std::size_t>(cells) +
               static_cast<std::size_t>(
                   cell_of(xs[static_cast<std::size_t>(v)]))]
        .push_back(v);
  }
  std::vector<Edge> edges;
  DisjointSets components(n);
  int num_components = n;
  const double r2 = radius * radius;
  const auto near = [&](int a, int b) {
    const double dx = xs[static_cast<std::size_t>(a)] -
                      xs[static_cast<std::size_t>(b)];
    const double dy = ys[static_cast<std::size_t>(a)] -
                      ys[static_cast<std::size_t>(b)];
    return dx * dx + dy * dy <= r2;
  };
  for (int cy = 0; cy < cells; ++cy) {
    for (int cx = 0; cx < cells; ++cx) {
      const auto& home =
          grid_cells[static_cast<std::size_t>(cy) *
                         static_cast<std::size_t>(cells) +
                     static_cast<std::size_t>(cx)];
      // Within the home cell, and against the four lexicographically
      // later neighbor cells — each unordered cell pair is visited once.
      for (std::size_t i = 0; i < home.size(); ++i) {
        for (std::size_t j = i + 1; j < home.size(); ++j) {
          if (near(home[i], home[j])) {
            edges.emplace_back(std::min(home[i], home[j]),
                               std::max(home[i], home[j]));
            if (components.unite(home[i], home[j])) --num_components;
          }
        }
      }
      constexpr int kAhead[4][2] = {{1, 0}, {-1, 1}, {0, 1}, {1, 1}};
      for (const auto& d : kAhead) {
        const int nx = cx + d[0];
        const int ny = cy + d[1];
        if (nx < 0 || nx >= cells || ny >= cells) continue;
        const auto& other =
            grid_cells[static_cast<std::size_t>(ny) *
                           static_cast<std::size_t>(cells) +
                       static_cast<std::size_t>(nx)];
        for (const int a : home) {
          for (const int b : other) {
            if (near(a, b)) {
              edges.emplace_back(std::min(a, b), std::max(a, b));
              if (components.unite(a, b)) --num_components;
            }
          }
        }
      }
    }
  }
  // Same documented substitution as erdos_renyi_connected: a subcritical
  // radius leaves islands, which uniformly drawn cross edges join.
  std::set<Edge> present(edges.begin(), edges.end());
  while (num_components > 1) {
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b || components.find(a) == components.find(b)) continue;
    const Edge e{std::min(a, b), std::max(a, b)};
    if (present.count(e)) continue;
    present.insert(e);
    edges.push_back(e);
    components.unite(a, b);
    --num_components;
  }
  return named(Graph::from_edges(n, edges),
               "geometric(" + std::to_string(n) + ")");
}

Graph grid_of_clusters(int rows, int cols, int cluster) {
  SSS_REQUIRE(rows >= 1 && cols >= 1 && cluster >= 1,
              "grid_of_clusters requires rows, cols, cluster >= 1");
  std::vector<Edge> edges;
  const auto base = [&](int r, int c) { return (r * cols + c) * cluster; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int b = base(r, c);
      // Dense locality: each cluster is a clique.
      for (int i = 0; i < cluster; ++i) {
        for (int j = i + 1; j < cluster; ++j) {
          edges.emplace_back(b + i, b + j);
        }
      }
      // Sparse global structure: one bridge to the right and one down,
      // from this cluster's last vertex to the neighbor's first — the
      // datacenter-ish shape (fat local fanout, thin inter-rack links).
      if (c + 1 < cols) {
        edges.emplace_back(b + cluster - 1, base(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(b + cluster - 1, base(r + 1, c));
      }
    }
  }
  return named(Graph::from_edges(rows * cols * cluster, edges),
               "clusters(" + std::to_string(rows) + "x" +
                   std::to_string(cols) + "," + std::to_string(cluster) +
                   ")");
}

Graph theorem1_spider(int delta) {
  SSS_REQUIRE(delta >= 2, "theorem1_spider requires delta >= 2");
  // Vertex 0 is the center (the role of p3 in the Delta = 2 chain).
  // Vertices 1..delta are the middle layer, each of degree delta.
  // Each middle vertex i carries delta-1 pendants.
  std::vector<Edge> edges;
  int next = delta + 1;
  for (int i = 1; i <= delta; ++i) {
    edges.emplace_back(0, i);
    for (int l = 0; l < delta - 1; ++l) edges.emplace_back(i, next++);
  }
  SSS_ASSERT(next == delta * delta + 1,
             "spider must have Delta^2 + 1 vertices");
  return named(Graph::from_edges(next, edges),
               "spider(" + std::to_string(delta) + ")");
}

RootedDag theorem2_gadget(int delta) {
  SSS_REQUIRE(delta >= 2, "theorem2_gadget requires delta >= 2");
  // Core six processes, ids 0..5 for the paper's p1..p6. The network is the
  // 6-cycle p1-p2-p5-p4-p6-p3-p1, oriented so that p1 (the root) and p4 are
  // sources while p5 and p6 are sinks (Figure 3).
  const ProcessId p1 = 0, p2 = 1, p3 = 2, p4 = 3, p5 = 4, p6 = 5;
  std::vector<Edge> oriented = {{p1, p2}, {p1, p3}, {p2, p5},
                                {p3, p6}, {p4, p5}, {p4, p6}};
  std::vector<Edge> edges = oriented;
  int next = 6;
  // Figure 6 generalization: delta-2 pendants per core process, oriented to
  // keep p1 and p4 sources and p5 and p6 sinks.
  for (ProcessId core = 0; core < 6; ++core) {
    for (int l = 0; l < delta - 2; ++l) {
      const ProcessId leaf = next++;
      if (core == p1 || core == p4) {
        oriented.emplace_back(core, leaf);  // source keeps out-edges
      } else if (core == p5 || core == p6) {
        oriented.emplace_back(leaf, core);  // sink keeps in-edges
      } else {
        oriented.emplace_back(core, leaf);  // internal: orientation free
      }
      edges.emplace_back(core, leaf);
    }
  }
  return RootedDag{named(Graph::from_edges(next, edges),
                         "thm2(" + std::to_string(delta) + ")"),
                   p1, std::move(oriented)};
}

Graph fig9_path(int n) {
  Graph g = path(n);
  g.set_name("fig9-path(" + std::to_string(n) + ")");
  return g;
}

Graph fig11_tight_matching() {
  // Matched core: edges {0,1} and {2,3}. A shared degree-2 vertex (id 4)
  // bridges the two pairs, vertices 0 and 3 carry three pendant leaves and
  // vertices 1 and 2 two each: m = 2 + 2 + 10 = 14, Delta = 4, connected,
  // and {01, 23} is a maximal matching of exactly ceil(m/(2*Delta-1)) = 2
  // edges (every other edge touches a matched vertex).
  std::vector<Edge> edges = {{0, 1}, {2, 3}, {1, 4}, {2, 4}};
  int next = 5;
  const int pendants[4] = {3, 2, 2, 3};
  for (ProcessId core = 0; core < 4; ++core) {
    for (int l = 0; l < pendants[core]; ++l) edges.emplace_back(core, next++);
  }
  SSS_ASSERT(edges.size() == 14, "Figure 11 graph must have m = 14");
  return named(Graph::from_edges(next, edges), "fig11");
}

}  // namespace sss
