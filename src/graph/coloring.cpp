#include "graph/coloring.hpp"

#include <algorithm>
#include <set>

#include "support/require.hpp"

namespace sss {

bool is_proper_coloring(const Graph& g, const Coloring& colors) {
  if (static_cast<int>(colors.size()) != g.num_vertices()) return false;
  for (int c : colors) {
    if (c < 1) return false;
  }
  for (const auto& [a, b] : g.edges()) {
    if (colors[static_cast<std::size_t>(a)] ==
        colors[static_cast<std::size_t>(b)]) {
      return false;
    }
  }
  return true;
}

int count_colors(const Coloring& colors) {
  return static_cast<int>(std::set<int>(colors.begin(), colors.end()).size());
}

namespace {
/// Smallest color >= 1 not used by any neighbor of `v`.
int first_free_color(const Graph& g, const Coloring& colors, ProcessId v) {
  std::vector<int> used;
  for (ProcessId u : g.neighbors(v)) {
    const int c = colors[static_cast<std::size_t>(u)];
    if (c >= 1) used.push_back(c);
  }
  std::sort(used.begin(), used.end());
  int candidate = 1;
  for (int c : used) {
    if (c == candidate) {
      ++candidate;
    } else if (c > candidate) {
      break;
    }
  }
  return candidate;
}

Coloring greedy_in_order(const Graph& g, const std::vector<ProcessId>& order) {
  Coloring colors(static_cast<std::size_t>(g.num_vertices()), 0);
  for (ProcessId v : order) {
    colors[static_cast<std::size_t>(v)] = first_free_color(g, colors, v);
  }
  return colors;
}
}  // namespace

Coloring greedy_coloring(const Graph& g) {
  std::vector<ProcessId> order(static_cast<std::size_t>(g.num_vertices()));
  for (int i = 0; i < g.num_vertices(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  return greedy_in_order(g, order);
}

Coloring randomized_greedy_coloring(const Graph& g, Rng& rng) {
  std::vector<ProcessId> order(static_cast<std::size_t>(g.num_vertices()));
  for (int i = 0; i < g.num_vertices(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  shuffle(order, rng);
  return greedy_in_order(g, order);
}

Coloring dsatur_coloring(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Coloring colors(n, 0);
  std::vector<std::set<int>> neighbor_colors(n);
  std::vector<bool> done(n, false);
  for (int step = 0; step < g.num_vertices(); ++step) {
    // Pick the uncolored vertex with the largest saturation degree,
    // breaking ties by degree then id.
    ProcessId best = -1;
    for (ProcessId v = 0; v < g.num_vertices(); ++v) {
      if (done[static_cast<std::size_t>(v)]) continue;
      if (best < 0) {
        best = v;
        continue;
      }
      const auto sat_v = neighbor_colors[static_cast<std::size_t>(v)].size();
      const auto sat_b = neighbor_colors[static_cast<std::size_t>(best)].size();
      if (sat_v > sat_b ||
          (sat_v == sat_b && g.degree(v) > g.degree(best))) {
        best = v;
      }
    }
    const int c = first_free_color(g, colors, best);
    colors[static_cast<std::size_t>(best)] = c;
    done[static_cast<std::size_t>(best)] = true;
    for (ProcessId u : g.neighbors(best)) {
      neighbor_colors[static_cast<std::size_t>(u)].insert(c);
    }
  }
  return colors;
}

Coloring identity_coloring(const Graph& g) {
  Coloring colors(static_cast<std::size_t>(g.num_vertices()));
  for (int i = 0; i < g.num_vertices(); ++i) {
    colors[static_cast<std::size_t>(i)] = i + 1;
  }
  return colors;
}

}  // namespace sss
