#pragma once
/// \file orientation.hpp
/// Color-induced dag orientation (Theorem 4): orienting every edge from the
/// smaller to the larger color yields a directed acyclic graph, because the
/// color order is total and transitive. This is exactly why the "local
/// identifier" assumption of Protocols MIS and MATCHING is a
/// symmetry-breaking device (Definition 11).

#include <vector>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"

namespace sss {

/// A fixed orientation of every edge of a graph.
struct Orientation {
  /// Directed edges (from, to); one entry per undirected edge.
  std::vector<Edge> arcs;

  /// Out-neighbors per vertex (the Succ.p sets of Definition 11).
  std::vector<std::vector<ProcessId>> successors;
};

/// Orients each edge {p,q} as (p,q) iff colors[p] < colors[q].
/// Requires a proper coloring (equal endpoint colors are impossible).
Orientation orient_by_colors(const Graph& g, const Coloring& colors);

/// Builds an Orientation from explicit arcs (e.g. theorem2_gadget's fixed
/// dag). Requires exactly one arc per edge of `g`.
Orientation orientation_from_arcs(const Graph& g,
                                  const std::vector<Edge>& arcs);

/// True if the orientation has no directed cycle (Kahn's algorithm).
bool is_acyclic(const Graph& g, const Orientation& orientation);

/// Vertices with no incoming arc.
std::vector<ProcessId> sources(const Graph& g, const Orientation& o);

/// Vertices with no outgoing arc.
std::vector<ProcessId> sinks(const Graph& g, const Orientation& o);

}  // namespace sss
