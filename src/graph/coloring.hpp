#pragma once
/// \file coloring.hpp
/// Proper vertex colorings used as the "local identifier" substrate of
/// Protocols MIS and MATCHING (Section 5): each process carries a constant
/// color C.p that differs from every neighbor's, and colors are totally
/// ordered by `<`. Colors here are integers starting at 1.

#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace sss {

/// A proper coloring: `colors[p]` is the color of process p, >= 1.
using Coloring = std::vector<int>;

/// True if neighbors never share a color and all colors are >= 1.
bool is_proper_coloring(const Graph& g, const Coloring& colors);

/// Number of distinct colors used (#C in the paper's Lemma 4 bound).
int count_colors(const Coloring& colors);

/// Greedy coloring in id order; uses at most Delta+1 colors.
Coloring greedy_coloring(const Graph& g);

/// Greedy coloring in a uniformly random vertex order.
Coloring randomized_greedy_coloring(const Graph& g, Rng& rng);

/// DSATUR coloring (saturation-degree heuristic); never worse than greedy
/// in color count on the families used here.
Coloring dsatur_coloring(const Graph& g);

/// The trivially proper coloring by globally unique ids (#C = n).
/// Models the "ordered global identifiers" setting of [13].
Coloring identity_coloring(const Graph& g);

}  // namespace sss
