#pragma once
/// \file io.hpp
/// Graph serialization: Graphviz DOT for inspection, and a plain edge-list
/// format for round-tripping test fixtures.

#include <optional>
#include <string>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"

namespace sss {

/// Renders the graph as Graphviz DOT. If `colors` is provided, vertices are
/// labelled "id:color" and given a fill color from a small palette.
std::string to_dot(const Graph& g,
                   const std::optional<Coloring>& colors = std::nullopt);

/// Plain text: first line "n m", then one "a b" pair per edge.
std::string to_edge_list(const Graph& g);

/// Parses the format produced by `to_edge_list`. Throws PreconditionError
/// on malformed input.
Graph parse_edge_list(const std::string& text);

}  // namespace sss
