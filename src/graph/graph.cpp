#include "graph/graph.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

Graph Graph::from_edges(int num_vertices, const std::vector<Edge>& edges) {
  SSS_REQUIRE(num_vertices >= 1, "a graph needs at least one vertex");
  Graph g;
  g.adjacency_.assign(static_cast<std::size_t>(num_vertices), {});
  for (const auto& [a, b] : edges) {
    SSS_REQUIRE(a >= 0 && a < num_vertices && b >= 0 && b < num_vertices,
                "edge endpoint out of range");
    SSS_REQUIRE(a != b, "self-loops are not allowed");
    g.adjacency_[static_cast<std::size_t>(a)].push_back(b);
    g.adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : g.adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
    SSS_REQUIRE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end(),
                "duplicate edge in edge list");
  }
  g.num_edges_ = static_cast<int>(edges.size());
  g.finish_init();
  return g;
}

Graph Graph::from_ports(const std::vector<std::vector<ProcessId>>& ports) {
  const int n = static_cast<int>(ports.size());
  SSS_REQUIRE(n >= 1, "a graph needs at least one vertex");
  Graph g;
  g.adjacency_ = ports;
  int total_endpoints = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto& nbrs = g.adjacency_[static_cast<std::size_t>(p)];
    total_endpoints += static_cast<int>(nbrs.size());
    std::vector<ProcessId> sorted = nbrs;
    std::sort(sorted.begin(), sorted.end());
    SSS_REQUIRE(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate neighbor in port list");
    for (ProcessId q : nbrs) {
      SSS_REQUIRE(q >= 0 && q < n, "port neighbor out of range");
      SSS_REQUIRE(q != p, "self-loops are not allowed");
      const auto& back = g.adjacency_[static_cast<std::size_t>(q)];
      SSS_REQUIRE(std::find(back.begin(), back.end(), p) != back.end(),
                  "port relation must be symmetric");
    }
  }
  g.num_edges_ = total_endpoints / 2;
  g.finish_init();
  return g;
}

void Graph::finish_init() {
  max_degree_ = 0;
  min_degree_ = adjacency_.empty() ? 0 : num_vertices();
  for (const auto& nbrs : adjacency_) {
    max_degree_ = std::max(max_degree_, static_cast<int>(nbrs.size()));
    min_degree_ = std::min(min_degree_, static_cast<int>(nbrs.size()));
  }
}

int Graph::degree(ProcessId p) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  return static_cast<int>(adjacency_[static_cast<std::size_t>(p)].size());
}

ProcessId Graph::neighbor(ProcessId p, NbrIndex index) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  const auto& nbrs = adjacency_[static_cast<std::size_t>(p)];
  SSS_REQUIRE(index >= 1 && index <= static_cast<int>(nbrs.size()),
              "local channel index out of range");
  return nbrs[static_cast<std::size_t>(index - 1)];
}

NbrIndex Graph::local_index_of(ProcessId p, ProcessId q) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  // Linear scan: port lists need not be sorted (from_ports), and degrees
  // in this library are small.
  const auto& nbrs = adjacency_[static_cast<std::size_t>(p)];
  const auto it = std::find(nbrs.begin(), nbrs.end(), q);
  if (it == nbrs.end()) return 0;
  return static_cast<NbrIndex>(it - nbrs.begin()) + 1;
}

const std::vector<ProcessId>& Graph::neighbors(ProcessId p) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  return adjacency_[static_cast<std::size_t>(p)];
}

bool Graph::has_edge(ProcessId p, ProcessId q) const {
  if (p == q) return false;
  return local_index_of(p, q) != 0;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (ProcessId p = 0; p < num_vertices(); ++p) {
    for (ProcessId q : adjacency_[static_cast<std::size_t>(p)]) {
      if (p < q) out.emplace_back(p, q);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
