#include "graph/graph.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

Graph Graph::from_edges(int num_vertices, const std::vector<Edge>& edges) {
  SSS_REQUIRE(num_vertices >= 1, "a graph needs at least one vertex");
  std::vector<std::vector<ProcessId>> adjacency(
      static_cast<std::size_t>(num_vertices));
  for (const auto& [a, b] : edges) {
    SSS_REQUIRE(a >= 0 && a < num_vertices && b >= 0 && b < num_vertices,
                "edge endpoint out of range");
    SSS_REQUIRE(a != b, "self-loops are not allowed");
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    SSS_REQUIRE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end(),
                "duplicate edge in edge list");
  }
  Graph g;
  g.num_edges_ = static_cast<int>(edges.size());
  g.build_csr(adjacency);
  return g;
}

Graph Graph::from_ports(const std::vector<std::vector<ProcessId>>& ports) {
  const int n = static_cast<int>(ports.size());
  SSS_REQUIRE(n >= 1, "a graph needs at least one vertex");
  int total_endpoints = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto& nbrs = ports[static_cast<std::size_t>(p)];
    total_endpoints += static_cast<int>(nbrs.size());
    std::vector<ProcessId> sorted = nbrs;
    std::sort(sorted.begin(), sorted.end());
    SSS_REQUIRE(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate neighbor in port list");
    for (ProcessId q : nbrs) {
      SSS_REQUIRE(q >= 0 && q < n, "port neighbor out of range");
      SSS_REQUIRE(q != p, "self-loops are not allowed");
      const auto& back = ports[static_cast<std::size_t>(q)];
      SSS_REQUIRE(std::find(back.begin(), back.end(), p) != back.end(),
                  "port relation must be symmetric");
    }
  }
  Graph g;
  g.num_edges_ = total_endpoints / 2;
  g.build_csr(ports);
  return g;
}

void Graph::build_csr(const std::vector<std::vector<ProcessId>>& adjacency) {
  num_vertices_ = static_cast<int>(adjacency.size());
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  max_degree_ = 0;
  min_degree_ = num_vertices_;
  for (ProcessId p = 0; p < num_vertices_; ++p) {
    const int deg =
        static_cast<int>(adjacency[static_cast<std::size_t>(p)].size());
    offsets_[static_cast<std::size_t>(p) + 1] =
        offsets_[static_cast<std::size_t>(p)] + deg;
    max_degree_ = std::max(max_degree_, deg);
    min_degree_ = std::min(min_degree_, deg);
  }
  neighbors_.reserve(static_cast<std::size_t>(offsets_.back()));
  for (const auto& nbrs : adjacency) {
    neighbors_.insert(neighbors_.end(), nbrs.begin(), nbrs.end());
  }
  mirror_index_.resize(neighbors_.size());
  for (ProcessId p = 0; p < num_vertices_; ++p) {
    for (std::int32_t slot = offsets_[static_cast<std::size_t>(p)];
         slot < offsets_[static_cast<std::size_t>(p) + 1]; ++slot) {
      const ProcessId q = neighbors_[static_cast<std::size_t>(slot)];
      mirror_index_[static_cast<std::size_t>(slot)] = local_index_of(q, p);
    }
  }
}

int Graph::degree(ProcessId p) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  return offsets_[static_cast<std::size_t>(p) + 1] -
         offsets_[static_cast<std::size_t>(p)];
}

ProcessId Graph::neighbor(ProcessId p, NbrIndex index) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  const std::int32_t begin = offsets_[static_cast<std::size_t>(p)];
  const std::int32_t deg = offsets_[static_cast<std::size_t>(p) + 1] - begin;
  SSS_REQUIRE(index >= 1 && index <= deg,
              "local channel index out of range");
  return neighbors_[static_cast<std::size_t>(begin + index - 1)];
}

NbrIndex Graph::local_index_of(ProcessId p, ProcessId q) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  // Linear scan: port lists need not be sorted (from_ports), and degrees
  // in this library are small.
  const auto nbrs = neighbors(p);
  const auto it = std::find(nbrs.begin(), nbrs.end(), q);
  if (it == nbrs.end()) return 0;
  return static_cast<NbrIndex>(it - nbrs.begin()) + 1;
}

std::span<const ProcessId> Graph::neighbors(ProcessId p) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  const std::int32_t begin = offsets_[static_cast<std::size_t>(p)];
  const std::int32_t end = offsets_[static_cast<std::size_t>(p) + 1];
  return {neighbors_.data() + begin, static_cast<std::size_t>(end - begin)};
}

NbrIndex Graph::mirror_index(ProcessId p, NbrIndex channel) const {
  SSS_REQUIRE(p >= 0 && p < num_vertices(), "process id out of range");
  const std::int32_t begin = offsets_[static_cast<std::size_t>(p)];
  const std::int32_t deg = offsets_[static_cast<std::size_t>(p) + 1] - begin;
  SSS_REQUIRE(channel >= 1 && channel <= deg,
              "local channel index out of range");
  return mirror_index_[static_cast<std::size_t>(begin + channel - 1)];
}

bool Graph::has_edge(ProcessId p, ProcessId q) const {
  if (p == q) return false;
  return local_index_of(p, q) != 0;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (ProcessId p = 0; p < num_vertices(); ++p) {
    for (ProcessId q : neighbors(p)) {
      if (p < q) out.emplace_back(p, q);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
