#include "graph/family_registry.hpp"

#include <algorithm>
#include <limits>

#include "graph/builders.hpp"

namespace sss {

GraphFamilyRegistry& GraphFamilyRegistry::instance() {
  // Construct-on-first-use, then install the built-ins exactly once. The
  // built-ins live here (not in per-family static registrars) so that
  // linking any registry user is guaranteed to link them — a static
  // library would drop registrar-only translation units.
  static GraphFamilyRegistry* registry = [] {
    auto* fresh = new GraphFamilyRegistry();

    const auto seeded_rng = [](const ParamMap& params) {
      return Rng(static_cast<std::uint64_t>(param_int(params, "seed", 1)));
    };
    const auto size = [](const ParamMap& params, const char* name) {
      const std::int64_t value = require_param_int(params, name);
      SSS_REQUIRE(value >= std::numeric_limits<int>::min() &&
                      value <= std::numeric_limits<int>::max(),
                  std::string("parameter \"") + name +
                      "\" is out of range for a graph size");
      return static_cast<int>(value);
    };

    fresh->register_family("path", {{"n"}}, [=](const ParamMap& p) {
      return path(size(p, "n"));
    });
    fresh->register_family("cycle", {{"n"}}, [=](const ParamMap& p) {
      return cycle(size(p, "n"));
    });
    fresh->register_family("complete", {{"n"}}, [=](const ParamMap& p) {
      return complete(size(p, "n"));
    });
    fresh->register_family("star", {{"leaves"}}, [=](const ParamMap& p) {
      return star(size(p, "leaves"));
    });
    fresh->register_family("wheel", {{"rim"}}, [=](const ParamMap& p) {
      return wheel(size(p, "rim"));
    });
    fresh->register_family("grid", {{"rows"}, {"cols"}},
                           [=](const ParamMap& p) {
                             return grid(size(p, "rows"), size(p, "cols"));
                           });
    fresh->register_family("torus", {{"rows"}, {"cols"}},
                           [=](const ParamMap& p) {
                             return torus(size(p, "rows"), size(p, "cols"));
                           });
    fresh->register_family("hypercube", {{"dim"}}, [=](const ParamMap& p) {
      return hypercube(size(p, "dim"));
    });
    fresh->register_family("complete-bipartite", {{"a"}, {"b"}},
                           [=](const ParamMap& p) {
                             return complete_bipartite(size(p, "a"),
                                                       size(p, "b"));
                           });
    fresh->register_family("balanced-binary-tree", {{"n"}},
                           [=](const ParamMap& p) {
                             return balanced_binary_tree(size(p, "n"));
                           });
    fresh->register_family("caterpillar", {{"spine"}, {"legs"}},
                           [=](const ParamMap& p) {
                             return caterpillar(size(p, "spine"),
                                                size(p, "legs"));
                           });
    fresh->register_family("lollipop", {{"clique"}, {"tail"}},
                           [=](const ParamMap& p) {
                             return lollipop(size(p, "clique"),
                                             size(p, "tail"));
                           });
    fresh->register_family("barbell", {{"k"}, {"bridge"}},
                           [=](const ParamMap& p) {
                             return barbell(size(p, "k"), size(p, "bridge"));
                           });
    fresh->register_family("petersen", {}, [](const ParamMap&) {
      return petersen();
    });
    fresh->register_family("random-tree", {{"n"}, {"seed", false, 1}},
                           [=](const ParamMap& p) {
                             Rng rng = seeded_rng(p);
                             return random_tree(size(p, "n"), rng);
                           });
    fresh->register_family(
        "erdos-renyi", {{"n"}, {"p"}, {"seed", false, 1}},
        [=](const ParamMap& p) {
          Rng rng = seeded_rng(p);
          return erdos_renyi_connected(size(p, "n"), param_double(p, "p", 0.0),
                                       rng);
        });
    fresh->register_family("random-regular",
                           {{"n"}, {"d"}, {"seed", false, 1}},
                           [=](const ParamMap& p) {
                             Rng rng = seeded_rng(p);
                             return random_regular(size(p, "n"), size(p, "d"),
                                                   rng);
                           });
    fresh->register_family("preferential-attachment",
                           {{"n"}, {"m"}, {"seed", false, 1}},
                           [=](const ParamMap& p) {
                             Rng rng = seeded_rng(p);
                             return preferential_attachment(size(p, "n"),
                                                            size(p, "m"), rng);
                           });
    fresh->register_family(
        "random-geometric", {{"n"}, {"radius"}, {"seed", false, 1}},
        [=](const ParamMap& p) {
          Rng rng = seeded_rng(p);
          return random_geometric(size(p, "n"),
                                  param_double(p, "radius", 0.0), rng);
        });
    fresh->register_family("grid-of-clusters",
                           {{"rows"}, {"cols"}, {"cluster"}},
                           [=](const ParamMap& p) {
                             return grid_of_clusters(size(p, "rows"),
                                                     size(p, "cols"),
                                                     size(p, "cluster"));
                           });
    fresh->register_family("theorem1-spider", {{"delta"}},
                           [=](const ParamMap& p) {
                             return theorem1_spider(size(p, "delta"));
                           });
    // Only the network of the rooted dag; the orientation belongs to the
    // impossibility harness, not to convergence sweeps.
    fresh->register_family("theorem2-gadget", {{"delta"}},
                           [=](const ParamMap& p) {
                             return theorem2_gadget(size(p, "delta")).graph;
                           });
    fresh->register_family("fig9-path", {{"n"}}, [=](const ParamMap& p) {
      return fig9_path(size(p, "n"));
    });
    fresh->register_family("fig11-tight-matching", {}, [](const ParamMap&) {
      return fig11_tight_matching();
    });
    return fresh;
  }();
  return *registry;
}

void GraphFamilyRegistry::register_family(std::string name,
                                          std::vector<ParamSpec> params,
                                          Builder build) {
  SSS_REQUIRE(!name.empty() && build != nullptr,
              "a graph family needs a name and a builder");
  SSS_REQUIRE(!contains(name), "graph family \"" + name +
                                   "\" is already registered");
  families_.push_back(Family{std::move(name), std::move(params),
                             std::move(build)});
}

bool GraphFamilyRegistry::contains(const std::string& family_name) const {
  for (const Family& family : families_) {
    if (family.name == family_name) return true;
  }
  return false;
}

const GraphFamilyRegistry::Family& GraphFamilyRegistry::family(
    const std::string& family_name) const {
  for (const Family& family : families_) {
    if (family.name == family_name) return family;
  }
  throw PreconditionError("unknown graph family \"" + family_name +
                          "\" (known: " + join(names(), ", ") + ")");
}

Graph GraphFamilyRegistry::build(const std::string& family_name,
                                 const ParamMap& params) const {
  const Family& entry = family(family_name);
  std::vector<std::string> allowed;
  allowed.reserve(entry.params.size());
  for (const ParamSpec& spec : entry.params) allowed.push_back(spec.name);
  require_known_params(params, allowed, "graph family \"" + entry.name + "\"");
  for (const ParamSpec& spec : entry.params) {
    SSS_REQUIRE(!spec.required || params.find(spec.name) != params.end(),
                "graph family \"" + entry.name +
                    "\" requires parameter \"" + spec.name + "\"");
  }
  return entry.build(params);
}

std::vector<std::string> GraphFamilyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const Family& family : families_) out.push_back(family.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sss
