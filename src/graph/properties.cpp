#include "graph/properties.hpp"

#include <algorithm>
#include <deque>

#include "support/require.hpp"

namespace sss {

std::vector<int> bfs_distances(const Graph& g, ProcessId source) {
  SSS_REQUIRE(source >= 0 && source < g.num_vertices(),
              "BFS source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::deque<ProcessId> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const ProcessId v = queue.front();
    queue.pop_front();
    for (ProcessId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  const auto dist = bfs_distances(g, 0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int diameter(const Graph& g) {
  SSS_REQUIRE(is_connected(g), "diameter requires a connected graph");
  int best = 0;
  for (ProcessId v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    best = std::max(best, *std::max_element(dist.begin(), dist.end()));
  }
  return best;
}

bool is_bipartite(const Graph& g) {
  std::vector<int> side(static_cast<std::size_t>(g.num_vertices()), -1);
  for (ProcessId start = 0; start < g.num_vertices(); ++start) {
    if (side[static_cast<std::size_t>(start)] >= 0) continue;
    side[static_cast<std::size_t>(start)] = 0;
    std::deque<ProcessId> queue{start};
    while (!queue.empty()) {
      const ProcessId v = queue.front();
      queue.pop_front();
      for (ProcessId u : g.neighbors(v)) {
        if (side[static_cast<std::size_t>(u)] < 0) {
          side[static_cast<std::size_t>(u)] =
              1 - side[static_cast<std::size_t>(v)];
          queue.push_back(u);
        } else if (side[static_cast<std::size_t>(u)] ==
                   side[static_cast<std::size_t>(v)]) {
          return false;
        }
      }
    }
  }
  return true;
}

namespace {

/// DFS state for the exact longest-path search.
struct PathSearch {
  const Graph& g;
  std::vector<bool> visited;
  int best = 0;

  explicit PathSearch(const Graph& graph)
      : g(graph),
        visited(static_cast<std::size_t>(graph.num_vertices()), false) {}

  void extend(ProcessId v, int length, int unvisited_remaining) {
    best = std::max(best, length);
    // Branch-and-bound: even visiting every remaining vertex cannot beat
    // the incumbent.
    if (length + unvisited_remaining <= best) return;
    for (ProcessId u : g.neighbors(v)) {
      if (visited[static_cast<std::size_t>(u)]) continue;
      visited[static_cast<std::size_t>(u)] = true;
      extend(u, length + 1, unvisited_remaining - 1);
      visited[static_cast<std::size_t>(u)] = false;
    }
  }
};

}  // namespace

int longest_path_exact(const Graph& g, int max_vertices) {
  SSS_REQUIRE(g.num_vertices() <= max_vertices,
              "longest_path_exact refused: graph too large for exhaustive "
              "search (raise max_vertices explicitly to override)");
  PathSearch search(g);
  for (ProcessId start = 0; start < g.num_vertices(); ++start) {
    search.visited[static_cast<std::size_t>(start)] = true;
    search.extend(start, 0, g.num_vertices() - 1);
    search.visited[static_cast<std::size_t>(start)] = false;
  }
  return search.best;
}

int longest_path_lower_bound(const Graph& g, Rng& rng, int restarts) {
  SSS_REQUIRE(restarts >= 1, "need at least one restart");
  int best = 0;
  std::vector<bool> visited(static_cast<std::size_t>(g.num_vertices()));
  std::vector<ProcessId> options;
  for (int r = 0; r < restarts; ++r) {
    std::fill(visited.begin(), visited.end(), false);
    ProcessId v = static_cast<ProcessId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    visited[static_cast<std::size_t>(v)] = true;
    int length = 0;
    for (;;) {
      options.clear();
      for (ProcessId u : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(u)]) options.push_back(u);
      }
      if (options.empty()) break;
      v = options[rng.below(options.size())];
      visited[static_cast<std::size_t>(v)] = true;
      ++length;
    }
    best = std::max(best, length);
  }
  return best;
}

double average_degree(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  return 2.0 * g.num_edges() / g.num_vertices();
}

}  // namespace sss
