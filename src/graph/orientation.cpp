#include "graph/orientation.hpp"

#include <algorithm>
#include <deque>

#include "support/require.hpp"

namespace sss {

namespace {
Orientation build(const Graph& g, std::vector<Edge> arcs) {
  Orientation o;
  o.arcs = std::move(arcs);
  o.successors.assign(static_cast<std::size_t>(g.num_vertices()), {});
  for (const auto& [from, to] : o.arcs) {
    o.successors[static_cast<std::size_t>(from)].push_back(to);
  }
  for (auto& succ : o.successors) std::sort(succ.begin(), succ.end());
  return o;
}
}  // namespace

Orientation orient_by_colors(const Graph& g, const Coloring& colors) {
  SSS_REQUIRE(is_proper_coloring(g, colors),
              "orient_by_colors requires a proper coloring");
  std::vector<Edge> arcs;
  arcs.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& [a, b] : g.edges()) {
    const int ca = colors[static_cast<std::size_t>(a)];
    const int cb = colors[static_cast<std::size_t>(b)];
    SSS_ASSERT(ca != cb, "proper coloring must separate neighbors");
    arcs.emplace_back(ca < cb ? a : b, ca < cb ? b : a);
  }
  return build(g, std::move(arcs));
}

Orientation orientation_from_arcs(const Graph& g,
                                  const std::vector<Edge>& arcs) {
  SSS_REQUIRE(static_cast<int>(arcs.size()) == g.num_edges(),
              "need exactly one arc per edge");
  for (const auto& [from, to] : arcs) {
    SSS_REQUIRE(g.has_edge(from, to), "arc is not an edge of the graph");
  }
  return build(g, arcs);
}

bool is_acyclic(const Graph& g, const Orientation& orientation) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<int> indegree(n, 0);
  for (const auto& [from, to] : orientation.arcs) {
    (void)from;
    ++indegree[static_cast<std::size_t>(to)];
  }
  std::deque<ProcessId> ready;
  for (ProcessId v = 0; v < g.num_vertices(); ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  int emitted = 0;
  while (!ready.empty()) {
    const ProcessId v = ready.front();
    ready.pop_front();
    ++emitted;
    for (ProcessId u : orientation.successors[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
    }
  }
  return emitted == g.num_vertices();
}

std::vector<ProcessId> sources(const Graph& g, const Orientation& o) {
  std::vector<bool> has_in(static_cast<std::size_t>(g.num_vertices()), false);
  for (const auto& [from, to] : o.arcs) {
    (void)from;
    has_in[static_cast<std::size_t>(to)] = true;
  }
  std::vector<ProcessId> out;
  for (ProcessId v = 0; v < g.num_vertices(); ++v) {
    if (!has_in[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::vector<ProcessId> sinks(const Graph& g, const Orientation& o) {
  std::vector<ProcessId> out;
  for (ProcessId v = 0; v < g.num_vertices(); ++v) {
    if (o.successors[static_cast<std::size_t>(v)].empty()) out.push_back(v);
  }
  return out;
}

}  // namespace sss
