#pragma once
/// \file builders.hpp
/// Graph families used throughout the paper's analysis and our benches.
///
/// Besides the classical families, this module provides the paper's own
/// constructions:
///  * `theorem1_spider(delta)` — the Delta^2+1-node generalization graph of
///    Theorem 1 / Figure 2 (a center of degree Delta joined to Delta nodes
///    of degree Delta, each carrying Delta-1 pendant leaves);
///  * `theorem2_gadget(delta)` — the rooted, dag-oriented 6-node network of
///    Theorem 2 / Figure 3, generalized per Figure 6 by attaching Delta-2
///    pendants to each of the six processes;
///  * `fig9_path(n)` — the path on which Theorem 6's stability bound is
///    tight (Figure 9);
///  * `fig11_tight_matching()` — the Delta=4, m=14 graph on which
///    Theorem 8's stability bound is tight (Figure 11).

#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace sss {

Graph path(int n);                ///< P_n. Requires n >= 1.
Graph cycle(int n);               ///< C_n. Requires n >= 3.
Graph complete(int n);            ///< K_n. Requires n >= 1.
Graph star(int leaves);           ///< center 0 plus `leaves` leaves. >= 1.
Graph wheel(int rim);             ///< hub 0 plus a rim cycle. Requires rim >= 3.
Graph grid(int rows, int cols);   ///< rows x cols lattice. Requires >= 1 each.
Graph torus(int rows, int cols);  ///< wrap-around lattice. Requires >= 3 each.
Graph hypercube(int dim);         ///< Q_dim. Requires 1 <= dim <= 20.
Graph complete_bipartite(int a, int b);  ///< K_{a,b}. Requires a,b >= 1.
Graph balanced_binary_tree(int n);       ///< heap-shaped tree. Requires n >= 1.
/// Spine of `spine` vertices, each with `legs` pendant legs.
Graph caterpillar(int spine, int legs);
/// K_clique with a pendant path of `tail` vertices. Requires clique >= 3.
Graph lollipop(int clique, int tail);
/// Two K_k cliques joined by a path of `bridge` intermediate vertices.
Graph barbell(int k, int bridge);
Graph petersen();  ///< the Petersen graph (3-regular, 10 vertices).

/// Uniform random labelled tree via Pruefer sequences. Requires n >= 1.
Graph random_tree(int n, Rng& rng);

/// G(n, p) conditioned on connectivity: components left disconnected by the
/// Bernoulli draw are joined with uniformly chosen inter-component edges
/// (documented substitution; keeps edge density close to p for the sweep
/// sizes used here). Requires n >= 1, 0 <= p <= 1.
Graph erdos_renyi_connected(int n, double p, Rng& rng);

/// Random d-regular simple connected graph via the configuration model with
/// rejection. Requires n*d even, 0 < d < n; throws if 200 attempts fail.
Graph random_regular(int n, int d, Rng& rng);

/// Barabási–Albert preferential attachment: an (m+1)-clique core plus
/// arriving vertices that each attach m edges to existing vertices drawn
/// degree-proportionally (power-law degree tail — the "hub and spoke" shape
/// of real overlay networks). Connected by construction. Requires m >= 1,
/// n >= m + 1.
Graph preferential_attachment(int n, int m, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs at Euclidean distance <= radius (sensor-network shape:
/// high clustering, large diameter). Subcritical radii leave islands which
/// are joined with uniform cross edges, as in erdos_renyi_connected.
/// Requires n >= 1, 0 < radius <= 1.5.
Graph random_geometric(int n, double radius, Rng& rng);

/// Deterministic rows x cols grid of K_cluster cliques, adjacent clusters
/// joined by a single bridge edge (datacenter shape: dense local fanout,
/// thin inter-rack links). Requires rows, cols, cluster >= 1.
Graph grid_of_clusters(int rows, int cols, int cluster);

/// Theorem 1 generalization graph (Figure 2): Delta^2 + 1 vertices.
/// Requires delta >= 2.
Graph theorem1_spider(int delta);

/// A rooted, dag-oriented network: the fixed orientation is part of the
/// system model of Theorem 2, not derived from process state.
struct RootedDag {
  Graph graph;
  ProcessId root = 0;
  /// Directed edges (from, to) of the fixed dag orientation.
  std::vector<Edge> oriented;
};

/// Theorem 2 network (Figure 3 for delta=2; Figure 6 generalization for
/// delta>2). The core six processes are ids 0..5 standing for p1..p6;
/// p1 and p4 are sources and p5, p6 sinks, as the proof requires.
/// Requires delta >= 2.
RootedDag theorem2_gadget(int delta);

/// Figure 9: the path on which MIS's ♦-(x,1)-stability bound is tight.
Graph fig9_path(int n);

/// Figure 11: Delta = 4, m = 14, and a maximal matching of exactly
/// 2 = ceil(m / (2*Delta - 1)) edges exists (vertices 0-1 and 2-3 matched,
/// twelve pendant leaves).
Graph fig11_tight_matching();

}  // namespace sss
