#pragma once
/// \file full_read_mis.hpp
/// The status-quo comparator for Protocol MIS: the classical
/// identifier-ordered self-stabilizing MIS in the style of Ikeda, Kamei &
/// Kakugawa [13]. A process is in the set iff none of its lower-colored
/// neighbors is; every guard scans the whole neighborhood, so the protocol
/// is Delta-efficient and its stabilized fixed point is the greedy MIS by
/// color order.
///
///   A1: S.p = IN  ∧ ∃q: C.q < C.p ∧ S.q = IN    -> S.p <- OUT
///   A2: S.p = OUT ∧ ∀q: C.q < C.p ⇒ S.q = OUT  -> S.p <- IN

#include <string>

#include "graph/coloring.hpp"
#include "runtime/protocol.hpp"

namespace sss {

class FullReadMis final : public Protocol {
 public:
  static constexpr Value kOut = 0;
  static constexpr Value kIn = 1;
  static constexpr int kStateVar = 0;  ///< comm: S
  static constexpr int kColorVar = 1;  ///< comm constant: C

  /// `colors` must be a proper coloring (global ids via identity_coloring
  /// model the original paper's setting).
  FullReadMis(const Graph& g, Coloring colors);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

 private:
  std::string name_ = "FULL-READ-MIS";
  Coloring colors_;
  ProtocolSpec spec_;
};

}  // namespace sss
