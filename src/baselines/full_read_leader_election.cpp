#include "baselines/full_read_leader_election.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kReset = 0;
constexpr int kElect = 1;

/// The lexicographically best (leader, depth) offer among neighbors whose
/// depth leaves room for one more tree level; returns 0 when none exists.
struct Offer {
  Value leader = 0;
  Value depth = 0;
  NbrIndex channel = 0;
};

Offer best_offer(const GuardContext& ctx, int leader_var, int dist_var,
                 Value dmax) {
  Offer best;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    const Value leader = ctx.nbr_comm(ch, leader_var);
    const Value depth = ctx.nbr_comm(ch, dist_var);
    if (depth + 1 > dmax) continue;
    if (best.channel == 0 || leader < best.leader ||
        (leader == best.leader && depth < best.depth)) {
      best = Offer{leader, depth, ch};
    }
  }
  return best;
}

}  // namespace

FullReadLeaderElection::FullReadLeaderElection(const Graph& g,
                                               std::vector<Value> ids)
    : ids_(std::move(ids)),
      max_distance_(static_cast<Value>(g.num_vertices() - 1)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-LEADER-ELECTION requires a connected network with "
              "n >= 2");
  SSS_REQUIRE(static_cast<int>(ids_.size()) == g.num_vertices(),
              "FULL-READ-LEADER-ELECTION needs one identifier per process");
  std::unordered_set<Value> seen;
  for (const Value id : ids_) {
    SSS_REQUIRE(id >= 0, "identifiers must be non-negative");
    SSS_REQUIRE(seen.insert(id).second, "identifiers must be distinct");
  }
  min_id_ = *std::min_element(ids_.begin(), ids_.end());
  max_id_ = *std::max_element(ids_.begin(), ids_.end());
  spec_.comm.emplace_back("L", VarDomain{min_id_, max_id_});
  spec_.comm.emplace_back("D", VarDomain{0, max_distance_});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("ID", VarDomain{min_id_, max_id_},
                          /*is_constant=*/true);
}

void FullReadLeaderElection::install_constants(const Graph& g,
                                               Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kIdVar, ids_[static_cast<std::size_t>(p)]);
  }
}

int FullReadLeaderElection::first_enabled(GuardContext& ctx) const {
  const Value id = ctx.self_comm(kIdVar);
  const Value leader = ctx.self_comm(kLeaderVar);
  const Value dist = ctx.self_comm(kDistVar);
  const Value parent = ctx.self_comm(kParentVar);

  if (leader > id) return kReset;
  if (leader == id) {
    if (dist != 0 || parent != 0) return kReset;
  } else {
    if (parent == 0 || dist == 0) return kReset;
    const auto pr = static_cast<NbrIndex>(parent);
    if (ctx.nbr_comm(pr, kLeaderVar) > leader ||
        ctx.nbr_comm(pr, kDistVar) == max_distance_) {
      return kReset;
    }
  }

  const Offer best = best_offer(ctx, kLeaderVar, kDistVar, max_distance_);
  if (best.channel != 0) {
    if (best.leader < leader) return kElect;
    if (leader < id && best.leader == leader && best.depth + 1 < dist) {
      return kElect;
    }
  }
  if (leader < id &&
      dist != ctx.nbr_comm(static_cast<NbrIndex>(parent), kDistVar) + 1) {
    // Depth drifted from the parent's: re-elect to re-sync the tree level
    // (the parent itself is always a candidate offer here, since the
    // reset guard above rules out a parent at the depth cap).
    return kElect;
  }
  return kDisabled;
}

void FullReadLeaderElection::sweep_enabled_range(BulkGuardContext& ctx,
                                                 EnabledBitmap& out, ProcessId begin,
                                                 ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value id = row[kIdVar];
    const Value leader = row[kLeaderVar];
    const Value dist = row[kDistVar];
    const Value parent = row[kParentVar];
    const std::int32_t begin = offsets[p];
    const std::int32_t end = offsets[p + 1];
    const auto parent_row_of = [&](Value pr) {
      return data + static_cast<std::size_t>(neighbors[static_cast<std::size_t>(
                        begin + static_cast<std::int32_t>(pr) - 1)]) *
                        stride;
    };
    const auto parent_id_of = [&](Value pr) {
      return neighbors[static_cast<std::size_t>(
          begin + static_cast<std::int32_t>(pr) - 1)];
    };

    if (leader > id) {
      actions[p] = static_cast<std::int8_t>(kReset);
      continue;
    }
    if (leader == id) {
      if (dist != 0 || parent != 0) {
        actions[p] = static_cast<std::int8_t>(kReset);
        continue;
      }
    } else {
      if (parent == 0 || dist == 0) {
        actions[p] = static_cast<std::int8_t>(kReset);
        continue;
      }
      // Lazy disjunction: the parent's depth is read only when its
      // leader claim does not already force the reset.
      const Value* pr_row = parent_row_of(parent);
      const ProcessId pr_id = parent_id_of(parent);
      ctx.log(p, pr_id, kLeaderVar);
      if (pr_row[kLeaderVar] > leader) {
        actions[p] = static_cast<std::int8_t>(kReset);
        continue;
      }
      ctx.log(p, pr_id, kDistVar);
      if (pr_row[kDistVar] == max_distance_) {
        actions[p] = static_cast<std::int8_t>(kReset);
        continue;
      }
    }

    // best_offer: (leader, depth) of every neighbor, both always read.
    Value best_leader = 0;
    Value best_depth = 0;
    NbrIndex best_channel = 0;
    for (std::int32_t slot = begin; slot < end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
      const Value nbr_leader = nbr_row[kLeaderVar];
      ctx.log(p, q, kLeaderVar);
      const Value nbr_depth = nbr_row[kDistVar];
      ctx.log(p, q, kDistVar);
      if (nbr_depth + 1 > max_distance_) continue;
      if (best_channel == 0 || nbr_leader < best_leader ||
          (nbr_leader == best_leader && nbr_depth < best_depth)) {
        best_leader = nbr_leader;
        best_depth = nbr_depth;
        best_channel = static_cast<NbrIndex>(slot - begin + 1);
      }
    }
    if (best_channel != 0) {
      if (best_leader < leader) {
        actions[p] = static_cast<std::int8_t>(kElect);
        continue;
      }
      if (leader < id && best_leader == leader && best_depth + 1 < dist) {
        actions[p] = static_cast<std::int8_t>(kElect);
        continue;
      }
    }
    if (leader < id) {
      // Depth re-sync check: one more logged read of the parent's depth.
      const Value parent_dist = parent_row_of(parent)[kDistVar];
      ctx.log(p, parent_id_of(parent), kDistVar);
      if (dist != parent_dist + 1) {
        actions[p] = static_cast<std::int8_t>(kElect);
      }
    }
  }
}

void FullReadLeaderElection::execute_selected(
    BulkExecContext& ctx, const EnabledBitmap& enabled,
    std::span<const ProcessId> selection, std::size_t begin,
    std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    Value* out = ctx.stage(i, p);
    if (action == kReset) {
      out[kLeaderVar] = row[kIdVar];
      out[kDistVar] = 0;
      out[kParentVar] = 0;
      continue;
    }
    // kElect re-runs best_offer at execute time: (leader, depth) of every
    // neighbor, both always read and logged in that order.
    const std::int32_t nbr_begin = offsets[p];
    const std::int32_t nbr_end = offsets[p + 1];
    Value best_leader = 0;
    Value best_depth = 0;
    Value best_channel = 0;
    for (std::int32_t slot = nbr_begin; slot < nbr_end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
      const Value nbr_leader = nbr_row[kLeaderVar];
      ctx.log(p, q, kLeaderVar);
      const Value nbr_depth = nbr_row[kDistVar];
      ctx.log(p, q, kDistVar);
      if (nbr_depth + 1 > max_distance_) continue;
      if (best_channel == 0 || nbr_leader < best_leader ||
          (nbr_leader == best_leader && nbr_depth < best_depth)) {
        best_leader = nbr_leader;
        best_depth = nbr_depth;
        best_channel = static_cast<Value>(slot - nbr_begin + 1);
      }
    }
    SSS_ASSERT(best_channel != 0, "elect fired without a candidate offer");
    out[kLeaderVar] = best_leader;
    out[kDistVar] = best_depth + 1;
    out[kParentVar] = best_channel;
  }
}

void FullReadLeaderElection::execute(int action, ActionContext& ctx) const {
  if (action == kReset) {
    ctx.set_comm(kLeaderVar, ctx.self_comm(kIdVar));
    ctx.set_comm(kDistVar, 0);
    ctx.set_comm(kParentVar, 0);
    return;
  }
  SSS_ASSERT(action == kElect, "FULL-READ-LEADER-ELECTION has two actions");
  const Offer best = best_offer(ctx, kLeaderVar, kDistVar, max_distance_);
  SSS_ASSERT(best.channel != 0, "elect fired without a candidate offer");
  ctx.set_comm(kLeaderVar, best.leader);
  ctx.set_comm(kDistVar, best.depth + 1);
  ctx.set_comm(kParentVar, static_cast<Value>(best.channel));
}

}  // namespace sss
