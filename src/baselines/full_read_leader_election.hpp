#pragma once
/// \file full_read_leader_election.hpp
/// The status-quo comparator for Protocol LEADER-ELECTION: classic silent
/// min-id election in which every guard evaluation reads the leader claim
/// and depth of *every* neighbor (Delta-efficient). The rules are the
/// same flush-by-depth-cap construction as the communication-efficient
/// protocol — reset inconsistent claims, adopt the best (leader, depth)
/// offer in the whole neighborhood — so the two stabilize to the same
/// configurations and differ exactly in read volume.

#include <string>
#include <vector>

#include "runtime/protocol.hpp"

namespace sss {

class FullReadLeaderElection final : public Protocol {
 public:
  /// Same communication layout as LeaderElectionProtocol (minus cur):
  /// predicates apply to both.
  static constexpr int kLeaderVar = 0;  ///< comm: L
  static constexpr int kDistVar = 1;    ///< comm: D
  static constexpr int kParentVar = 2;  ///< comm: PR
  static constexpr int kIdVar = 3;      ///< comm constant: ID

  FullReadLeaderElection(const Graph& g, std::vector<Value> ids);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const std::vector<Value>& ids() const { return ids_; }
  Value min_id() const { return min_id_; }
  Value max_distance() const { return max_distance_; }

 private:
  std::string name_ = "FULL-READ-LEADER-ELECTION";
  std::vector<Value> ids_;
  Value min_id_;
  Value max_id_;
  Value max_distance_;
  ProtocolSpec spec_;
};

}  // namespace sss
