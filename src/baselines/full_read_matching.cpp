#include "baselines/full_read_matching.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kUpdate = 0;
constexpr int kAbandon = 1;
constexpr int kAccept = 2;
constexpr int kPropose = 3;

constexpr Value kFalse = 0;
constexpr Value kTrue = 1;
}  // namespace

FullReadMatching::FullReadMatching(const Graph& g, Coloring colors)
    : colors_(std::move(colors)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-MATCHING requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "FULL-READ-MATCHING requires a proper coloring");
  const Value max_color = *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("M", VarDomain{kFalse, kTrue});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
}

void FullReadMatching::install_constants(const Graph& g,
                                         Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

bool FullReadMatching::married(const GuardContext& ctx) const {
  const Value pr = ctx.self_comm(kPrVar);
  if (pr == 0) return false;
  const auto ch = static_cast<NbrIndex>(pr);
  return ctx.nbr_comm(ch, kPrVar) ==
         static_cast<Value>(ctx.self_index_at(ch));
}

NbrIndex FullReadMatching::first_proposer(const GuardContext& ctx) const {
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    if (ctx.nbr_comm(ch, kPrVar) ==
        static_cast<Value>(ctx.self_index_at(ch))) {
      return ch;
    }
  }
  return 0;
}

NbrIndex FullReadMatching::first_candidate(const GuardContext& ctx) const {
  const Value own_color = ctx.self_comm(kColorVar);
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    if (ctx.nbr_comm(ch, kPrVar) == 0 &&
        ctx.nbr_comm(ch, kMarriedVar) == kFalse &&
        own_color < ctx.nbr_comm(ch, kColorVar)) {
      return ch;
    }
  }
  return 0;
}

int FullReadMatching::first_enabled(GuardContext& ctx) const {
  const Value pr = ctx.self_comm(kPrVar);
  const Value announced = ctx.self_comm(kMarriedVar);
  const Value own_color = ctx.self_comm(kColorVar);

  if ((announced == kTrue) != married(ctx)) return kUpdate;

  if (pr != 0) {
    const auto ch = static_cast<NbrIndex>(pr);
    const Value nbr_pr = ctx.nbr_comm(ch, kPrVar);
    if (nbr_pr != static_cast<Value>(ctx.self_index_at(ch)) &&
        (ctx.nbr_comm(ch, kMarriedVar) == kTrue ||
         ctx.nbr_comm(ch, kColorVar) < own_color)) {
      return kAbandon;
    }
  }

  if (pr == 0) {
    if (first_proposer(ctx) != 0) return kAccept;
    if (first_candidate(ctx) != 0) return kPropose;
  }

  return kDisabled;
}

void FullReadMatching::execute(int action, ActionContext& ctx) const {
  switch (action) {
    case kUpdate:
      ctx.set_comm(kMarriedVar, married(ctx) ? kTrue : kFalse);
      break;
    case kAbandon:
      ctx.set_comm(kPrVar, 0);
      break;
    case kAccept:
      ctx.set_comm(kPrVar, static_cast<Value>(first_proposer(ctx)));
      break;
    case kPropose:
      ctx.set_comm(kPrVar, static_cast<Value>(first_candidate(ctx)));
      break;
    default:
      SSS_ASSERT(false, "FULL-READ-MATCHING has exactly four actions");
  }
}

bool MutualPrMatchingProblem::holds(const Graph& g,
                                    const Configuration& config) const {
  return is_maximal_matching(g, extract_mutual_pr_edges(g, config));
}

}  // namespace sss
