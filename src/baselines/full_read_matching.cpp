#include "baselines/full_read_matching.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kUpdate = 0;
constexpr int kAbandon = 1;
constexpr int kAccept = 2;
constexpr int kPropose = 3;

constexpr Value kFalse = 0;
constexpr Value kTrue = 1;
}  // namespace

FullReadMatching::FullReadMatching(const Graph& g, Coloring colors)
    : colors_(std::move(colors)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-MATCHING requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "FULL-READ-MATCHING requires a proper coloring");
  const Value max_color = *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("M", VarDomain{kFalse, kTrue});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
}

void FullReadMatching::install_constants(const Graph& g,
                                         Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

bool FullReadMatching::married(const GuardContext& ctx) const {
  const Value pr = ctx.self_comm(kPrVar);
  if (pr == 0) return false;
  const auto ch = static_cast<NbrIndex>(pr);
  return ctx.nbr_comm(ch, kPrVar) ==
         static_cast<Value>(ctx.self_index_at(ch));
}

NbrIndex FullReadMatching::first_proposer(const GuardContext& ctx) const {
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    if (ctx.nbr_comm(ch, kPrVar) ==
        static_cast<Value>(ctx.self_index_at(ch))) {
      return ch;
    }
  }
  return 0;
}

NbrIndex FullReadMatching::first_candidate(const GuardContext& ctx) const {
  const Value own_color = ctx.self_comm(kColorVar);
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    if (ctx.nbr_comm(ch, kPrVar) == 0 &&
        ctx.nbr_comm(ch, kMarriedVar) == kFalse &&
        own_color < ctx.nbr_comm(ch, kColorVar)) {
      return ch;
    }
  }
  return 0;
}

int FullReadMatching::first_enabled(GuardContext& ctx) const {
  const Value pr = ctx.self_comm(kPrVar);
  const Value announced = ctx.self_comm(kMarriedVar);
  const Value own_color = ctx.self_comm(kColorVar);

  if ((announced == kTrue) != married(ctx)) return kUpdate;

  if (pr != 0) {
    const auto ch = static_cast<NbrIndex>(pr);
    const Value nbr_pr = ctx.nbr_comm(ch, kPrVar);
    if (nbr_pr != static_cast<Value>(ctx.self_index_at(ch)) &&
        (ctx.nbr_comm(ch, kMarriedVar) == kTrue ||
         ctx.nbr_comm(ch, kColorVar) < own_color)) {
      return kAbandon;
    }
  }

  if (pr == 0) {
    if (first_proposer(ctx) != 0) return kAccept;
    if (first_candidate(ctx) != 0) return kPropose;
  }

  return kDisabled;
}

void FullReadMatching::sweep_enabled_range(BulkGuardContext& ctx,
                                           EnabledBitmap& out, ProcessId begin,
                                           ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const NbrIndex* mirrors = g.csr_mirrors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  std::int8_t* actions = out.actions();
  // Scalar transcription; the early-exit proposer/candidate scans keep
  // their exact stopping points so the logged read prefixes match.
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value pr = row[kPrVar];
    const Value announced = row[kMarriedVar];
    const Value own_color = row[kColorVar];
    const std::int32_t begin = offsets[p];
    const std::int32_t end = offsets[p + 1];

    // married(ctx): one PR read of the pointed-at neighbor when pr != 0.
    bool is_married = false;
    if (pr != 0) {
      const std::size_t slot =
          static_cast<std::size_t>(begin + static_cast<std::int32_t>(pr) - 1);
      const ProcessId q = neighbors[slot];
      const Value nbr_pr = data[static_cast<std::size_t>(q) * stride + kPrVar];
      ctx.log(p, q, kPrVar);
      is_married = nbr_pr == static_cast<Value>(mirrors[slot]);
    }
    if ((announced == kTrue) != is_married) {
      actions[p] = static_cast<std::int8_t>(kUpdate);
      continue;
    }

    if (pr != 0) {
      // The scalar guard re-reads PR.(pr) here; the repeat is logged too.
      const std::size_t slot =
          static_cast<std::size_t>(begin + static_cast<std::int32_t>(pr) - 1);
      const ProcessId q = neighbors[slot];
      const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
      ctx.log(p, q, kPrVar);
      if (nbr_row[kPrVar] != static_cast<Value>(mirrors[slot])) {
        ctx.log(p, q, kMarriedVar);
        if (nbr_row[kMarriedVar] == kTrue) {
          actions[p] = static_cast<std::int8_t>(kAbandon);
          continue;
        }
        ctx.log(p, q, kColorVar);
        if (nbr_row[kColorVar] < own_color) {
          actions[p] = static_cast<std::int8_t>(kAbandon);
          continue;
        }
      }
      continue;  // pr != 0 and no abandon: disabled
    }

    // pr == 0: accept the first proposer, else propose to the first
    // free, unmarried, higher-colored neighbor.
    bool found = false;
    for (std::int32_t slot = begin; slot < end && !found; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      ctx.log(p, q, kPrVar);
      found = data[static_cast<std::size_t>(q) * stride + kPrVar] ==
              static_cast<Value>(mirrors[static_cast<std::size_t>(slot)]);
    }
    if (found) {
      actions[p] = static_cast<std::int8_t>(kAccept);
      continue;
    }
    for (std::int32_t slot = begin; slot < end && !found; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
      ctx.log(p, q, kPrVar);
      if (nbr_row[kPrVar] != 0) continue;
      ctx.log(p, q, kMarriedVar);
      if (nbr_row[kMarriedVar] != kFalse) continue;
      ctx.log(p, q, kColorVar);
      found = own_color < nbr_row[kColorVar];
    }
    if (found) actions[p] = static_cast<std::int8_t>(kPropose);
  }
}

void FullReadMatching::execute_selected(BulkExecContext& ctx,
                                        const EnabledBitmap& enabled,
                                        std::span<const ProcessId> selection,
                                        std::size_t begin,
                                        std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const NbrIndex* mirrors = g.csr_mirrors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  // The execute-time helpers (married / first_proposer / first_candidate)
  // re-read neighbors with the scalar actions' exact stopping points, so
  // the logged prefixes match.
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const std::int32_t nbr_begin = offsets[p];
    const std::int32_t nbr_end = offsets[p + 1];
    Value* out = ctx.stage(i, p);
    switch (action) {
      case kUpdate: {
        const Value pr = row[kPrVar];
        bool is_married = false;
        if (pr != 0) {
          const std::size_t slot = static_cast<std::size_t>(
              nbr_begin + static_cast<std::int32_t>(pr) - 1);
          const ProcessId q = neighbors[slot];
          const Value nbr_pr =
              data[static_cast<std::size_t>(q) * stride + kPrVar];
          ctx.log(p, q, kPrVar);
          is_married = nbr_pr == static_cast<Value>(mirrors[slot]);
        }
        out[kMarriedVar] = is_married ? kTrue : kFalse;
        break;
      }
      case kAbandon:
        out[kPrVar] = 0;
        break;
      case kAccept: {
        Value proposer = 0;
        for (std::int32_t slot = nbr_begin; slot < nbr_end; ++slot) {
          const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
          const Value nbr_pr =
              data[static_cast<std::size_t>(q) * stride + kPrVar];
          ctx.log(p, q, kPrVar);
          if (nbr_pr ==
              static_cast<Value>(mirrors[static_cast<std::size_t>(slot)])) {
            proposer = static_cast<Value>(slot - nbr_begin + 1);
            break;
          }
        }
        out[kPrVar] = proposer;
        break;
      }
      default: {  // kPropose
        const Value own_color = row[kColorVar];
        Value candidate = 0;
        for (std::int32_t slot = nbr_begin; slot < nbr_end; ++slot) {
          const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
          const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
          ctx.log(p, q, kPrVar);
          if (nbr_row[kPrVar] != 0) continue;
          ctx.log(p, q, kMarriedVar);
          if (nbr_row[kMarriedVar] != kFalse) continue;
          ctx.log(p, q, kColorVar);
          if (own_color < nbr_row[kColorVar]) {
            candidate = static_cast<Value>(slot - nbr_begin + 1);
            break;
          }
        }
        out[kPrVar] = candidate;
        break;
      }
    }
  }
}

void FullReadMatching::execute(int action, ActionContext& ctx) const {
  switch (action) {
    case kUpdate:
      ctx.set_comm(kMarriedVar, married(ctx) ? kTrue : kFalse);
      break;
    case kAbandon:
      ctx.set_comm(kPrVar, 0);
      break;
    case kAccept:
      ctx.set_comm(kPrVar, static_cast<Value>(first_proposer(ctx)));
      break;
    case kPropose:
      ctx.set_comm(kPrVar, static_cast<Value>(first_candidate(ctx)));
      break;
    default:
      SSS_ASSERT(false, "FULL-READ-MATCHING has exactly four actions");
  }
}

bool MutualPrMatchingProblem::holds(const Graph& g,
                                    const Configuration& config) const {
  return is_maximal_matching(g, extract_mutual_pr_edges(g, config));
}

}  // namespace sss
