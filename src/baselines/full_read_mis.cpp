#include "baselines/full_read_mis.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kRetreat = 0;
constexpr int kJoin = 1;
}  // namespace

FullReadMis::FullReadMis(const Graph& g, Coloring colors)
    : colors_(std::move(colors)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-MIS requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "FULL-READ-MIS requires a proper coloring");
  const Value max_color = *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("S", VarDomain{kOut, kIn});
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
}

void FullReadMis::install_constants(const Graph& g,
                                    Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

int FullReadMis::first_enabled(GuardContext& ctx) const {
  const Value own_state = ctx.self_comm(kStateVar);
  const Value own_color = ctx.self_comm(kColorVar);
  bool lower_in = false;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    const Value nbr_state = ctx.nbr_comm(ch, kStateVar);
    const Value nbr_color = ctx.nbr_comm(ch, kColorVar);
    if (nbr_color < own_color && nbr_state == kIn) lower_in = true;
  }
  if (own_state == kIn && lower_in) return kRetreat;
  if (own_state == kOut && !lower_in) return kJoin;
  return kDisabled;
}

void FullReadMis::execute(int action, ActionContext& ctx) const {
  switch (action) {
    case kRetreat:
      ctx.set_comm(kStateVar, kOut);
      break;
    case kJoin:
      ctx.set_comm(kStateVar, kIn);
      break;
    default:
      SSS_ASSERT(false, "FULL-READ-MIS has exactly two actions");
  }
}

}  // namespace sss
