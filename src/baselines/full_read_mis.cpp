#include "baselines/full_read_mis.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kRetreat = 0;
constexpr int kJoin = 1;
}  // namespace

FullReadMis::FullReadMis(const Graph& g, Coloring colors)
    : colors_(std::move(colors)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-MIS requires a connected network with n >= 2");
  SSS_REQUIRE(is_proper_coloring(g, colors_),
              "FULL-READ-MIS requires a proper coloring");
  const Value max_color = *std::max_element(colors_.begin(), colors_.end());
  spec_.comm.emplace_back("S", VarDomain{kOut, kIn});
  spec_.comm.emplace_back("C", VarDomain{1, max_color}, /*is_constant=*/true);
}

void FullReadMis::install_constants(const Graph& g,
                                    Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kColorVar,
                    static_cast<Value>(colors_[static_cast<std::size_t>(p)]));
  }
}

int FullReadMis::first_enabled(GuardContext& ctx) const {
  const Value own_state = ctx.self_comm(kStateVar);
  const Value own_color = ctx.self_comm(kColorVar);
  bool lower_in = false;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    const Value nbr_state = ctx.nbr_comm(ch, kStateVar);
    const Value nbr_color = ctx.nbr_comm(ch, kColorVar);
    if (nbr_color < own_color && nbr_state == kIn) lower_in = true;
  }
  if (own_state == kIn && lower_in) return kRetreat;
  if (own_state == kOut && !lower_in) return kJoin;
  return kDisabled;
}

void FullReadMis::sweep_enabled_range(BulkGuardContext& ctx,
                                      EnabledBitmap& out, ProcessId begin,
                                      ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value own_state = row[kStateVar];
    const Value own_color = row[kColorVar];
    const std::int32_t begin = offsets[p];
    const std::int32_t end = offsets[p + 1];
    // The scalar guard reads (state, color) of every neighbor with no
    // short-circuit, so the scan is branch-free and the log is the full
    // interleaved sequence.
    bool lower_in = false;
    for (std::int32_t slot = begin; slot < end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value* nbr_row = data + static_cast<std::size_t>(q) * stride;
      lower_in |=
          nbr_row[kColorVar] < own_color && nbr_row[kStateVar] == kIn;
    }
    for (std::int32_t slot = begin; slot < end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      ctx.log(p, q, kStateVar);
      ctx.log(p, q, kColorVar);
    }
    if (own_state == kIn && lower_in) {
      actions[p] = static_cast<std::int8_t>(kRetreat);
    } else if (own_state == kOut && !lower_in) {
      actions[p] = static_cast<std::int8_t>(kJoin);
    }
  }
}

void FullReadMis::execute_selected(BulkExecContext& ctx,
                                   const EnabledBitmap& enabled,
                                   std::span<const ProcessId> selection,
                                   std::size_t begin, std::size_t end) const {
  // Both actions write only the own state bit — the kernel is pure memo
  // replay plus a one-slot overwrite.
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    Value* out = ctx.stage(i, p);
    out[kStateVar] = action == kRetreat ? kOut : kIn;
  }
}

void FullReadMis::execute(int action, ActionContext& ctx) const {
  switch (action) {
    case kRetreat:
      ctx.set_comm(kStateVar, kOut);
      break;
    case kJoin:
      ctx.set_comm(kStateVar, kIn);
      break;
    default:
      SSS_ASSERT(false, "FULL-READ-MIS has exactly two actions");
  }
}

}  // namespace sss
