#pragma once
/// \file full_read_matching.hpp
/// The status-quo comparator for Protocol MATCHING: the self-stabilizing
/// maximal matching of Manne, Mjelde, Pilard & Tixeuil [17], with colors
/// playing the role of the identifiers. Every guard scans the entire
/// neighborhood (Delta-efficient). Figure 10 of the paper is this protocol
/// *plus* the cur-pointer discipline that brings reads down to one
/// neighbor per step; keeping the two in the same repository makes the
/// communication savings directly measurable.
///
///   Update:     M.p ≠ married(p)                     -> M.p <- married(p)
///   Abandon:    PR.p = q ∧ PR.q ≠ p ∧
///               (M.q ∨ C.q < C.p)                    -> PR.p <- 0
///   Accept:     PR.p = 0 ∧ ∃q: PR.q = p              -> PR.p <- min such q
///   Propose:    PR.p = 0 ∧ ∄q: PR.q = p ∧
///               ∃q: PR.q = 0 ∧ ¬M.q ∧ C.p < C.q      -> PR.p <- min such q
///
/// where married(p) ≡ ∃q: PR.p = q ∧ PR.q = p.

#include <string>

#include "core/problems.hpp"
#include "graph/coloring.hpp"
#include "runtime/protocol.hpp"

namespace sss {

class FullReadMatching final : public Protocol {
 public:
  static constexpr int kMarriedVar = 0;  ///< comm: M
  static constexpr int kPrVar = 1;       ///< comm: PR
  static constexpr int kColorVar = 2;    ///< comm constant: C

  FullReadMatching(const Graph& g, Coloring colors);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 4; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

 private:
  /// married(p): PR.p points at a neighbor whose PR points back.
  bool married(const GuardContext& ctx) const;
  /// Lowest channel whose neighbor proposes to p (PR.q = p), or 0.
  NbrIndex first_proposer(const GuardContext& ctx) const;
  /// Lowest channel holding a free, unmarried, higher-colored neighbor,
  /// or 0.
  NbrIndex first_candidate(const GuardContext& ctx) const;

  std::string name_ = "FULL-READ-MATCHING";
  Coloring colors_;
  ProtocolSpec spec_;
};

/// Legitimacy for the baseline's layout: the mutually-pointing PR pairs
/// form a maximal matching. (The cur-based predicate of Section 5.3 does
/// not apply — the baseline has no cur.) Registered in the
/// ProblemRegistry as "mutual-pr-matching", which is what pairs the
/// baseline with a sound predicate in the registry-wide property harness.
class MutualPrMatchingProblem final : public Problem {
 public:
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "mutual-pr-matching";
};

}  // namespace sss
