#include "baselines/full_read_coloring.hpp"

#include <algorithm>
#include <vector>

#include "support/require.hpp"

namespace sss {

FullReadColoring::FullReadColoring(const Graph& g, int palette_size)
    : palette_size_(palette_size == 0 ? g.max_degree() + 1 : palette_size) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-COLORING requires a connected network with n >= 2");
  SSS_REQUIRE(palette_size_ >= g.max_degree() + 1,
              "palette must have at least Delta+1 colors");
  spec_.comm.emplace_back("C", VarDomain{1, static_cast<Value>(palette_size_)});
}

int FullReadColoring::first_enabled(GuardContext& ctx) const {
  const Value own = ctx.self_comm(kColorVar);
  // Local checking: scan the entire neighborhood for a conflict.
  bool conflict = false;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    if (ctx.nbr_comm(ch, kColorVar) == own) conflict = true;
  }
  return conflict ? 0 : kDisabled;
}

void FullReadColoring::sweep_enabled_range(BulkGuardContext& ctx,
                                           EnabledBitmap& out, ProcessId begin,
                                           ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value own = data[static_cast<std::size_t>(p) * stride + kColorVar];
    const std::int32_t begin = offsets[p];
    const std::int32_t end = offsets[p + 1];
    // The whole-neighborhood conflict scan of the scalar guard, as a
    // branch-free OR over the contiguous CSR slice (the guard never
    // short-circuits, so every read is logged either way).
    bool conflict = false;
    for (std::int32_t slot = begin; slot < end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      conflict |=
          data[static_cast<std::size_t>(q) * stride + kColorVar] == own;
    }
    for (std::int32_t slot = begin; slot < end; ++slot) {
      ctx.log(p, neighbors[static_cast<std::size_t>(slot)], kColorVar);
    }
    actions[p] = static_cast<std::int8_t>(conflict ? 0 : kDisabled);
  }
}

void FullReadColoring::execute_selected(BulkExecContext& ctx,
                                        const EnabledBitmap& enabled,
                                        std::span<const ProcessId> selection,
                                        std::size_t begin,
                                        std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  // Scratch hoisted out of the loop (the scalar action allocates both per
  // call); refilled per process, so the free-color order — and with it
  // the picked index — matches the scalar action exactly.
  std::vector<bool> used(static_cast<std::size_t>(palette_size_) + 1, false);
  std::vector<Value> free_colors;
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    if (enabled.action(p) == kDisabled) continue;
    const std::int32_t nbr_begin = offsets[p];
    const std::int32_t nbr_end = offsets[p + 1];
    std::fill(used.begin(), used.end(), false);
    for (std::int32_t slot = nbr_begin; slot < nbr_end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value c = data[static_cast<std::size_t>(q) * stride + kColorVar];
      used[static_cast<std::size_t>(c)] = true;
      ctx.log(p, q, kColorVar);
    }
    free_colors.clear();
    for (Value c = 1; c <= static_cast<Value>(palette_size_); ++c) {
      if (!used[static_cast<std::size_t>(c)]) free_colors.push_back(c);
    }
    SSS_ASSERT(!free_colors.empty(),
               "a Delta+1 palette always leaves a free color");
    const auto pick = static_cast<std::size_t>(ctx.random_range(
        0, static_cast<Value>(free_colors.size()) - 1));
    Value* out = ctx.stage(i, p);
    out[kColorVar] = free_colors[pick];
  }
}

void FullReadColoring::execute(int action, ActionContext& ctx) const {
  SSS_ASSERT(action == 0, "FULL-READ-COLORING has one action");
  std::vector<bool> used(static_cast<std::size_t>(palette_size_) + 1, false);
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    const Value c = ctx.nbr_comm(ch, kColorVar);
    used[static_cast<std::size_t>(c)] = true;
  }
  std::vector<Value> free_colors;
  for (Value c = 1; c <= static_cast<Value>(palette_size_); ++c) {
    if (!used[static_cast<std::size_t>(c)]) free_colors.push_back(c);
  }
  SSS_ASSERT(!free_colors.empty(),
             "a Delta+1 palette always leaves a free color");
  const auto pick = static_cast<std::size_t>(ctx.random_range(
      0, static_cast<Value>(free_colors.size()) - 1));
  ctx.set_comm(kColorVar, free_colors[pick]);
}

}  // namespace sss
