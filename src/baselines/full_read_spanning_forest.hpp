#pragma once
/// \file full_read_spanning_forest.hpp
/// The status-quo comparator for Protocol SPANNING-FOREST: the classic
/// silent BFS forest construction in which every guard evaluation scans
/// the *entire* neighborhood for the minimum claimed distance
/// (Delta-efficient). One action recomputes D.p as min(min_q D.q + 1, n-1)
/// and repoints PR.p at the first minimizing channel; every root pins
/// itself at distance 0. Converges in O(n) rounds, but charges Delta
/// distance reads per step where SPANNING-FOREST charges 2.

#include <string>
#include <vector>

#include "runtime/protocol.hpp"

namespace sss {

class FullReadSpanningForest final : public Protocol {
 public:
  /// Same communication layout as SpanningForestProtocol (minus cur):
  /// predicates apply to both.
  static constexpr int kDistVar = 0;    ///< comm: D
  static constexpr int kParentVar = 1;  ///< comm: PR
  static constexpr int kRootVar = 2;    ///< comm constant: R

  FullReadSpanningForest(const Graph& g, std::vector<ProcessId> roots);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;
  void install_constants(const Graph& g, Configuration& config) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  const std::vector<ProcessId>& roots() const { return roots_; }
  Value max_distance() const { return max_distance_; }

 private:
  std::string name_ = "FULL-READ-SPANNING-FOREST";
  std::vector<ProcessId> roots_;
  Value max_distance_;
  ProtocolSpec spec_;
};

}  // namespace sss
