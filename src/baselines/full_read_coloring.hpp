#pragma once
/// \file full_read_coloring.hpp
/// The status-quo comparator for Protocol COLORING: a randomized
/// self-stabilizing (Delta+1)-coloring in the style of Gradinariu & Tixeuil
/// [12] that reads *every* neighbor at every step (Delta-efficient, the
/// baseline the paper's Section 3.2 charges Delta*log2(Delta+1) bits per
/// step). On a conflict the process redraws uniformly among the colors not
/// used by any neighbor, which exists because the palette has Delta+1
/// colors.

#include <string>

#include "runtime/protocol.hpp"

namespace sss {

class FullReadColoring final : public Protocol {
 public:
  static constexpr int kColorVar = 0;  ///< comm

  explicit FullReadColoring(const Graph& g, int palette_size = 0);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 1; }
  bool is_probabilistic() const override { return true; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;

  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override;

  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection, std::size_t begin,
                        std::size_t end) const override;

  int palette_size() const { return palette_size_; }

 private:
  std::string name_ = "FULL-READ-COLORING";
  int palette_size_;
  ProtocolSpec spec_;
};

}  // namespace sss
