#include "baselines/full_read_spanning_forest.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kFixRoot = 0;
constexpr int kRecompute = 1;
}  // namespace

FullReadSpanningForest::FullReadSpanningForest(const Graph& g,
                                               std::vector<ProcessId> roots)
    : roots_(std::move(roots)),
      max_distance_(static_cast<Value>(g.num_vertices() - 1)) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "FULL-READ-SPANNING-FOREST requires a connected network with "
              "n >= 2");
  SSS_REQUIRE(!roots_.empty(),
              "FULL-READ-SPANNING-FOREST needs at least one root");
  std::sort(roots_.begin(), roots_.end());
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    SSS_REQUIRE(roots_[i] >= 0 && roots_[i] < g.num_vertices(),
                "FULL-READ-SPANNING-FOREST roots must be process ids in "
                "[0, n)");
    SSS_REQUIRE(i == 0 || roots_[i] != roots_[i - 1],
                "FULL-READ-SPANNING-FOREST roots must be distinct");
  }
  spec_.comm.emplace_back("D", VarDomain{0, max_distance_});
  spec_.comm.emplace_back("PR", domain_channel_or_none());
  spec_.comm.emplace_back("R", VarDomain{0, 1}, /*is_constant=*/true);
}

void FullReadSpanningForest::install_constants(const Graph& g,
                                               Configuration& config) const {
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, kRootVar, 0);
  }
  for (const ProcessId root : roots_) config.set_comm(root, kRootVar, 1);
}

int FullReadSpanningForest::first_enabled(GuardContext& ctx) const {
  const Value dist = ctx.self_comm(kDistVar);
  const Value parent = ctx.self_comm(kParentVar);
  if (ctx.self_comm(kRootVar) == 1) {
    return (dist != 0 || parent != 0) ? kFixRoot : kDisabled;
  }
  // Local checking reads the whole neighborhood (the Delta-efficient
  // baseline cost the paper's Section 3 charges).
  Value best = max_distance_;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    best = std::min(best, ctx.nbr_comm(ch, kDistVar));
  }
  const Value target = std::min<Value>(best + 1, max_distance_);
  if (dist != target) return kRecompute;
  if (parent == 0 ||
      ctx.nbr_comm(static_cast<NbrIndex>(parent), kDistVar) != best) {
    return kRecompute;
  }
  return kDisabled;
}

void FullReadSpanningForest::sweep_enabled_range(BulkGuardContext& ctx,
                                                 EnabledBitmap& out,
                                                 ProcessId begin,
                                                 ProcessId end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  std::int8_t* actions = out.actions();
  for (ProcessId p = begin; p < end; ++p) {
    const Value* row = data + static_cast<std::size_t>(p) * stride;
    const Value dist = row[kDistVar];
    const Value parent = row[kParentVar];
    if (row[kRootVar] == 1) {
      actions[p] = static_cast<std::int8_t>(
          (dist != 0 || parent != 0) ? kFixRoot : kDisabled);
      continue;
    }
    const std::int32_t begin_slot = offsets[p];
    const std::int32_t end_slot = offsets[p + 1];
    // Branch-free min over the contiguous neighborhood slice; the scalar
    // guard reads every neighbor unconditionally.
    Value best = max_distance_;
    for (std::int32_t slot = begin_slot; slot < end_slot; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      best = std::min(best,
                      data[static_cast<std::size_t>(q) * stride + kDistVar]);
    }
    for (std::int32_t slot = begin_slot; slot < end_slot; ++slot) {
      ctx.log(p, neighbors[static_cast<std::size_t>(slot)], kDistVar);
    }
    const Value target = std::min<Value>(best + 1, max_distance_);
    if (dist != target) {
      actions[p] = static_cast<std::int8_t>(kRecompute);
      continue;
    }
    if (parent == 0) {
      actions[p] = static_cast<std::int8_t>(kRecompute);
      continue;
    }
    const ProcessId parent_nbr = neighbors[static_cast<std::size_t>(
        begin_slot + static_cast<std::int32_t>(parent) - 1)];
    const Value parent_dist =
        data[static_cast<std::size_t>(parent_nbr) * stride + kDistVar];
    ctx.log(p, parent_nbr, kDistVar);
    if (parent_dist != best) {
      actions[p] = static_cast<std::int8_t>(kRecompute);
    }
  }
}

void FullReadSpanningForest::execute_selected(
    BulkExecContext& ctx, const EnabledBitmap& enabled,
    std::span<const ProcessId> selection, std::size_t begin,
    std::size_t end) const {
  const Graph& g = ctx.graph();
  const Configuration& cfg = ctx.config();
  const std::int32_t* offsets = g.csr_offsets().data();
  const ProcessId* neighbors = g.csr_neighbors().data();
  const Value* data = cfg.row(0);
  const auto stride = static_cast<std::size_t>(cfg.stride());
  for (std::size_t i = begin; i < end; ++i) {
    const ProcessId p = selection[i];
    ctx.replay_guard_reads(p);
    const int action = enabled.action(p);
    if (action == kDisabled) continue;
    Value* out = ctx.stage(i, p);
    if (action == kFixRoot) {
      out[kDistVar] = 0;
      out[kParentVar] = 0;
      continue;
    }
    // kRecompute re-reads the whole neighborhood at execute time (every
    // read logged, channel order), keeping the first channel achieving
    // the minimum — the scalar strict-< update rule.
    const std::int32_t nbr_begin = offsets[p];
    const std::int32_t nbr_end = offsets[p + 1];
    Value best = max_distance_;
    Value best_channel = 1;
    for (std::int32_t slot = nbr_begin; slot < nbr_end; ++slot) {
      const ProcessId q = neighbors[static_cast<std::size_t>(slot)];
      const Value d = data[static_cast<std::size_t>(q) * stride + kDistVar];
      ctx.log(p, q, kDistVar);
      if (d < best) {
        best = d;
        best_channel = static_cast<Value>(slot - nbr_begin + 1);
      }
    }
    out[kDistVar] = std::min<Value>(best + 1, max_distance_);
    out[kParentVar] = best_channel;
  }
}

void FullReadSpanningForest::execute(int action, ActionContext& ctx) const {
  if (action == kFixRoot) {
    ctx.set_comm(kDistVar, 0);
    ctx.set_comm(kParentVar, 0);
    return;
  }
  SSS_ASSERT(action == kRecompute,
             "FULL-READ-SPANNING-FOREST has two actions");
  Value best = max_distance_;
  NbrIndex best_channel = 1;
  for (NbrIndex ch = 1; ch <= ctx.degree(); ++ch) {
    const Value d = ctx.nbr_comm(ch, kDistVar);
    if (d < best) {
      best = d;
      best_channel = ch;
    }
  }
  ctx.set_comm(kDistVar, std::min<Value>(best + 1, max_distance_));
  ctx.set_comm(kParentVar, static_cast<Value>(best_channel));
}

}  // namespace sss
