#pragma once
/// \file theorem2.hpp
/// Executable Theorem 2 (Figures 3-6): even on a *rooted, dag-oriented*
/// network, no always-k-stable neighbor-complete protocol exists for
/// k < Delta.
///
/// The network is the 6-cycle p1-p2-p5-p4-p6-p3 of Figure 3, rooted at p1
/// and oriented with p1, p4 as sources and p5, p6 as sinks. A k-stable
/// candidate must fix, per process, which neighbor it never reads; the port
/// numbering below realizes Figure 4(a)/(b): the edges p2-p5 and p4-p6 are
/// read by neither endpoint. Splicing the states {p1,p2,p3,p6} of one
/// silent run with the states {p4,p5} of another (Figure 4(c)) yields a
/// configuration that is silent by construction; searching run pairs whose
/// colors collide across the unread edge makes it violate the predicate.

#include <cstdint>

#include "graph/builders.hpp"
#include "impossibility/theorem1.hpp"

namespace sss {

/// The Figure 3 network with the adversarial port numbering (channel 1:
/// p1->p2, p2->p1, p3->p1, p4->p5, p5->p4, p6->p3). Vertices 0..5 stand
/// for p1..p6.
Graph theorem2_ports();

/// The fixed dag orientation and root of Figure 3 for the port-numbered
/// gadget (context of the theorem; the candidate is free to ignore it,
/// which only strengthens the refutation).
RootedDag theorem2_rooted_dag();

/// Figure 4 construction for LazyScanColoring on the gadget: silent runs
/// are spliced as {p1,p2,p3,p6 | p4,p5} until the colors of p2 and p5
/// collide across the unread edge. Returns the certified outcome.
StitchOutcome theorem2_gadget_stitch(int palette_size, std::uint64_t seed,
                                     int max_search_runs = 512);

}  // namespace sss
