#pragma once
/// \file lazy_protocols.hpp
/// The "cheating" candidate protocols that the impossibility constructions
/// refute.
///
/// Theorem 1 says no ♦-k-stable neighbor-complete protocol exists for
/// k < Delta; Theorem 2 strengthens this for always-k-stable protocols even
/// on rooted dag-oriented networks. To *execute* those proofs we need a
/// concrete k-stable candidate: `LazyScanColoring` is Protocol COLORING
/// with its cur pointer confined to channels 1..max(1, delta.p - 1) — each
/// process simply never looks at its last channel, making the protocol
/// (Delta-1)-stable by construction. On friendly port numberings it colors
/// the network perfectly well; the constructions of theorem1.hpp and
/// theorem2.hpp pick the port numberings adversarially and exhibit silent
/// illegitimate configurations, mechanically confirming it is not
/// self-stabilizing — exactly the paper's argument.

#include <string>

#include "runtime/protocol.hpp"

namespace sss {

class LazyScanColoring final : public Protocol {
 public:
  static constexpr int kColorVar = 0;  ///< comm
  static constexpr int kCurVar = 0;    ///< internal

  /// Requires palette_size >= Delta+1 (same palette as Protocol COLORING).
  explicit LazyScanColoring(const Graph& g, int palette_size = 0);

  const std::string& name() const override { return name_; }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  bool is_probabilistic() const override { return true; }

  int first_enabled(GuardContext& ctx) const override;
  void execute(int action, ActionContext& ctx) const override;

  int palette_size() const { return palette_size_; }

  /// Channels a process of degree `degree` ever scans: 1..scan_limit.
  static int scan_limit(int degree) { return degree > 1 ? degree - 1 : 1; }

 private:
  std::string name_ = "LAZY-SCAN-COLORING";
  int palette_size_;
  ProtocolSpec spec_;
};

}  // namespace sss
