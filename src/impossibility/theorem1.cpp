#include "impossibility/theorem1.hpp"

#include <map>
#include <optional>

#include "impossibility/lazy_protocols.hpp"
#include "runtime/engine.hpp"
#include "runtime/quiescence.hpp"
#include "support/require.hpp"

namespace sss {

Graph chain_reading_left(int n) {
  SSS_REQUIRE(n >= 2, "chain needs n >= 2");
  std::vector<std::vector<ProcessId>> ports(static_cast<std::size_t>(n));
  ports[0] = {1};
  for (int i = 1; i + 1 < n; ++i) {
    ports[static_cast<std::size_t>(i)] = {i - 1, i + 1};  // channel 1 = left
  }
  ports[static_cast<std::size_t>(n - 1)] = {n - 2};
  Graph g = Graph::from_ports(ports);
  g.set_name("chain-left(" + std::to_string(n) + ")");
  return g;
}

Graph chain7_mixed() {
  // Positions 0..2 keep channel 1 = left; positions 3..5 flip to channel
  // 1 = right; 6 is the right endpoint. The unread edge is {2,3}.
  std::vector<std::vector<ProcessId>> ports = {
      {1}, {0, 2}, {1, 3}, {4, 2}, {5, 3}, {6, 4}, {5}};
  Graph g = Graph::from_ports(ports);
  g.set_name("chain7-mixed(fig1c)");
  return g;
}

namespace {

/// Runs LazyScanColoring on `g` from a fresh random configuration until
/// silence; returns the silent configuration, or nullopt on step budget
/// exhaustion (does not happen for the chain at these sizes).
std::optional<Configuration> silent_run(const Graph& g,
                                        const LazyScanColoring& protocol,
                                        std::uint64_t seed) {
  Engine engine(g, protocol, make_distributed_random_daemon(), seed);
  engine.randomize_state();
  RunOptions options;
  options.max_steps = 200'000;
  const RunStats stats = engine.run(options);
  if (!stats.silent) return std::nullopt;
  return engine.config();
}

}  // namespace

StitchOutcome theorem1_chain_stitch(int palette_size, std::uint64_t seed,
                                    int max_search_runs) {
  const Graph chain5 = chain_reading_left(5);
  const LazyScanColoring protocol5(chain5, palette_size);

  // The proof's p3 is the center (position 2); its p4 is position 3.
  constexpr ProcessId kSpliceA = 2;
  constexpr ProcessId kSpliceB = 3;

  // Search silent configurations until one pair agrees on the color across
  // the future hidden edge — the communication states alpha_3 and alpha_4.
  std::map<Value, Configuration> by_color_at_a;
  std::map<Value, Configuration> by_color_at_b;
  std::optional<Configuration> gamma_a;
  std::optional<Configuration> gamma_b;
  int runs = 0;
  Rng seeder(seed);
  while (runs < max_search_runs && (!gamma_a || !gamma_b)) {
    ++runs;
    const auto silent = silent_run(chain5, protocol5, seeder());
    if (!silent) continue;
    const bool to_a = runs % 2 == 1;
    const ProcessId target = to_a ? kSpliceA : kSpliceB;
    const Value color = silent->comm(target, LazyScanColoring::kColorVar);
    auto& own_bucket = to_a ? by_color_at_a : by_color_at_b;
    const auto& other_bucket = to_a ? by_color_at_b : by_color_at_a;
    own_bucket.emplace(color, *silent);
    const auto match = other_bucket.find(color);
    if (match != other_bucket.end()) {
      gamma_a = to_a ? *silent : match->second;
      gamma_b = to_a ? match->second : *silent;
    }
  }
  SSS_REQUIRE(gamma_a && gamma_b,
              "no matching silent pair found (raise max_search_runs)");

  // Figure 1(c): positions 0..2 from gamma_a (p1..p3), positions 3..6 from
  // gamma_b reversed (p4, p3, p2, p1).
  Graph chain7 = chain7_mixed();
  const LazyScanColoring protocol7(chain7, palette_size);
  Configuration stitched(chain7, protocol7.spec());
  stitched.copy_process_state(0, *gamma_a, 0);
  stitched.copy_process_state(1, *gamma_a, 1);
  stitched.copy_process_state(2, *gamma_a, 2);
  stitched.copy_process_state(3, *gamma_b, 3);
  stitched.copy_process_state(4, *gamma_b, 2);
  stitched.copy_process_state(5, *gamma_b, 1);
  stitched.copy_process_state(6, *gamma_b, 0);

  StitchOutcome outcome{chain7, stitched};
  outcome.search_runs = runs;
  outcome.silent = is_comm_quiescent(chain7, protocol7, stitched);
  outcome.violates_predicate =
      !ColoringProblem(LazyScanColoring::kColorVar).holds(chain7, stitched);
  return outcome;
}

Graph spider_with_hidden_edge(int delta) {
  SSS_REQUIRE(delta >= 2, "spider requires delta >= 2");
  const int n = delta * delta + 1;
  std::vector<std::vector<ProcessId>> ports(static_cast<std::size_t>(n));
  // Vertex 0 = center; 1..delta = middles; pendants follow.
  // Center's LAST channel is middle 1, so the center never scans it.
  for (int i = 2; i <= delta; ++i) ports[0].push_back(i);
  ports[0].push_back(1);
  int next = delta + 1;
  for (int i = 1; i <= delta; ++i) {
    auto& mid = ports[static_cast<std::size_t>(i)];
    if (i == 1) {
      // Middle 1: pendants first, center last (never scanned).
      for (int l = 0; l < delta - 1; ++l) {
        mid.push_back(next);
        ports[static_cast<std::size_t>(next)].push_back(i);
        ++next;
      }
      mid.push_back(0);
    } else {
      // Other middles: center first, then pendants (the last pendant is
      // unscanned by the middle but scans the middle itself).
      mid.push_back(0);
      for (int l = 0; l < delta - 1; ++l) {
        mid.push_back(next);
        ports[static_cast<std::size_t>(next)].push_back(i);
        ++next;
      }
    }
  }
  SSS_ASSERT(next == n, "spider must have delta^2 + 1 vertices");
  Graph g = Graph::from_ports(ports);
  g.set_name("spider-hidden(" + std::to_string(delta) + ")");
  return g;
}

StitchOutcome theorem1_spider_counterexample(int delta) {
  Graph spider = spider_with_hidden_edge(delta);
  const LazyScanColoring protocol(spider, delta + 1);
  Configuration config(spider, protocol.spec());

  // Explicit silent illegitimate configuration: center and middle 1 share
  // color 1 across the edge neither scans; every scanned edge is proper.
  auto set_color = [&](ProcessId p, Value c) {
    config.set_comm(p, LazyScanColoring::kColorVar, c);
    config.set_internal(p, LazyScanColoring::kCurVar, 1);
  };
  set_color(0, 1);  // center
  set_color(1, 1);  // middle 1 — the violation
  for (ProcessId m = 2; m <= delta; ++m) set_color(m, 2);
  for (ProcessId p = delta + 1; p < spider.num_vertices(); ++p) {
    // Pendants: differ from their middle. Middle 1 has color 1, others 2.
    const ProcessId parent = spider.neighbors(p).front();
    set_color(p, parent == 1 ? 2 : 3);
  }

  StitchOutcome outcome{spider, config};
  outcome.silent = is_comm_quiescent(spider, protocol, config);
  outcome.violates_predicate =
      !ColoringProblem(LazyScanColoring::kColorVar).holds(spider, config);
  return outcome;
}

double theorem1_spider_failure_rate(int delta, int runs, std::uint64_t seed) {
  SSS_REQUIRE(runs >= 1, "need at least one run");
  const Graph spider = spider_with_hidden_edge(delta);
  const LazyScanColoring protocol(spider, delta + 1);
  const ColoringProblem problem(LazyScanColoring::kColorVar);
  Rng seeder(seed);
  int failures = 0;
  for (int r = 0; r < runs; ++r) {
    const auto silent = silent_run(spider, protocol, seeder());
    if (silent && !problem.holds(spider, *silent)) ++failures;
  }
  return static_cast<double>(failures) / runs;
}

}  // namespace sss
