#include "impossibility/theorem2.hpp"

#include <map>
#include <optional>

#include "core/problems.hpp"
#include "impossibility/lazy_protocols.hpp"
#include "runtime/engine.hpp"
#include "runtime/quiescence.hpp"
#include "support/require.hpp"

namespace sss {

namespace {
constexpr ProcessId kP1 = 0, kP2 = 1, kP3 = 2, kP4 = 3, kP5 = 4, kP6 = 5;
}  // namespace

Graph theorem2_ports() {
  // 6-cycle p1-p2-p5-p4-p6-p3-p1. Channel 1 (the only scanned channel of a
  // degree-2 process under LazyScanColoring) realizes Figure 4: p2 and p5
  // do not read each other, nor do p4 and p6.
  std::vector<std::vector<ProcessId>> ports(6);
  ports[kP1] = {kP2, kP3};
  ports[kP2] = {kP1, kP5};
  ports[kP3] = {kP1, kP6};
  ports[kP4] = {kP5, kP6};
  ports[kP5] = {kP4, kP2};
  ports[kP6] = {kP3, kP4};
  Graph g = Graph::from_ports(ports);
  g.set_name("thm2-gadget(fig3)");
  return g;
}

RootedDag theorem2_rooted_dag() {
  RootedDag dag{theorem2_ports(), kP1,
                {{kP1, kP2},
                 {kP1, kP3},
                 {kP2, kP5},
                 {kP3, kP6},
                 {kP4, kP5},
                 {kP4, kP6}}};
  return dag;
}

StitchOutcome theorem2_gadget_stitch(int palette_size, std::uint64_t seed,
                                     int max_search_runs) {
  const Graph gadget = theorem2_ports();
  const LazyScanColoring protocol(gadget, palette_size);
  const ColoringProblem problem(LazyScanColoring::kColorVar);

  RunOptions options;
  options.max_steps = 200'000;

  // Search for gamma_2 (provides p1,p2,p3,p6) and gamma_5 (provides p4,p5)
  // with C.p2 = C.p5 — the collision across the unread edge p2-p5.
  std::map<Value, Configuration> by_color_p2;
  std::map<Value, Configuration> by_color_p5;
  std::optional<Configuration> gamma_2;
  std::optional<Configuration> gamma_5;
  int runs = 0;
  Rng seeder(seed);
  while (runs < max_search_runs && (!gamma_2 || !gamma_5)) {
    ++runs;
    Engine engine(gadget, protocol, make_distributed_random_daemon(),
                  seeder());
    engine.randomize_state();
    const RunStats stats = engine.run(options);
    if (!stats.silent) continue;
    const Configuration& silent = engine.config();
    const bool to_2 = runs % 2 == 1;
    const ProcessId target = to_2 ? kP2 : kP5;
    const Value color = silent.comm(target, LazyScanColoring::kColorVar);
    auto& own_bucket = to_2 ? by_color_p2 : by_color_p5;
    const auto& other_bucket = to_2 ? by_color_p5 : by_color_p2;
    own_bucket.emplace(color, silent);
    const auto match = other_bucket.find(color);
    if (match != other_bucket.end()) {
      gamma_2 = to_2 ? silent : match->second;
      gamma_5 = to_2 ? match->second : silent;
    }
  }
  SSS_REQUIRE(gamma_2 && gamma_5,
              "no matching silent pair found (raise max_search_runs)");

  // Figure 4(c): {p1,p2,p3,p6} from gamma_2, {p4,p5} from gamma_5. Every
  // scanned edge lies inside one source, so silence is inherited.
  Configuration stitched(gadget, protocol.spec());
  stitched.copy_process_state(kP1, *gamma_2, kP1);
  stitched.copy_process_state(kP2, *gamma_2, kP2);
  stitched.copy_process_state(kP3, *gamma_2, kP3);
  stitched.copy_process_state(kP6, *gamma_2, kP6);
  stitched.copy_process_state(kP4, *gamma_5, kP4);
  stitched.copy_process_state(kP5, *gamma_5, kP5);

  StitchOutcome outcome{gadget, stitched};
  outcome.search_runs = runs;
  outcome.silent = is_comm_quiescent(gadget, protocol, stitched);
  outcome.violates_predicate = !problem.holds(gadget, stitched);
  return outcome;
}

}  // namespace sss
