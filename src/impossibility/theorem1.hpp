#pragma once
/// \file theorem1.hpp
/// Executable Theorem 1 (Figures 1-2): no ♦-k-stable neighbor-complete
/// protocol exists in anonymous networks of degree Delta > k.
///
/// The proof is constructive: take a candidate that eventually stops
/// reading one neighbor, run it to silence twice on a 5-process chain,
/// splice the two silent configurations into a 7-process chain whose port
/// numbering hides the middle edge from both endpoints, and observe a
/// configuration that is silent yet violates the predicate — so the
/// candidate is not self-stabilizing. This module performs exactly that
/// splice for `LazyScanColoring` and checks both properties mechanically.

#include <cstdint>

#include "core/problems.hpp"
#include "runtime/configuration.hpp"

namespace sss {

/// Result of a stitching construction. `silent` and `violates_predicate`
/// are established by the exact quiescence check and the problem predicate
/// respectively — both must be true for the construction to succeed.
struct StitchOutcome {
  Graph graph;
  Configuration config;
  bool silent = false;
  bool violates_predicate = false;
  /// Number of silent runs searched to match the communication states
  /// (the proof's "there exist silent configurations gamma_3, gamma_4").
  int search_runs = 0;
};

/// Port-labeled path of n vertices where every inner process's channel 1 is
/// its left neighbor — under LazyScanColoring, everyone scans leftward.
Graph chain_reading_left(int n);

/// The 7-chain of Figure 1(c): positions 0..2 scan left, 3..5 scan right,
/// so the edge between positions 2 and 3 is read by neither endpoint.
Graph chain7_mixed();

/// Figure 1 construction: searches silent runs of LazyScanColoring on the
/// 5-chain until two have matching colors at the splice processes, then
/// stitches them into chain7_mixed and certifies silence + violation.
StitchOutcome theorem1_chain_stitch(int palette_size, std::uint64_t seed,
                                    int max_search_runs = 256);

/// Figure 2 generalization: the Delta-spider whose ports hide the
/// center-to-first-middle edge from both endpoints.
Graph spider_with_hidden_edge(int delta);

/// Builds the silent illegitimate configuration on the hidden-edge spider
/// (center and first middle share a color across the unread edge) and
/// certifies it. Deterministic: the configuration is explicit, as in the
/// paper's generalization.
StitchOutcome theorem1_spider_counterexample(int delta);

/// Empirical support: fraction of `runs` random-start executions of
/// LazyScanColoring on the hidden-edge spider that end in a *silent but
/// illegitimate* configuration (each such run is itself a counterexample).
double theorem1_spider_failure_rate(int delta, int runs, std::uint64_t seed);

}  // namespace sss
