#include "impossibility/lazy_protocols.hpp"

#include "support/require.hpp"

namespace sss {

namespace {
constexpr int kConflict = 0;
constexpr int kAdvance = 1;
}  // namespace

LazyScanColoring::LazyScanColoring(const Graph& g, int palette_size)
    : palette_size_(palette_size == 0 ? g.max_degree() + 1 : palette_size) {
  SSS_REQUIRE(g.num_vertices() >= 2 && g.min_degree() >= 1,
              "LAZY-SCAN-COLORING requires a connected network with n >= 2");
  SSS_REQUIRE(palette_size_ >= g.max_degree() + 1,
              "palette must have at least Delta+1 colors");
  spec_.comm.emplace_back("C",
                          VarDomain{1, static_cast<Value>(palette_size_)});
  spec_.internal.emplace_back(
      "cur", [](const Graph& graph, ProcessId p) {
        return VarDomain{1, static_cast<Value>(scan_limit(graph.degree(p)))};
      });
}

int LazyScanColoring::first_enabled(GuardContext& ctx) const {
  const Value own = ctx.self_comm(kColorVar);
  const auto cur = static_cast<NbrIndex>(ctx.self_internal(kCurVar));
  return ctx.nbr_comm(cur, kColorVar) == own ? kConflict : kAdvance;
}

void LazyScanColoring::execute(int action, ActionContext& ctx) const {
  const auto cur = static_cast<Value>(ctx.self_internal(kCurVar));
  const auto limit = static_cast<Value>(scan_limit(ctx.degree()));
  const Value next = (cur % limit) + 1;
  switch (action) {
    case kConflict:
      ctx.set_comm(kColorVar,
                   ctx.random_range(1, static_cast<Value>(palette_size_)));
      ctx.set_internal(kCurVar, next);
      break;
    case kAdvance:
      ctx.set_internal(kCurVar, next);
      break;
    default:
      SSS_ASSERT(false, "LAZY-SCAN-COLORING has exactly two actions");
  }
}

}  // namespace sss
