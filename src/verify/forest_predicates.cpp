#include "verify/forest_predicates.hpp"

#include <algorithm>
#include <deque>

#include "core/spanning_forest_protocol.hpp"
#include "support/require.hpp"

namespace sss {

BfsForestProblem::BfsForestProblem() = default;

bool BfsForestProblem::holds(const Graph& g,
                             const Configuration& config) const {
  const std::vector<ProcessId> roots = extract_forest_roots(g, config);
  if (roots.empty()) return false;
  std::vector<Value> dist(static_cast<std::size_t>(g.num_vertices()));
  std::vector<Value> parent(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    dist[static_cast<std::size_t>(p)] =
        config.comm(p, SpanningForestProtocol::kDistVar);
    parent[static_cast<std::size_t>(p)] =
        config.comm(p, SpanningForestProtocol::kParentVar);
  }
  return is_bfs_forest(g, roots, dist, parent);
}

std::vector<ProcessId> extract_forest_roots(const Graph& g,
                                            const Configuration& config) {
  std::vector<ProcessId> roots;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (config.comm(p, SpanningForestProtocol::kRootVar) == 1) {
      roots.push_back(p);
    }
  }
  return roots;
}

std::vector<int> multi_source_bfs_distances(
    const Graph& g, const std::vector<ProcessId>& roots) {
  SSS_REQUIRE(!roots.empty(),
              "multi-source BFS needs at least one source");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::deque<ProcessId> queue;
  for (const ProcessId root : roots) {
    SSS_REQUIRE(root >= 0 && root < g.num_vertices(),
                "BFS source out of range");
    if (dist[static_cast<std::size_t>(root)] == 0) continue;
    dist[static_cast<std::size_t>(root)] = 0;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const ProcessId p = queue.front();
    queue.pop_front();
    for (NbrIndex ch = 1; ch <= g.degree(p); ++ch) {
      const ProcessId q = g.neighbor(p, ch);
      if (dist[static_cast<std::size_t>(q)] >= 0) continue;
      dist[static_cast<std::size_t>(q)] =
          dist[static_cast<std::size_t>(p)] + 1;
      queue.push_back(q);
    }
  }
  return dist;
}

bool is_bfs_forest(const Graph& g, const std::vector<ProcessId>& roots,
                   const std::vector<Value>& dist,
                   const std::vector<Value>& parent) {
  SSS_REQUIRE(!roots.empty(), "is_bfs_forest needs at least one root");
  SSS_REQUIRE(static_cast<int>(dist.size()) == g.num_vertices() &&
                  static_cast<int>(parent.size()) == g.num_vertices(),
              "is_bfs_forest needs one distance and one parent per process");
  const std::vector<int> truth = multi_source_bfs_distances(g, roots);
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (dist[i] != static_cast<Value>(truth[i])) return false;
    if (truth[i] == 0) {
      // In-range roots are exactly the distance-0 vertices.
      if (parent[i] != 0) return false;
      continue;
    }
    if (parent[i] < 1 || parent[i] > g.degree(p)) return false;
    const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(parent[i]));
    if (truth[static_cast<std::size_t>(q)] != truth[i] - 1) return false;
  }
  return true;
}

}  // namespace sss
