#include "verify/neighbor_complete.hpp"

#include <algorithm>

#include "runtime/quiescence.hpp"
#include "support/require.hpp"
#include "verify/enumerate.hpp"

namespace sss {

namespace {

/// Distinct communication states a process exhibits across the silent
/// configurations.
using CommStates = std::vector<std::vector<Value>>;

/// Span/vector comparison without materializing the span.
bool comm_equals(std::span<const Value> state, const std::vector<Value>& v) {
  return std::equal(state.begin(), state.end(), v.begin(), v.end());
}

void insert_unique(CommStates& states, std::span<const Value> state) {
  for (const auto& existing : states) {
    if (comm_equals(state, existing)) return;
  }
  states.emplace_back(state.begin(), state.end());
}

}  // namespace

NeighborCompletenessReport check_neighbor_completeness(
    const Graph& g, const Protocol& protocol, const Problem& problem,
    std::uint64_t limit) {
  NeighborCompletenessReport report;
  const int n = g.num_vertices();

  // Pass 1: store the space and the per-process silent comm states.
  std::vector<Configuration> space;
  std::vector<CommStates> silent_states(static_cast<std::size_t>(n));
  report.configurations = for_each_configuration(
      g, protocol, limit, [&](const Configuration& config) {
        space.push_back(config);
        if (!is_comm_quiescent(g, protocol, config)) return;
        ++report.silent_configurations;
        for (ProcessId p = 0; p < n; ++p) {
          insert_unique(silent_states[static_cast<std::size_t>(p)],
                        config.comm_span(p));
        }
      });

  // "Every configuration where p carries alpha_p and q carries alpha_q
  // violates P."
  auto pair_always_violates = [&](ProcessId p, const std::vector<Value>& ap,
                                  ProcessId q, const std::vector<Value>& aq) {
    for (const Configuration& config : space) {
      if (!comm_equals(config.comm_span(p), ap) ||
          !comm_equals(config.comm_span(q), aq)) {
        continue;
      }
      if (problem.holds(g, config)) return false;
    }
    return true;
  };

  report.alpha.assign(static_cast<std::size_t>(n), {});
  bool all_have_witness = true;
  for (ProcessId p = 0; p < n; ++p) {
    bool found = false;
    for (const auto& ap : silent_states[static_cast<std::size_t>(p)]) {
      bool every_neighbor_blocked = true;
      for (ProcessId q : g.neighbors(p)) {
        bool some_aq = false;
        for (const auto& aq : silent_states[static_cast<std::size_t>(q)]) {
          if (pair_always_violates(p, ap, q, aq)) {
            some_aq = true;
            break;
          }
        }
        if (!some_aq) {
          every_neighbor_blocked = false;
          break;
        }
      }
      if (every_neighbor_blocked) {
        report.alpha[static_cast<std::size_t>(p)] = ap;
        found = true;
        break;
      }
    }
    if (!found) all_have_witness = false;
  }
  report.neighbor_complete = all_have_witness;
  return report;
}

}  // namespace sss
