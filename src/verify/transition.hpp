#pragma once
/// \file transition.hpp
/// One-step successor expansion for the model checker.
///
/// The paper's distributed daemon permits any non-empty subset of enabled
/// processes per step; randomized actions (the color redraw of Fig 7) add
/// probabilistic branching. The expanders below enumerate both dimensions
/// exactly, so reachability questions over tiny instances are decided
/// rather than sampled.

#include <vector>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/protocol.hpp"

namespace sss {

/// All write-sets process p can produce from `pre` (one per resolution of
/// its random draws; empty when p is disabled).
std::vector<ProcessStep> process_step_outcomes(const Graph& g,
                                               const Protocol& protocol,
                                               const Configuration& pre,
                                               ProcessId p);

/// Successors under single-process steps (the central daemon), all random
/// resolutions. Deduplicated; excludes configurations equal to `pre`.
std::vector<Configuration> successors_central(const Graph& g,
                                              const Protocol& protocol,
                                              const Configuration& pre);

/// Successors under every non-empty subset of enabled processes (the
/// distributed daemon), all random resolutions. Deduplicated; excludes
/// `pre` itself. Throws if more than `max_enabled` processes are enabled
/// (the expansion is exponential by nature).
std::vector<Configuration> successors_all_subsets(const Graph& g,
                                                  const Protocol& protocol,
                                                  const Configuration& pre,
                                                  int max_enabled = 12);

/// The unique synchronous successor of a *deterministic* protocol: every
/// enabled process fires against the snapshot, commits together.
Configuration synchronous_successor(const Graph& g, const Protocol& protocol,
                                    const Configuration& pre);

}  // namespace sss
