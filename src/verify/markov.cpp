#include "verify/markov.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "runtime/engine.hpp"
#include "support/require.hpp"
#include "verify/enumerate.hpp"
#include "verify/transition.hpp"

namespace sss {

namespace {

struct ConfigHash {
  std::size_t operator()(const Configuration& c) const { return c.hash(); }
};

/// Selects one process uniformly among ALL processes — the daemon the
/// Markov analysis models (selecting a disabled process is the paper's
/// no-op step, a self-loop in the chain).
class UniformCentralDaemon final : public Daemon {
 public:
  const std::string& name() const override {
    static const std::string kName = "uniform-central";
    return kName;
  }
  void select(const Graph& g, const EnabledSet&, Rng& rng,
              std::vector<ProcessId>& out) override {
    out.push_back(static_cast<ProcessId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices()))));
  }
};

struct SparseRow {
  /// (successor index, probability); missing mass is a self-loop.
  std::vector<std::pair<std::size_t, double>> entries;
  double self_loop = 0.0;
};

}  // namespace

HittingTimeAnalysis expected_stabilization_time(const Graph& g,
                                                const Protocol& protocol,
                                                const Problem& problem,
                                                std::uint64_t limit) {
  HittingTimeAnalysis analysis;

  // Enumerate and index the configuration space.
  std::vector<Configuration> space;
  std::unordered_map<Configuration, std::size_t, ConfigHash> index;
  for_each_configuration(g, protocol, limit, [&](const Configuration& c) {
    index.emplace(c, space.size());
    space.push_back(c);
  });
  analysis.states = space.size();

  std::vector<bool> legit(space.size(), false);
  for (std::size_t i = 0; i < space.size(); ++i) {
    legit[i] = problem.holds(g, space[i]);
    if (legit[i]) ++analysis.legitimate;
  }

  // Build the sparse transition rows of the transient states.
  const double per_process = 1.0 / g.num_vertices();
  std::vector<SparseRow> rows(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (legit[i]) continue;  // absorbing: no outgoing row needed
    SparseRow& row = rows[i];
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      const auto outcomes = process_step_outcomes(g, protocol, space[i], p);
      if (outcomes.empty()) {
        row.self_loop += per_process;  // disabled: no-op step
        continue;
      }
      const double per_outcome =
          per_process / static_cast<double>(outcomes.size());
      for (const ProcessStep& step : outcomes) {
        Configuration next = space[i];
        commit_writes(next, p, step.writes);
        const auto it = index.find(next);
        SSS_ASSERT(it != index.end(), "successor escaped the state space");
        if (it->second == i) {
          row.self_loop += per_outcome;
        } else {
          row.entries.emplace_back(it->second, per_outcome);
        }
      }
    }
  }

  // Reverse reachability: every transient state must reach absorption.
  std::vector<bool> drains(space.size(), false);
  {
    std::vector<std::vector<std::size_t>> preds(space.size());
    std::deque<std::size_t> frontier;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (legit[i]) {
        drains[i] = true;
        frontier.push_back(i);
        continue;
      }
      for (const auto& [j, prob] : rows[i].entries) {
        (void)prob;
        preds[j].push_back(i);
      }
    }
    while (!frontier.empty()) {
      const std::size_t i = frontier.front();
      frontier.pop_front();
      for (std::size_t pred : preds[i]) {
        if (!drains[pred]) {
          drains[pred] = true;
          frontier.push_back(pred);
        }
      }
    }
  }
  analysis.absorbs_everywhere =
      std::all_of(drains.begin(), drains.end(), [](bool d) { return d; });
  if (!analysis.absorbs_everywhere) return analysis;

  // Value iteration on x = 1 + Q x (x = 0 on absorbing states). The
  // self-loop mass is folded analytically: x_i = (1 + sum_j q_ij x_j) /
  /// (1 - selfloop_i), which accelerates convergence dramatically for
  // states that mostly loop.
  std::vector<double> x(space.size(), 0.0);
  for (int iteration = 0; iteration < 1'000'000; ++iteration) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (legit[i]) continue;
      double acc = 1.0;
      for (const auto& [j, prob] : rows[i].entries) acc += prob * x[j];
      const double updated = acc / (1.0 - rows[i].self_loop);
      max_delta = std::max(max_delta, std::abs(updated - x[i]));
      x[i] = updated;  // Gauss-Seidel style in-place update
    }
    if (max_delta < 1e-11) break;
  }

  double sum = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    sum += x[i];
    worst = std::max(worst, x[i]);
  }
  analysis.expected_steps_uniform_start = sum / static_cast<double>(space.size());
  analysis.expected_steps_worst_start = worst;
  return analysis;
}

double measured_stabilization_time(const Graph& g, const Protocol& protocol,
                                   const Problem& problem, int runs,
                                   std::uint64_t seed) {
  SSS_REQUIRE(runs >= 1, "need at least one run");
  Rng seeder(seed);
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    Engine engine(g, protocol, std::make_unique<UniformCentralDaemon>(),
                  seeder());
    engine.randomize_state();
    RunOptions options;
    options.max_steps = 10'000'000;
    options.stop_on_silence = false;
    options.legitimacy = problem.predicate();
    // Run only until first legitimacy: step manually for exactness.
    std::uint64_t steps = 0;
    while (!problem.holds(g, engine.config())) {
      engine.step();
      ++steps;
      SSS_REQUIRE(steps < options.max_steps,
                  "run failed to reach legitimacy (diverging chain?)");
    }
    total += static_cast<double>(steps);
  }
  return total / runs;
}

}  // namespace sss
