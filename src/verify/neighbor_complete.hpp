#pragma once
/// \file neighbor_complete.hpp
/// Mechanical witness search for Definition 10 (neighbor-completeness).
///
/// A silent self-stabilizing protocol A is neighbor-complete for P when
/// every process p has a silent communication state alpha_p such that for
/// every neighbor q some silent communication state alpha_q makes every
/// configuration carrying (alpha_p, alpha_q) violate P. This is the
/// premise of both impossibility theorems; the checker discharges it
/// exhaustively on tiny instances, confirming that coloring, MIS and
/// maximal matching all satisfy it (Section 4).

#include <cstdint>
#include <vector>

#include "core/problems.hpp"
#include "graph/graph.hpp"
#include "runtime/protocol.hpp"

namespace sss {

struct NeighborCompletenessReport {
  bool neighbor_complete = false;
  std::uint64_t configurations = 0;
  std::uint64_t silent_configurations = 0;
  /// The witness: alpha[p] is the chosen silent communication state of p
  /// (empty when no witness exists for p).
  std::vector<std::vector<Value>> alpha;
};

/// Requires the protocol's configuration space to fit under `limit`.
/// The silence and self-stabilization halves of Definition 10 are covered
/// by the other checks in checks.hpp; this one establishes the structural
/// state condition.
NeighborCompletenessReport check_neighbor_completeness(
    const Graph& g, const Protocol& protocol, const Problem& problem,
    std::uint64_t limit = 1u << 18);

}  // namespace sss
