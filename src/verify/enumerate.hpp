#pragma once
/// \file enumerate.hpp
/// Exhaustive configuration enumeration for tiny instances.
///
/// Self-stabilization quantifies over *all* configurations, so on graphs
/// small enough the quantifier can be discharged mechanically. Constants
/// (colors) stay at their installed values; every other variable sweeps its
/// domain like an odometer.

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"
#include "runtime/configuration.hpp"
#include "runtime/protocol.hpp"

namespace sss {

/// Number of configurations (product of non-constant domain sizes),
/// saturating at 2^63-1.
std::uint64_t configuration_space_size(const Graph& g,
                                       const ProtocolSpec& spec);

/// Calls `fn` once per configuration of `protocol` on `g` (constants
/// installed). Returns the number of configurations visited. Throws
/// PreconditionError if the space exceeds `limit`.
std::uint64_t for_each_configuration(
    const Graph& g, const Protocol& protocol, std::uint64_t limit,
    const std::function<void(const Configuration&)>& fn);

}  // namespace sss
