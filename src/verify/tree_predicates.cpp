#include "verify/tree_predicates.hpp"

#include "core/bfs_tree_protocol.hpp"
#include "core/leader_election_protocol.hpp"
#include "graph/properties.hpp"
#include "support/require.hpp"

namespace sss {

BfsTreeProblem::BfsTreeProblem() = default;

bool BfsTreeProblem::holds(const Graph& g, const Configuration& config) const {
  const ProcessId root = extract_bfs_root(g, config);
  if (root < 0) return false;
  std::vector<Value> dist(static_cast<std::size_t>(g.num_vertices()));
  std::vector<Value> parent(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    dist[static_cast<std::size_t>(p)] =
        config.comm(p, BfsTreeProtocol::kDistVar);
    parent[static_cast<std::size_t>(p)] =
        config.comm(p, BfsTreeProtocol::kParentVar);
  }
  return is_bfs_tree(g, root, dist, parent);
}

LeaderElectionProblem::LeaderElectionProblem() = default;

bool LeaderElectionProblem::holds(const Graph& g,
                                  const Configuration& config) const {
  const Value agreed = extract_agreed_leader(g, config);
  if (agreed < 0) return false;
  // The agreed leader must be the *minimum* identifier and its owner must
  // exist in the network (a fake agreed-on id is not an election).
  ProcessId owner = -1;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const Value id = config.comm(p, LeaderElectionProtocol::kIdVar);
    if (id < agreed) return false;
    if (id == agreed) owner = p;
  }
  if (owner < 0) return false;
  std::vector<Value> dist(static_cast<std::size_t>(g.num_vertices()));
  std::vector<Value> parent(static_cast<std::size_t>(g.num_vertices()));
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    dist[static_cast<std::size_t>(p)] =
        config.comm(p, LeaderElectionProtocol::kDistVar);
    parent[static_cast<std::size_t>(p)] =
        config.comm(p, LeaderElectionProtocol::kParentVar);
  }
  return is_bfs_tree(g, owner, dist, parent);
}

ProcessId extract_bfs_root(const Graph& g, const Configuration& config) {
  ProcessId root = -1;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    if (config.comm(p, BfsTreeProtocol::kRootVar) != 1) continue;
    if (root >= 0) return -1;  // two flagged roots
    root = p;
  }
  return root;
}

std::vector<Edge> extract_parent_edges(const Graph& g,
                                       const Configuration& config,
                                       int parent_var) {
  std::vector<Edge> edges;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const Value pr = config.comm(p, parent_var);
    if (pr < 1 || pr > g.degree(p)) continue;
    edges.emplace_back(p, g.neighbor(p, static_cast<NbrIndex>(pr)));
  }
  return edges;
}

Value extract_agreed_leader(const Graph& g, const Configuration& config) {
  const Value claimed = config.comm(0, LeaderElectionProtocol::kLeaderVar);
  for (ProcessId p = 1; p < g.num_vertices(); ++p) {
    if (config.comm(p, LeaderElectionProtocol::kLeaderVar) != claimed) {
      return -1;
    }
  }
  return claimed;
}

bool is_bfs_tree(const Graph& g, ProcessId root,
                 const std::vector<Value>& dist,
                 const std::vector<Value>& parent) {
  SSS_REQUIRE(root >= 0 && root < g.num_vertices(),
              "is_bfs_tree needs a root inside the graph");
  SSS_REQUIRE(static_cast<int>(dist.size()) == g.num_vertices() &&
                  static_cast<int>(parent.size()) == g.num_vertices(),
              "is_bfs_tree needs one distance and one parent per process");
  const std::vector<int> truth = bfs_distances(g, root);
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (dist[i] != static_cast<Value>(truth[i])) return false;
    if (p == root) {
      if (parent[i] != 0) return false;
      continue;
    }
    if (parent[i] < 1 || parent[i] > g.degree(p)) return false;
    const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(parent[i]));
    if (truth[static_cast<std::size_t>(q)] != truth[i] - 1) return false;
  }
  return true;
}

}  // namespace sss
