#include "verify/transition.hpp"

#include <unordered_set>

#include "support/require.hpp"

namespace sss {

namespace {

/// Hash-set keying configurations by value for deduplication.
struct ConfigHash {
  std::size_t operator()(const Configuration& c) const { return c.hash(); }
};

using ConfigSet = std::unordered_set<Configuration, ConfigHash>;

}  // namespace

std::vector<ProcessStep> process_step_outcomes(const Graph& g,
                                               const Protocol& protocol,
                                               const Configuration& pre,
                                               ProcessId p) {
  std::vector<ProcessStep> outcomes;
  GuardContext guard(g, pre, p, nullptr);
  const int action = protocol.first_enabled(guard);
  if (action == Protocol::kDisabled) return outcomes;

  // Discovery run: empty script records the ranges of every random draw.
  Rng scratch(0xabcdefULL);
  std::vector<Value> script;
  ActionContext discovery(g, pre, p, scratch, nullptr);
  discovery.set_random_script(&script);
  protocol.execute(action, discovery);
  const std::vector<VarDomain> draws = discovery.random_draws();

  if (draws.empty()) {
    ProcessStep step;
    step.action = action;
    step.comm_write_attempted = discovery.comm_write_attempted();
    step.writes = discovery.writes();
    outcomes.push_back(std::move(step));
    return outcomes;
  }

  // Odometer over all draw combinations.
  script.clear();
  for (const VarDomain& d : draws) script.push_back(d.lo);
  for (;;) {
    ActionContext ctx(g, pre, p, scratch, nullptr);
    ctx.set_random_script(&script);
    protocol.execute(action, ctx);
    ProcessStep step;
    step.action = action;
    step.comm_write_attempted = ctx.comm_write_attempted();
    step.writes = ctx.writes();
    outcomes.push_back(std::move(step));

    std::size_t i = 0;
    for (; i < script.size(); ++i) {
      if (script[i] < draws[i].hi) {
        ++script[i];
        break;
      }
      script[i] = draws[i].lo;
    }
    if (i == script.size()) break;
  }
  return outcomes;
}

std::vector<Configuration> successors_central(const Graph& g,
                                              const Protocol& protocol,
                                              const Configuration& pre) {
  ConfigSet seen;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    for (const ProcessStep& step : process_step_outcomes(g, protocol, pre, p)) {
      Configuration next = pre;
      commit_writes(next, p, step.writes);
      if (!(next == pre)) seen.insert(std::move(next));
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<Configuration> successors_all_subsets(const Graph& g,
                                                  const Protocol& protocol,
                                                  const Configuration& pre,
                                                  int max_enabled) {
  // Gather per-process outcome lists for the enabled processes.
  std::vector<ProcessId> enabled;
  std::vector<std::vector<ProcessStep>> outcomes;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    auto steps = process_step_outcomes(g, protocol, pre, p);
    if (!steps.empty()) {
      enabled.push_back(p);
      outcomes.push_back(std::move(steps));
    }
  }
  SSS_REQUIRE(static_cast<int>(enabled.size()) <= max_enabled,
              "too many enabled processes for subset expansion");

  ConfigSet seen;
  const std::size_t subsets = (std::size_t{1} << enabled.size());
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    // Enumerate the cross product of outcome choices for this subset.
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (mask & (std::size_t{1} << i)) members.push_back(i);
    }
    std::vector<std::size_t> choice(members.size(), 0);
    for (;;) {
      Configuration next = pre;
      for (std::size_t j = 0; j < members.size(); ++j) {
        const std::size_t i = members[j];
        commit_writes(next, enabled[i], outcomes[i][choice[j]].writes);
      }
      if (!(next == pre)) seen.insert(std::move(next));

      std::size_t j = 0;
      for (; j < members.size(); ++j) {
        if (choice[j] + 1 < outcomes[members[j]].size()) {
          ++choice[j];
          break;
        }
        choice[j] = 0;
      }
      if (j == members.size()) break;
    }
  }
  return {seen.begin(), seen.end()};
}

Configuration synchronous_successor(const Graph& g, const Protocol& protocol,
                                    const Configuration& pre) {
  SSS_REQUIRE(!protocol.is_probabilistic(),
              "synchronous_successor requires a deterministic protocol");
  Rng scratch(0x5eedULL);
  std::vector<std::pair<ProcessId, std::vector<PendingWrite>>> staged;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    ProcessStep step = evaluate_process(g, protocol, pre, p, scratch, nullptr);
    if (step.action != Protocol::kDisabled) {
      staged.emplace_back(p, std::move(step.writes));
    }
  }
  Configuration next = pre;
  for (const auto& [p, writes] : staged) {
    commit_writes(next, p, writes);
  }
  return next;
}

}  // namespace sss
