#pragma once
/// \file markov.hpp
/// Exact expected stabilization time for probabilistic protocols on tiny
/// instances, via Markov-chain absorption analysis.
///
/// Under the uniform central daemon (each step selects one process
/// uniformly at random; a selected randomized action resolves its draws
/// uniformly), a protocol is a finite Markov chain over configurations.
/// Treating the legitimate configurations as absorbing, the expected
/// hitting times solve (I - Q) x = 1 over the transient states. This
/// turns Theorem 3's "stabilizes with probability 1" into sharp numbers
/// that the simulator must reproduce — a strong end-to-end cross-check of
/// engine, daemon, and rng.

#include <cstdint>
#include <vector>

#include "core/problems.hpp"
#include "graph/graph.hpp"
#include "runtime/protocol.hpp"

namespace sss {

struct HittingTimeAnalysis {
  std::uint64_t states = 0;      ///< configurations enumerated
  std::uint64_t legitimate = 0;  ///< absorbing states
  /// True if legitimacy is reached with probability 1 from every state
  /// (no transient state fails to drain).
  bool absorbs_everywhere = false;
  /// Expected steps to first legitimate configuration, averaged over a
  /// uniformly random initial configuration.
  double expected_steps_uniform_start = 0.0;
  /// Worst-case expected steps over all initial configurations.
  double expected_steps_worst_start = 0.0;
};

/// Builds and solves the absorption system. Requires the configuration
/// space to stay under `limit` states (dense Gaussian elimination).
HittingTimeAnalysis expected_stabilization_time(const Graph& g,
                                                const Protocol& protocol,
                                                const Problem& problem,
                                                std::uint64_t limit = 2000);

/// Empirical counterpart: mean steps to first legitimacy over `runs`
/// simulator executions under the uniform central daemon, each from a
/// uniformly random configuration.
double measured_stabilization_time(const Graph& g, const Protocol& protocol,
                                   const Problem& problem, int runs,
                                   std::uint64_t seed);

}  // namespace sss
