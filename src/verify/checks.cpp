#include "verify/checks.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/quiescence.hpp"
#include "support/require.hpp"
#include "verify/enumerate.hpp"
#include "verify/transition.hpp"

namespace sss {

namespace {

struct ConfigHash {
  std::size_t operator()(const Configuration& c) const { return c.hash(); }
};

}  // namespace

CheckResult check_silent_implies_legitimate(const Graph& g,
                                            const Protocol& protocol,
                                            const Problem& problem,
                                            std::uint64_t limit) {
  CheckResult result;
  result.configurations = for_each_configuration(
      g, protocol, limit, [&](const Configuration& config) {
        if (!is_comm_quiescent(g, protocol, config)) return;
        ++result.relevant;
        if (!problem.holds(g, config)) {
          ++result.violations;
          if (!result.counterexample) result.counterexample = config;
        }
      });
  result.ok = result.violations == 0;
  result.detail = "silent configurations checked against " + problem.name();
  return result;
}

CheckResult check_closure(const Graph& g, const Protocol& protocol,
                          const Problem& problem, std::uint64_t limit) {
  CheckResult result;
  result.configurations = for_each_configuration(
      g, protocol, limit, [&](const Configuration& config) {
        if (!problem.holds(g, config)) return;
        ++result.relevant;
        for (const Configuration& next :
             successors_all_subsets(g, protocol, config)) {
          if (!problem.holds(g, next)) {
            ++result.violations;
            if (!result.counterexample) result.counterexample = config;
            return;
          }
        }
      });
  result.ok = result.violations == 0;
  result.detail = "closure of " + problem.name() +
                  " under all subset steps and random resolutions";
  return result;
}

CheckResult check_legitimacy_reachable(const Graph& g,
                                       const Protocol& protocol,
                                       const Problem& problem,
                                       std::uint64_t limit) {
  // Collect the whole space, then reverse-BFS from the legitimate
  // configurations along central-daemon transitions (a subset of the
  // distributed daemon's, so reachability here implies reachability there).
  std::vector<Configuration> space;
  std::unordered_map<Configuration, std::size_t, ConfigHash> index;
  for_each_configuration(g, protocol, limit, [&](const Configuration& c) {
    index.emplace(c, space.size());
    space.push_back(c);
  });

  std::vector<std::vector<std::size_t>> predecessors(space.size());
  std::deque<std::size_t> frontier;
  std::vector<bool> can_reach(space.size(), false);
  for (std::size_t i = 0; i < space.size(); ++i) {
    for (const Configuration& next :
         successors_central(g, protocol, space[i])) {
      const auto it = index.find(next);
      SSS_ASSERT(it != index.end(), "successor escaped the enumerated space");
      predecessors[it->second].push_back(i);
    }
    if (problem.holds(g, space[i])) {
      can_reach[i] = true;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const std::size_t i = frontier.front();
    frontier.pop_front();
    for (std::size_t pred : predecessors[i]) {
      if (!can_reach[pred]) {
        can_reach[pred] = true;
        frontier.push_back(pred);
      }
    }
  }

  CheckResult result;
  result.configurations = space.size();
  for (std::size_t i = 0; i < space.size(); ++i) {
    ++result.relevant;
    if (!can_reach[i]) {
      ++result.violations;
      if (!result.counterexample) result.counterexample = space[i];
    }
  }
  result.ok = result.violations == 0;
  result.detail =
      "every configuration can reach " + problem.name() + " (central steps)";
  return result;
}

CheckResult check_synchronous_convergence(const Graph& g,
                                          const Protocol& protocol,
                                          const Problem& problem,
                                          std::uint64_t limit,
                                          std::uint64_t max_iterations) {
  SSS_REQUIRE(!protocol.is_probabilistic(),
              "synchronous convergence check needs a deterministic protocol");
  CheckResult result;
  // Configurations already proven to converge (deterministic dynamics make
  // this memoization sound: every trajectory through them is the same).
  std::unordered_set<Configuration, ConfigHash> proven;

  result.configurations = for_each_configuration(
      g, protocol, limit, [&](const Configuration& start) {
        ++result.relevant;
        std::unordered_map<Configuration, std::uint64_t, ConfigHash> seen;
        std::vector<Configuration> trajectory;
        Configuration current = start;
        bool converged = false;
        for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
          if (proven.count(current) != 0) {
            converged = true;
            break;
          }
          const auto [it, inserted] = seen.emplace(current, iter);
          if (!inserted) {
            // Cycle from position it->second: must be communication-fixed
            // and legitimate throughout to count as convergence.
            converged = true;
            for (std::uint64_t k = it->second; k < trajectory.size(); ++k) {
              if (!trajectory[k].same_comm(current) ||
                  !problem.holds(g, trajectory[k])) {
                converged = false;
                break;
              }
            }
            break;
          }
          trajectory.push_back(current);
          current = synchronous_successor(g, protocol, current);
        }
        if (converged) {
          for (const Configuration& c : trajectory) proven.insert(c);
        } else {
          ++result.violations;
          if (!result.counterexample) result.counterexample = start;
        }
      });
  result.ok = result.violations == 0;
  result.detail = "synchronous convergence to silent " + problem.name();
  return result;
}

}  // namespace sss
