#pragma once
/// \file forest_predicates.hpp
/// Legitimacy predicate for the spanning-forest family: a configuration is
/// legitimate when the parent channels encode the multi-source BFS forest
/// of the flagged root set — every process claims its exact distance to
/// the *nearest* root and, unless it is a root, a parent channel one level
/// closer to that root. Shared communication layout with the tree
/// predicates ({D, PR, R} at SpanningForestProtocol::{kDistVar, kParentVar,
/// kRootVar}), so one predicate serves both SPANNING-FOREST and its
/// full-read comparator.

#include <string>
#include <vector>

#include "core/problems.hpp"
#include "graph/graph.hpp"
#include "runtime/configuration.hpp"

namespace sss {

/// BFS spanning forest w.r.t. the roots flagged in the configuration:
/// at least one process carries R = 1; every root claims distance 0 and
/// no parent; every other process claims its exact distance to the
/// nearest root and a parent channel pointing at a distance-(D.p - 1)
/// neighbor. With a single flagged root this coincides with
/// BfsTreeProblem.
class BfsForestProblem final : public Problem {
 public:
  BfsForestProblem();
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "bfs-spanning-forest";
};

// --- Output extractors and independent validators (tests, checkers) --------

/// Every process with R = 1, in increasing id order (possibly empty).
std::vector<ProcessId> extract_forest_roots(const Graph& g,
                                            const Configuration& config);

/// Multi-source BFS distances: each vertex's hop distance to the nearest
/// element of `roots`. Unreachable vertices get -1; `roots` must be
/// non-empty and in range.
std::vector<int> multi_source_bfs_distances(const Graph& g,
                                            const std::vector<ProcessId>& roots);

/// True iff `dist`/`parent` encode the BFS forest of `roots`: dist equals
/// the multi-source BFS distance everywhere, roots have no parent, and
/// every non-root parent channel points one level down. The predicate
/// class reduces to this after pulling the layout out of the
/// configuration.
bool is_bfs_forest(const Graph& g, const std::vector<ProcessId>& roots,
                   const std::vector<Value>& dist,
                   const std::vector<Value>& parent);

}  // namespace sss
