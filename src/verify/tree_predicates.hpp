#pragma once
/// \file tree_predicates.hpp
/// Legitimacy predicates for the tree-shaped problems of the protocol
/// registry: BFS spanning-tree construction and leader election. Both
/// audit configurations through the shared communication layout of the
/// cur-pointer protocols and their full-read baselines (distance, parent
/// channel, and the root-flag / identifier constants), so one predicate
/// serves the efficient protocol and its comparator alike — including
/// hand-built configurations in tests and the stitched counterexamples of
/// the impossibility module.

#include <string>
#include <vector>

#include "core/problems.hpp"
#include "graph/graph.hpp"
#include "runtime/configuration.hpp"

namespace sss {

/// BFS spanning tree w.r.t. the root flagged in the configuration:
/// exactly one process carries R = 1; the root claims distance 0 and no
/// parent; every other process claims its exact BFS distance from the
/// root and a parent channel pointing at a distance-(D.p - 1) neighbor.
/// Variable layout: BfsTreeProtocol::{kDistVar, kParentVar, kRootVar}.
class BfsTreeProblem final : public Problem {
 public:
  BfsTreeProblem();
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "bfs-spanning-tree";
};

/// Unique leader + tree agreement: every process claims the minimum
/// identifier as leader; the owner of that identifier is in the self
/// state (D = 0, PR = 0); every other process has a parent channel whose
/// neighbor claims depth D.p - 1 and its depth is its exact BFS distance
/// from the owner — so the parent pointers form a BFS spanning tree
/// rooted at the elected process. Variable layout:
/// LeaderElectionProtocol::{kLeaderVar, kDistVar, kParentVar, kIdVar}.
class LeaderElectionProblem final : public Problem {
 public:
  LeaderElectionProblem();
  const std::string& name() const override { return name_; }
  bool holds(const Graph& g, const Configuration& config) const override;

 private:
  std::string name_ = "leader-election";
};

// --- Output extractors and independent validators (tests, checkers) --------

/// The unique process with R = 1, or -1 when the flag count is not one.
ProcessId extract_bfs_root(const Graph& g, const Configuration& config);

/// The (child, parent) edges named by the parent channels; processes with
/// PR = 0 contribute nothing. `parent_var` is the comm index of PR.
std::vector<Edge> extract_parent_edges(const Graph& g,
                                       const Configuration& config,
                                       int parent_var);

/// The leader id every process agrees on, or -1 on disagreement.
Value extract_agreed_leader(const Graph& g, const Configuration& config);

/// True iff `dist`/`parent` (claimed per-process distance and parent
/// channel) encode the BFS tree rooted at `root`: dist equals the true
/// BFS distance everywhere and every non-root parent channel points one
/// level down. The predicate classes reduce to this after pulling their
/// layouts out of the configuration.
bool is_bfs_tree(const Graph& g, ProcessId root,
                 const std::vector<Value>& dist,
                 const std::vector<Value>& parent);

}  // namespace sss
