#include "verify/enumerate.hpp"

#include <limits>
#include <vector>

#include "support/require.hpp"

namespace sss {

namespace {

/// One odometer digit: a (process, variable) slot and its domain.
struct Digit {
  ProcessId process;
  int var;
  bool is_comm;
  VarDomain domain;
};

std::vector<Digit> collect_digits(const Graph& g, const ProtocolSpec& spec) {
  std::vector<Digit> digits;
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    for (int v = 0; v < spec.num_comm(); ++v) {
      const auto& var = spec.comm[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      digits.push_back(Digit{p, v, true, var.domain(g, p)});
    }
    for (int v = 0; v < spec.num_internal(); ++v) {
      const auto& var = spec.internal[static_cast<std::size_t>(v)];
      if (var.is_constant()) continue;
      digits.push_back(Digit{p, v, false, var.domain(g, p)});
    }
  }
  return digits;
}

}  // namespace

std::uint64_t configuration_space_size(const Graph& g,
                                       const ProtocolSpec& spec) {
  constexpr std::uint64_t kCap = std::numeric_limits<std::int64_t>::max();
  std::uint64_t total = 1;
  for (const Digit& d : collect_digits(g, spec)) {
    const auto size = static_cast<std::uint64_t>(d.domain.size());
    if (total > kCap / size) return kCap;
    total *= size;
  }
  return total;
}

std::uint64_t for_each_configuration(
    const Graph& g, const Protocol& protocol, std::uint64_t limit,
    const std::function<void(const Configuration&)>& fn) {
  const ProtocolSpec& spec = protocol.spec();
  const std::uint64_t space = configuration_space_size(g, spec);
  SSS_REQUIRE(space <= limit,
              "configuration space too large for exhaustive enumeration");

  std::vector<Digit> digits = collect_digits(g, spec);
  Configuration config(g, spec);
  protocol.install_constants(g, config);
  // Start every digit at its domain minimum.
  for (const Digit& d : digits) {
    if (d.is_comm) {
      config.set_comm(d.process, d.var, d.domain.lo);
    } else {
      config.set_internal(d.process, d.var, d.domain.lo);
    }
  }

  std::uint64_t visited = 0;
  for (;;) {
    fn(config);
    ++visited;
    // Odometer increment.
    std::size_t i = 0;
    for (; i < digits.size(); ++i) {
      const Digit& d = digits[i];
      const Value current = d.is_comm
                                ? config.comm(d.process, d.var)
                                : config.internal_var(d.process, d.var);
      if (current < d.domain.hi) {
        if (d.is_comm) {
          config.set_comm(d.process, d.var, current + 1);
        } else {
          config.set_internal(d.process, d.var, current + 1);
        }
        break;
      }
      if (d.is_comm) {
        config.set_comm(d.process, d.var, d.domain.lo);
      } else {
        config.set_internal(d.process, d.var, d.domain.lo);
      }
    }
    if (i == digits.size()) break;  // odometer wrapped: done
  }
  SSS_ASSERT(visited == space, "odometer must cover the whole space");
  return visited;
}

}  // namespace sss
