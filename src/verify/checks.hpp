#pragma once
/// \file checks.hpp
/// Mechanical discharge of the paper's per-protocol lemmas on tiny
/// instances, by exhausting the configuration space:
///
///  * `check_silent_implies_legitimate` — Lemma 3 (MIS) and Lemmas 5-6
///    (MATCHING): every silent configuration satisfies the predicate.
///  * `check_closure` — Lemma 1 (COLORING): the predicate is closed under
///    every subset step and every random resolution.
///  * `check_legitimacy_reachable` — the combinatorial core of Lemma 2:
///    from every configuration some computation reaches the predicate
///    (positive probability of progress, hence convergence w.p. 1).
///  * `check_synchronous_convergence` — deterministic protocols: from
///    every configuration the synchronous computation reaches a silent,
///    legitimate configuration.

#include <cstdint>
#include <optional>
#include <string>

#include "core/problems.hpp"
#include "graph/graph.hpp"
#include "runtime/protocol.hpp"

namespace sss {

struct CheckResult {
  bool ok = false;
  std::uint64_t configurations = 0;  ///< configurations enumerated
  std::uint64_t relevant = 0;        ///< configurations the property binds
  std::uint64_t violations = 0;
  std::optional<Configuration> counterexample;
  std::string detail;
};

CheckResult check_silent_implies_legitimate(const Graph& g,
                                            const Protocol& protocol,
                                            const Problem& problem,
                                            std::uint64_t limit = 1u << 22);

CheckResult check_closure(const Graph& g, const Protocol& protocol,
                          const Problem& problem,
                          std::uint64_t limit = 1u << 18);

CheckResult check_legitimacy_reachable(const Graph& g,
                                       const Protocol& protocol,
                                       const Problem& problem,
                                       std::uint64_t limit = 1u << 18);

CheckResult check_synchronous_convergence(const Graph& g,
                                          const Protocol& protocol,
                                          const Problem& problem,
                                          std::uint64_t limit = 1u << 20,
                                          std::uint64_t max_iterations = 4096);

}  // namespace sss
