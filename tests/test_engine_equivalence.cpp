/// Differential tests for the incremental engine rewrite.
///
/// `Engine` replaced full per-step scans with dirty queues, incremental
/// counters, and scratch arenas; `ReferenceEngine` preserves the original
/// full-scan implementation. These tests drive both from identical seeds
/// and assert the observable semantics never diverge:
///  * step-for-step: configurations, StepInfo, round counts, read metrics,
///    and enabledness probes across all six daemons x seeds x the graph
///    menagerie, for deterministic and randomized protocols alike;
///  * run-level: full RunStats equality, exercising the cached quiescence
///    certification against the original O(n*Delta)-per-checkpoint check;
///  * sweep-level: sweep_convergence results are identical at 1 and N
///    threads.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/experiment.hpp"
#include "core/coloring_protocol.hpp"
#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/problems.hpp"
#include "graph/coloring.hpp"
#include "runtime/engine.hpp"
#include "runtime/reference_engine.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

/// Drives both engines `steps` steps in lockstep, asserting equivalence of
/// everything observable after every step.
void expect_lockstep(const Graph& g, const Protocol& protocol,
                     const std::string& daemon_name, std::uint64_t seed,
                     int steps) {
  Engine fast(g, protocol, make_daemon(daemon_name), seed);
  ReferenceEngine oracle(g, protocol, make_daemon(daemon_name), seed);
  fast.randomize_state();
  oracle.randomize_state();
  ASSERT_TRUE(fast.config() == oracle.config());

  for (int s = 0; s < steps; ++s) {
    const Engine::StepInfo a = fast.step();
    const Engine::StepInfo b = oracle.step();
    ASSERT_EQ(a.selected, b.selected) << daemon_name << " step " << s;
    ASSERT_EQ(a.fired, b.fired) << daemon_name << " step " << s;
    ASSERT_EQ(a.comm_changed, b.comm_changed) << daemon_name << " step " << s;
    ASSERT_TRUE(fast.config() == oracle.config())
        << daemon_name << " diverged at step " << s;
    ASSERT_EQ(fast.rounds(), oracle.rounds()) << daemon_name << " step " << s;
    ASSERT_EQ(fast.rounds_inclusive(), oracle.rounds_inclusive());
    ASSERT_EQ(fast.read_counter().total_reads(),
              oracle.read_counter().total_reads());
    ASSERT_EQ(fast.read_counter().total_bits(),
              oracle.read_counter().total_bits());
    ASSERT_EQ(fast.read_counter().max_reads_per_process_step(),
              oracle.read_counter().max_reads_per_process_step());
    ASSERT_EQ(fast.read_counter().max_bits_per_process_step(),
              oracle.read_counter().max_bits_per_process_step());
    if (s % 8 == 0) {
      ASSERT_EQ(fast.num_enabled(), oracle.num_enabled());
      for (ProcessId p = 0; p < g.num_vertices(); ++p) {
        ASSERT_EQ(fast.is_enabled(p), oracle.is_enabled(p))
            << daemon_name << " enabledness of " << p << " at step " << s;
      }
    }
  }
}

std::unique_ptr<Protocol> make_protocol(const std::string& kind,
                                        const Graph& g) {
  if (kind == "coloring") return std::make_unique<ColoringProtocol>(g);
  if (kind == "mis") return std::make_unique<MisProtocol>(g, greedy_coloring(g));
  return std::make_unique<MatchingProtocol>(g, greedy_coloring(g));
}

TEST(EngineEquivalence, LockstepAcrossDaemonsSeedsGraphsProtocols) {
  for (const auto& named : testing::sweep_graphs()) {
    for (const std::string kind : {"coloring", "mis", "matching"}) {
      const auto protocol = make_protocol(kind, named.graph);
      for (const std::string& daemon_name : daemon_names()) {
        for (std::uint64_t seed : {11u, 227u}) {
          expect_lockstep(named.graph, *protocol, daemon_name, seed, 160);
        }
      }
    }
  }
}

void expect_same_stats(const RunStats& a, const RunStats& b,
                       const std::string& context) {
  EXPECT_EQ(a.steps, b.steps) << context;
  EXPECT_EQ(a.rounds, b.rounds) << context;
  EXPECT_EQ(a.silent, b.silent) << context;
  EXPECT_EQ(a.steps_to_silence, b.steps_to_silence) << context;
  EXPECT_EQ(a.rounds_to_silence, b.rounds_to_silence) << context;
  EXPECT_EQ(a.reached_legitimate, b.reached_legitimate) << context;
  EXPECT_EQ(a.steps_to_legitimate, b.steps_to_legitimate) << context;
  EXPECT_EQ(a.rounds_to_legitimate, b.rounds_to_legitimate) << context;
  EXPECT_EQ(a.total_reads, b.total_reads) << context;
  EXPECT_EQ(a.total_read_bits, b.total_read_bits) << context;
  EXPECT_EQ(a.max_reads_per_process_step, b.max_reads_per_process_step)
      << context;
  EXPECT_EQ(a.max_bits_per_process_step, b.max_bits_per_process_step)
      << context;
}

TEST(EngineEquivalence, RunStatsMatchIncludingQuiescenceCertification) {
  const ColoringProblem problem;
  for (const auto& named : testing::sweep_graphs()) {
    const ColoringProtocol protocol(named.graph);
    for (const std::string& daemon_name : daemon_names()) {
      const std::uint64_t seed = 900 + named.graph.num_vertices();
      Engine fast(named.graph, protocol, make_daemon(daemon_name), seed);
      ReferenceEngine oracle(named.graph, protocol, make_daemon(daemon_name),
                             seed);
      fast.randomize_state();
      oracle.randomize_state();
      RunOptions options;
      options.max_steps = 30'000;
      options.legitimacy = problem.predicate();
      const RunStats a = fast.run(options);
      const RunStats b = oracle.run(options);
      expect_same_stats(a, b, named.label + "/" + daemon_name);
      EXPECT_TRUE(fast.config() == oracle.config());
      // A second run from the silent point must certify instantly on both.
      const RunStats a2 = fast.run(options);
      const RunStats b2 = oracle.run(options);
      expect_same_stats(a2, b2, named.label + "/" + daemon_name + "/rerun");
    }
  }
}

void expect_same_summary(const Summary& a, const Summary& b,
                         const std::string& context) {
  EXPECT_EQ(a.count, b.count) << context;
  EXPECT_EQ(a.min, b.min) << context;
  EXPECT_EQ(a.max, b.max) << context;
  EXPECT_EQ(a.mean, b.mean) << context;
  EXPECT_EQ(a.median, b.median) << context;
  EXPECT_EQ(a.stddev, b.stddev) << context;
  EXPECT_EQ(a.p90, b.p90) << context;
}

TEST(SweepEquivalence, ThreadCountDoesNotChangeResults) {
  const Graph g = grid(4, 5);
  const MisProtocol protocol(g, greedy_coloring(g));
  const MisProblem problem;
  SweepOptions options;
  options.daemons = {"distributed", "central-rr", "synchronous",
                     "adversarial"};
  options.seeds_per_daemon = 3;
  options.run.max_steps = 20'000;

  options.threads = 1;
  const SweepSummary serial = sweep_convergence(g, protocol, &problem, options);
  for (int threads : {2, 4, 8}) {
    options.threads = threads;
    const SweepSummary parallel =
        sweep_convergence(g, protocol, &problem, options);
    const std::string context = "threads=" + std::to_string(threads);
    EXPECT_EQ(serial.runs, parallel.runs) << context;
    EXPECT_EQ(serial.silent_runs, parallel.silent_runs) << context;
    EXPECT_EQ(serial.max_rounds_to_silence, parallel.max_rounds_to_silence)
        << context;
    EXPECT_EQ(serial.max_steps_to_silence, parallel.max_steps_to_silence)
        << context;
    EXPECT_EQ(serial.k_measured, parallel.k_measured) << context;
    EXPECT_EQ(serial.bits_measured, parallel.bits_measured) << context;
    EXPECT_EQ(serial.mean_total_reads, parallel.mean_total_reads) << context;
    EXPECT_EQ(serial.mean_total_bits, parallel.mean_total_bits) << context;
    expect_same_summary(serial.rounds_to_silence, parallel.rounds_to_silence,
                        context);
    expect_same_summary(serial.steps_to_silence, parallel.steps_to_silence,
                        context);
    expect_same_summary(serial.rounds_to_legitimate,
                        parallel.rounds_to_legitimate, context);
  }
}

}  // namespace
}  // namespace sss
