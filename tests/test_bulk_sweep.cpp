/// The bulk guard sweep's contract (runtime/bulk.hpp): for every opted-in
/// protocol, one `sweep_enabled` pass must reproduce — action for action
/// and read for read — what n scalar `first_enabled` probes produce, and
/// an Engine forced onto the bulk path must stay bit-identical to one
/// forced onto the scalar path. Two layers of checks:
///
///  * direct: sweep a randomized configuration and compare per-process
///    actions and logged read sequences against scalar GuardContext runs
///    (this is the memo the engine replays into the read counters, so
///    sequence equality here is metric equality there);
///  * behavioural: kForceBulk vs kForceScalar engine lockstep over every
///    registry protocol, daemon, and a graph menagerie — configurations,
///    StepInfo, rounds, enabled counts, and read metrics all equal.
///
/// The registry-wide harness additionally runs the full property grid
/// with the bulk path forced on (tests/test_protocol_properties.cpp) and
/// proves falsifiability with a deliberately wrong sweep
/// (tests/test_protocol_harness.cpp).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/protocol_registry.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

/// Records every read as (subject, var) — the scalar-side twin of the
/// BulkGuardContext log.
class RecordingLogger final : public ReadLogger {
 public:
  std::vector<std::pair<ProcessId, int>> reads;
  void on_read(ProcessId, ProcessId subject, int comm_var) override {
    reads.push_back({subject, comm_var});
  }
};

/// Sweeps one randomized configuration and compares actions + read logs
/// against per-process scalar probes.
void expect_sweep_matches_scalar(const Graph& g, const Protocol& protocol,
                                 std::uint64_t seed) {
  const int n = g.num_vertices();
  Configuration config(g, protocol.spec());
  Rng rng(seed);
  randomize_configuration(g, protocol.spec(), config, rng);
  protocol.install_constants(g, config);

  std::vector<BulkGuardContext::ReadLog> logs(static_cast<std::size_t>(n));
  BulkGuardContext ctx(g, config, logs);
  EnabledBitmap bitmap;
  bitmap.reset(n);
  protocol.sweep_enabled(ctx, bitmap);

  for (ProcessId p = 0; p < n; ++p) {
    RecordingLogger logger;
    GuardContext guard(g, config, p, &logger);
    const int scalar_action = protocol.first_enabled(guard);
    EXPECT_EQ(bitmap.action(p), scalar_action)
        << protocol.name() << " on " << g.name() << " seed " << seed
        << ": action of process " << p;
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logger.reads)
        << protocol.name() << " on " << g.name() << " seed " << seed
        << ": read log of process " << p;
  }
}

TEST(BulkSweep, EveryRegistryProtocolOptsIn) {
  // The whole registry is covered by the fast path; a new protocol that
  // stays scalar should be a deliberate choice, visible here.
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    const Graph g = path(4);
    const std::unique_ptr<Protocol> protocol =
        ProtocolRegistry::instance().make(name, g, {});
    EXPECT_TRUE(protocol->has_bulk_sweep()) << name;
  }
}

TEST(BulkSweep, SweepMatchesScalarProbesAcrossRegistryAndMenagerie) {
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    for (const auto& named : testing::sweep_graphs()) {
      const std::unique_ptr<Protocol> protocol =
          ProtocolRegistry::instance().make(name, named.graph, {});
      if (!protocol->has_bulk_sweep()) continue;
      for (std::uint64_t seed : {101u, 102u, 103u, 104u}) {
        expect_sweep_matches_scalar(named.graph, *protocol, seed);
      }
    }
  }
}

TEST(BulkSweep, SweepMatchesScalarForNonDefaultParameters) {
  const Graph g = grid(3, 4);
  const ParamMap bfs_params = {{"root", 7}};
  const ParamMap election_params = {{"id_scheme", "random"}, {"id_seed", 5}};
  for (std::uint64_t seed : {7u, 8u}) {
    expect_sweep_matches_scalar(
        g, *ProtocolRegistry::instance().make("bfs-tree", g, bfs_params),
        seed);
    expect_sweep_matches_scalar(
        g,
        *ProtocolRegistry::instance().make("leader-election", g,
                                           election_params),
        seed);
    expect_sweep_matches_scalar(
        g,
        *ProtocolRegistry::instance().make(
            "mis", g, {{"promote_on_higher_color", false}}),
        seed);
  }
}

/// Forced-bulk vs forced-scalar engines from the same seed must produce
/// identical computations and metrics: the two refresh strategies are two
/// implementations of the same semantics.
void expect_mode_lockstep(const Graph& g, const Protocol& protocol,
                          const std::string& daemon_name, std::uint64_t seed,
                          int steps) {
  Engine bulk(g, protocol, make_daemon(daemon_name), seed);
  Engine scalar(g, protocol, make_daemon(daemon_name), seed);
  bulk.set_sweep_mode(SweepMode::kForceBulk);
  scalar.set_sweep_mode(SweepMode::kForceScalar);
  bulk.randomize_state();
  scalar.randomize_state();
  ASSERT_EQ(bulk.config(), scalar.config());
  for (int s = 0; s < steps; ++s) {
    ASSERT_EQ(bulk.num_enabled(), scalar.num_enabled())
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " step " << s;
    const Engine::StepInfo a = bulk.step();
    const Engine::StepInfo b = scalar.step();
    ASSERT_EQ(a.selected, b.selected)
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " step " << s;
    ASSERT_EQ(a.fired, b.fired);
    ASSERT_EQ(a.comm_changed, b.comm_changed);
    ASSERT_EQ(bulk.config(), scalar.config())
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " step " << s;
    ASSERT_EQ(bulk.rounds(), scalar.rounds());
    ASSERT_EQ(bulk.read_counter().total_reads(),
              scalar.read_counter().total_reads());
    ASSERT_EQ(bulk.read_counter().total_bits(),
              scalar.read_counter().total_bits());
    ASSERT_EQ(bulk.read_counter().max_reads_per_process_step(),
              scalar.read_counter().max_reads_per_process_step());
  }
}

TEST(BulkSweep, ForcedBulkEngineLockstepsForcedScalarEngine) {
  const std::vector<testing::NamedGraph> graphs = testing::sweep_graphs();
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    for (const auto& named : {graphs[0], graphs[4], graphs[6]}) {
      const std::unique_ptr<Protocol> protocol =
          ProtocolRegistry::instance().make(name, named.graph, {});
      if (!protocol->has_bulk_sweep()) continue;
      for (const std::string& daemon_name : daemon_names()) {
        expect_mode_lockstep(named.graph, *protocol, daemon_name, 909, 64);
      }
    }
  }
}

TEST(BulkSweep, AutoModeStaysOnComputationUnderEveryDaemon) {
  // kAuto flips between the two paths step by step (central daemons keep
  // the dirty set tiny, co-firing daemons blow it past the threshold);
  // the trajectory must not care.
  const Graph g = grid(3, 4);
  const std::unique_ptr<Protocol> protocol =
      ProtocolRegistry::instance().make("matching", g, {});
  for (const std::string& daemon_name : daemon_names()) {
    Engine auto_mode(g, *protocol, make_daemon(daemon_name), 4242);
    Engine scalar(g, *protocol, make_daemon(daemon_name), 4242);
    scalar.set_sweep_mode(SweepMode::kForceScalar);
    auto_mode.randomize_state();
    scalar.randomize_state();
    for (int s = 0; s < 128; ++s) {
      auto_mode.step();
      scalar.step();
      ASSERT_EQ(auto_mode.config(), scalar.config())
          << daemon_name << " step " << s;
    }
    ASSERT_EQ(auto_mode.read_counter().total_reads(),
              scalar.read_counter().total_reads());
  }
}

TEST(BulkSweep, ForceBulkOnScalarOnlyProtocolFallsBack) {
  // A protocol without a sweep ignores the preference — no assert, same
  // behaviour.
  const Graph g = path(5);
  const testing::CopyChannelOne protocol(g);
  ASSERT_FALSE(protocol.has_bulk_sweep());
  Engine forced(g, protocol, make_synchronous_daemon(), 11);
  Engine plain(g, protocol, make_synchronous_daemon(), 11);
  forced.set_sweep_mode(SweepMode::kForceBulk);
  forced.randomize_state();
  plain.randomize_state();
  for (int s = 0; s < 32; ++s) {
    forced.step();
    plain.step();
    ASSERT_EQ(forced.config(), plain.config()) << "step " << s;
  }
}

TEST(BulkSweep, EnabledBitmapBasics) {
  EnabledBitmap bitmap;
  bitmap.reset(3);
  EXPECT_EQ(bitmap.universe(), 3);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_FALSE(bitmap.enabled(p));
    EXPECT_EQ(bitmap.action(p), Protocol::kDisabled);
  }
  bitmap.set_action(1, 4);
  EXPECT_TRUE(bitmap.enabled(1));
  EXPECT_EQ(bitmap.action(1), 4);
  bitmap.reset(2);
  EXPECT_EQ(bitmap.universe(), 2);
  EXPECT_FALSE(bitmap.enabled(1));
}

}  // namespace
}  // namespace sss
