#include "protocol_harness.hpp"

#include <algorithm>
#include <sstream>

#include "core/problem_registry.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/reference_engine.hpp"

namespace sss::testing {

namespace {

/// One lockstep comparison of the incremental engine against the
/// full-scan oracle; returns a non-empty mismatch description on the
/// first divergence.
std::string lockstep_mismatch(const Graph& g, const Protocol& protocol,
                              const std::string& daemon_name,
                              std::uint64_t seed, int steps,
                              SweepMode sweep_mode, int parallel_threads) {
  Engine fast(g, protocol, make_daemon(daemon_name), seed);
  ReferenceEngine oracle(g, protocol, make_daemon(daemon_name), seed);
  fast.set_sweep_mode(sweep_mode);
  fast.set_parallel_threads(parallel_threads);
  fast.randomize_state();
  oracle.randomize_state();
  if (!(fast.config() == oracle.config())) {
    return "randomized initial configurations differ";
  }
  for (int s = 0; s < steps; ++s) {
    const Engine::StepInfo a = fast.step();
    const Engine::StepInfo b = oracle.step();
    const auto at = [&](const char* what) {
      return std::string(what) + " diverged at step " + std::to_string(s);
    };
    if (a.selected != b.selected || a.fired != b.fired ||
        a.comm_changed != b.comm_changed) {
      return at("StepInfo");
    }
    if (!(fast.config() == oracle.config())) return at("configuration");
    if (fast.rounds() != oracle.rounds() ||
        fast.rounds_inclusive() != oracle.rounds_inclusive()) {
      return at("round accounting");
    }
    if (fast.read_counter().total_reads() !=
            oracle.read_counter().total_reads() ||
        fast.read_counter().total_bits() !=
            oracle.read_counter().total_bits() ||
        fast.read_counter().max_reads_per_process_step() !=
            oracle.read_counter().max_reads_per_process_step() ||
        fast.read_counter().max_bits_per_process_step() !=
            oracle.read_counter().max_bits_per_process_step()) {
      return at("read metrics");
    }
  }
  return {};
}

}  // namespace

std::string HarnessReport::str() const {
  std::ostringstream out;
  out << protocol << " (problem: " << problem << ", " << trials
      << " trials): ";
  if (violations.empty()) {
    out << (trials > 0 ? "ok" : "NO TRIALS RAN");
    return out.str();
  }
  out << violations.size() << " violation(s)";
  for (const HarnessViolation& v : violations) {
    out << "\n  [" << v.check << "] " << v.protocol << " on " << v.graph
        << " under " << v.daemon << " seed " << v.seed << ": " << v.detail;
  }
  return out.str();
}

std::vector<Graph> harness_menagerie() {
  std::vector<Graph> graphs;
  graphs.push_back(path(7));
  graphs.push_back(cycle(6));
  graphs.push_back(star(5));
  graphs.push_back(grid(3, 3));
  graphs.push_back(balanced_binary_tree(9));
  graphs.push_back(petersen());
  // One production-shaped family: dense cliques behind thin bridges, the
  // degree profile none of the classical members above has.
  graphs.push_back(grid_of_clusters(2, 2, 4));
  return graphs;
}

HarnessReport run_protocol_property_suite(const ProtocolSelection& selection,
                                          const HarnessOptions& options) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const ProtocolRegistry::ComposedInfo info = registry.resolve(selection);
  HarnessReport report;
  report.protocol = info.label;
  report.problem = info.problem;
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::instance().make(info.problem);

  // The grid sweeps every requested daemon the composition's resolved
  // stabilization claim covers (ComposedInfo::daemons, empty = all).
  std::vector<std::string> daemons =
      options.daemons.empty() ? daemon_names() : options.daemons;
  if (!info.daemons.empty()) {
    std::erase_if(daemons, [&](const std::string& name) {
      return std::find(info.daemons.begin(), info.daemons.end(), name) ==
             info.daemons.end();
    });
  }
  const std::vector<Graph> graphs =
      options.menagerie.empty() ? harness_menagerie() : options.menagerie;

  std::uint64_t trial_index = 0;
  for (const Graph& g : graphs) {
    const std::unique_ptr<Protocol> protocol = registry.make(selection, g);
    for (const std::string& daemon_name : daemons) {
      for (int s = 0; s < options.seeds_per_daemon; ++s) {
        const std::uint64_t seed = options.base_seed + trial_index++;
        ++report.trials;
        const auto violate = [&](std::string check, std::string detail) {
          report.violations.push_back(HarnessViolation{
              info.label, g.name(), daemon_name, seed, std::move(check),
              std::move(detail)});
        };

        // Convergence: random start -> certified-silent configuration.
        Engine engine(g, *protocol, make_daemon(daemon_name), seed);
        engine.set_sweep_mode(options.sweep_mode);
        engine.set_parallel_threads(options.parallel_threads);
        engine.randomize_state();
        RunOptions run;
        run.max_steps = options.max_steps;
        run.stop_on_silence = true;
        const RunStats stats = engine.run(run);
        if (!stats.silent) {
          violate("convergence",
                  "no certified-silent configuration within " +
                      std::to_string(options.max_steps) + " steps");
        } else {
          // Legitimacy: silent => the paired predicate holds.
          if (!problem->holds(g, engine.config())) {
            violate("legitimacy",
                    "silent configuration violates " + info.problem);
          } else {
            // Closure + silence: the post-silence window never writes a
            // communication variable and never falsifies the predicate.
            const Configuration silent_config = engine.config();
            bool comm_stable = true;
            for (int extra = 0; extra < options.closure_steps; ++extra) {
              engine.step();
              if (!engine.config().same_comm(silent_config)) {
                violate("silence",
                        "communication variable changed " +
                            std::to_string(extra + 1) +
                            " step(s) after certified silence");
                comm_stable = false;
                break;
              }
            }
            if (comm_stable && !problem->holds(g, engine.config())) {
              violate("closure", info.problem +
                                     " falsified during the post-silence "
                                     "window without a communication write");
            }
          }
        }

        // Equivalence: incremental engine vs full-scan oracle, same seed.
        const std::string mismatch = lockstep_mismatch(
            g, *protocol, daemon_name, seed, options.lockstep_steps,
            options.sweep_mode, options.parallel_threads);
        if (!mismatch.empty()) violate("equivalence", mismatch);
      }
    }
  }
  return report;
}

HarnessReport run_protocol_property_suite(const std::string& protocol_name,
                                          const HarnessOptions& options) {
  return run_protocol_property_suite(
      ProtocolSelection::base(protocol_name, options.params), options);
}

std::vector<HarnessReport> run_registry_property_suite(
    const HarnessOptions& options) {
  std::vector<HarnessReport> reports;
  for (const std::string& name :
       ProtocolRegistry::instance().protocol_names()) {
    reports.push_back(run_protocol_property_suite(name, options));
  }
  return reports;
}

HarnessReport run_protocol_fault_closure_suite(
    const ProtocolSelection& selection, const HarnessOptions& options) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const ProtocolRegistry::ComposedInfo info = registry.resolve(selection);
  HarnessReport report;
  report.protocol = info.label;
  report.problem = info.problem;
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::instance().make(info.problem);

  std::vector<std::string> daemons =
      options.daemons.empty() ? daemon_names() : options.daemons;
  if (!info.daemons.empty()) {
    std::erase_if(daemons, [&](const std::string& name) {
      return std::find(info.daemons.begin(), info.daemons.end(), name) ==
             info.daemons.end();
    });
  }
  const std::vector<Graph> graphs =
      options.menagerie.empty() ? harness_menagerie() : options.menagerie;

  std::uint64_t trial_index = 0;
  for (const Graph& g : graphs) {
    const std::unique_ptr<Protocol> protocol = registry.make(selection, g);
    for (const std::string& daemon_name : daemons) {
      for (int s = 0; s < options.seeds_per_daemon; ++s) {
        const std::uint64_t seed = options.base_seed + trial_index++;
        ++report.trials;
        const auto violate = [&](std::string check, std::string detail) {
          report.violations.push_back(HarnessViolation{
              info.label, g.name(), daemon_name, seed, std::move(check),
              std::move(detail)});
        };

        Engine engine(g, *protocol, make_daemon(daemon_name), seed);
        engine.set_sweep_mode(options.sweep_mode);
        engine.set_parallel_threads(options.parallel_threads);
        engine.randomize_state();
        RunOptions run;
        run.max_steps = options.max_steps;
        run.stop_on_silence = true;
        if (!engine.run(run).silent) continue;  // vacuous cell (see header)

        // The fault stream is independent of the engine's own rng so the
        // corruption is an *external* event, like the churn runtime's.
        Rng fault_rng(seed ^ 0xfa17c0deULL);
        const int count =
            std::min(options.fault_victims, g.num_vertices());
        const std::vector<ProcessId> victims =
            choose_victims(g.num_vertices(), count, fault_rng);
        engine.apply_external_corruption(victims, fault_rng);

        if (!engine.run(run).silent) {
          violate("fault-convergence",
                  "no certified-silent configuration within " +
                      std::to_string(options.max_steps) +
                      " steps after corrupting " + std::to_string(count) +
                      " process(es)");
        } else if (!problem->holds(g, engine.config())) {
          violate("fault-legitimacy",
                  "post-recovery silent configuration violates " +
                      info.problem);
        }
      }
    }
  }
  return report;
}

HarnessReport run_protocol_fault_closure_suite(
    const std::string& protocol_name, const HarnessOptions& options) {
  return run_protocol_fault_closure_suite(
      ProtocolSelection::base(protocol_name, options.params), options);
}

std::vector<HarnessReport> run_registry_fault_closure_suite(
    const HarnessOptions& options) {
  std::vector<HarnessReport> reports;
  for (const std::string& name :
       ProtocolRegistry::instance().protocol_names()) {
    reports.push_back(run_protocol_fault_closure_suite(name, options));
  }
  return reports;
}

}  // namespace sss::testing
