/// Unit tests for the support layer: rng, bits, stats, tables, csv,
/// strings, and the contract macros.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bits.hpp"
#include "support/csv.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/text_table.hpp"

namespace sss {
namespace {

TEST(Require, PreconditionThrowsWithContext) {
  try {
    SSS_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Require, AssertThrowsInvariantError) {
  EXPECT_THROW(SSS_ASSERT(false, "broken"), InvariantError);
  EXPECT_NO_THROW(SSS_ASSERT(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo = hit_lo || v == -2;
    hit_hi = hit_hi || v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(4);
  EXPECT_THROW(rng.range(3, 2), PreconditionError);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(Rng, ChanceDegenerateProbabilities) {
  Rng rng(6);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(w, rng);
  std::multiset<int> sv(v.begin(), v.end());
  std::multiset<int> sw(w.begin(), w.end());
  EXPECT_EQ(sv, sw);
}

TEST(Bits, CeilLog2KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(ceil_log2(1 << 20), 20);
}

TEST(Bits, CeilLog2DegenerateDomains) {
  EXPECT_EQ(ceil_log2(0), 0);
  EXPECT_EQ(ceil_log2(-5), 0);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(14, 7), 2);
  EXPECT_EQ(ceil_div(15, 7), 3);
  EXPECT_EQ(ceil_div(0, 7), 0);
  EXPECT_EQ(ceil_div(1, 7), 1);
}

TEST(Stats, SummarizeKnownSample) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummarizeEmptyIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleton) {
  const Summary s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 100.0), 10.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile_sorted({}, 50.0), PreconditionError);
  EXPECT_THROW(percentile_sorted({1.0}, 101.0), PreconditionError);
}

TEST(Stats, RunningStatMatchesSummarize) {
  const std::vector<double> sample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat rs;
  for (double x : sample) rs.add(x);
  const Summary s = summarize(sample);
  EXPECT_EQ(rs.count(), s.count);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(Stats, RunningStatEmpty) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().add("a").add(1);
  t.row().add("long-name").add(22);
  const std::string out = t.str();
  EXPECT_NE(out.find("name       value"), std::string::npos);
  EXPECT_NE(out.find("long-name  22"), std::string::npos);
}

TEST(TextTable, NumericFormatting) {
  TextTable t({"x"});
  t.row().add(3.14159, 3);
  EXPECT_NE(t.str().find("3.142"), std::string::npos);
  TextTable b({"flag"});
  b.row().add(true);
  EXPECT_NE(b.str().find("yes"), std::string::npos);
}

TEST(TextTable, AddBeforeRowThrows) {
  TextTable t({"x"});
  EXPECT_THROW(t.add("cell"), PreconditionError);
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b,c"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n1,2\n");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimAndJoinAndStartsWith) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(StringUtil, ParseNonNegativeIntAcceptsPlainDigitsOnly) {
  int value = -1;
  EXPECT_TRUE(parse_non_negative_int("0", &value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(parse_non_negative_int("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(parse_non_negative_int("007", &value));  // leading zeros fine
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(parse_non_negative_int("2147483647", &value));  // INT_MAX
  EXPECT_EQ(value, 2147483647);
}

TEST(StringUtil, ParseNonNegativeIntRejectsWhatStoiAccepts) {
  // std::stoi takes all of these; the strict parse must not.
  int value = 123;
  EXPECT_FALSE(parse_non_negative_int("+5", &value));
  EXPECT_FALSE(parse_non_negative_int("  5", &value));
  EXPECT_FALSE(parse_non_negative_int("5 ", &value));
  EXPECT_FALSE(parse_non_negative_int("-1", &value));
  EXPECT_FALSE(parse_non_negative_int("", &value));
  EXPECT_FALSE(parse_non_negative_int("5x", &value));
  EXPECT_FALSE(parse_non_negative_int("0x5", &value));
  EXPECT_FALSE(parse_non_negative_int("2147483648", &value));  // overflow
  EXPECT_FALSE(parse_non_negative_int("99999999999999999999", &value));
  EXPECT_EQ(value, 123);  // failures leave *out untouched
}

}  // namespace
}  // namespace sss
