/// Tests for the strict JSON reader (support/json.hpp): the full grammar,
/// member-order preservation, duplicate-key rejection, and precise error
/// behaviour on malformed documents.

#include <gtest/gtest.h>

#include <string>

#include "support/json.hpp"
#include "support/require.hpp"

namespace sss {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("0.125").as_double(), 0.125);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e2").as_double(), -150.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2E+1").as_double(), 20.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(R"({
    "name": "demo",
    "sizes": [1, 2, 3],
    "nested": {"deep": [{"x": true}]},
    "empty_array": [],
    "empty_object": {}
  })");
  EXPECT_EQ(doc.size(), 5u);
  EXPECT_EQ(doc.at("name").as_string(), "demo");
  EXPECT_EQ(doc.at("sizes").items().size(), 3u);
  EXPECT_EQ(doc.at("sizes").items()[2].as_int(), 3);
  EXPECT_TRUE(
      doc.at("nested").at("deep").items()[0].at("x").as_bool());
  EXPECT_EQ(doc.at("empty_array").size(), 0u);
  EXPECT_EQ(doc.at("empty_object").size(), 0u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), PreconditionError);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(),
            "a\"b\\c/d\n\t");
  EXPECT_EQ(JsonValue::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            "{",           "[1, 2",        "{\"a\": }",
      "{\"a\" 1}",   "tru",         "01",           "1.",
      "1e",          "\"unterm",    "\"bad\\q\"",   "[1,]",
      "{,}",         "nan",         "[1] garbage",  "\"\\ud800\"",
      "{\"a\": 1 \"b\": 2}",
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), PreconditionError) << text;
  }
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(JsonValue::parse(R"({"a": 1, "a": 2})"), PreconditionError);
}

TEST(Json, ReportsErrorPosition) {
  try {
    JsonValue::parse("{\n  \"a\": [1, oops]\n}");
    FAIL() << "expected a parse error";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("2:"), std::string::npos)
        << error.what();
  }
}

TEST(Json, StampsValuePositions) {
  // Every parsed value carries the 1-based line:col of its first
  // character, so document consumers (the manifest plan builder) can
  // point schema errors at the offending value.
  const JsonValue doc = JsonValue::parse("{\n  \"a\": [1, 22],\n  \"b\": 3\n}");
  EXPECT_EQ(doc.where(), "1:1");
  EXPECT_EQ(doc.at("a").where(), "2:8");
  EXPECT_EQ(doc.at("a").items()[0].where(), "2:9");
  EXPECT_EQ(doc.at("a").items()[1].where(), "2:12");
  EXPECT_EQ(doc.at("b").where(), "3:8");
  EXPECT_EQ(JsonValue().where(), "0:0");  // not produced by parse
}

TEST(Json, TypedAccessorsValidateKind) {
  const JsonValue number = JsonValue::parse("1.5");
  EXPECT_THROW(number.as_string(), PreconditionError);
  EXPECT_THROW(number.as_int(), PreconditionError);  // not integral
  EXPECT_THROW(number.items(), PreconditionError);
  EXPECT_THROW(number.members(), PreconditionError);
  EXPECT_THROW(JsonValue::parse("\"x\"").as_double(), PreconditionError);
}

TEST(Json, QuoteRoundTripsThroughParse) {
  const std::string original = "line\nwith \"quotes\" & \\slashes\\ \t end";
  const JsonValue parsed = JsonValue::parse(json_quote(original));
  EXPECT_EQ(parsed.as_string(), original);
}

TEST(Json, SerializePreservesOrderAndRoundTrips) {
  const std::string text =
      R"({"b": 1, "a": [true, null, "x\ny", -2.5], "c": {"n": 9000000000}})";
  const std::string compact = json_serialize(JsonValue::parse(text));
  // Member order is document order — "b" before "a" before "c".
  EXPECT_LT(compact.find("\"b\""), compact.find("\"a\""));
  EXPECT_LT(compact.find("\"a\""), compact.find("\"c\""));
  // Integral numbers render without exponent or fraction.
  EXPECT_NE(compact.find("9000000000"), std::string::npos);
  // parse -> serialize is a fixed point after one pass.
  EXPECT_EQ(json_serialize(JsonValue::parse(compact)), compact);
  // And the round-tripped document is semantically intact.
  const JsonValue again = JsonValue::parse(compact);
  EXPECT_EQ(again.at("a").items()[2].as_string(), "x\ny");
  EXPECT_EQ(again.at("a").items()[3].as_double(), -2.5);
  EXPECT_EQ(again.at("c").at("n").as_int(), 9000000000LL);
}

}  // namespace
}  // namespace sss
