/// Tests for the name-based registries: completeness (every builders.hpp
/// family and every protocol/problem reachable by name), equivalence with
/// direct construction, and the strict unknown-name / unknown-parameter
/// error paths.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/coloring_protocol.hpp"
#include "core/problem_registry.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "graph/coloring.hpp"
#include "graph/family_registry.hpp"
#include "support/require.hpp"

namespace sss {
namespace {

TEST(GraphFamilyRegistry, EveryBuilderFamilyIsRegistered) {
  // One name per builders.hpp entry point; a new builder without a
  // registry entry fails this list.
  const std::vector<std::string> expected = {
      "path",           "cycle",       "complete",
      "star",           "wheel",       "grid",
      "torus",          "hypercube",   "complete-bipartite",
      "balanced-binary-tree",          "caterpillar",
      "lollipop",       "barbell",     "petersen",
      "random-tree",    "erdos-renyi", "random-regular",
      "preferential-attachment",       "random-geometric",
      "grid-of-clusters",
      "theorem1-spider", "theorem2-gadget",
      "fig9-path",      "fig11-tight-matching"};
  const GraphFamilyRegistry& registry = GraphFamilyRegistry::instance();
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_EQ(registry.names().size(), expected.size());
}

TEST(GraphFamilyRegistry, BuildsEveryFamily) {
  const GraphFamilyRegistry& registry = GraphFamilyRegistry::instance();
  const std::vector<std::pair<std::string, ParamMap>> samples = {
      {"path", {{"n", 5}}},
      {"cycle", {{"n", 6}}},
      {"complete", {{"n", 4}}},
      {"star", {{"leaves", 3}}},
      {"wheel", {{"rim", 5}}},
      {"grid", {{"rows", 3}, {"cols", 4}}},
      {"torus", {{"rows", 3}, {"cols", 3}}},
      {"hypercube", {{"dim", 3}}},
      {"complete-bipartite", {{"a", 2}, {"b", 3}}},
      {"balanced-binary-tree", {{"n", 7}}},
      {"caterpillar", {{"spine", 3}, {"legs", 2}}},
      {"lollipop", {{"clique", 3}, {"tail", 2}}},
      {"barbell", {{"k", 3}, {"bridge", 1}}},
      {"petersen", {}},
      {"random-tree", {{"n", 8}, {"seed", 7}}},
      {"erdos-renyi", {{"n", 10}, {"p", 0.3}, {"seed", 7}}},
      {"random-regular", {{"n", 8}, {"d", 3}, {"seed", 7}}},
      {"preferential-attachment", {{"n", 20}, {"m", 2}, {"seed", 7}}},
      {"random-geometric", {{"n", 20}, {"radius", 0.3}, {"seed", 7}}},
      {"grid-of-clusters", {{"rows", 2}, {"cols", 2}, {"cluster", 3}}},
      {"theorem1-spider", {{"delta", 3}}},
      {"theorem2-gadget", {{"delta", 2}}},
      {"fig9-path", {{"n", 6}}},
      {"fig11-tight-matching", {}},
  };
  ASSERT_EQ(samples.size(), registry.names().size());
  for (const auto& [name, params] : samples) {
    const Graph g = registry.build(name, params);
    EXPECT_GE(g.num_vertices(), 1) << name;
  }
}

TEST(GraphFamilyRegistry, MatchesDirectConstruction) {
  const GraphFamilyRegistry& registry = GraphFamilyRegistry::instance();
  const Graph from_registry =
      registry.build("grid", {{"rows", 3}, {"cols", 4}});
  const Graph direct = grid(3, 4);
  EXPECT_EQ(from_registry.name(), direct.name());
  EXPECT_EQ(from_registry.edges(), direct.edges());

  // Seeded families are deterministic in their seed parameter.
  const Graph r1 = registry.build("random-regular",
                                  {{"n", 12}, {"d", 3}, {"seed", 9}});
  const Graph r2 = registry.build("random-regular",
                                  {{"n", 12}, {"d", 3}, {"seed", 9}});
  EXPECT_EQ(r1.edges(), r2.edges());

  // The production-shaped families round-trip the same way: registry
  // build == direct construction from the same (params, seed).
  const Graph pa_registry = registry.build(
      "preferential-attachment", {{"n", 30}, {"m", 2}, {"seed", 9}});
  Rng pa_rng(9);
  EXPECT_EQ(pa_registry.edges(),
            preferential_attachment(30, 2, pa_rng).edges());
  const Graph geo_registry = registry.build(
      "random-geometric", {{"n", 30}, {"radius", 0.25}, {"seed", 9}});
  Rng geo_rng(9);
  EXPECT_EQ(geo_registry.edges(),
            random_geometric(30, 0.25, geo_rng).edges());
  const Graph clusters_registry = registry.build(
      "grid-of-clusters", {{"rows", 2}, {"cols", 3}, {"cluster", 4}});
  EXPECT_EQ(clusters_registry.edges(), grid_of_clusters(2, 3, 4).edges());
  EXPECT_EQ(clusters_registry.name(), grid_of_clusters(2, 3, 4).name());
}

TEST(GraphFamilyRegistry, RejectsBadNamesAndParams) {
  const GraphFamilyRegistry& registry = GraphFamilyRegistry::instance();
  EXPECT_THROW(registry.build("moebius", {}), PreconditionError);
  EXPECT_THROW(registry.build("path", {{"m", 5}}), PreconditionError);
  EXPECT_THROW(registry.build("path", {}), PreconditionError);  // missing n
  EXPECT_THROW(registry.build("path", {{"n", 2.5}}), PreconditionError);
  EXPECT_THROW(registry.build("path", {{"n", "five"}}), PreconditionError);
  // Out-of-range sizes must error, never wrap: 2^32 + 8 is not path(8),
  // and 1e300 must not reach a double -> int64 cast (UB).
  EXPECT_THROW(registry.build("path", {{"n", 4294967304.0}}),
               PreconditionError);
  EXPECT_THROW(registry.build("path", {{"n", 1e300}}), PreconditionError);
  EXPECT_THROW(registry.build("grid", {{"rows", 3}}), PreconditionError);
}

TEST(ProtocolRegistry, EveryBaseProtocolIsRegisteredAndConstructs) {
  const std::vector<std::string> expected = {
      "coloring",  "full-read-coloring",        "matching",
      "full-read-matching",                     "mis",
      "full-read-mis",                          "bfs-tree",
      "full-read-bfs-tree",                     "leader-election",
      "full-read-leader-election",              "spanning-forest",
      "full-read-spanning-forest"};
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  EXPECT_EQ(registry.protocol_names().size(), expected.size());
  const Graph g = petersen();
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.info(name).kind,
              ProtocolRegistry::Entry::Kind::kProtocol)
        << name;
    const std::unique_ptr<Protocol> protocol = registry.make(name, g);
    ASSERT_NE(protocol, nullptr) << name;
    EXPECT_FALSE(protocol->name().empty()) << name;
  }
}

TEST(ProtocolRegistry, TransformersAndCheckerSourcesAreRegistered) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  // names() spans all kinds; protocol_names() only the base protocols.
  EXPECT_EQ(registry.names().size(),
            registry.protocol_names().size() + 4);

  const ProtocolRegistry::Entry& efficiency =
      registry.info("generic-efficiency");
  EXPECT_EQ(efficiency.kind, ProtocolRegistry::Entry::Kind::kTransformer);
  EXPECT_TRUE(efficiency.wraps_protocol());
  EXPECT_TRUE(efficiency.runnable());

  const ProtocolRegistry::Entry& rotating = registry.info("rotating-check");
  EXPECT_EQ(rotating.kind, ProtocolRegistry::Entry::Kind::kTransformer);
  EXPECT_FALSE(rotating.wraps_protocol());  // wraps checker sources

  for (const char* source : {"pairwise-coloring", "pairwise-separation"}) {
    const ProtocolRegistry::Entry& entry = registry.info(source);
    EXPECT_EQ(entry.kind, ProtocolRegistry::Entry::Kind::kCheckerSource)
        << source;
    EXPECT_FALSE(entry.runnable()) << source;
  }
}

TEST(ProtocolRegistry, ComposedSelectionsConstructAndResolve) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const Graph g = petersen();

  // Every base protocol is wrappable by generic-efficiency.
  for (const std::string& name : registry.protocol_names()) {
    const ProtocolSelection wrapped = ProtocolSelection::wrap(
        "generic-efficiency", ProtocolSelection::base(name));
    const ProtocolRegistry::ComposedInfo info = registry.resolve(wrapped);
    EXPECT_EQ(info.label, "generic-efficiency(" + name + ")");
    EXPECT_EQ(info.problem, registry.info(name).problem) << name;
    const std::unique_ptr<Protocol> protocol = registry.make(wrapped, g);
    ASSERT_NE(protocol, nullptr) << name;
  }

  // rotating-check over a checker source, through the same machinery.
  const ProtocolSelection rotating = ProtocolSelection::wrap(
      "rotating-check", ProtocolSelection::base("pairwise-coloring"));
  const ProtocolRegistry::ComposedInfo info = registry.resolve(rotating);
  EXPECT_EQ(info.label, "rotating-check(pairwise-coloring)");
  EXPECT_EQ(info.problem, "vertex-coloring");
  EXPECT_FALSE(info.daemons.empty());  // inherits the no-co-firing claim
  EXPECT_NE(registry.make(rotating, g), nullptr);

  // Transformers nest: efficiency(efficiency(coloring)) is constructible.
  const ProtocolSelection nested = ProtocolSelection::wrap(
      "generic-efficiency",
      ProtocolSelection::wrap("generic-efficiency",
                              ProtocolSelection::base("coloring")));
  EXPECT_EQ(registry.resolve(nested).label,
            "generic-efficiency(generic-efficiency(coloring))");
  EXPECT_NE(registry.make(nested, g), nullptr);
}

TEST(ProtocolRegistry, RejectsMalformedCompositions) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const Graph g = cycle(5);
  // A bare transformer has nothing to wrap.
  EXPECT_THROW(registry.make("generic-efficiency", g), PreconditionError);
  EXPECT_THROW(registry.make("rotating-check", g), PreconditionError);
  // A checker source is not runnable, bare or wrapped by the wrong kind.
  EXPECT_THROW(registry.make("pairwise-coloring", g), PreconditionError);
  EXPECT_THROW(
      registry.make(ProtocolSelection::wrap(
                        "generic-efficiency",
                        ProtocolSelection::base("pairwise-coloring")),
                    g),
      PreconditionError);
  // rotating-check wraps checker sources only.
  EXPECT_THROW(
      registry.make(ProtocolSelection::wrap(
                        "rotating-check", ProtocolSelection::base("coloring")),
                    g),
      PreconditionError);
  // A base protocol does not take an inner spec.
  EXPECT_THROW(
      registry.make(ProtocolSelection::wrap(
                        "coloring", ProtocolSelection::base("mis")),
                    g),
      PreconditionError);
  // Unknown parameters are rejected at the level they appear.
  EXPECT_THROW(
      registry.make(ProtocolSelection::wrap(
                        "generic-efficiency",
                        ProtocolSelection::base("coloring",
                                                {{"pallete_size", 4}})),
                    g),
      PreconditionError);
}

TEST(ProtocolRegistry, EveryEntryAdvertisesParamsAndProblem) {
  // `sss_lab list` and the property harness read the per-entry parameter
  // schema and problem pairing; spot-check them.
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  EXPECT_EQ(registry.info("coloring").params,
            (std::vector<std::string>{"palette_size"}));
  EXPECT_EQ(registry.info("coloring").problem, "vertex-coloring");
  EXPECT_EQ(registry.info("bfs-tree").params,
            (std::vector<std::string>{"root"}));
  EXPECT_EQ(registry.info("bfs-tree").problem, "bfs-spanning-tree");
  EXPECT_EQ(registry.info("leader-election").params,
            (std::vector<std::string>{"id_scheme", "id_seed"}));
  EXPECT_EQ(registry.info("leader-election").problem, "leader-election");
  EXPECT_EQ(registry.info("spanning-forest").params,
            (std::vector<std::string>{"roots"}));
  EXPECT_EQ(registry.info("spanning-forest").problem, "bfs-spanning-forest");
  // Every *base* entry pairs with a registered predicate; transformers may
  // leave theirs empty (= inherit the inner entry's).
  for (const std::string& name : registry.protocol_names()) {
    EXPECT_TRUE(
        ProblemRegistry::instance().contains(registry.info(name).problem))
        << name;
  }
  EXPECT_THROW(registry.info("gossip"), PreconditionError);
}

TEST(ProtocolRegistry, ForwardsParameters) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const Graph g = star(4);
  const std::unique_ptr<Protocol> wide =
      registry.make("coloring", g, {{"palette_size", 9}});
  EXPECT_EQ(dynamic_cast<const ColoringProtocol&>(*wide).palette_size(), 9);

  // Coloring schemes: identity gives n distinct colors on any graph.
  const std::unique_ptr<Protocol> mis =
      registry.make("mis", g, {{"coloring", "identity"}});
  EXPECT_EQ(mis->name(), "MIS");
  const std::unique_ptr<Protocol> ablated =
      registry.make("mis", g, {{"promote_on_higher_color", 0}});
  EXPECT_NE(ablated, nullptr);
}

TEST(ProtocolRegistry, RejectsBadNamesAndParams) {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const Graph g = cycle(5);
  EXPECT_THROW(registry.make("gossip", g), PreconditionError);
  EXPECT_THROW(registry.make("coloring", g, {{"pallete_size", 4}}),
               PreconditionError);
  EXPECT_THROW(registry.make("mis", g, {{"coloring", "rainbow"}}),
               PreconditionError);
  EXPECT_THROW(registry.make("mis", g, {{"promote_on_higher_color", 3}}),
               PreconditionError);
}

TEST(ProblemRegistry, NamesAliasesAndPredicates) {
  const ProblemRegistry& registry = ProblemRegistry::instance();
  const std::vector<std::string> canonical = {
      "bfs-spanning-forest", "bfs-spanning-tree", "leader-election",
      "maximal-independent-set", "maximal-matching", "mutual-pr-matching",
      "vertex-coloring"};
  EXPECT_EQ(registry.names(), canonical);
  for (const std::string& name : canonical) {
    EXPECT_NE(registry.make(name), nullptr);
  }
  EXPECT_EQ(registry.make("mis")->name(), "maximal-independent-set");
  EXPECT_EQ(registry.make("coloring")->name(), "vertex-coloring");
  EXPECT_EQ(registry.make("matching")->name(), "maximal-matching");
  EXPECT_EQ(registry.make("bfs-tree")->name(), "bfs-spanning-tree");
  EXPECT_EQ(registry.make("bfs")->name(), "bfs-spanning-tree");
  EXPECT_EQ(registry.make("forest")->name(), "bfs-spanning-forest");
  EXPECT_EQ(registry.make("bfs-forest")->name(), "bfs-spanning-forest");
  EXPECT_EQ(registry.make("leader")->name(), "leader-election");
  EXPECT_THROW(registry.make("domination"), PreconditionError);
}

TEST(Registries, SelfRegistrationIsOpenAndGuarded) {
  // New entries can be added at runtime (the self-registration path) and
  // name collisions are rejected.
  GraphFamilyRegistry& graphs = GraphFamilyRegistry::instance();
  if (!graphs.contains("test-triangle")) {
    graphs.register_family("test-triangle", {}, [](const ParamMap&) {
      return complete(3);
    });
  }
  EXPECT_EQ(graphs.build("test-triangle", {}).num_vertices(), 3);
  EXPECT_THROW(graphs.register_family("test-triangle", {},
                                      [](const ParamMap&) {
                                        return complete(3);
                                      }),
               PreconditionError);
}

}  // namespace
}  // namespace sss
