#pragma once
/// \file protocol_harness.hpp
/// Registry-wide property-test harness: one exhaustive correctness grid
/// every registered protocol runs through, so a protocol dropped into the
/// ProtocolRegistry gets convergence / legitimacy / closure / silence /
/// lockstep-equivalence coverage for free instead of a hand-written suite.
///
/// For a protocol selection (a name, or a nested transformer composition
/// like generic-efficiency(coloring)) the harness resolves the paired
/// legitimacy predicate and daemon claim through
/// ProtocolRegistry::resolve(), then runs a (daemon x menagerie x seed)
/// grid. Each trial asserts four properties:
///
///  * convergence — a run from a uniformly random configuration reaches a
///    configuration the exact quiescence check certifies silent within
///    `max_steps`;
///  * legitimacy — the silent configuration satisfies the predicate
///    (silent => legitimate, the paper's Definition 3 direction);
///  * closure + silence — continuing for `closure_steps` more steps never
///    changes a communication variable (certified silence is real: read
///    activity continues, writes never resume) and never falsifies the
///    predicate;
///  * equivalence — a fresh Engine and ReferenceEngine driven from the
///    same seed stay configuration- and metrics-identical for
///    `lockstep_steps` steps (the differential oracle of
///    tests/test_engine_equivalence.cpp, applied to every registry entry).
///
/// Violations are collected, not thrown, so one report shows every
/// failing (protocol, graph, daemon, seed) cell — and so the harness
/// itself is testable: tests/test_protocol_harness.cpp registers a
/// deliberately broken protocol and asserts the harness flags it.

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol_registry.hpp"
#include "graph/graph.hpp"
#include "runtime/engine.hpp"
#include "support/params.hpp"

namespace sss::testing {

struct HarnessOptions {
  /// Daemons to sweep; empty = every registered daemon name.
  std::vector<std::string> daemons;
  int seeds_per_daemon = 2;
  std::uint64_t base_seed = 5000;
  std::uint64_t max_steps = 400'000;
  /// Post-silence window proving closure and silence.
  int closure_steps = 64;
  /// Engine-vs-ReferenceEngine lockstep length per trial.
  int lockstep_steps = 96;
  /// Extra registry parameters forwarded by the *name-based* entry points
  /// (folded into the selection); the selection-based entry points carry
  /// parameters inside the selection and ignore this field.
  ParamMap params;
  /// Graphs to sweep; empty = harness_menagerie().
  std::vector<Graph> menagerie;
  /// Probe-refresh strategy applied to every (fast) Engine the grid
  /// drives — the convergence/closure runner and the lockstep engine
  /// alike. kForceBulk pins opted-in protocols to the bulk guard sweep,
  /// so the whole property grid doubles as a sweep-correctness oracle
  /// against the scalar-path ReferenceEngine.
  SweepMode sweep_mode = SweepMode::kAuto;
  /// Victim-set size of the fault-closure suite (clamped to the graph's
  /// process count per cell).
  int fault_victims = 2;
  /// Intra-trial worker threads applied to every fast Engine the grid
  /// drives (engine invariant 7: bit-identical at any value, so a forced
  /// > 1 run of the whole grid proves the parallel step against the same
  /// oracle and predicates the serial grid answers to).
  int parallel_threads = 1;
};

struct HarnessViolation {
  std::string protocol;
  std::string graph;
  std::string daemon;
  std::uint64_t seed = 0;
  /// Which property failed: "convergence", "legitimacy", "closure",
  /// "silence", or "equivalence".
  std::string check;
  std::string detail;
};

struct HarnessReport {
  std::string protocol;
  std::string problem;
  int trials = 0;
  std::vector<HarnessViolation> violations;

  bool ok() const { return !violations.empty() ? false : trials > 0; }
  /// Human-readable summary of every violation (empty string when ok).
  std::string str() const;
};

/// The harness's default graph menagerie: small, varied (degree spread,
/// symmetry, bottlenecks, diameter extremes), fast to exhaust.
std::vector<Graph> harness_menagerie();

/// Runs the full property grid for one (possibly composed) protocol
/// selection. The grid sweeps the daemons the composition's resolved
/// claim covers (ComposedInfo::daemons intersected with
/// `options.daemons`).
HarnessReport run_protocol_property_suite(const ProtocolSelection& selection,
                                          const HarnessOptions& options = {});

/// Name-based convenience: runs the grid for
/// ProtocolSelection::base(protocol_name, options.params).
HarnessReport run_protocol_property_suite(const std::string& protocol_name,
                                          const HarnessOptions& options = {});

/// Runs the grid for every *base* runnable entry in the ProtocolRegistry
/// (kind kProtocol), in sorted order. Transformers need an inner
/// selection to run, so composed grids are driven explicitly (see
/// tests/test_generic_efficiency.cpp) rather than enumerated here.
std::vector<HarnessReport> run_registry_property_suite(
    const HarnessOptions& options = {});

/// Fault-closure grid for one registry protocol: every (graph, daemon,
/// seed) cell stabilizes from a random configuration, then suffers an
/// in-place corruption of `options.fault_victims` random processes
/// (Engine::apply_external_corruption — the churn runtime's primitive)
/// and must re-converge to a certified-silent ("fault-convergence") and
/// legitimate ("fault-legitimacy") configuration. Cells that never
/// stabilize in the first place are vacuous here — the plain property
/// suite owns that failure — so they are skipped without a violation.
HarnessReport run_protocol_fault_closure_suite(
    const ProtocolSelection& selection, const HarnessOptions& options = {});

/// Name-based convenience, like the property-suite overload.
HarnessReport run_protocol_fault_closure_suite(
    const std::string& protocol_name, const HarnessOptions& options = {});

/// Runs the fault-closure grid for every base runnable entry, in sorted
/// order.
std::vector<HarnessReport> run_registry_fault_closure_suite(
    const HarnessOptions& options = {});

}  // namespace sss::testing
