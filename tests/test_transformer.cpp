/// Tests for the Section 6 transformer prototype: rotating-check over
/// pairwise-checkable local predicates.

#include <gtest/gtest.h>

#include <memory>

#include "core/problems.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "support/require.hpp"
#include "test_util.hpp"
#include "transformer/rotating_check.hpp"

namespace sss {
namespace {

using testing::sweep_graphs;

TEST(RotatingCheck, SpecAddsOnlyTheCurPointer) {
  const Graph g = cycle(5);
  const PairwiseColoring source(g);
  const RotatingCheck transformed(g, source);
  EXPECT_EQ(transformed.spec().num_comm(), 1);
  EXPECT_EQ(transformed.spec().num_internal(), 1);
  EXPECT_EQ(transformed.spec().internal[0].name(), "cur");
  EXPECT_NE(transformed.name().find("pairwise-coloring"),
            std::string::npos);
}

TEST(RotatingCheck, AuditPassAdvancesOnly) {
  const Graph g = path(3);
  const PairwiseColoring source(g);
  const RotatingCheck transformed(g, source);
  Configuration config(g, transformed.spec());
  config.set_comm(0, 0, 1);
  config.set_comm(1, 0, 2);
  config.set_comm(2, 0, 3);
  config.set_internal(1, 0, 1);
  Rng rng(1);
  const ProcessStep step = apply_solo_step(g, transformed, config, 1, rng);
  EXPECT_EQ(step.action, 1);
  EXPECT_FALSE(step.comm_write_attempted);
  EXPECT_EQ(config.internal_var(1, 0), 2);
}

TEST(RotatingCheck, AuditFailTriggersFullWidthRepair) {
  const Graph g = path(3);
  const PairwiseColoring source(g, 3);
  const RotatingCheck transformed(g, source);
  Configuration config(g, transformed.spec());
  config.set_comm(0, 0, 2);
  config.set_comm(1, 0, 2);  // conflict with channel 1
  config.set_comm(2, 0, 3);
  config.set_internal(1, 0, 1);
  Rng rng(2);
  const ProcessStep step = apply_solo_step(g, transformed, config, 1, rng);
  EXPECT_EQ(step.action, 0);
  EXPECT_TRUE(step.comm_write_attempted);
  // The repair reads the whole neighborhood, so it avoids BOTH neighbors:
  // the only free color is 1.
  EXPECT_EQ(config.comm(1, 0), 1);
}

TEST(RotatingCheck, TransformedColoringStabilizes) {
  const ColoringProblem problem(PairwiseColoring::kColorVar);
  for (const auto& [label, g] : sweep_graphs()) {
    const PairwiseColoring source(g);
    const RotatingCheck transformed(g, source);
    Engine engine(g, transformed, make_distributed_random_daemon(), 3);
    engine.randomize_state();
    const RunStats stats = engine.run({});
    ASSERT_TRUE(stats.silent) << label;
    EXPECT_TRUE(problem.holds(g, engine.config())) << label;
  }
}

TEST(RotatingCheck, StabilizedPhaseIsOneEfficient) {
  // The transformer's selling point (the paper's Section 6 wish): after
  // stabilization every audit passes, so each process reads exactly one
  // neighbor per step, forever.
  const Graph g = complete(6);
  const PairwiseColoring source(g);
  const RotatingCheck transformed(g, source);
  Engine engine(g, transformed, make_distributed_random_daemon(), 4);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  StabilityTracker tracker(g);
  StepReadCounter counter(g, transformed.spec());
  engine.attach_read_logger(&counter);
  for (int step = 0; step < 500; ++step) {
    counter.begin_step();
    engine.step();
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      EXPECT_LE(counter.step_reads_of(p), 1);
    }
  }
}

TEST(RotatingCheck, StabilizingPhaseMayReadFullWidth) {
  // Flip side: repairs read the whole neighborhood, so the transformed
  // protocol is only Delta-efficient during stabilization (the open
  // question's honest trade-off).
  const Graph g = star(6);
  const PairwiseColoring source(g);
  const RotatingCheck transformed(g, source);
  Engine engine(g, transformed, make_distributed_random_daemon(), 5);
  // All same color: the hub's first repair scans everyone.
  Configuration config(g, transformed.spec());
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, 0, 1);
  }
  engine.set_config(config);
  const RunStats stats = engine.run({});
  ASSERT_TRUE(stats.silent);
  EXPECT_GT(stats.max_reads_per_process_step, 1);
}

TEST(RotatingCheck, RegistryCompositionMatchesTheCompatShim) {
  // The reference-taking (g, source&) constructor is kept as a compat
  // shim for callers that own their checker source separately; the
  // canonical path is the registry's composable "rotating-check" entry.
  // Both must yield the same protocol: same spec shape, identical
  // trajectories from the same seed.
  const Graph g = cycle(6);
  const PairwiseColoring source(g);
  const RotatingCheck shim(g, source);
  const std::unique_ptr<Protocol> composed =
      ProtocolRegistry::instance().make(
          ProtocolSelection::wrap("rotating-check",
                                  ProtocolSelection::base("pairwise-coloring")),
          g);
  ASSERT_EQ(composed->spec().num_comm(), shim.spec().num_comm());
  ASSERT_EQ(composed->spec().num_internal(), shim.spec().num_internal());
  EXPECT_EQ(composed->name(), shim.name());
  Engine a(g, shim, make_distributed_random_daemon(), 21);
  Engine b(g, *composed, make_distributed_random_daemon(), 21);
  a.randomize_state();
  b.randomize_state();
  ASSERT_TRUE(a.config() == b.config());
  for (int s = 0; s < 300; ++s) {
    a.step();
    b.step();
  }
  EXPECT_TRUE(a.config() == b.config());
}

TEST(RotatingCheck, RecoversFromFaults) {
  const Graph g = grid(3, 4);
  const PairwiseColoring source(g);
  const RotatingCheck transformed(g, source);
  const ColoringProblem problem(PairwiseColoring::kColorVar);
  Engine engine(g, transformed, make_distributed_random_daemon(), 6);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  Configuration corrupted = engine.config();
  corrupted.set_comm(5, 0, corrupted.comm(6, 0));  // force a conflict
  engine.set_config(corrupted);
  ASSERT_TRUE(engine.run({}).silent);
  EXPECT_TRUE(problem.holds(g, engine.config()));
}

TEST(Separation, PaletteSizingIsValidated) {
  const Graph g = cycle(6);  // Delta = 2
  EXPECT_NO_THROW(PairwiseSeparation(g, 2));       // default 2*2*2+1 = 9
  EXPECT_THROW(PairwiseSeparation(g, 2, 8), PreconditionError);
  EXPECT_THROW(PairwiseSeparation(g, 0), PreconditionError);
}

TEST(Separation, SuspicionMatchesThePredicate) {
  const Graph g = path(2);
  const PairwiseSeparation source(g, 3);
  Configuration config(g, RotatingCheck(g, source).spec());
  config.set_comm(0, 0, 4);
  config.set_comm(1, 0, 6);  // |4-6| = 2 < 3: too close
  GuardContext ctx(g, config, 0, nullptr);
  EXPECT_TRUE(source.pair_suspicious(ctx, 1));
  config.set_comm(1, 0, 7);  // |4-7| = 3: fine
  GuardContext ok(g, config, 0, nullptr);
  EXPECT_FALSE(source.pair_suspicious(ok, 1));
}

TEST(Separation, TransformedSeparationStabilizes) {
  for (int separation : {2, 3}) {
    for (const Graph& g : {cycle(8), path(10), star(4)}) {
      const PairwiseSeparation source(g, separation);
      const RotatingCheck transformed(g, source);
      Engine engine(g, transformed, make_distributed_random_daemon(),
                    static_cast<std::uint64_t>(7 + separation));
      engine.randomize_state();
      const RunStats stats = engine.run({});
      ASSERT_TRUE(stats.silent) << g.name() << " sep=" << separation;
      EXPECT_TRUE(PairwiseSeparation::separated(g, engine.config(),
                                                separation))
          << g.name();
    }
  }
}

TEST(Separation, RepairRespectsTheGuardBand) {
  const Graph g = star(2);  // hub 0, leaves 1 2; Delta = 2, sep 2 -> 9
  const PairwiseSeparation source(g, 2);
  const RotatingCheck transformed(g, source);
  Configuration config(g, transformed.spec());
  config.set_comm(0, 0, 4);
  config.set_comm(1, 0, 4);  // clash
  config.set_comm(2, 0, 8);
  config.set_internal(0, 0, 1);
  Rng rng(9);
  apply_solo_step(g, transformed, config, 0, rng);
  const Value v = config.comm(0, 0);
  EXPECT_GE(std::abs(v - config.comm(1, 0)), 2);
  EXPECT_GE(std::abs(v - config.comm(2, 0)), 2);
}

}  // namespace
}  // namespace sss
