/// Tests for the serve layer (src/service/): protocol framing, checkpoint
/// write/load and stream recovery, LabService end-to-end (durable
/// streaming, cancel-as-checkpoint, byte-identical resume, live diff),
/// and the ServeSession command loop over in-memory streams.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/batch.hpp"
#include "analysis/plan.hpp"
#include "analysis/sink.hpp"
#include "service/checkpoint.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "support/require.hpp"

namespace sss {
namespace {

/// Small but non-trivial plan: 2 items x (2 daemons x 2 seeds) = 8 trials.
constexpr const char* kServeManifest = R"({
  "name": "serve-test",
  "defaults": {
    "daemons": ["central-rr", "distributed"],
    "seeds_per_daemon": 2,
    "max_steps": 30000,
    "base_seed": 11
  },
  "sweeps": [{
    "graphs": [
      {"family": "path", "n": 6},
      {"family": "star", "leaves": 4}
    ],
    "protocols": [{"name": "coloring"}]
  }]
})";

/// Fresh path under the system temp dir; removed along with its
/// checkpoint sibling so tests do not see each other's streams.
std::string temp_stream(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("sss_service_" + name))
          .string();
  std::remove(path.c_str());
  std::remove(checkpoint_path_for(path).c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The uninterrupted golden stream: the manifest run serially through the
/// batch runner with rows formatted exactly as the serve layer writes
/// them.
std::string golden_stream() {
  ExperimentPlan plan = plan_from_manifest_text(kServeManifest);
  std::string golden;
  BatchOptions options;
  options.threads = 1;
  options.on_trial = [&golden](const BatchTrialRow& row) {
    golden += format_trial_row_jsonl(row) + "\n";
  };
  run_batch(plan.items, options);
  return golden;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesCommandNameAndEchoableId) {
  const ServeCommand a = parse_serve_command(R"({"cmd": "ping"})");
  EXPECT_EQ(a.cmd, "ping");
  EXPECT_EQ(a.id_json, "null");

  const ServeCommand b = parse_serve_command(R"({"cmd": "x", "id": "a-7"})");
  EXPECT_EQ(b.id_json, "\"a-7\"");

  const ServeCommand c = parse_serve_command(R"({"cmd": "x", "id": 42})");
  EXPECT_EQ(c.id_json, "42");
}

TEST(ServeProtocol, RejectsMalformedCommands) {
  EXPECT_THROW(parse_serve_command("[1, 2]"), PreconditionError);
  EXPECT_THROW(parse_serve_command(R"({"id": 1})"), PreconditionError);
  EXPECT_THROW(parse_serve_command(R"({"cmd": 3})"), PreconditionError);
  EXPECT_THROW(parse_serve_command(R"({"cmd": "x", "id": true})"),
               PreconditionError);
  EXPECT_THROW(parse_serve_command("not json"), PreconditionError);
}

TEST(ServeProtocol, BuilderEmitsParseableLines) {
  JsonLineBuilder line = reply_ok("\"tag\"");
  line.field("run", std::string("r1"))
      .field("rows", 7)
      .raw("row", R"({"item": 0})");
  const JsonValue doc = JsonValue::parse(line.str());
  EXPECT_EQ(doc.at("id").as_string(), "tag");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("rows").as_int(), 7);
  EXPECT_EQ(doc.at("row").at("item").as_int(), 0);

  const JsonValue error =
      JsonValue::parse(reply_error("null", "boom \"quoted\"").str());
  EXPECT_TRUE(error.at("id").is_null());
  EXPECT_FALSE(error.at("ok").as_bool());
  EXPECT_EQ(error.at("error").as_string(), "boom \"quoted\"");

  const JsonValue event = JsonValue::parse(event_line("done", "r2").str());
  EXPECT_EQ(event.at("event").as_string(), "done");
  EXPECT_EQ(event.at("run").as_string(), "r2");
}

// -------------------------------------------------------------- checkpoint

TEST(ServeCheckpoint, WriteLoadRoundTrips) {
  const std::string sink = temp_stream("ckpt.jsonl");
  Checkpoint out;
  out.plan_name = "serve-test";
  out.manifest_json = json_serialize(JsonValue::parse(kServeManifest));
  out.sink_path = sink;
  out.planned_trials = 8;
  out.threads = 3;
  out.shards = 2;
  out.parallel_threads = 1;
  out.sweep_mode = "auto";
  write_checkpoint(out);

  const Checkpoint in = load_checkpoint(checkpoint_path_for(sink));
  EXPECT_EQ(in.plan_name, out.plan_name);
  EXPECT_EQ(in.manifest_json, out.manifest_json);
  EXPECT_EQ(in.sink_path, sink);
  EXPECT_EQ(in.planned_trials, 8);
  EXPECT_EQ(in.threads, 3);
  EXPECT_EQ(in.shards, 2);
  EXPECT_EQ(in.sweep_mode, "auto");
  // The embedded manifest must still expand to the same plan.
  const ExperimentPlan plan = plan_from_manifest_text(in.manifest_json);
  EXPECT_EQ(plan.total_trials(), 8);
}

TEST(ServeCheckpoint, LoadRejectsMissingAndMalformed) {
  EXPECT_THROW(load_checkpoint("/no/such/checkpoint.json"),
               PreconditionError);
  const std::string path = temp_stream("bad.ckpt.json");
  std::ofstream(path) << "{\"plan_name\": \"x\"}";
  EXPECT_THROW(load_checkpoint(path), PreconditionError);
}

TEST(ServeCheckpoint, ScanRecoversWholeRowsAndReportsTornTail) {
  const std::string path = temp_stream("scan.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << R"({"item": 0, "trial": 0, "x": 1})" << "\n";
    out << R"({"item": 0, "trial": 1, "x": 2})" << "\n";
    out << R"({"item": 1, "trial": 0, "x": 3})" << "\n";
    out << R"({"item": 1, "tri)";  // torn mid-write
  }
  const StreamScan scan = scan_result_stream(path);
  ASSERT_EQ(scan.keys.size(), 3u);
  EXPECT_EQ(scan.keys[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(scan.keys[2], (std::pair<int, int>{1, 0}));
  EXPECT_EQ(scan.rows[1], R"({"item": 0, "trial": 1, "x": 2})");
  EXPECT_GT(scan.tail_bytes, 0u);

  truncate_stream_tail(path, scan);
  const std::string after = read_file(path);
  EXPECT_EQ(after.size(), scan.complete_bytes);
  EXPECT_EQ(after.back(), '\n');
  EXPECT_EQ(scan_result_stream(path).tail_bytes, 0u);
}

TEST(ServeCheckpoint, ScanHandlesMissingAndEmptyStreams) {
  const StreamScan missing = scan_result_stream("/no/such/stream.jsonl");
  EXPECT_TRUE(missing.keys.empty());
  EXPECT_EQ(missing.tail_bytes, 0u);

  const std::string path = temp_stream("empty.jsonl");
  std::ofstream(path, std::ios::binary).flush();
  const StreamScan empty = scan_result_stream(path);
  EXPECT_TRUE(empty.keys.empty());
  EXPECT_EQ(empty.complete_bytes, 0u);
}

TEST(ServeCheckpoint, ScanRejectsMalformedTerminatedLines) {
  const std::string path = temp_stream("garbage.jsonl");
  std::ofstream(path, std::ios::binary) << "not a row\n";
  EXPECT_THROW(scan_result_stream(path), PreconditionError);
}

// ------------------------------------------------------------- LabService

TEST(LabService, FullRunMatchesGoldenByteForByte) {
  const std::string sink = temp_stream("full.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, options);
  EXPECT_EQ(submitted.planned, 8);
  EXPECT_EQ(submitted.skipped, 0);

  const LabService::RunStatus status = service.wait(submitted.run_id);
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.rows, 8);
  EXPECT_EQ(read_file(sink), golden_stream());
  // The checkpoint was written before the first trial and still loads.
  const Checkpoint checkpoint =
      load_checkpoint(submitted.checkpoint_path);
  EXPECT_EQ(checkpoint.planned_trials, 8);
}

TEST(LabService, RowsStreamBeforeCompletionAndCancelLeavesExactPrefix) {
  const std::string sink = temp_stream("cancel.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;

  // Cancel from inside the 3rd row event: the only way this yields a
  // 3-row file is if rows are delivered while the batch is still running
  // — live streaming is observed, not assumed. The run id comes from the
  // event itself (events may fire before submit() returns).
  std::atomic<int> rows_seen{0};
  options.subscriber = [&service, &rows_seen](const std::string& line) {
    const JsonValue event = JsonValue::parse(line);
    if (event.at("event").as_string() != "row") return;
    if (++rows_seen == 3) service.cancel(event.at("run").as_string());
  };
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, options);

  const LabService::RunStatus status = service.wait(submitted.run_id);
  EXPECT_EQ(status.state, "cancelled");
  EXPECT_EQ(status.rows, 3);
  const std::string golden = golden_stream();
  const std::string prefix = read_file(sink);
  EXPECT_EQ(prefix, golden.substr(0, prefix.size()));
  EXPECT_LT(prefix.size(), golden.size());

  // Cancel left a checkpointed, resumable run: finish it and the
  // concatenated stream is byte-identical to the uninterrupted golden.
  LabService::SubmitOptions resume_options;
  const LabService::Submitted resumed =
      service.resume(checkpoint_path_for(sink), resume_options);
  EXPECT_EQ(resumed.skipped, 3);
  EXPECT_EQ(service.wait(resumed.run_id).state, "done");
  EXPECT_EQ(read_file(sink), golden);
}

TEST(LabService, ResumeTruncatesTornTailAndRebuildsGolden) {
  const std::string golden = golden_stream();
  const std::string sink = temp_stream("torn.jsonl");

  // A checkpoint as submit would have written it.
  Checkpoint checkpoint;
  checkpoint.plan_name = "serve-test";
  checkpoint.manifest_json = json_serialize(JsonValue::parse(kServeManifest));
  checkpoint.sink_path = sink;
  checkpoint.planned_trials = 8;
  checkpoint.threads = 1;
  write_checkpoint(checkpoint);

  // 2 whole rows then a torn third — what a kill -9 mid-write leaves.
  std::size_t second_newline = golden.find('\n', golden.find('\n') + 1) + 1;
  std::ofstream(sink, std::ios::binary)
      << golden.substr(0, second_newline + 17);

  LabService service;
  const LabService::Submitted resumed =
      service.resume(checkpoint_path_for(sink), {});
  EXPECT_EQ(resumed.skipped, 2);
  EXPECT_EQ(service.wait(resumed.run_id).state, "done");
  EXPECT_EQ(read_file(sink), golden);
}

TEST(LabService, ResumeOfCompleteStreamRunsNothing) {
  const std::string sink = temp_stream("complete.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;
  const LabService::Submitted first =
      service.submit(kServeManifest, sink, options);
  service.wait(first.run_id);

  const LabService::Submitted again =
      service.resume(checkpoint_path_for(sink), {});
  EXPECT_EQ(again.skipped, 8);
  const LabService::RunStatus status = service.wait(again.run_id);
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.rows, 8);  // recovered rows; none newly executed
  EXPECT_EQ(read_file(sink), golden_stream());
}

TEST(LabService, DiffAgainstGoldenWhilePartialAndAfterResume) {
  // Golden baseline on disk.
  const std::string baseline = temp_stream("baseline.jsonl");
  std::ofstream(baseline, std::ios::binary) << golden_stream();

  const std::string sink = temp_stream("diff.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;
  std::atomic<int> rows_seen{0};
  options.subscriber = [&service, &rows_seen](const std::string& line) {
    const JsonValue event = JsonValue::parse(line);
    if (event.at("event").as_string() != "row") return;
    if (++rows_seen == 4) service.cancel(event.at("run").as_string());
  };
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, options);
  const std::string run_id = submitted.run_id;
  service.wait(run_id);

  // Terminal-but-incomplete: matches so far, but pending rows make it
  // not clean (a cancelled run does not pass for a finished one).
  const LabService::DiffReport partial = service.diff(run_id, baseline);
  EXPECT_EQ(partial.state, "cancelled");
  EXPECT_EQ(partial.compared, 4);
  EXPECT_EQ(partial.matched, 4);
  EXPECT_EQ(partial.changed, 0);
  EXPECT_EQ(partial.pending, 4);
  EXPECT_FALSE(partial.clean);

  const LabService::Submitted resumed =
      service.resume(checkpoint_path_for(sink), {});
  service.wait(resumed.run_id);
  const LabService::DiffReport full = service.diff(resumed.run_id, baseline);
  EXPECT_EQ(full.compared, 8);
  EXPECT_EQ(full.matched, 8);
  EXPECT_EQ(full.pending, 0);
  EXPECT_TRUE(full.clean);
}

TEST(LabService, SubscribeReplaysEverythingAndSynthesizesDone) {
  const std::string sink = temp_stream("replay.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, options);
  service.wait(submitted.run_id);

  std::vector<std::string> events;
  const int replayed = service.subscribe(
      submitted.run_id, 0,
      [&events](const std::string& line) { events.push_back(line); });
  EXPECT_EQ(replayed, 8);
  ASSERT_EQ(events.size(), 9u);  // 8 rows + exactly one done
  for (int i = 0; i < 8; ++i) {
    const JsonValue event = JsonValue::parse(events[static_cast<std::size_t>(i)]);
    EXPECT_EQ(event.at("event").as_string(), "row");
    EXPECT_EQ(event.at("seq").as_int(), i);
  }
  const JsonValue done = JsonValue::parse(events.back());
  EXPECT_EQ(done.at("event").as_string(), "done");
  EXPECT_EQ(done.at("state").as_string(), "done");
  EXPECT_EQ(done.at("rows").as_int(), 8);
}

TEST(LabService, RejectsSecondWriterOnALiveSink) {
  const std::string sink = temp_stream("exclusive.jsonl");
  LabService service;
  LabService::SubmitOptions slow;
  slow.threads = 1;
  slow.pace_ms = 20;
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, slow);

  // While the first run is live, a second submit (which would truncate
  // the stream under it) and a resume (which would scan and append to a
  // moving stream) of the same sink must both be rejected — and must not
  // have touched the file.
  EXPECT_THROW(service.submit(kServeManifest, sink, {}), PreconditionError);
  EXPECT_THROW(service.resume(checkpoint_path_for(sink), {}),
               PreconditionError);

  service.cancel(submitted.run_id);
  service.wait(submitted.run_id);
  // Terminal runs release their claim: the same path resumes cleanly and
  // still stitches to the golden.
  const LabService::Submitted resumed =
      service.resume(checkpoint_path_for(sink), {});
  EXPECT_EQ(service.wait(resumed.run_id).state, "done");
  EXPECT_EQ(read_file(sink), golden_stream());
}

TEST(LabService, WaitTimeoutReturnsRunningWithoutBlocking) {
  const std::string sink = temp_stream("wait_timeout.jsonl");
  LabService service;
  LabService::SubmitOptions slow;
  slow.threads = 1;
  slow.pace_ms = 30;  // >= 8 * 30ms of pacing: the run cannot finish early
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, slow);
  EXPECT_EQ(service.wait(submitted.run_id, 1).state, "running");

  service.cancel(submitted.run_id);
  const LabService::RunStatus final_status = service.wait(submitted.run_id);
  EXPECT_NE(final_status.state, "running");
  // A timed wait on a settled run reports the terminal state immediately.
  EXPECT_EQ(service.wait(submitted.run_id, 0).state, final_status.state);
}

TEST(LabService, ThrowingDoneSubscriberDoesNotWedgeWait) {
  const std::string sink = temp_stream("throwing_done.jsonl");
  LabService service;
  LabService::SubmitOptions options;
  options.threads = 1;
  options.subscriber = [](const std::string& line) {
    if (JsonValue::parse(line).at("event").as_string() == "done") {
      throw std::runtime_error("client went away");
    }
  };
  const LabService::Submitted submitted =
      service.submit(kServeManifest, sink, options);
  // The worker must swallow the subscriber's throw (a leak would
  // std::terminate the process) and still mark the done event emitted —
  // otherwise this wait hangs forever.
  const LabService::RunStatus status = service.wait(submitted.run_id);
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.rows, 8);
  EXPECT_EQ(read_file(sink), golden_stream());
}

TEST(LabService, MidRunSubscribeSeesEveryRowExactlyOnce) {
  // Attach while the worker is actively producing: the replayed prefix
  // and the live tail must cover seq 0..7 in order with no gap and no
  // duplicate, because the delivery decision commits in the same
  // critical section as the row push. Varying the attach point sweeps
  // the prefix/live split across attempts.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const std::string sink = temp_stream("mid_attach.jsonl");
    LabService service;
    LabService::SubmitOptions options;
    options.threads = 1;
    options.pace_ms = 3;
    const LabService::Submitted submitted =
        service.submit(kServeManifest, sink, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(4 * attempt));

    std::mutex seen_mutex;
    std::vector<int> seen;
    int dones = 0;
    service.subscribe(submitted.run_id, 0,
                      [&seen_mutex, &seen, &dones](const std::string& line) {
                        const JsonValue event = JsonValue::parse(line);
                        std::lock_guard<std::mutex> lock(seen_mutex);
                        if (event.at("event").as_string() == "row") {
                          seen.push_back(
                              static_cast<int>(event.at("seq").as_int()));
                        } else {
                          ++dones;
                        }
                      });
    service.wait(submitted.run_id);

    std::lock_guard<std::mutex> lock(seen_mutex);
    ASSERT_EQ(seen.size(), 8u) << "attempt " << attempt;
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], i)
          << "attempt " << attempt;
    }
    EXPECT_EQ(dones, 1) << "attempt " << attempt;
  }
}

TEST(LabService, RejectsUnknownRunsAndBadManifests) {
  LabService service;
  EXPECT_FALSE(service.status("r99").exists);
  EXPECT_FALSE(service.cancel("r99"));
  EXPECT_THROW(service.wait("r99"), PreconditionError);
  EXPECT_THROW(
      service.subscribe("r99", 0, [](const std::string&) {}),
      PreconditionError);
  EXPECT_THROW(service.submit("{ not json", temp_stream("never.jsonl"), {}),
               PreconditionError);
  EXPECT_THROW(service.resume("/no/such/checkpoint", {}), PreconditionError);
}

// ------------------------------------------------------------ ServeSession

/// Runs a scripted session: feeds `lines`, returns every output line.
std::vector<std::string> run_session(LabService& service,
                                     const std::vector<std::string>& lines,
                                     ServeSession::Exit expected_exit) {
  std::string script;
  for (const std::string& line : lines) script += line + "\n";
  std::istringstream in(script);
  std::ostringstream out;
  ServeSession session(service, in, out);
  EXPECT_EQ(session.run(), expected_exit);
  std::vector<std::string> replies;
  std::istringstream reader(out.str());
  std::string reply;
  while (std::getline(reader, reply)) replies.push_back(reply);
  return replies;
}

TEST(ServeSession, PingUnknownAndMalformedProduceTaggedReplies) {
  LabService service;
  const std::vector<std::string> replies = run_session(
      service,
      {R"({"cmd": "ping", "id": 1})", "   ", R"({"cmd": "nope", "id": 2})",
       "garbage", R"({"cmd": "ping", "bogus": true})"},
      ServeSession::Exit::kEof);
  ASSERT_EQ(replies.size(), 4u);  // the blank line produces nothing
  EXPECT_EQ(JsonValue::parse(replies[0]).at("id").as_int(), 1);
  EXPECT_TRUE(JsonValue::parse(replies[0]).at("ok").as_bool());
  const JsonValue unknown = JsonValue::parse(replies[1]);
  EXPECT_EQ(unknown.at("id").as_int(), 2);
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_FALSE(JsonValue::parse(replies[2]).at("ok").as_bool());
  const JsonValue strict = JsonValue::parse(replies[3]);
  EXPECT_FALSE(strict.at("ok").as_bool());
  EXPECT_NE(strict.at("error").as_string().find("bogus"), std::string::npos);
}

TEST(ServeSession, SubmitStreamWaitShutdownEndToEnd) {
  const std::string sink = temp_stream("session.jsonl");
  LabService service;
  // Inline manifest, streaming on: the output must interleave 8 row
  // events and one done event with the three tagged replies.
  std::string submit = R"({"cmd": "submit", "id": "s", "sink": )" +
                       json_quote(sink) +
                       R"(, "threads": 1, "stream": true, "manifest": )" +
                       json_serialize(JsonValue::parse(kServeManifest)) +
                       "}";
  const std::vector<std::string> lines = run_session(
      service,
      {submit, R"({"cmd": "wait", "id": "w", "run": "r1"})",
       R"({"cmd": "shutdown", "id": "z"})"},
      ServeSession::Exit::kShutdown);

  int rows = 0;
  int dones = 0;
  int replies = 0;
  for (const std::string& line : lines) {
    const JsonValue doc = JsonValue::parse(line);
    if (const JsonValue* event = doc.find("event")) {
      if (event->as_string() == "row") ++rows;
      if (event->as_string() == "done") ++dones;
    } else {
      ++replies;
      EXPECT_TRUE(doc.at("ok").as_bool()) << line;
    }
  }
  EXPECT_EQ(rows, 8);
  EXPECT_EQ(dones, 1);
  EXPECT_EQ(replies, 3);
  // No ordering assertion between the submit reply and the first row
  // events: they are multiplexed, and the worker may legitimately emit
  // rows before the reply line is written. The durable stream is the
  // deterministic artifact.
  EXPECT_EQ(read_file(sink), golden_stream());
}

TEST(ServeSession, StreamReplaysFinishedRunsAndDiffReportsClean) {
  const std::string sink = temp_stream("session_replay.jsonl");
  const std::string baseline = temp_stream("session_baseline.jsonl");
  std::ofstream(baseline, std::ios::binary) << golden_stream();
  LabService service;
  {
    LabService::SubmitOptions options;
    options.threads = 1;
    service.wait(service.submit(kServeManifest, sink, options).run_id);
  }
  const std::vector<std::string> lines = run_session(
      service,
      {R"({"cmd": "runs", "id": 1})",
       R"({"cmd": "stream", "id": 2, "run": "r1", "from": 6})",
       R"({"cmd": "diff", "id": 3, "run": "r1", "baseline": )" +
           json_quote(baseline) + "}",
       R"({"cmd": "status", "id": 4, "run": "r1"})"},
      ServeSession::Exit::kEof);
  // runs reply, 2 replayed rows + done event, stream reply, diff reply,
  // status reply.
  ASSERT_EQ(lines.size(), 7u);
  const JsonValue runs = JsonValue::parse(lines[0]);
  EXPECT_EQ(runs.at("runs").items().size(), 1u);
  EXPECT_EQ(JsonValue::parse(lines[1]).at("seq").as_int(), 6);
  EXPECT_EQ(JsonValue::parse(lines[2]).at("seq").as_int(), 7);
  EXPECT_EQ(JsonValue::parse(lines[3]).at("event").as_string(), "done");
  const JsonValue stream_reply = JsonValue::parse(lines[4]);
  EXPECT_EQ(stream_reply.at("replayed").as_int(), 2);
  EXPECT_FALSE(stream_reply.at("live").as_bool());
  const JsonValue diff = JsonValue::parse(lines[5]);
  EXPECT_TRUE(diff.at("clean").as_bool());
  EXPECT_EQ(diff.at("matched").as_int(), 8);
  EXPECT_EQ(JsonValue::parse(lines[6]).at("state").as_string(), "done");
}

TEST(ServeSession, WaitTimeoutKeepsCommandLoopResponsive) {
  const std::string sink = temp_stream("session_wait.jsonl");
  LabService service;
  const std::string submit = R"({"cmd": "submit", "id": "s", "sink": )" +
                             json_quote(sink) +
                             R"(, "threads": 1, "pace_ms": 30, "manifest": )" +
                             json_serialize(JsonValue::parse(kServeManifest)) +
                             "}";
  const std::vector<std::string> lines = run_session(
      service,
      {submit, R"({"cmd": "wait", "id": "t", "run": "r1", "timeout_ms": 1})",
       R"({"cmd": "cancel", "id": "c", "run": "r1"})",
       R"({"cmd": "wait", "id": "w", "run": "r1"})"},
      ServeSession::Exit::kEof);
  // No stream requested, so exactly the four tagged replies, in order:
  // the timed-out wait hands the loop back (state "running") instead of
  // wedging the connection, and cancel + blocking wait then settle it.
  ASSERT_EQ(lines.size(), 4u);
  const JsonValue timed = JsonValue::parse(lines[1]);
  EXPECT_TRUE(timed.at("ok").as_bool());
  EXPECT_EQ(timed.at("state").as_string(), "running");
  const JsonValue settled = JsonValue::parse(lines[3]);
  EXPECT_TRUE(settled.at("ok").as_bool());
  EXPECT_NE(settled.at("state").as_string(), "running");
}

}  // namespace
}  // namespace sss
