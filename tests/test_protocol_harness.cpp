/// The harness must be falsifiable, not vacuous: this suite registers
/// deliberately broken toy protocols (and a trivially-true toy problem)
/// in this binary's registries and asserts the property harness reports
/// the exact violation class each one plants.
///
/// The centerpiece is DelayedBlinker, a closure violator: its
/// communication write is separated from the current state by a long
/// internal countdown, so the exact quiescence check — which only probes
/// degree(p) + margin solo activations — legitimately certifies a
/// configuration silent while a communication write is still scheduled.
/// The harness's post-silence window must catch the write resuming.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/problem_registry.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "protocol_harness.hpp"
#include "runtime/protocol.hpp"

namespace sss {
namespace {

/// Holds in every configuration, so the only reportable violations are
/// the behavioural ones the toy protocols plant.
class AlwaysTrueProblem final : public Problem {
 public:
  const std::string& name() const override {
    static const std::string kName = "always-true";
    return kName;
  }
  bool holds(const Graph&, const Configuration&) const override {
    return true;
  }
};

/// Ticks an internal countdown and flips its communication bit only when
/// the countdown expires. With kPeriod far beyond degree + margin, the
/// solo quiescence probe cannot see the pending flip: silence gets
/// certified, then a communication write lands — a closure violation.
class DelayedBlinker final : public Protocol {
 public:
  static constexpr Value kPeriod = 60;

  explicit DelayedBlinker(const Graph&) {
    spec_.comm.emplace_back("B", VarDomain{0, 1});
    spec_.internal.emplace_back("c", VarDomain{0, kPeriod});
  }
  const std::string& name() const override {
    static const std::string kName = "BROKEN-BLINKER";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  int first_enabled(GuardContext& ctx) const override {
    return ctx.self_internal(0) == kPeriod ? 0 : 1;
  }
  void execute(int action, ActionContext& ctx) const override {
    if (action == 0) {
      ctx.set_comm(0, 1 - ctx.self_comm(0));
      ctx.set_internal(0, 0);
    } else {
      ctx.set_internal(0, ctx.self_internal(0) + 1);
    }
  }

 private:
  ProtocolSpec spec_;
};

/// Always enabled, always writing: never reaches silence.
class NeverSilent final : public Protocol {
 public:
  explicit NeverSilent(const Graph&) {
    spec_.comm.emplace_back("B", VarDomain{0, 1});
  }
  const std::string& name() const override {
    static const std::string kName = "NEVER-SILENT";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 1; }
  int first_enabled(GuardContext&) const override { return 0; }
  void execute(int, ActionContext& ctx) const override {
    ctx.set_comm(0, 1 - ctx.self_comm(0));
  }

 private:
  ProtocolSpec spec_;
};

/// Never enabled: every configuration is silent — and with a one-value
/// color domain every pair of neighbors conflicts, so pairing it with the
/// vertex-coloring predicate plants a deterministic legitimacy violation.
class InstantlySilent final : public Protocol {
 public:
  explicit InstantlySilent(const Graph&) {
    spec_.comm.emplace_back("C", VarDomain{1, 1});
  }
  const std::string& name() const override {
    static const std::string kName = "INSTANTLY-SILENT";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 1; }
  int first_enabled(GuardContext&) const override { return kDisabled; }
  void execute(int, ActionContext&) const override {}

 private:
  ProtocolSpec spec_;
};

/// Scalar guard drives X to 1 and goes quiet; the bulk sweep claims the
/// other action whenever X != 2 — a planted bulk/scalar divergence. On
/// the scalar path the protocol is well behaved, so only a grid that
/// actually exercises the bulk path can flag it: the falsifiability
/// proof for the SweepMode::kForceBulk harness leg.
class WrongSweep final : public Protocol {
 public:
  explicit WrongSweep(const Graph&) {
    spec_.comm.emplace_back("X", VarDomain{0, 3});
  }
  const std::string& name() const override {
    static const std::string kName = "WRONG-SWEEP";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  int first_enabled(GuardContext& ctx) const override {
    return ctx.self_comm(0) != 1 ? 0 : kDisabled;
  }
  void execute(int action, ActionContext& ctx) const override {
    ctx.set_comm(0, action == 0 ? 1 : 2);
  }
  bool has_bulk_sweep() const override { return true; }
  void sweep_enabled_range(BulkGuardContext& ctx, EnabledBitmap& out,
                           ProcessId begin, ProcessId end) const override {
    const Configuration& cfg = ctx.config();
    for (ProcessId p = begin; p < end; ++p) {
      if (cfg.comm(p, 0) != 2) out.set_action(p, 1);
    }
  }

 private:
  ProtocolSpec spec_;
};

/// Scalar execute drives X to 1 and goes quiet; the bulk execute kernel
/// stages 2 instead — a planted bulk/scalar divergence on the *execute*
/// half (the guards are untouched, so the bulk sweep fallback stays
/// correct). On the scalar path the protocol is well behaved; only a grid
/// that actually runs the bulk execute path can flag it: the
/// falsifiability proof for invariant 6 under SweepMode::kForceBulk.
class WrongExecute final : public Protocol {
 public:
  explicit WrongExecute(const Graph&) {
    spec_.comm.emplace_back("X", VarDomain{0, 3});
  }
  const std::string& name() const override {
    static const std::string kName = "WRONG-EXECUTE";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 1; }
  int first_enabled(GuardContext& ctx) const override {
    return ctx.self_comm(0) != 1 ? 0 : kDisabled;
  }
  void execute(int, ActionContext& ctx) const override {
    ctx.set_comm(0, 1);
  }
  bool has_bulk_execute() const override { return true; }
  void execute_selected(BulkExecContext& ctx, const EnabledBitmap& enabled,
                        std::span<const ProcessId> selection,
                        std::size_t begin, std::size_t end) const override {
    // Honors the kernel contract (replay, skip disabled, stage) so the
    // surrounding machinery runs exactly as for a correct kernel — only
    // the staged value is wrong.
    for (std::size_t i = begin; i < end; ++i) {
      const ProcessId p = selection[i];
      ctx.replay_guard_reads(p);
      if (enabled.action(p) == kDisabled) continue;
      Value* out = ctx.stage(i, p);
      out[0] = 2;
    }
  }

 private:
  ProtocolSpec spec_;
};

/// A latch with a poison region: values in [1, kPoison) self-repair to 0
/// and 0 is silent, but values >= kPoison ping-pong forever. From a
/// benign configuration the protocol stabilizes and stays silent; a
/// corruption that redraws a variable into the poison region can never
/// re-converge. The fault-closure suite must flag exactly those cells —
/// its falsifiability device. (Corruption redraws from the same domain
/// randomize_state uses, so a poison *initial* configuration is equally
/// possible; the pinned toy grid below checks both suites' verdicts on
/// their own deterministic seed sets.)
class PoisonLatch final : public Protocol {
 public:
  static constexpr Value kMax = 15;
  static constexpr Value kPoison = 14;

  explicit PoisonLatch(const Graph&) {
    spec_.comm.emplace_back("X", VarDomain{0, kMax});
  }
  const std::string& name() const override {
    static const std::string kName = "POISON-LATCH";
    return kName;
  }
  const ProtocolSpec& spec() const override { return spec_; }
  int num_actions() const override { return 2; }
  int first_enabled(GuardContext& ctx) const override {
    const Value x = ctx.self_comm(0);
    if (x >= kPoison) return 0;  // ping-pong forever
    return x > 0 ? 1 : kDisabled;
  }
  void execute(int action, ActionContext& ctx) const override {
    if (action == 0) {
      ctx.set_comm(0, ctx.self_comm(0) == kMax ? kPoison : kMax);
    } else {
      ctx.set_comm(0, 0);
    }
  }

 private:
  ProtocolSpec spec_;
};

/// Installs the toy registry entries once per process.
void register_toys() {
  ProblemRegistry& problems = ProblemRegistry::instance();
  if (!problems.contains("always-true")) {
    problems.register_problem("always-true", {}, [] {
      return std::make_unique<AlwaysTrueProblem>();
    });
  }
  ProtocolRegistry& protocols = ProtocolRegistry::instance();
  if (!protocols.contains("broken-blinker")) {
    const auto toy = [&](std::string name, std::string problem,
                         ProtocolRegistry::Factory make) {
      protocols.add({.name = std::move(name),
                     .problem = std::move(problem),
                     .make = std::move(make)});
    };
    toy("broken-blinker", "always-true",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<DelayedBlinker>(g);
        });
    toy("never-silent", "always-true",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<NeverSilent>(g);
        });
    toy("instantly-silent", "vertex-coloring",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<InstantlySilent>(g);
        });
    toy("wrong-sweep", "always-true",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<WrongSweep>(g);
        });
    toy("wrong-execute", "always-true",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<WrongExecute>(g);
        });
    toy("poison-latch", "always-true",
        [](const Graph& g, const ParamMap&) -> std::unique_ptr<Protocol> {
          return std::make_unique<PoisonLatch>(g);
        });
  }
}

/// Small fast grid for the toys: two processes keep the blinker phases
/// coarse enough that certification always happens between flips.
testing::HarnessOptions toy_options() {
  testing::HarnessOptions options;
  options.menagerie.push_back(path(2));
  options.daemons = {"synchronous", "central-rr"};
  options.seeds_per_daemon = 3;
  options.max_steps = 20'000;
  // Both processes flip within one full countdown of every daemon's
  // schedule: 2 processes x (kPeriod + 1) central-rr selections.
  options.closure_steps = 2 * (DelayedBlinker::kPeriod + 1) + 8;
  options.lockstep_steps = 64;
  return options;
}

TEST(ProtocolHarnessFalsifiability, FlagsClosureViolation) {
  register_toys();
  const testing::HarnessReport report =
      testing::run_protocol_property_suite("broken-blinker", toy_options());
  ASSERT_FALSE(report.ok()) << "the harness certified a protocol that "
                               "resumes writing after silence";
  ASSERT_FALSE(report.violations.empty());
  for (const testing::HarnessViolation& violation : report.violations) {
    // The planted defect is exactly the silence/closure property: a
    // certified-silent configuration is not closed under further steps.
    EXPECT_EQ(violation.check, "silence") << report.str();
  }
  // Every trial must catch it — the defect is deterministic in phase.
  EXPECT_EQ(static_cast<int>(report.violations.size()), report.trials);
}

TEST(ProtocolHarnessFalsifiability, FlagsConvergenceViolation) {
  register_toys();
  const testing::HarnessReport report =
      testing::run_protocol_property_suite("never-silent", toy_options());
  ASSERT_FALSE(report.ok());
  for (const testing::HarnessViolation& violation : report.violations) {
    EXPECT_EQ(violation.check, "convergence") << report.str();
  }
}

TEST(ProtocolHarnessFalsifiability, FlagsLegitimacyViolation) {
  register_toys();
  // Every configuration of the inert toy is silent and monochrome, so
  // every trial is certified silent yet fails the coloring predicate.
  const testing::HarnessReport report =
      testing::run_protocol_property_suite("instantly-silent", toy_options());
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(static_cast<int>(report.violations.size()), report.trials);
  for (const testing::HarnessViolation& violation : report.violations) {
    EXPECT_EQ(violation.check, "legitimacy") << report.str();
  }
}

TEST(ProtocolHarnessFalsifiability, FlagsWrongBulkSweep) {
  register_toys();
  // On the scalar path the planted sweep never runs: the toy converges,
  // closes, and lockstep-matches the oracle.
  testing::HarnessOptions options = toy_options();
  options.sweep_mode = SweepMode::kForceScalar;
  const testing::HarnessReport scalar_report =
      testing::run_protocol_property_suite("wrong-sweep", options);
  EXPECT_TRUE(scalar_report.ok()) << scalar_report.str();

  // Forcing the bulk path must surface the divergence in every trial —
  // the ReferenceEngine lockstep is the sweep's oracle.
  options.sweep_mode = SweepMode::kForceBulk;
  const testing::HarnessReport bulk_report =
      testing::run_protocol_property_suite("wrong-sweep", options);
  ASSERT_FALSE(bulk_report.ok())
      << "the harness certified a protocol whose bulk sweep disagrees "
         "with its scalar guards";
  bool saw_equivalence = false;
  for (const testing::HarnessViolation& violation : bulk_report.violations) {
    if (violation.check == "equivalence") saw_equivalence = true;
  }
  EXPECT_TRUE(saw_equivalence) << bulk_report.str();
}

TEST(ProtocolHarnessFalsifiability, FlagsWrongBulkExecute) {
  register_toys();
  // On the scalar path the planted kernel never runs: the toy converges,
  // closes, and lockstep-matches the oracle.
  testing::HarnessOptions options = toy_options();
  options.sweep_mode = SweepMode::kForceScalar;
  const testing::HarnessReport scalar_report =
      testing::run_protocol_property_suite("wrong-execute", options);
  EXPECT_TRUE(scalar_report.ok()) << scalar_report.str();

  // Forcing the bulk path must surface the divergence — the
  // ReferenceEngine lockstep is the execute kernel's oracle.
  options.sweep_mode = SweepMode::kForceBulk;
  const testing::HarnessReport bulk_report =
      testing::run_protocol_property_suite("wrong-execute", options);
  ASSERT_FALSE(bulk_report.ok())
      << "the harness certified a protocol whose bulk execute kernel "
         "disagrees with its scalar actions";
  bool saw_equivalence = false;
  for (const testing::HarnessViolation& violation : bulk_report.violations) {
    if (violation.check == "equivalence") saw_equivalence = true;
  }
  EXPECT_TRUE(saw_equivalence) << bulk_report.str();
}

/// Pinned grid for the poison-latch: enough seeds that at least one
/// cell's corruption deterministically redraws a victim into the poison
/// region (verified by the assertions below — the seeds are fixed, so the
/// outcome is a constant of the repository).
testing::HarnessOptions poison_options() {
  testing::HarnessOptions options;
  options.menagerie.push_back(path(2));
  options.menagerie.push_back(path(3));
  options.daemons = {"synchronous", "central-rr"};
  options.seeds_per_daemon = 6;
  options.max_steps = 20'000;
  options.closure_steps = 16;
  options.lockstep_steps = 32;
  return options;
}

TEST(ProtocolHarnessFalsifiability, FaultSuiteFlagsThePoisonLatch) {
  register_toys();
  const testing::HarnessReport report =
      testing::run_protocol_fault_closure_suite("poison-latch",
                                                poison_options());
  ASSERT_FALSE(report.ok())
      << "the fault-closure suite certified a protocol that cannot "
         "re-converge from a corrupted configuration";
  for (const testing::HarnessViolation& violation : report.violations) {
    // The latch's defect is exactly non-re-convergence: a poisoned victim
    // ping-pongs forever, so no later configuration is ever certified
    // silent (and the fault-legitimacy check is never reached).
    EXPECT_EQ(violation.check, "fault-convergence") << report.str();
  }
}

TEST(ProtocolHarnessFalsifiability, FaultSuitePassesRealProtocols) {
  register_toys();
  // Sanity: the grid that flags the latch does not flag a real protocol —
  // re-convergence after corruption is the self-stabilization property.
  const testing::HarnessReport coloring =
      testing::run_protocol_fault_closure_suite("coloring", poison_options());
  EXPECT_TRUE(coloring.ok()) << coloring.str();
  EXPECT_GT(coloring.trials, 0);
}

TEST(ProtocolHarnessFalsifiability, RealProtocolsPassTheSameToyGrid) {
  register_toys();
  // Sanity: the grid that flags the toys does not flag a real protocol.
  const testing::HarnessReport report =
      testing::run_protocol_property_suite("coloring", toy_options());
  EXPECT_TRUE(report.ok()) << report.str();
}

}  // namespace
}  // namespace sss
