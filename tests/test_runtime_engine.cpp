/// Tests for the engine: snapshot semantics, rounds, read accounting,
/// probes, quiescence, fault injection, and trace recording.

#include <gtest/gtest.h>

#include "core/coloring_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "graph/coloring.hpp"
#include "runtime/engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/quiescence.hpp"
#include "support/require.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::AlwaysFlip;
using testing::CopyChannelOne;
using testing::Inert;

TEST(Engine, RejectsDegenerateNetworks) {
  const Graph lonely = Graph::from_edges(1, {});
  const Inert protocol(lonely);
  EXPECT_THROW(Engine(lonely, protocol, make_fair_enumerator_daemon(), 1),
               PreconditionError);
}

TEST(Engine, SnapshotSemanticsOnSynchronousStep) {
  // CopyChannelOne on a 2-path from [3, 5]: both processes read the
  // pre-step value of the other, so one synchronous step must SWAP to
  // [5, 3] — sequential application would produce [5, 5].
  const Graph g = path(2);
  const CopyChannelOne protocol(g);
  Engine engine(g, protocol, make_synchronous_daemon(), 1);
  Configuration init = engine.config();
  init.set_comm(0, 0, 3);
  init.set_comm(1, 0, 5);
  engine.set_config(init);
  engine.step();
  EXPECT_EQ(engine.config().comm(0, 0), 5);
  EXPECT_EQ(engine.config().comm(1, 0), 3);
}

TEST(Engine, RoundsUnderEnumeratorAreNSteps) {
  const Graph g = path(5);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 2);
  for (int r = 1; r <= 3; ++r) {
    for (int s = 0; s < 5; ++s) engine.step();
    EXPECT_EQ(engine.rounds(), static_cast<std::uint64_t>(r));
  }
}

TEST(Engine, RoundsCountDisabledProcessesAsCovered) {
  // Under Inert everyone is disabled, so every step completes a round
  // regardless of who was selected.
  const Graph g = path(4);
  const Inert protocol(g);
  Engine engine(g, protocol, make_central_round_robin_daemon(), 3);
  engine.step();
  EXPECT_EQ(engine.rounds(), 1u);
  engine.step();
  EXPECT_EQ(engine.rounds(), 2u);
}

TEST(Engine, RoundsInclusiveCountsTheOpenRound) {
  const Graph g = path(3);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 4);
  EXPECT_EQ(engine.rounds_inclusive(), 0u);
  engine.step();
  EXPECT_EQ(engine.rounds(), 0u);
  EXPECT_EQ(engine.rounds_inclusive(), 1u);
}

TEST(Engine, ReadCounterSeesGuardReads) {
  const Graph g = path(3);
  const CopyChannelOne protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 5);
  engine.step();  // process 0 evaluates its guard: reads channel 1
  EXPECT_EQ(engine.read_counter().total_reads(), 1u);
  EXPECT_EQ(engine.read_counter().max_reads_per_process_step(), 1);
}

TEST(Engine, ProbesDoNotPerturbTheRun) {
  const Graph g = cycle(6);
  const ColoringProtocol protocol(g);
  Engine a(g, protocol, make_distributed_random_daemon(), 7);
  Engine b(g, protocol, make_distributed_random_daemon(), 7);
  a.randomize_state();
  b.randomize_state();
  for (int step = 0; step < 100; ++step) {
    b.num_enabled();  // extra probing must not consume main rng
    a.step();
    b.step();
  }
  EXPECT_TRUE(a.config() == b.config());
  EXPECT_EQ(a.steps(), b.steps());
}

TEST(Engine, IsEnabledMatchesFreshEvaluation) {
  const Graph g = path(4);
  const CopyChannelOne protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 8);
  Configuration init = engine.config();
  init.set_comm(0, 0, 1);  // 0 differs from its channel-1 neighbor
  engine.set_config(init);
  EXPECT_TRUE(engine.is_enabled(0));
  EXPECT_TRUE(engine.is_enabled(1));   // 1 reads 0 (value 1) != own 0
  EXPECT_FALSE(engine.is_enabled(3));  // 3 reads 2, both 0
}

TEST(Engine, SetConfigValidatesDomains) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 9);
  Configuration bad = engine.config();
  bad.set_comm(0, 0, 99);  // outside {1..Delta+1}
  EXPECT_THROW(engine.set_config(bad), PreconditionError);
}

TEST(Engine, RunStatsAreRelativeToTheRun) {
  const Graph g = cycle(8);
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  Engine engine(g, protocol, make_distributed_random_daemon(), 10);
  engine.randomize_state();
  RunOptions options;
  options.legitimacy = problem.predicate();
  const RunStats first = engine.run(options);
  ASSERT_TRUE(first.silent);
  // Second run starts silent: zero steps, already legitimate.
  const RunStats second = engine.run(options);
  EXPECT_TRUE(second.silent);
  EXPECT_EQ(second.steps, 0u);
  EXPECT_EQ(second.steps_to_silence, 0u);
  EXPECT_TRUE(second.reached_legitimate);
  EXPECT_EQ(second.steps_to_legitimate, 0u);
}

TEST(Engine, QuiescenceExactOnInert) {
  const Graph g = path(3);
  const Inert protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 11);
  EXPECT_TRUE(engine.quiescent());
}

TEST(Engine, QuiescenceFalseWhileFlipping) {
  const Graph g = path(3);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 12);
  EXPECT_FALSE(engine.quiescent());
}

TEST(Engine, RunStopsAtMaxStepsWhenNeverSilent) {
  const Graph g = path(3);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 13);
  RunOptions options;
  options.max_steps = 500;
  const RunStats stats = engine.run(options);
  EXPECT_FALSE(stats.silent);
  EXPECT_EQ(stats.steps, 500u);
}

TEST(Engine, TraceRecordsSelectionsAndActions) {
  const Graph g = path(3);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 14);
  TraceRecorder trace(8);
  engine.set_trace(&trace);
  for (int step = 0; step < 12; ++step) engine.step();
  EXPECT_EQ(trace.events().size(), 8u);  // ring buffer capped
  const TraceEvent& last = trace.events().back();
  EXPECT_EQ(last.step, 12u);
  EXPECT_EQ(last.selected.size(), 1u);
  EXPECT_EQ(last.actions.size(), 1u);
  EXPECT_EQ(last.actions[0], 0);
  EXPECT_TRUE(last.comm_changed);
  EXPECT_NE(trace.str().find("comm*"), std::string::npos);
}

TEST(Faults, CorruptOnlyChosenVictims) {
  const Graph g = path(6);
  const ColoringProtocol protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 15);
  engine.randomize_state();
  const Configuration before = engine.config();
  Configuration corrupted = before;
  Rng rng(16);
  // Corrupt process 2 until its color actually changes (random redraws can
  // coincide with the old value).
  bool changed = false;
  for (int tries = 0; tries < 64 && !changed; ++tries) {
    corrupt_processes(g, protocol.spec(), corrupted, {2}, rng);
    changed = corrupted.comm(2, 0) != before.comm(2, 0);
  }
  EXPECT_TRUE(changed);
  for (ProcessId p : {0, 1, 3, 4, 5}) {
    EXPECT_EQ(corrupted.comm(p, 0), before.comm(p, 0));
  }
}

TEST(Faults, ConstantsAreImmune) {
  const Graph g = path(5);
  const Coloring colors = greedy_coloring(g);
  const MisProtocol protocol(g, colors);
  Configuration config(g, protocol.spec());
  protocol.install_constants(g, config);
  Rng rng(17);
  inject_random_faults(g, protocol.spec(), config, g.num_vertices(), rng);
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    EXPECT_EQ(config.comm(p, MisProtocol::kColorVar),
              colors[static_cast<std::size_t>(p)]);
  }
}

TEST(Faults, InjectRandomFaultsPicksDistinctVictims) {
  const Graph g = path(8);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  Rng rng(18);
  const auto victims =
      inject_random_faults(g, protocol.spec(), config, 3, rng);
  EXPECT_EQ(victims.size(), 3u);
  EXPECT_TRUE(std::is_sorted(victims.begin(), victims.end()));
  EXPECT_THROW(inject_random_faults(g, protocol.spec(), config, 99, rng),
               PreconditionError);
}

TEST(Quiescence, DetectsColoringFixedPoint) {
  const Graph g = path(4);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  // Proper coloring: silent (only cur keeps cycling, no comm writes).
  const Coloring proper = greedy_coloring(g);
  for (ProcessId p = 0; p < 4; ++p) {
    config.set_comm(p, 0, proper[static_cast<std::size_t>(p)]);
    config.set_internal(p, 0, 1);
  }
  EXPECT_TRUE(is_comm_quiescent(g, protocol, config));
  // Monochrome edge: some process will redraw.
  config.set_comm(1, 0, config.comm(0, 0));
  EXPECT_FALSE(is_comm_quiescent(g, protocol, config));
}

}  // namespace
}  // namespace sss
