/// The registry-wide property suite: every protocol name in the
/// ProtocolRegistry — the paper's three 1-efficient protocols, the
/// BFS-tree and leader-election protocols, and all full-read baselines —
/// runs through the shared harness grid (daemon x menagerie x seed),
/// asserting convergence to certified silence, legitimacy of the silent
/// configuration, closure/silence over a post-silence window, and
/// step-for-step ReferenceEngine equivalence. A protocol registered
/// without surviving this grid is a registry bug by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/problem_registry.hpp"
#include "core/protocol_registry.hpp"
#include "protocol_harness.hpp"

namespace sss {
namespace {

TEST(ProtocolPropertySuite, RegistryCoversThePaperProtocolsAndBaselines) {
  const std::vector<std::string> expected_protocols = {
      "bfs-tree",          "coloring",
      "full-read-bfs-tree", "full-read-coloring",
      "full-read-leader-election", "full-read-matching",
      "full-read-mis",     "full-read-spanning-forest",
      "leader-election",   "matching",
      "mis",               "spanning-forest"};
  EXPECT_EQ(ProtocolRegistry::instance().protocol_names(),
            expected_protocols);
  const std::vector<std::string> expected_all = {
      "bfs-tree",          "coloring",
      "full-read-bfs-tree", "full-read-coloring",
      "full-read-leader-election", "full-read-matching",
      "full-read-mis",     "full-read-spanning-forest",
      "generic-efficiency", "leader-election",
      "matching",          "mis",
      "pairwise-coloring", "pairwise-separation",
      "rotating-check",    "spanning-forest"};
  EXPECT_EQ(ProtocolRegistry::instance().names(), expected_all);
}

TEST(ProtocolPropertySuite, EveryBaseEntryNamesARegisteredProblem) {
  // The harness pairs protocols with predicates through the registry; an
  // entry with a dangling problem name would make the grid vacuous.
  for (const std::string& name :
       ProtocolRegistry::instance().protocol_names()) {
    const std::string& problem = ProtocolRegistry::instance().info(name).problem;
    EXPECT_FALSE(problem.empty()) << name;
    EXPECT_TRUE(ProblemRegistry::instance().contains(problem))
        << name << " -> " << problem;
  }
}

TEST(ProtocolPropertySuite, ConvergenceClosureSilenceEquivalenceGrid) {
  const std::vector<testing::HarnessReport> reports =
      testing::run_registry_property_suite();
  ASSERT_EQ(reports.size(),
            ProtocolRegistry::instance().protocol_names().size());
  int total_trials = 0;
  for (const testing::HarnessReport& report : reports) {
    EXPECT_TRUE(report.ok()) << report.str();
    total_trials += report.trials;
  }
  // 12 protocols x 7 graphs x 6 daemons x 2 seeds, minus the grid cells
  // outside full-read-coloring's daemon assumption (7 graphs x 2 excluded
  // daemons x 2 seeds).
  EXPECT_EQ(total_trials, 1008 - 28);
}

TEST(ProtocolPropertySuite, BulkSweepForcedGridStaysInLockstep) {
  // The same registry-wide grid with every engine pinned to the bulk
  // guard sweep: convergence/legitimacy/closure prove the sweep drives
  // real computations correctly, and the per-trial ReferenceEngine
  // lockstep proves bulk refreshes are bit-identical to scalar probes —
  // configs, rounds, and read metrics alike. Falsifiability of this leg
  // is proven by the wrong-sweep toy in tests/test_protocol_harness.cpp.
  testing::HarnessOptions options;
  options.sweep_mode = SweepMode::kForceBulk;
  options.seeds_per_daemon = 1;
  const std::vector<testing::HarnessReport> reports =
      testing::run_registry_property_suite(options);
  ASSERT_EQ(reports.size(),
            ProtocolRegistry::instance().protocol_names().size());
  for (const testing::HarnessReport& report : reports) {
    EXPECT_TRUE(report.ok()) << report.str();
  }
}

TEST(ProtocolPropertySuite, ParallelSteppingForcedGridStaysInLockstep) {
  // The registry-wide grid again, with every fast engine running the
  // intra-trial parallel step (3 workers — odd, so 64-aligned range
  // boundaries and the selection-slice boundaries disagree, the shape
  // most likely to expose a merge-order bug). Engine invariant 7 says
  // this changes nothing: convergence/legitimacy/closure must hold and
  // every trial's ReferenceEngine lockstep must stay bit-identical.
  testing::HarnessOptions options;
  options.parallel_threads = 3;
  options.seeds_per_daemon = 1;
  const std::vector<testing::HarnessReport> reports =
      testing::run_registry_property_suite(options);
  ASSERT_EQ(reports.size(),
            ProtocolRegistry::instance().protocol_names().size());
  for (const testing::HarnessReport& report : reports) {
    EXPECT_TRUE(report.ok()) << report.str();
  }
}

TEST(ProtocolPropertySuite, ClosureUnderFaultsAcrossTheRegistryGrid) {
  // Fault closure (the churn suite's per-cell core): stabilize, corrupt a
  // random victim set through Engine::apply_external_corruption, and
  // re-converge to a certified-silent legitimate configuration — for
  // every protocol x daemon x menagerie cell. Falsifiability of this leg
  // is proven by the poison-latch toy in tests/test_protocol_harness.cpp.
  testing::HarnessOptions options;
  options.seeds_per_daemon = 1;
  const std::vector<testing::HarnessReport> reports =
      testing::run_registry_fault_closure_suite(options);
  ASSERT_EQ(reports.size(),
            ProtocolRegistry::instance().protocol_names().size());
  int total_trials = 0;
  for (const testing::HarnessReport& report : reports) {
    EXPECT_TRUE(report.ok()) << report.str();
    total_trials += report.trials;
  }
  // Same grid shape as the property suite at one seed per daemon.
  EXPECT_EQ(total_trials, 504 - 14);
}

TEST(ProtocolPropertySuite, NonDefaultParametersRunTheSameGrid) {
  // The harness forwards registry parameters, so parameterized variants
  // (non-zero root, shuffled identifiers) get the same coverage.
  testing::HarnessOptions options;
  options.seeds_per_daemon = 1;
  options.params = {{"root", 3}};
  const testing::HarnessReport bfs =
      testing::run_protocol_property_suite("bfs-tree", options);
  EXPECT_TRUE(bfs.ok()) << bfs.str();

  options.params = {{"id_scheme", "random"}, {"id_seed", 9}};
  const testing::HarnessReport election =
      testing::run_protocol_property_suite("leader-election", options);
  EXPECT_TRUE(election.ok()) << election.str();
}

}  // namespace
}  // namespace sss
