/// Tests for the Markov-chain expected-stabilization-time analysis: hand-
/// computed chains, and agreement between the exact solver and simulation.

#include <gtest/gtest.h>

#include "core/coloring_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "support/require.hpp"
#include "verify/markov.hpp"

namespace sss {
namespace {

TEST(Markov, HandComputedTwoProcessColoring) {
  // path(2), palette {1,2}: 8 configurations (2 colors x 2 colors x cur
  // trivial... cur in [1..1] each). Conflicting states: (1,1), (2,2).
  // From a conflict, the selected process redraws uniformly: the conflict
  // resolves with probability 1/2 per step, so E[T] = 2 from a conflict.
  // Uniform start: half the starts are already proper -> E = (0+0+2+2)/4.
  const Graph g = path(2);
  const ColoringProtocol protocol(g, 2);
  const ColoringProblem problem;
  const HittingTimeAnalysis a =
      expected_stabilization_time(g, protocol, problem);
  EXPECT_EQ(a.states, 4u);
  EXPECT_EQ(a.legitimate, 2u);
  EXPECT_TRUE(a.absorbs_everywhere);
  EXPECT_NEAR(a.expected_steps_worst_start, 2.0, 1e-9);
  EXPECT_NEAR(a.expected_steps_uniform_start, 1.0, 1e-9);
}

TEST(Markov, DeterministicMisAbsorbs) {
  const Graph g = path(3);
  const MisProtocol protocol(g, greedy_coloring(g));
  const MisProblem problem;
  const HittingTimeAnalysis a =
      expected_stabilization_time(g, protocol, problem);
  EXPECT_TRUE(a.absorbs_everywhere);
  EXPECT_GT(a.expected_steps_worst_start, 0.0);
  // Deterministic protocol on a 3-chain: stabilization within a handful
  // of selections on average.
  EXPECT_LT(a.expected_steps_worst_start, 30.0);
}

TEST(Markov, PredictionMatchesSimulationColoring) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  const HittingTimeAnalysis a =
      expected_stabilization_time(g, protocol, problem);
  ASSERT_TRUE(a.absorbs_everywhere);
  const double measured =
      measured_stabilization_time(g, protocol, problem, 4000, 17);
  // 4000 runs: the sample mean should land within ~8% of the exact value.
  EXPECT_NEAR(measured, a.expected_steps_uniform_start,
              0.08 * a.expected_steps_uniform_start + 0.05);
}

TEST(Markov, PredictionMatchesSimulationTriangle) {
  const Graph g = complete(3);
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  const HittingTimeAnalysis a =
      expected_stabilization_time(g, protocol, problem);
  ASSERT_TRUE(a.absorbs_everywhere);
  const double measured =
      measured_stabilization_time(g, protocol, problem, 4000, 23);
  EXPECT_NEAR(measured, a.expected_steps_uniform_start,
              0.08 * a.expected_steps_uniform_start + 0.05);
}

TEST(Markov, LargerPaletteStabilizesFaster) {
  // More colors, fewer collisions: the exact expectation must decrease.
  const Graph g = path(3);
  const ColoringProblem problem;
  const ColoringProtocol tight(g, 3);
  const ColoringProtocol roomy(g, 5);
  const double e_tight =
      expected_stabilization_time(g, tight, problem)
          .expected_steps_uniform_start;
  const double e_roomy =
      expected_stabilization_time(g, roomy, problem)
          .expected_steps_uniform_start;
  EXPECT_LT(e_roomy, e_tight);
}

TEST(Markov, RefusesOversizedSpaces) {
  const Graph g = cycle(12);
  const ColoringProtocol protocol(g);
  EXPECT_THROW(
      expected_stabilization_time(g, protocol, ColoringProblem(), 100),
      PreconditionError);
}

}  // namespace
}  // namespace sss
