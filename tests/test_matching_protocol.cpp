/// Tests for Protocol MATCHING (Figure 10): all six actions, Lemma 7
/// (PR in {0, cur} after the first round), Lemma 5 (silent => free or
/// married), deterministic convergence within the Lemma 9 bound,
/// 1-efficiency, and the matched-pair 1-stability behind Theorem 8.

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/matching_protocol.hpp"
#include "core/problems.hpp"
#include "core/stability.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "support/require.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::sweep_graphs;

constexpr int kM = MatchingProtocol::kMarriedVar;
constexpr int kPR = MatchingProtocol::kPrVar;
constexpr int kCur = MatchingProtocol::kCurVar;

/// path(3) with colors 1-2-3 and all-free state; the playground for the
/// micro action tests.
struct Playground {
  Graph g = path(3);
  MatchingProtocol protocol{g, Coloring{1, 2, 3}};
  Configuration config{g, protocol.spec()};
  Rng rng{7};

  Playground() { protocol.install_constants(g, config); }

  ProcessStep step(ProcessId p) {
    return apply_solo_step(g, protocol, config, p, rng);
  }
};

TEST(MatchingProtocol, SpecMatchesFigure10) {
  Playground pg;
  ASSERT_EQ(pg.protocol.spec().num_comm(), 3);
  EXPECT_EQ(pg.protocol.spec().comm[kM].name(), "M");
  EXPECT_EQ(pg.protocol.spec().comm[kPR].name(), "PR");
  EXPECT_TRUE(pg.protocol.spec().comm[MatchingProtocol::kColorVar]
                  .is_constant());
  // PR ranges over {0..delta.p}.
  EXPECT_EQ(pg.protocol.spec().comm[kPR].domain(pg.g, 1).lo, 0);
  EXPECT_EQ(pg.protocol.spec().comm[kPR].domain(pg.g, 1).hi, 2);
}

TEST(MatchingProtocol, A1RepointsStalePointer) {
  // PR.p not in {0, cur.p} -> PR.p <- cur.p (highest priority).
  Playground pg;
  pg.config.set_comm(1, kPR, 2);       // points at channel 2
  pg.config.set_internal(1, kCur, 1);  // but checks channel 1
  const ProcessStep step = pg.step(1);
  EXPECT_EQ(step.action, 0);
  EXPECT_EQ(pg.config.comm(1, kPR), 1);
}

TEST(MatchingProtocol, A2AnnouncesMarriage) {
  // M.p != PRmarried(p) -> update M. Build a married pair 0-1.
  Playground pg;
  pg.config.set_comm(0, kPR, 1);       // 0's only channel is 1
  pg.config.set_internal(0, kCur, 1);
  pg.config.set_comm(1, kPR, 1);       // 1's channel 1 is process 0
  pg.config.set_internal(1, kCur, 1);
  const ProcessStep step = pg.step(0);
  EXPECT_EQ(step.action, 1);
  EXPECT_EQ(pg.config.comm(0, kM), 1);
  // And the converse: marriage ends, M must drop to false.
  pg.config.set_comm(1, kPR, 0);
  const ProcessStep drop = pg.step(0);
  EXPECT_EQ(drop.action, 1);
  EXPECT_EQ(pg.config.comm(0, kM), 0);
}

TEST(MatchingProtocol, A3AcceptsProposal) {
  // PR.p = 0 and PR.(cur.p) = p -> accept.
  Playground pg;
  pg.config.set_comm(0, kPR, 1);       // 0 proposes to 1
  pg.config.set_internal(0, kCur, 1);
  pg.config.set_comm(0, kM, 0);
  pg.config.set_comm(1, kPR, 0);
  pg.config.set_internal(1, kCur, 1);  // 1 checks channel 1 = process 0
  const ProcessStep step = pg.step(1);
  EXPECT_EQ(step.action, 2);
  EXPECT_EQ(pg.config.comm(1, kPR), 1);  // accepted: points back at 0
}

TEST(MatchingProtocol, A4AbandonsMarriedNeighbor) {
  // PR.p = cur.p, no proposal back, and the neighbor is married.
  Playground pg;
  pg.config.set_comm(1, kPR, 2);       // 1 points at process 2
  pg.config.set_internal(1, kCur, 2);
  pg.config.set_comm(2, kPR, 0);       // 2 does not point back
  pg.config.set_comm(2, kM, 1);        // and claims to be married
  const ProcessStep step = pg.step(1);
  EXPECT_EQ(step.action, 3);
  EXPECT_EQ(pg.config.comm(1, kPR), 0);
}

TEST(MatchingProtocol, A4AbandonsLowerColoredNeighbor) {
  // Condition (ii): break pointer cycles via colors. 2 points at 1 (color
  // 2 < 3) which points elsewhere.
  Playground pg;
  pg.config.set_comm(2, kPR, 1);       // 2's only channel is process 1
  pg.config.set_internal(2, kCur, 1);
  pg.config.set_comm(1, kPR, 1);       // 1 points at process 0 instead
  pg.config.set_internal(1, kCur, 1);
  const ProcessStep step = pg.step(2);
  EXPECT_EQ(step.action, 3);
  EXPECT_EQ(pg.config.comm(2, kPR), 0);
}

TEST(MatchingProtocol, A5ProposesToFreeHigherColoredNeighbor) {
  Playground pg;  // all free; colors 1-2-3
  pg.config.set_internal(0, kCur, 1);  // 0 checks its neighbor 1
  const ProcessStep step = pg.step(0);
  EXPECT_EQ(step.action, 4);
  EXPECT_EQ(pg.config.comm(0, kPR), 1);  // proposal out
}

TEST(MatchingProtocol, A6ScansPastIneligibleNeighbor) {
  // A free process pointing at a lower-colored free neighbor advances cur.
  Playground pg;
  pg.config.set_internal(1, kCur, 1);  // 1 checks process 0 (color 1 < 2)
  const ProcessStep step = pg.step(1);
  EXPECT_EQ(step.action, 5);
  EXPECT_EQ(pg.config.comm(1, kPR), 0);          // still free
  EXPECT_EQ(pg.config.internal_var(1, kCur), 2);  // moved on
}

TEST(MatchingProtocol, MarriedPairIsDisabled) {
  Playground pg;
  pg.config.set_comm(0, kPR, 1);
  pg.config.set_internal(0, kCur, 1);
  pg.config.set_comm(0, kM, 1);
  pg.config.set_comm(1, kPR, 1);
  pg.config.set_internal(1, kCur, 1);
  pg.config.set_comm(1, kM, 1);
  GuardContext g0(pg.g, pg.config, 0, nullptr);
  GuardContext g1(pg.g, pg.config, 1, nullptr);
  EXPECT_EQ(pg.protocol.first_enabled(g0), Protocol::kDisabled);
  EXPECT_EQ(pg.protocol.first_enabled(g1), Protocol::kDisabled);
}

// Lemma 7: after the first round, PR.p is always 0 or cur.p.
TEST(MatchingProtocol, Lemma7PointerDiscipline) {
  const Graph g = grid(3, 3);
  const MatchingProtocol protocol(g, greedy_coloring(g));
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 31);
  engine.randomize_state();
  // One enumerator round = n steps.
  for (int s = 0; s < g.num_vertices(); ++s) engine.step();
  for (int extra = 0; extra < 300; ++extra) {
    engine.step();
    const Configuration& config = engine.config();
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      const Value pr = config.comm(p, kPR);
      EXPECT_TRUE(pr == 0 || pr == config.internal_var(p, kCur))
          << "process " << p << " after step " << engine.steps();
    }
  }
}

struct MatchingCase {
  std::string graph;
  std::string daemon;
};

class MatchingConvergence : public ::testing::TestWithParam<MatchingCase> {};

// Theorem 7 + Lemma 9: silent within (Delta+1)n + 2 rounds, 1-efficient,
// and the matched edges form a maximal matching.
TEST_P(MatchingConvergence, ConvergesWithinLemma9Bound) {
  const auto& param = GetParam();
  Graph g = path(2);
  for (auto& [label, graph] : sweep_graphs()) {
    if (label == param.graph) g = graph;
  }
  const MatchingProtocol protocol(g, greedy_coloring(g));
  const MatchingProblem problem;
  const std::int64_t bound =
      matching_round_bound(g.num_vertices(), g.max_degree());
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    Engine engine(g, protocol, make_daemon(param.daemon), seed);
    engine.randomize_state();
    RunOptions options;
    options.max_steps = 4'000'000;
    options.legitimacy = problem.predicate();
    const RunStats stats = engine.run(options);
    ASSERT_TRUE(stats.silent) << param.graph << "/" << param.daemon;
    EXPECT_TRUE(problem.holds(g, engine.config()));
    EXPECT_EQ(stats.max_reads_per_process_step, 1);
    EXPECT_LE(static_cast<std::int64_t>(stats.rounds_to_silence), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchingConvergence,
    ::testing::Values(MatchingCase{"path8", "distributed"},
                      MatchingCase{"path8", "adversarial"},
                      MatchingCase{"cycle9", "central-rr"},
                      MatchingCase{"complete5", "distributed"},
                      MatchingCase{"complete5", "synchronous"},
                      MatchingCase{"star6", "enumerator"},
                      MatchingCase{"grid3x4", "distributed"},
                      MatchingCase{"petersen", "central-random"},
                      MatchingCase{"bintree10", "synchronous"},
                      MatchingCase{"gnp12", "distributed"},
                      MatchingCase{"caterpillar4x2", "adversarial"},
                      MatchingCase{"rtree11", "central-rr"}),
    [](const ::testing::TestParamInfo<MatchingCase>& param_info) {
      return testing::sanitize(param_info.param.graph + "_" +
                               param_info.param.daemon);
    });

// Lemma 5: in a silent configuration every process is free or married.
TEST(MatchingProtocol, Lemma5SilentMeansFreeOrMarried) {
  for (const auto& [label, g] : sweep_graphs()) {
    const MatchingProtocol protocol(g, greedy_coloring(g));
    Engine engine(g, protocol, make_distributed_random_daemon(), 51);
    engine.randomize_state();
    const RunStats stats = engine.run({});
    ASSERT_TRUE(stats.silent) << label;
    const Configuration& config = engine.config();
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      const Value pr = config.comm(p, kPR);
      if (pr == 0) {
        EXPECT_EQ(config.comm(p, kM), 0) << label << " free process " << p;
        continue;
      }
      const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(pr));
      EXPECT_EQ(config.comm(q, kPR),
                static_cast<Value>(g.local_index_of(q, p)))
          << label << " process " << p << " is neither free nor married";
      EXPECT_EQ(config.comm(p, kM), 1) << label;
    }
  }
}

TEST(MatchingProtocol, MatchedEdgesAgreeAcrossExtractors) {
  const Graph g = grid(3, 4);
  const MatchingProtocol protocol(g, dsatur_coloring(g));
  Engine engine(g, protocol, make_distributed_random_daemon(), 52);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  // In silent configurations the paper's inMM-based matched set coincides
  // with the raw mutual-PR pairs (Lemma 7 pins PR to cur).
  EXPECT_EQ(extract_matching(g, engine.config()),
            extract_mutual_pr_edges(g, engine.config()));
}

// Theorem 8's mechanism: married processes become 1-stable; free processes
// keep scanning all neighbors.
TEST(MatchingProtocol, MarriedProcessesAreOneStable) {
  const Graph g = cycle(10);
  const MatchingProtocol protocol(g, greedy_coloring(g));
  Engine engine(g, protocol, make_distributed_random_daemon(), 53);
  engine.randomize_state();
  const StabilityReport report = analyze_stability(engine, {}, 6);
  ASSERT_TRUE(report.silent);
  const Configuration& config = engine.config();
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const int reads =
        report.suffix_read_set_sizes[static_cast<std::size_t>(p)];
    if (config.comm(p, kM) == 1) {
      EXPECT_LE(reads, 1) << "married process " << p;
    } else {
      EXPECT_EQ(reads, g.degree(p)) << "free process " << p;
    }
  }
}

TEST(MatchingProtocol, MatchingSizeMeetsBiedlBound) {
  // [6]: any maximal matching has >= ceil(m / (2*Delta-1)) edges.
  for (const auto& [label, g] : sweep_graphs()) {
    const MatchingProtocol protocol(g, identity_coloring(g));
    Engine engine(g, protocol, make_distributed_random_daemon(), 54);
    engine.randomize_state();
    ASSERT_TRUE(engine.run({}).silent) << label;
    const auto matched = extract_matching(g, engine.config());
    EXPECT_GE(static_cast<std::int64_t>(matched.size()),
              matching_size_lower_bound(g.num_edges(), g.max_degree()))
        << label;
  }
}

TEST(MatchingProtocol, TwoProcessNetworkMarries) {
  const Graph g = path(2);
  const MatchingProtocol protocol(g, Coloring{1, 2});
  Engine engine(g, protocol, make_distributed_random_daemon(), 55);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  const auto matched = extract_matching(g, engine.config());
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], (Edge{0, 1}));
}

}  // namespace
}  // namespace sss
