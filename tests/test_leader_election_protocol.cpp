/// Protocol LEADER-ELECTION and its full-read baseline: identifier
/// assignment contracts, convergence sweeps (the minimum id wins and the
/// parent pointers form a BFS tree rooted at the winner, at 2 reads per
/// step), and exhaustive model-checker discharge on tiny instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/full_read_leader_election.hpp"
#include "core/bounds.hpp"
#include "core/leader_election_protocol.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"
#include "verify/checks.hpp"
#include "verify/tree_predicates.hpp"

namespace sss {
namespace {

TEST(LeaderElectionProtocol, IdentifierContracts) {
  const Graph g = path(4);
  EXPECT_THROW(LeaderElectionProtocol(g, {0, 1, 2}), PreconditionError);
  EXPECT_THROW(LeaderElectionProtocol(g, {0, 1, 2, 2}), PreconditionError);
  EXPECT_THROW(LeaderElectionProtocol(g, {0, 1, 2, -3}), PreconditionError);
  const LeaderElectionProtocol protocol(g, {7, 3, 9, 5});
  EXPECT_EQ(protocol.min_id(), 3);
  EXPECT_EQ(protocol.spec().num_comm(), 4);
  EXPECT_TRUE(
      protocol.spec().comm[LeaderElectionProtocol::kIdVar].is_constant());
}

TEST(LeaderElectionProtocol, IdSchemes) {
  const Graph g = path(5);
  EXPECT_EQ(make_id_assignment(g, "identity", 0),
            (std::vector<Value>{0, 1, 2, 3, 4}));
  EXPECT_EQ(make_id_assignment(g, "reverse", 0),
            (std::vector<Value>{4, 3, 2, 1, 0}));
  const std::vector<Value> random_ids = make_id_assignment(g, "random", 11);
  EXPECT_EQ(make_id_assignment(g, "random", 11), random_ids);  // seeded
  std::vector<Value> sorted = random_ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Value>{0, 1, 2, 3, 4}));
  EXPECT_THROW(make_id_assignment(g, "oracle", 0), PreconditionError);
}

/// Runs one trial to certified silence, checks the predicate, the elected
/// id, the read certificate, and the closed-form round bound of
/// src/core/bounds.hpp.
void expect_elects(const Graph& g, const Protocol& protocol, Value min_id,
                   const std::string& daemon_name, std::uint64_t seed,
                   int max_reads) {
  Engine engine(g, protocol, make_daemon(daemon_name), seed);
  engine.randomize_state();
  RunOptions options;
  options.max_steps = 400'000;
  const RunStats stats = engine.run(options);
  ASSERT_TRUE(stats.silent)
      << protocol.name() << " on " << g.name() << " under " << daemon_name;
  EXPECT_TRUE(LeaderElectionProblem().holds(g, engine.config()))
      << protocol.name() << " on " << g.name() << " under " << daemon_name;
  EXPECT_EQ(extract_agreed_leader(g, engine.config()), min_id);
  EXPECT_LE(stats.max_reads_per_process_step, max_reads)
      << protocol.name() << " on " << g.name();
  EXPECT_LE(static_cast<std::int64_t>(stats.rounds_to_silence),
            leader_election_round_bound(g.num_vertices(), g.max_degree()))
      << protocol.name() << " on " << g.name() << " under " << daemon_name;
}

TEST(LeaderElectionProtocol, ElectsTheMinimumIdEverywhere) {
  for (const auto& named : testing::sweep_graphs()) {
    const LeaderElectionProtocol protocol(
        named.graph, make_id_assignment(named.graph, "identity", 0));
    for (const std::string& daemon_name : daemon_names()) {
      expect_elects(named.graph, protocol, 0, daemon_name, 137, /*k=*/2);
    }
  }
}

TEST(LeaderElectionProtocol, WinnerTracksTheIdAssignment) {
  const Graph g = grid(3, 3);
  const LeaderElectionProtocol reverse(g, make_id_assignment(g, "reverse", 0));
  expect_elects(g, reverse, 0, "central-rr", 23, 2);
  const LeaderElectionProtocol shuffled(g, make_id_assignment(g, "random", 5));
  expect_elects(g, shuffled, 0, "distributed", 29, 2);
}

TEST(FullReadLeaderElection, ElectsWithDeltaReads) {
  for (const auto& named : testing::sweep_graphs()) {
    const FullReadLeaderElection protocol(
        named.graph, make_id_assignment(named.graph, "identity", 0));
    for (const std::string& daemon_name : daemon_names()) {
      expect_elects(named.graph, protocol, 0, daemon_name, 211,
                    named.graph.max_degree());
    }
  }
}

TEST(LeaderElectionProtocol, RegistryForwardsIdParameters) {
  const Graph g = path(4);
  const std::unique_ptr<Protocol> reverse = ProtocolRegistry::instance().make(
      "leader-election", g, {{"id_scheme", "reverse"}});
  EXPECT_EQ(dynamic_cast<const LeaderElectionProtocol&>(*reverse).ids(),
            (std::vector<Value>{3, 2, 1, 0}));
  EXPECT_THROW(ProtocolRegistry::instance().make(
                   "leader-election", g, {{"id_scheme", "astrology"}}),
               PreconditionError);
  EXPECT_THROW(ProtocolRegistry::instance().make(
                   "full-read-leader-election", g, {{"ids", 3}}),
               PreconditionError);
}

/// Exhaustive discharge on tiny instances. The identifier assignment is
/// part of the instance: identity and reverse cover both ends winning.
void expect_exhaustively_correct(const Graph& g, const Protocol& protocol,
                                 std::uint64_t space_limit) {
  const LeaderElectionProblem problem;
  const CheckResult silent =
      check_silent_implies_legitimate(g, protocol, problem, space_limit);
  EXPECT_TRUE(silent.ok) << g.name() << ": " << silent.detail << " ("
                         << silent.violations << " violations)";
  const CheckResult closure = check_closure(g, protocol, problem, space_limit);
  EXPECT_TRUE(closure.ok) << g.name() << ": " << closure.detail;
  const CheckResult reachable =
      check_legitimacy_reachable(g, protocol, problem, space_limit);
  EXPECT_TRUE(reachable.ok) << g.name() << ": " << reachable.detail;
  const CheckResult converges =
      check_synchronous_convergence(g, protocol, problem, space_limit);
  EXPECT_TRUE(converges.ok) << g.name() << ": " << converges.detail;
}

TEST(LeaderElectionProtocol, ExhaustiveChecksOnTinyGraphs) {
  const std::uint64_t limit = 1u << 18;
  expect_exhaustively_correct(
      path(3), LeaderElectionProtocol(path(3), {0, 1, 2}), limit);
  expect_exhaustively_correct(
      path(3), LeaderElectionProtocol(path(3), {2, 1, 0}), limit);
  expect_exhaustively_correct(
      complete(3), LeaderElectionProtocol(complete(3), {1, 2, 0}), limit);
}

TEST(FullReadLeaderElection, ExhaustiveChecksOnTinyGraphs) {
  const std::uint64_t limit = 1u << 18;
  expect_exhaustively_correct(
      path(3), FullReadLeaderElection(path(3), {0, 1, 2}), limit);
  expect_exhaustively_correct(
      path(3), FullReadLeaderElection(path(3), {2, 1, 0}), limit);
  expect_exhaustively_correct(
      complete(3), FullReadLeaderElection(complete(3), {1, 2, 0}), limit);
}

}  // namespace
}  // namespace sss
