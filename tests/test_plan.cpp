/// Tests for the experiment-manifest plan builder (analysis/plan.hpp):
/// expansion shape and order, defaults/override layering, base_seeds
/// pinning, equivalence with a hand-built plan, and the strict error
/// paths (unknown keys, names, and malformed sweeps).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/batch.hpp"
#include "analysis/plan.hpp"
#include "core/coloring_protocol.hpp"
#include "graph/builders.hpp"
#include "support/require.hpp"

namespace sss {
namespace {

constexpr const char* kSmallManifest = R"({
  "name": "small",
  "defaults": {
    "daemons": ["central-rr", "distributed"],
    "seeds_per_daemon": 2,
    "max_steps": 30000,
    "base_seed": 7
  },
  "sweeps": [
    {
      "graphs": [
        {"family": "star", "leaves": [3, 4]},
        {"family": "grid", "rows": 2, "cols": [2, 3]}
      ],
      "protocols": [{"name": "coloring"}, {"name": "full-read-coloring"}],
      "problem": "vertex-coloring"
    },
    {
      "graphs": [{"family": "petersen"}],
      "protocols": [{"name": "mis"}],
      "daemons": ["synchronous"],
      "seeds_per_daemon": 1,
      "extra_steps": 16,
      "exclude_frozen": true
    }
  ]
})";

TEST(Plan, ExpandsInDocumentedOrder) {
  const ExperimentPlan plan = plan_from_manifest_text(kSmallManifest);
  EXPECT_EQ(plan.name, "small");
  // Sweep 1: (star3, star4, grid2x2, grid2x3) x (coloring, full-read) = 8,
  // then sweep 2's single item.
  ASSERT_EQ(plan.items.size(), 9u);
  const std::vector<std::string> labels = {
      "COLORING/star(3)",    "FULL-READ-COLORING/star(3)",
      "COLORING/star(4)",    "FULL-READ-COLORING/star(4)",
      "COLORING/grid(2x2)",  "FULL-READ-COLORING/grid(2x2)",
      "COLORING/grid(2x3)",  "FULL-READ-COLORING/grid(2x3)",
      "MIS/petersen"};
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(plan.items[i].label, labels[i]) << i;
  }
  EXPECT_EQ(plan.total_trials(), 8 * 2 * 2 + 1);
}

TEST(Plan, AppliesDefaultsAndOverrides) {
  const ExperimentPlan plan = plan_from_manifest_text(kSmallManifest);
  const BatchItem& first = plan.items.front();
  EXPECT_EQ(first.daemons,
            (std::vector<std::string>{"central-rr", "distributed"}));
  EXPECT_EQ(first.seeds_per_daemon, 2);
  EXPECT_EQ(first.base_seed, 7u);
  EXPECT_EQ(first.run.max_steps, 30000u);
  EXPECT_EQ(first.extra_steps, 0);
  EXPECT_FALSE(first.exclude_frozen);
  ASSERT_NE(first.problem, nullptr);
  EXPECT_EQ(first.problem->name(), "vertex-coloring");

  const BatchItem& last = plan.items.back();
  EXPECT_EQ(last.daemons, (std::vector<std::string>{"synchronous"}));
  EXPECT_EQ(last.seeds_per_daemon, 1);
  EXPECT_EQ(last.run.max_steps, 30000u);  // inherited from defaults
  EXPECT_EQ(last.extra_steps, 16);
  EXPECT_TRUE(last.exclude_frozen);
  EXPECT_EQ(last.problem, nullptr);
}

TEST(Plan, BaseSeedsPinPerItemSeeds) {
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "seeds",
    "sweeps": [{
      "graphs": [{"family": "star", "leaves": [2, 3]}],
      "protocols": [{"name": "coloring"}, {"name": "full-read-coloring"}],
      "daemons": ["distributed"],
      "seeds_per_daemon": 1,
      "base_seeds": [100, 200, 101, 201]
    }]
  })");
  ASSERT_EQ(plan.items.size(), 4u);
  EXPECT_EQ(plan.items[0].base_seed, 100u);
  EXPECT_EQ(plan.items[1].base_seed, 200u);
  EXPECT_EQ(plan.items[2].base_seed, 101u);
  EXPECT_EQ(plan.items[3].base_seed, 201u);
}

TEST(Plan, RoundTripMatchesHandBuiltPlan) {
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "roundtrip",
    "sweeps": [{
      "graphs": [{"family": "star", "leaves": 4}],
      "protocols": [{"name": "coloring"}],
      "daemons": ["distributed", "central-rr"],
      "seeds_per_daemon": 2,
      "max_steps": 20000,
      "base_seed": 11
    }]
  })");
  BatchOptions serial;
  serial.threads = 1;
  const BatchResult from_manifest = run_batch(plan.items, serial);

  const Graph g = star(4);
  const ColoringProtocol protocol(g);
  BatchItem item;
  item.label = "hand";
  item.graph = &g;
  item.protocol = &protocol;
  item.daemons = {"distributed", "central-rr"};
  item.seeds_per_daemon = 2;
  item.run.max_steps = 20000;
  item.base_seed = 11;
  const BatchResult by_hand = run_batch({item}, serial);

  const SweepSummary& a = from_manifest.summaries.front();
  const SweepSummary& b = by_hand.summaries.front();
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.silent_runs, b.silent_runs);
  EXPECT_EQ(a.max_steps_to_silence, b.max_steps_to_silence);
  EXPECT_EQ(a.k_measured, b.k_measured);
  EXPECT_EQ(a.bits_measured, b.bits_measured);
  EXPECT_EQ(a.mean_total_reads, b.mean_total_reads);
  EXPECT_EQ(a.mean_total_bits, b.mean_total_bits);
}

TEST(Plan, ExpandsRangeObjectsBesideLists) {
  // {"from", "to", "step"} range objects expand to inclusive integer
  // progressions and participate in the cartesian product like lists.
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "ranges",
    "sweeps": [{
      "graphs": [
        {"family": "path", "n": {"from": 4, "to": 10, "step": 3}},
        {"family": "grid", "rows": {"from": 2, "to": 3}, "cols": [2, 3]}
      ],
      "protocols": [{"name": "coloring"}]
    }]
  })");
  const std::vector<std::string> labels = {
      "COLORING/path(4)",   "COLORING/path(7)",   "COLORING/path(10)",
      "COLORING/grid(2x2)", "COLORING/grid(2x3)", "COLORING/grid(3x2)",
      "COLORING/grid(3x3)"};
  ASSERT_EQ(plan.items.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(plan.items[i].label, labels[i]) << i;
  }
}

TEST(Plan, RangeObjectErrorsNameTheirPosition) {
  const auto expand_error = [](const std::string& text) -> std::string {
    try {
      plan_from_manifest_text(text);
    } catch (const PreconditionError& error) {
      return error.what();
    }
    return {};
  };
  // Reversed bounds: the message carries the range's manifest line:col.
  const std::string reversed = expand_error(
      "{\"name\": \"x\", \"sweeps\": [{\n"
      "  \"graphs\": [\n"
      "    {\"family\": \"path\", \"n\": {\"from\": 9, \"to\": 4}}],\n"
      "  \"protocols\": [{\"name\": \"coloring\"}]}]}");
  EXPECT_NE(reversed.find("\"from\" must be <= \"to\""), std::string::npos)
      << reversed;
  EXPECT_NE(reversed.find("at 3:29"), std::string::npos) << reversed;

  EXPECT_NE(expand_error(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": {"from": 2, "to": 8, "step": 0}}],
      "protocols": [{"name": "coloring"}]}]})")
                .find("\"step\" must be >= 1"),
            std::string::npos);
  EXPECT_NE(expand_error(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": {"to": 8}}],
      "protocols": [{"name": "coloring"}]}]})")
                .find("needs \"from\" and \"to\""),
            std::string::npos);
  EXPECT_NE(expand_error(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": {"from": 2, "to": 8, "by": 2}}],
      "protocols": [{"name": "coloring"}]}]})")
                .find("unknown key \"by\""),
            std::string::npos);
  // Type errors name the field and its own position too.
  const std::string fractional = expand_error(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": {"from": 4.5, "to": 8}}],
      "protocols": [{"name": "coloring"}]}]})");
  EXPECT_NE(fractional.find("\"from\" must be an integer (at "),
            std::string::npos)
      << fractional;
  EXPECT_NE(expand_error(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": {"from": "4", "to": 8}}],
      "protocols": [{"name": "coloring"}]}]})")
                .find("got string"),
            std::string::npos);
}

TEST(Plan, RejectsUnknownAndMalformedInput) {
  const auto expand = [](const std::string& text) {
    return plan_from_manifest_text(text);
  };
  // Unknown keys at every level.
  EXPECT_THROW(expand(R"({"name": "x", "sweps": []})"), PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "defaults": {"daemon": []},
                          "sweeps": []})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring"}],
      "grahps": []}]})"),
               PreconditionError);
  // Unknown registry names.
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "moebius", "n": 4}],
      "protocols": [{"name": "coloring"}]}]})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "gossip"}]}]})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring"}],
      "problem": "domination"}]})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring"}],
      "daemons": ["lazy"]}]})"),
               PreconditionError);
  // Unknown graph parameter (registry-level validation through the plan).
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "m": 4}],
      "protocols": [{"name": "coloring"}]}]})"),
               PreconditionError);
  // Shape errors.
  EXPECT_THROW(expand(R"({"sweeps": []})"), PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": []})"), PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [], "protocols": [{"name": "coloring"}]}]})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}], "protocols": []}]})"),
               PreconditionError);
  // base_seeds arity mismatch, and base_seed/base_seeds exclusivity.
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring"}],
      "base_seeds": [1, 2]}]})"),
               PreconditionError);
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring"}],
      "base_seed": 5, "base_seeds": [1]}]})"),
               PreconditionError);
  // Protocol parameters must be scalars.
  EXPECT_THROW(expand(R"({"name": "x", "sweeps": [{
      "graphs": [{"family": "path", "n": 4}],
      "protocols": [{"name": "coloring", "palette_size": [4, 5]}]}]})"),
               PreconditionError);
}

TEST(Plan, ExpandsNestedProtocolSpecs) {
  // Composed protocol specs ({"transform", "inner"}) nest recursively and
  // expand beside base specs. A plain sweep leaves the legitimacy
  // predicate unbound, exactly as for base specs.
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "composed",
    "sweeps": [{
      "graphs": [{"family": "star", "leaves": 4}],
      "protocols": [
        {"name": "coloring"},
        {"transform": "generic-efficiency", "inner": {"name": "coloring"}},
        {"transform": "generic-efficiency",
         "inner": {"transform": "generic-efficiency",
                   "inner": {"name": "full-read-coloring",
                             "palette_size": 6}}}
      ],
      "daemons": ["distributed"],
      "seeds_per_daemon": 1
    }]
  })");
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].label, "COLORING/star(4)");
  EXPECT_EQ(plan.items[1].label, "GENERIC-EFFICIENCY(COLORING)/star(4)");
  EXPECT_EQ(plan.items[2].label,
            "GENERIC-EFFICIENCY(GENERIC-EFFICIENCY(FULL-READ-COLORING))"
            "/star(4)");
  for (const BatchItem& item : plan.items) {
    EXPECT_EQ(item.problem, nullptr) << item.label;
  }
}

TEST(Plan, ChurnSweepsInheritTheComposedProblem) {
  // Churn availability needs a predicate; without an explicit "problem"
  // key each item binds its composition's resolved problem — which for a
  // transformer is the inner entry's, found through the nesting.
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "composed-churn",
    "sweeps": [{
      "graphs": [{"family": "cycle", "n": 6}],
      "protocols": [
        {"transform": "generic-efficiency", "inner": {"name": "coloring"}},
        {"transform": "generic-efficiency", "inner": {"name": "mis"}}
      ],
      "daemons": ["distributed"],
      "seeds_per_daemon": 1,
      "churn": {"period": 64}
    }]
  })");
  ASSERT_EQ(plan.items.size(), 2u);
  ASSERT_NE(plan.items[0].problem, nullptr);
  EXPECT_EQ(plan.items[0].problem->name(), "vertex-coloring");
  ASSERT_NE(plan.items[1].problem, nullptr);
  EXPECT_EQ(plan.items[1].problem->name(), "maximal-independent-set");
}

TEST(Plan, NestedProtocolSpecErrorsNameTheirPosition) {
  const auto expand_error = [](const std::string& text) -> std::string {
    try {
      plan_from_manifest_text(text);
    } catch (const PreconditionError& error) {
      return error.what();
    }
    return {};
  };
  const char* kPrefix =
      "{\"name\": \"x\", \"sweeps\": [{\n"
      "  \"graphs\": [{\"family\": \"path\", \"n\": 4}],\n"
      "  \"protocols\": [\n";

  // Both "name" and "transform" on one spec.
  const std::string both = expand_error(
      std::string(kPrefix) +
      "    {\"name\": \"coloring\", \"transform\": \"generic-efficiency\","
      " \"inner\": {\"name\": \"coloring\"}}]}]}");
  EXPECT_NE(both.find("accepts \"name\" or \"transform\", not both"),
            std::string::npos)
      << both;
  EXPECT_NE(both.find("protocol spec at 4:5"), std::string::npos) << both;

  // Neither.
  EXPECT_NE(expand_error(std::string(kPrefix) + "    {\"root\": 2}]}]}")
                .find("needs \"name\" (base protocol) or \"transform\""),
            std::string::npos);

  // "inner" on a base spec.
  EXPECT_NE(expand_error(std::string(kPrefix) +
                         "    {\"name\": \"coloring\","
                         " \"inner\": {\"name\": \"mis\"}}]}]}")
                .find("only valid alongside \"transform\""),
            std::string::npos);

  // "transform" without "inner".
  EXPECT_NE(expand_error(std::string(kPrefix) +
                         "    {\"transform\": \"generic-efficiency\"}]}]}")
                .find("\"transform\" needs an \"inner\" protocol spec"),
            std::string::npos);

  // Non-object "inner", with the inner value's own position.
  const std::string non_object = expand_error(
      std::string(kPrefix) +
      "    {\"transform\": \"generic-efficiency\",\n"
      "     \"inner\": \"coloring\"}]}]}");
  EXPECT_NE(non_object.find("must be a protocol spec object, got string"),
            std::string::npos)
      << non_object;
  EXPECT_NE(non_object.find("\"inner\" at 5:15"), std::string::npos)
      << non_object;

  // Registry-level composition errors are wrapped with the spec's
  // manifest position: a checker source is not runnable...
  const std::string bare_checker = expand_error(
      std::string(kPrefix) + "    {\"name\": \"pairwise-coloring\"}]}]}");
  EXPECT_NE(bare_checker.find("protocol spec at 4:5"), std::string::npos)
      << bare_checker;
  EXPECT_NE(bare_checker.find("checker source"), std::string::npos)
      << bare_checker;
  // ... and rotating-check wraps checker sources, not protocols.
  const std::string mis_wrapped = expand_error(
      std::string(kPrefix) +
      "    {\"transform\": \"rotating-check\","
      " \"inner\": {\"name\": \"coloring\"}}]}]}");
  EXPECT_NE(mis_wrapped.find("protocol spec at 4:5"), std::string::npos)
      << mis_wrapped;
  EXPECT_NE(mis_wrapped.find("wraps a checker source"), std::string::npos)
      << mis_wrapped;

  // Unknown parameters on the *inner* spec are caught too.
  EXPECT_NE(expand_error(std::string(kPrefix) +
                         "    {\"transform\": \"generic-efficiency\","
                         " \"inner\": {\"name\": \"coloring\","
                         " \"palete\": 4}}]}]}")
                .find("unknown parameter"),
            std::string::npos);
}

TEST(Plan, ComposedManifestRunsEndToEnd) {
  // The composed item must actually run through the batch runner: the
  // rotating-check transformer over its pairwise-coloring checker source,
  // plus a generic-efficiency wrap, both answering to vertex-coloring.
  const ExperimentPlan plan = plan_from_manifest_text(R"({
    "name": "composed-run",
    "sweeps": [{
      "graphs": [{"family": "cycle", "n": 5}],
      "protocols": [
        {"transform": "rotating-check",
         "inner": {"name": "pairwise-coloring"}},
        {"transform": "generic-efficiency", "inner": {"name": "coloring"}}
      ],
      "daemons": ["distributed"],
      "seeds_per_daemon": 2,
      "max_steps": 200000
    }]
  })");
  ASSERT_EQ(plan.items.size(), 2u);
  BatchOptions serial;
  serial.threads = 1;
  const BatchResult result = run_batch(plan.items, serial);
  for (const SweepSummary& summary : result.summaries) {
    EXPECT_EQ(summary.runs, 2);
    EXPECT_EQ(summary.silent_runs, 2);
  }
}

}  // namespace
}  // namespace sss
