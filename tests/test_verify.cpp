/// Exhaustive model-checking tests: these discharge the paper's lemmas on
/// tiny instances over the *entire* configuration space, not samples.

#include <gtest/gtest.h>

#include "core/coloring_protocol.hpp"
#include "core/matching_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "runtime/quiescence.hpp"
#include "support/require.hpp"
#include "test_util.hpp"
#include "verify/checks.hpp"
#include "verify/enumerate.hpp"
#include "verify/neighbor_complete.hpp"
#include "verify/transition.hpp"

namespace sss {
namespace {

using testing::tiny_graphs;

TEST(Enumerate, SpaceSizeFormula) {
  // COLORING on path(3): colors 3^3, cur domains 1*2*1.
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  EXPECT_EQ(configuration_space_size(g, protocol.spec()), 27u * 2u);
}

TEST(Enumerate, ConstantsAreNotEnumerated) {
  const Graph g = path(3);
  const MisProtocol protocol(g, Coloring{1, 2, 1});
  // S: 2^3; colors constant; cur: 1*2*1.
  EXPECT_EQ(configuration_space_size(g, protocol.spec()), 8u * 2u);
}

TEST(Enumerate, VisitsEveryConfigurationExactlyOnce) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  std::set<std::vector<Value>> seen;
  const auto count = for_each_configuration(
      g, protocol, 1u << 20,
      [&](const Configuration& c) { seen.insert(c.raw()); });
  EXPECT_EQ(count, 54u);
  EXPECT_EQ(seen.size(), 54u);
}

TEST(Enumerate, RefusesOversizedSpaces) {
  const Graph g = cycle(12);
  const ColoringProtocol protocol(g);
  EXPECT_THROW(for_each_configuration(g, protocol, 100, [](const auto&) {}),
               PreconditionError);
}

TEST(Transition, ColoringConflictBranchesOverPalette) {
  const Graph g = path(2);
  const ColoringProtocol protocol(g, 3);  // explicit 3-color palette
  Configuration config(g, protocol.spec());
  config.set_comm(0, 0, 2);
  config.set_comm(1, 0, 2);  // conflict
  const auto outcomes = process_step_outcomes(g, protocol, config, 0);
  // The redraw enumerates all 3 colors (one may reproduce the old value,
  // still a distinct outcome tuple with the cur advance).
  EXPECT_EQ(outcomes.size(), 3u);
  for (const auto& step : outcomes) {
    EXPECT_EQ(step.action, 0);
    EXPECT_TRUE(step.comm_write_attempted);
  }
}

TEST(Transition, CentralSuccessorsExcludeIdentity) {
  const Graph g = path(2);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  config.set_comm(0, 0, 1);
  config.set_comm(1, 0, 2);  // proper: only cur advances are possible
  const auto next = successors_central(g, protocol, config);
  for (const auto& c : next) {
    EXPECT_FALSE(c == config);
    EXPECT_TRUE(c.same_comm(config));  // colors cannot change when proper
  }
}

TEST(Transition, SubsetSuccessorsContainCentralOnes) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  config.set_comm(0, 0, 1);
  config.set_comm(1, 0, 1);
  config.set_comm(2, 0, 2);
  const auto central = successors_central(g, protocol, config);
  const auto subsets = successors_all_subsets(g, protocol, config);
  for (const auto& c : central) {
    EXPECT_NE(std::find(subsets.begin(), subsets.end(), c), subsets.end());
  }
  EXPECT_GT(subsets.size(), central.size());
}

TEST(Transition, SynchronousSuccessorRejectsProbabilistic) {
  const Graph g = path(2);
  const ColoringProtocol protocol(g);
  const Configuration config(g, protocol.spec());
  EXPECT_THROW(synchronous_successor(g, protocol, config),
               PreconditionError);
}

TEST(Transition, SynchronousSuccessorIsSimultaneous) {
  const Graph g = path(2);
  const MisProtocol protocol(g, Coloring{1, 2});
  Configuration config(g, protocol.spec());
  protocol.install_constants(g, config);
  // Both dominated, each sees the other dominated -> both promote.
  const Configuration next = synchronous_successor(g, protocol, config);
  EXPECT_EQ(next.comm(0, MisProtocol::kStateVar), MisProtocol::kDominator);
  EXPECT_EQ(next.comm(1, MisProtocol::kStateVar), MisProtocol::kDominator);
}

// Lemma 3: every silent configuration of MIS satisfies the MIS predicate —
// exhaustively, over every configuration of every tiny graph.
TEST(Checks, Lemma3SilentMisConfigurationsAreLegitimate) {
  for (const auto& [label, g] : tiny_graphs()) {
    const MisProtocol protocol(g, greedy_coloring(g));
    const MisProblem problem;
    const CheckResult result =
        check_silent_implies_legitimate(g, protocol, problem);
    EXPECT_TRUE(result.ok) << label << ": " << result.violations
                           << " silent illegitimate configurations";
    EXPECT_GT(result.relevant, 0u) << label;
  }
}

// Lemmas 5-6: same statement for MATCHING.
TEST(Checks, Lemma5and6SilentMatchingConfigurationsAreLegitimate) {
  for (const auto& [label, g] : tiny_graphs()) {
    const MatchingProtocol protocol(g, greedy_coloring(g));
    const MatchingProblem problem;
    const CheckResult result =
        check_silent_implies_legitimate(g, protocol, problem);
    EXPECT_TRUE(result.ok) << label;
    EXPECT_GT(result.relevant, 0u) << label;
  }
}

// Silent COLORING configurations are proper colorings.
TEST(Checks, SilentColoringConfigurationsAreProper) {
  for (const auto& [label, g] : tiny_graphs()) {
    const ColoringProtocol protocol(g);
    const CheckResult result =
        check_silent_implies_legitimate(g, protocol, ColoringProblem());
    EXPECT_TRUE(result.ok) << label;
    EXPECT_GT(result.relevant, 0u) << label;
  }
}

// Lemma 1: the coloring predicate is closed under every subset step and
// every random resolution.
TEST(Checks, Lemma1ColoringClosure) {
  for (const auto& [label, g] : tiny_graphs()) {
    const ColoringProtocol protocol(g);
    const CheckResult result = check_closure(g, protocol, ColoringProblem());
    EXPECT_TRUE(result.ok) << label;
    EXPECT_GT(result.relevant, 0u) << label;
  }
}

// Lemma 2's combinatorial core: a legitimate configuration is reachable
// from every configuration (so the randomized protocol converges w.p. 1).
TEST(Checks, Lemma2LegitimacyReachableFromEverywhere) {
  for (const auto& [label, g] : tiny_graphs()) {
    const ColoringProtocol protocol(g);
    const CheckResult result =
        check_legitimacy_reachable(g, protocol, ColoringProblem());
    EXPECT_TRUE(result.ok) << label << ": " << result.violations
                           << " configurations cannot reach legitimacy";
  }
}

// Deterministic protocols: the synchronous computation converges from
// EVERY configuration.
TEST(Checks, MisSynchronousConvergenceFromAllConfigurations) {
  for (const auto& [label, g] : tiny_graphs()) {
    const MisProtocol protocol(g, greedy_coloring(g));
    const CheckResult result =
        check_synchronous_convergence(g, protocol, MisProblem());
    EXPECT_TRUE(result.ok) << label;
  }
}

TEST(Checks, MatchingSynchronousConvergenceFromAllConfigurations) {
  for (const auto& [label, g] : tiny_graphs()) {
    const MatchingProtocol protocol(g, greedy_coloring(g));
    const CheckResult result =
        check_synchronous_convergence(g, protocol, MatchingProblem());
    EXPECT_TRUE(result.ok) << label;
  }
}

// Definition 10. The *anonymous* COLORING protocol is neighbor-complete:
// any color is a silent state of any process, and the same color next door
// always violates the predicate — the premise under which Theorem 1
// forbids ♦-k-stable solutions for k < Delta.
TEST(NeighborComplete, AnonymousColoringIsNeighborComplete) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  const auto report =
      check_neighbor_completeness(g, protocol, ColoringProblem());
  EXPECT_TRUE(report.neighbor_complete);
  EXPECT_GT(report.silent_configurations, 0u);
  for (const auto& alpha : report.alpha) EXPECT_FALSE(alpha.empty());
}

// The locally-colored MIS protocol, in contrast, is NOT neighbor-complete
// on a fixed colored instance: its silent configuration is unique (the
// greedy MIS by color order), so the "conflicting silent states" of
// Definition 10 simply do not exist. This is exactly how the paper's
// positive results slip past Theorem 1 — the theorem binds anonymous
// networks, and the color constants break the anonymity.
TEST(NeighborComplete, ColoredMisEvadesTheDefinition) {
  const Graph g = path(3);
  const MisProtocol protocol(g, greedy_coloring(g));
  const auto report = check_neighbor_completeness(g, protocol, MisProblem());
  EXPECT_FALSE(report.neighbor_complete);
  EXPECT_GT(report.silent_configurations, 0u);
}

// Same story for MATCHING: colors pin down which silent outputs are
// reachable, so no per-process conflicting silent state pair exists.
TEST(NeighborComplete, ColoredMatchingEvadesTheDefinition) {
  const Graph g = path(3);
  const MatchingProtocol protocol(g, greedy_coloring(g));
  const auto report =
      check_neighbor_completeness(g, protocol, MatchingProblem());
  EXPECT_FALSE(report.neighbor_complete);
  EXPECT_GT(report.silent_configurations, 0u);
}

// The structural fact the previous two tests rest on, verified directly:
// every silent configuration of the colored MIS protocol has the same
// S-state — the greedy MIS by color order.
TEST(NeighborComplete, MisSilentOutputIsTheGreedyMisByColor) {
  const Graph g = path(4);
  const Coloring colors = greedy_coloring(g);
  const MisProtocol protocol(g, colors);
  // Greedy fixpoint: p is IN iff no smaller-colored neighbor is IN.
  std::vector<int> order(static_cast<std::size_t>(g.num_vertices()));
  for (int i = 0; i < g.num_vertices(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&](ProcessId a, ProcessId b) {
    return colors[static_cast<std::size_t>(a)] <
           colors[static_cast<std::size_t>(b)];
  });
  std::vector<bool> greedy(static_cast<std::size_t>(g.num_vertices()), false);
  for (ProcessId p : order) {
    bool blocked = false;
    for (ProcessId q : g.neighbors(p)) {
      if (greedy[static_cast<std::size_t>(q)] &&
          colors[static_cast<std::size_t>(q)] <
              colors[static_cast<std::size_t>(p)]) {
        blocked = true;
      }
    }
    greedy[static_cast<std::size_t>(p)] = !blocked;
  }
  for_each_configuration(g, protocol, 1u << 16, [&](const Configuration& c) {
    if (!is_comm_quiescent(g, protocol, c)) return;
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      EXPECT_EQ(c.comm(p, MisProtocol::kStateVar) == MisProtocol::kDominator,
                greedy[static_cast<std::size_t>(p)])
          << "process " << p;
    }
  });
}

TEST(Quiescence, AgreesWithExhaustiveSuccessorAnalysis) {
  // Cross-validate the solo-run silence check against the transition
  // expander: a configuration is silent iff no reachable-by-subsets step
  // attempts a communication write. Spot-check on MIS/path(3).
  const Graph g = path(3);
  const MisProtocol protocol(g, greedy_coloring(g));
  int silent_count = 0;
  for_each_configuration(g, protocol, 1u << 16, [&](const Configuration& c) {
    const bool quiescent = is_comm_quiescent(g, protocol, c);
    if (quiescent) ++silent_count;
    // One-step probe: from a quiescent config every successor has the same
    // communication state.
    if (quiescent) {
      for (const auto& next : successors_all_subsets(g, protocol, c)) {
        EXPECT_TRUE(next.same_comm(c));
      }
    }
  });
  EXPECT_GT(silent_count, 0);
}

}  // namespace
}  // namespace sss
