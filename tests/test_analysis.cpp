/// Tests for the experiment runner and report formatting shared by the
/// bench harness.

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/coloring_protocol.hpp"
#include "core/mis_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "support/require.hpp"

namespace sss {
namespace {

TEST(Sweep, DeterministicForSameOptions) {
  const Graph g = cycle(8);
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  SweepOptions options;
  options.seeds_per_daemon = 3;
  const SweepSummary a = sweep_convergence(g, protocol, &problem, options);
  const SweepSummary b = sweep_convergence(g, protocol, &problem, options);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.silent_runs, b.silent_runs);
  EXPECT_EQ(a.max_rounds_to_silence, b.max_rounds_to_silence);
  EXPECT_DOUBLE_EQ(a.rounds_to_silence.mean, b.rounds_to_silence.mean);
  EXPECT_DOUBLE_EQ(a.mean_total_reads, b.mean_total_reads);
}

TEST(Sweep, CountsRunsAndCertifiesEfficiency) {
  const Graph g = path(6);
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  SweepOptions options;
  options.daemons = {"distributed", "enumerator"};
  options.seeds_per_daemon = 4;
  const SweepSummary summary =
      sweep_convergence(g, protocol, &problem, options);
  EXPECT_EQ(summary.runs, 8);
  EXPECT_EQ(summary.silent_runs, 8);
  EXPECT_EQ(summary.k_measured, 1);  // 1-efficiency across the whole sweep
  EXPECT_EQ(summary.rounds_to_legitimate.count, 8u);
  EXPECT_GT(summary.mean_total_reads, 0.0);
}

TEST(Sweep, DifferentSeedsChangeTrajectories) {
  const Graph g = cycle(8);
  const ColoringProtocol protocol(g);
  SweepOptions a;
  a.base_seed = 1;
  a.daemons = {"distributed"};
  a.seeds_per_daemon = 5;
  SweepOptions b = a;
  b.base_seed = 777;
  const SweepSummary sa = sweep_convergence(g, protocol, nullptr, a);
  const SweepSummary sb = sweep_convergence(g, protocol, nullptr, b);
  // Same protocol, same graph: both silent, but trajectories (and hence
  // step counts) differ with overwhelming probability.
  EXPECT_EQ(sa.silent_runs, sb.silent_runs);
  EXPECT_NE(sa.steps_to_silence.mean, sb.steps_to_silence.mean);
}

TEST(Sweep, RejectsEmptyPlans) {
  const Graph g = path(4);
  const ColoringProtocol protocol(g);
  SweepOptions options;
  options.daemons = {};
  EXPECT_THROW(sweep_convergence(g, protocol, nullptr, options),
               PreconditionError);
}

TEST(Sweep, MisBoundHoldsAcrossTheSweep) {
  const Graph g = grid(3, 3);
  const MisProtocol protocol(g, greedy_coloring(g));
  const MisProblem problem;
  SweepOptions options;
  options.seeds_per_daemon = 3;
  const SweepSummary summary =
      sweep_convergence(g, protocol, &problem, options);
  EXPECT_EQ(summary.silent_runs, summary.runs);
  EXPECT_LE(summary.max_rounds_to_silence,
            static_cast<std::uint64_t>(g.max_degree()) *
                static_cast<std::uint64_t>(protocol.num_colors()));
}

TEST(Report, FormatVsBound) {
  EXPECT_EQ(format_vs_bound(5.0, 10.0), "5.0/10.0 (50.0%)");
  EXPECT_EQ(format_vs_bound(3.0, 0.0), "3.0/0.0");
}

}  // namespace
}  // namespace sss
