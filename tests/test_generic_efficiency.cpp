/// The generic communication-efficiency transformer (arXiv:2307.06635,
/// the paper's Section 6 open question): unit tests for the mirror-bank
/// spec and the audit / collect / confirm step semantics, the stabilized
/// one-read-per-step certificate, and the registry-wide property grid
/// over generic-efficiency(X) for every eligible base protocol X —
/// including a fault-closure leg and a depth-2 composition.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/full_read_coloring.hpp"
#include "core/protocol_registry.hpp"
#include "graph/builders.hpp"
#include "protocol_harness.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "transformer/generic_efficiency.hpp"

namespace sss {
namespace {

TEST(GenericEfficiency, SpecAddsTheAuditPointerAndTheMirrorBank) {
  // path(3) with the Delta-read coloring inside: the smallest instance
  // where the mirror bank has both an in-range and a degenerate slot.
  const Graph g = path(3);  // Delta = 2, palette 3
  const GenericEfficiency transformed(g,
                                      std::make_unique<FullReadColoring>(g));
  // Comm vars are exactly the inner's (legitimacy applies unchanged).
  EXPECT_EQ(transformed.spec().num_comm(), 1);
  // Internal: tcur + Delta * num_comm mirror slots (inner has none).
  EXPECT_EQ(transformed.spec().num_internal(), 3);
  EXPECT_EQ(transformed.tcur_index(), 0);
  EXPECT_EQ(transformed.spec().internal[0].name(), "tcur");
  EXPECT_EQ(transformed.mirror_index(1, 0), 1);
  EXPECT_EQ(transformed.mirror_index(2, 0), 2);
  EXPECT_EQ(transformed.collect_action(), 1);
  EXPECT_EQ(transformed.advance_action(), 2);
  EXPECT_NE(transformed.name().find("FULL-READ-COLORING"),
            std::string::npos);

  // A leaf (degree 1) has no channel-2 neighbor: its second mirror slot
  // is pinned to the degenerate domain {0}, so arbitrary initialization
  // cannot park noise where no neighbor exists.
  const VarSpec& far_slot = transformed.spec().internal[2];
  EXPECT_EQ(far_slot.domain(g, 0).hi, 0);
  // The middle vertex has both neighbors: the slot ranges over the
  // neighbor's color domain.
  EXPECT_EQ(far_slot.domain(g, 1).hi, 3);
}

/// A properly colored path(3) with every mirror fresh and tcur = 1.
Configuration fresh_silent_config(const Graph& g,
                                  const GenericEfficiency& transformed) {
  Configuration config(g, transformed.spec());
  const Value colors[] = {1, 2, 1};
  for (ProcessId p = 0; p < 3; ++p) {
    config.set_comm(p, FullReadColoring::kColorVar, colors[p]);
    config.set_internal(p, transformed.tcur_index(), 1);
    for (NbrIndex ch = 1; ch <= g.degree(p); ++ch) {
      config.set_internal(p, transformed.mirror_index(ch, 0),
                          colors[g.neighbor(p, ch)]);
    }
  }
  return config;
}

TEST(GenericEfficiency, QuietStepAuditsOneNeighborAndAdvances) {
  const Graph g = path(3);
  const GenericEfficiency transformed(g,
                                      std::make_unique<FullReadColoring>(g));
  Configuration config = fresh_silent_config(g, transformed);
  Rng rng(1);
  StepReadCounter counter(g, transformed.spec());
  counter.begin_step();
  const ProcessStep step =
      apply_solo_step(g, transformed, config, 1, rng, &counter);
  EXPECT_EQ(step.action, transformed.advance_action());
  EXPECT_FALSE(step.comm_write_attempted);
  // The step's only communication reads: the single audited neighbor.
  EXPECT_EQ(counter.step_reads_of(1), 1);
  // Every action rotates the audit pointer.
  EXPECT_EQ(config.internal_var(1, transformed.tcur_index()), 2);
}

TEST(GenericEfficiency, AuditMismatchTriggersCollect) {
  const Graph g = path(3);
  const GenericEfficiency transformed(g,
                                      std::make_unique<FullReadColoring>(g));
  Configuration config = fresh_silent_config(g, transformed);
  // Stale mirror of the audited channel (tcur = 1): the audit must see
  // the discrepancy and refresh the whole bank.
  config.set_internal(1, transformed.mirror_index(1, 0), 3);
  Rng rng(2);
  const ProcessStep step = apply_solo_step(g, transformed, config, 1, rng);
  EXPECT_EQ(step.action, transformed.collect_action());
  EXPECT_FALSE(step.comm_write_attempted);
  EXPECT_EQ(config.internal_var(1, transformed.mirror_index(1, 0)), 1);
  EXPECT_EQ(config.internal_var(1, transformed.mirror_index(2, 0)), 1);
  EXPECT_EQ(config.internal_var(1, transformed.tcur_index()), 2);
}

TEST(GenericEfficiency, MirrorFiringWithoutRealEvidenceCollects) {
  const Graph g = path(3);
  const GenericEfficiency transformed(g,
                                      std::make_unique<FullReadColoring>(g));
  Configuration config = fresh_silent_config(g, transformed);
  // A stale mirror on the channel the audit does NOT visit this step
  // (tcur = 1, stale channel 2) that makes the inner guard fire against
  // the mirror: same color as self. The confirm pass finds the real
  // state disabled, which unmasks the staleness the single-channel audit
  // missed — the step must collect, not execute.
  config.set_internal(1, transformed.mirror_index(2, 0), 2);
  Rng rng(3);
  const ProcessStep step = apply_solo_step(g, transformed, config, 1, rng);
  EXPECT_EQ(step.action, transformed.collect_action());
  EXPECT_FALSE(step.comm_write_attempted);
  EXPECT_EQ(config.internal_var(1, transformed.mirror_index(2, 0)), 1);
}

TEST(GenericEfficiency, ConfirmedInnerGuardExecutesTheInnerAction) {
  const Graph g = path(3);
  const GenericEfficiency transformed(g,
                                      std::make_unique<FullReadColoring>(g));
  Configuration config = fresh_silent_config(g, transformed);
  // A genuine conflict, visible in both the (fresh) mirror and the real
  // state: recolor vertex 2 to vertex 1's color.
  config.set_comm(2, FullReadColoring::kColorVar, 2);
  config.set_internal(1, transformed.mirror_index(2, 0), 2);
  Rng rng(4);
  const ProcessStep step = apply_solo_step(g, transformed, config, 1, rng);
  // The wrapped protocol's actions keep their indices: this is inner
  // action 0, a genuine inner move on the real state.
  EXPECT_EQ(step.action, 0);
  EXPECT_TRUE(step.comm_write_attempted);
  // FULL-READ-COLORING redraws among the colors no neighbor uses; with
  // neighbors colored 1 and 2 the only free color is 3.
  EXPECT_EQ(config.comm(1, FullReadColoring::kColorVar), 3);
  EXPECT_EQ(config.internal_var(1, transformed.tcur_index()), 2);
}

TEST(GenericEfficiency, StabilizedPhaseReadsOneNeighborRegardlessOfDegree) {
  // The transformer's selling point: wrap the Delta-read baseline and the
  // stabilized phase pays a single neighbor per step — on a clique, where
  // the bare baseline pays Delta = n-1 forever.
  const Graph g = complete(6);
  const std::unique_ptr<Protocol> transformed =
      ProtocolRegistry::instance().make(
          ProtocolSelection::wrap("generic-efficiency",
                                  ProtocolSelection::base("full-read-coloring")),
          g);
  Engine engine(g, *transformed, make_daemon("distributed"), 11);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  StepReadCounter counter(g, transformed->spec());
  engine.attach_read_logger(&counter);
  for (int step = 0; step < 400; ++step) {
    counter.begin_step();
    engine.step();
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      EXPECT_LE(counter.step_reads_of(p), 1);
    }
  }
}

TEST(GenericEfficiency, StabilizingPhaseMayReadFullWidth) {
  // Honest trade-off: collects and inner full-read moves scan the whole
  // neighborhood while stabilizing.
  const Graph g = star(6);
  const std::unique_ptr<Protocol> transformed =
      ProtocolRegistry::instance().make(
          ProtocolSelection::wrap("generic-efficiency",
                                  ProtocolSelection::base("full-read-coloring")),
          g);
  Engine engine(g, *transformed, make_daemon("distributed"), 12);
  // All same color: the hub must pay its degree at least once.
  Configuration config(g, transformed->spec());
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    config.set_comm(p, FullReadColoring::kColorVar, 1);
  }
  engine.set_config(config);
  const RunStats stats = engine.run({});
  ASSERT_TRUE(stats.silent);
  EXPECT_GT(stats.max_reads_per_process_step, 1);
}

TEST(GenericEfficiencyGrid, EveryEligibleBaseSurvivesThePropertyGrid) {
  // The full harness grid — convergence to certified silence, silent =>
  // legitimate, closure, ReferenceEngine lockstep — for the transformed
  // version of every base registry entry. Eligibility is automatic:
  // resolve() inherits the inner problem and intersects daemon claims,
  // so restricted bases (full-read-coloring) keep their restriction.
  testing::HarnessOptions options;
  options.seeds_per_daemon = 1;
  for (const std::string& base :
       ProtocolRegistry::instance().protocol_names()) {
    const testing::HarnessReport report =
        testing::run_protocol_property_suite(
            ProtocolSelection::wrap("generic-efficiency",
                                    ProtocolSelection::base(base)),
            options);
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_EQ(report.protocol, "generic-efficiency(" + base + ")");
    // Even the most daemon-restricted base keeps >= 4 daemons x the
    // full menagerie; a smaller grid means eligibility silently shrank.
    EXPECT_GE(report.trials, 20) << base;
  }
}

TEST(GenericEfficiencyGrid, FaultClosureHoldsForTransformedProtocols) {
  // The churn-style leg: stabilize, corrupt random victims (comm vars,
  // audit pointers, and mirror banks alike), re-converge legitimately.
  testing::HarnessOptions options;
  options.seeds_per_daemon = 1;
  options.daemons = {"central-rr", "distributed"};
  for (const std::string& base :
       ProtocolRegistry::instance().protocol_names()) {
    const testing::HarnessReport report =
        testing::run_protocol_fault_closure_suite(
            ProtocolSelection::wrap("generic-efficiency",
                                    ProtocolSelection::base(base)),
            options);
    EXPECT_TRUE(report.ok()) << report.str();
  }
}

TEST(GenericEfficiencyGrid, DepthTwoCompositionStabilizes) {
  // generic-efficiency(generic-efficiency(coloring)): the outer mirror
  // bank mirrors the inner transformed protocol's comm vars (= coloring's),
  // and the whole stack still answers to the coloring predicate. A reduced
  // grid — the point is composition, not another full sweep.
  testing::HarnessOptions options;
  options.seeds_per_daemon = 1;
  options.daemons = {"distributed"};
  options.menagerie.push_back(cycle(6));
  options.menagerie.push_back(star(5));
  const testing::HarnessReport report = testing::run_protocol_property_suite(
      ProtocolSelection::wrap(
          "generic-efficiency",
          ProtocolSelection::wrap("generic-efficiency",
                                  ProtocolSelection::base("coloring"))),
      options);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.protocol,
            "generic-efficiency(generic-efficiency(coloring))");
}

}  // namespace
}  // namespace sss
