/// The bulk execute hook's contract (runtime/bulk.hpp): for every opted-in
/// protocol, one `execute_selected` pass over a selection must reproduce —
/// write for write, logged read for logged read, random draw for random
/// draw — what the per-process scalar `execute` calls produce, and an
/// Engine forced onto the bulk path must stay bit-identical to one forced
/// onto the scalar path. SweepMode governs both the guard-sweep half
/// (invariant 5) and this execute half (invariant 6), so the checks here
/// deliberately stress the execute-specific corners the sweep suite
/// cannot: probabilistic protocols replaying the engine RNG stream,
/// composition with the parallel step (invariant 7), and mid-trajectory
/// mode flips.
///
/// The registry-wide harness additionally runs the full property grid
/// with the bulk path forced on (tests/test_protocol_properties.cpp) and
/// proves falsifiability with a deliberately wrong execute kernel
/// (tests/test_protocol_harness.cpp).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/protocol_registry.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

/// Forced-bulk vs forced-scalar engines from the same seed must produce
/// identical computations and metrics. `bulk_threads` > 1 additionally
/// routes the bulk engine through the parallel step, exercising the
/// per-worker bulk kernel slices and the two-barrier commit.
void expect_mode_lockstep(const Graph& g, const Protocol& protocol,
                          const std::string& daemon_name, std::uint64_t seed,
                          int steps, int bulk_threads = 1) {
  Engine bulk(g, protocol, make_daemon(daemon_name), seed);
  Engine scalar(g, protocol, make_daemon(daemon_name), seed);
  bulk.set_sweep_mode(SweepMode::kForceBulk);
  bulk.set_parallel_threads(bulk_threads);
  scalar.set_sweep_mode(SweepMode::kForceScalar);
  bulk.randomize_state();
  scalar.randomize_state();
  ASSERT_EQ(bulk.config(), scalar.config());
  for (int s = 0; s < steps; ++s) {
    ASSERT_EQ(bulk.num_enabled(), scalar.num_enabled())
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " threads " << bulk_threads << " step " << s;
    const Engine::StepInfo a = bulk.step();
    const Engine::StepInfo b = scalar.step();
    ASSERT_EQ(a.selected, b.selected)
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " threads " << bulk_threads << " step " << s;
    ASSERT_EQ(a.fired, b.fired);
    ASSERT_EQ(a.comm_changed, b.comm_changed);
    ASSERT_EQ(bulk.config(), scalar.config())
        << protocol.name() << "/" << g.name() << "/" << daemon_name
        << " threads " << bulk_threads << " step " << s;
    ASSERT_EQ(bulk.rounds(), scalar.rounds());
    ASSERT_EQ(bulk.read_counter().total_reads(),
              scalar.read_counter().total_reads());
    ASSERT_EQ(bulk.read_counter().total_bits(),
              scalar.read_counter().total_bits());
    ASSERT_EQ(bulk.read_counter().max_reads_per_process_step(),
              scalar.read_counter().max_reads_per_process_step());
  }
}

TEST(BulkExecute, EveryRegistryProtocolOptsIn) {
  // The whole registry is covered by the fast execute path; a protocol
  // that stays scalar should be a deliberate choice, visible here.
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    const Graph g = path(4);
    const std::unique_ptr<Protocol> protocol =
        ProtocolRegistry::instance().make(name, g, {});
    EXPECT_TRUE(protocol->has_bulk_execute()) << name;
  }
}

TEST(BulkExecute, ForcedBulkEngineLockstepsForcedScalarEngine) {
  // Deliberately a different menagerie slice and seed than the bulk-sweep
  // lockstep, so together the two suites cover six graphs. Probabilistic
  // protocols ride the serial bulk path here, proving the engine-RNG
  // draw order is replayed bit-for-bit.
  const std::vector<testing::NamedGraph> graphs = testing::sweep_graphs();
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    for (const auto& named : {graphs[1], graphs[3], graphs[5]}) {
      const std::unique_ptr<Protocol> protocol =
          ProtocolRegistry::instance().make(name, named.graph, {});
      if (!protocol->has_bulk_execute()) continue;
      for (const std::string& daemon_name : daemon_names()) {
        expect_mode_lockstep(named.graph, *protocol, daemon_name, 1337, 64);
      }
    }
  }
}

TEST(BulkExecute, ParallelWorkersComposeWithBulkExecute) {
  // Invariants 6 and 7 together: each worker runs the bulk kernel over
  // its contiguous selection slice and the serial ascending merge commits
  // the staged rows — the result must sit on the single-threaded scalar
  // rail at every thread count. (Probabilistic protocols fall back to the
  // serial step under parallel_threads > 1; they still lockstep.)
  Rng graph_rng(0xb01dULL);
  std::vector<testing::NamedGraph> graphs;
  graphs.push_back({"grid3x4", grid(3, 4)});
  graphs.push_back({"pa200", preferential_attachment(200, 3, graph_rng)});
  for (const std::string& name : ProtocolRegistry::instance().protocol_names()) {
    for (const auto& named : graphs) {
      const std::unique_ptr<Protocol> protocol =
          ProtocolRegistry::instance().make(name, named.graph, {});
      if (!protocol->has_bulk_execute()) continue;
      for (int threads : {2, 3, 8}) {
        for (const std::string& daemon_name :
             {std::string("synchronous"), std::string("distributed")}) {
          expect_mode_lockstep(named.graph, *protocol, daemon_name, 2024, 48,
                               threads);
        }
      }
    }
  }
}

TEST(BulkExecute, SweepModeCanChangeMidTrajectory) {
  // set_sweep_mode is a pure implementation switch: flipping it between
  // steps must leave the trajectory on the scalar rail. The coloring leg
  // flips a probabilistic protocol between the scalar ActionContext draws
  // and the bulk kernel's direct engine-RNG draws — same stream either
  // way, so the colors must not care.
  const Graph g = grid(3, 4);
  const SweepMode schedule[] = {SweepMode::kAuto,        SweepMode::kForceBulk,
                                SweepMode::kForceScalar, SweepMode::kForceBulk,
                                SweepMode::kAuto,        SweepMode::kForceScalar};
  for (const std::string& name : {std::string("mis"), std::string("coloring"),
                                  std::string("full-read-matching")}) {
    const std::unique_ptr<Protocol> protocol =
        ProtocolRegistry::instance().make(name, g, {});
    Engine scalar(g, *protocol, make_distributed_random_daemon(), 5150);
    Engine shifting(g, *protocol, make_distributed_random_daemon(), 5150);
    scalar.set_sweep_mode(SweepMode::kForceScalar);
    scalar.randomize_state();
    shifting.randomize_state();
    for (int s = 0; s < 60; ++s) {
      shifting.set_sweep_mode(schedule[s % 6]);
      scalar.step();
      shifting.step();
      ASSERT_EQ(scalar.config(), shifting.config())
          << name << " step " << s;
      ASSERT_EQ(scalar.read_counter().total_reads(),
                shifting.read_counter().total_reads())
          << name << " step " << s;
    }
  }
}

TEST(BulkExecute, ForceBulkOnScalarOnlyProtocolFallsBack) {
  // A protocol without an execute kernel ignores the preference — no
  // assert, same behaviour.
  const Graph g = path(5);
  const testing::CopyChannelOne protocol(g);
  ASSERT_FALSE(protocol.has_bulk_execute());
  Engine forced(g, protocol, make_synchronous_daemon(), 11);
  Engine plain(g, protocol, make_synchronous_daemon(), 11);
  forced.set_sweep_mode(SweepMode::kForceBulk);
  forced.randomize_state();
  plain.randomize_state();
  for (int s = 0; s < 32; ++s) {
    forced.step();
    plain.step();
    ASSERT_EQ(forced.config(), plain.config()) << "step " << s;
  }
}

}  // namespace
}  // namespace sss
