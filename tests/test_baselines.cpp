/// Tests for the full-read baselines ([12], [13], [17] style): they solve
/// the same problems while reading every neighbor — the communication
/// gap the paper's Section 3.2 quantifies.

#include <gtest/gtest.h>

#include "baselines/full_read_coloring.hpp"
#include "baselines/full_read_matching.hpp"
#include "baselines/full_read_mis.hpp"
#include "core/bounds.hpp"
#include "core/coloring_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::sweep_graphs;

TEST(FullReadColoring, ConvergesEverywhere) {
  const ColoringProblem problem(FullReadColoring::kColorVar);
  for (const auto& [label, g] : sweep_graphs()) {
    const FullReadColoring protocol(g);
    for (const char* daemon : {"distributed", "central-rr"}) {
      Engine engine(g, protocol, make_daemon(daemon), 61);
      engine.randomize_state();
      const RunStats stats = engine.run({});
      ASSERT_TRUE(stats.silent) << label << "/" << daemon;
      EXPECT_TRUE(problem.holds(g, engine.config()));
    }
  }
}

TEST(FullReadColoring, ReadsTheWholeNeighborhood) {
  const Graph g = star(5);
  const FullReadColoring protocol(g);
  Engine engine(g, protocol, make_distributed_random_daemon(), 62);
  engine.randomize_state();
  const RunStats stats = engine.run({});
  ASSERT_TRUE(stats.silent);
  // Keep observing after silence: even disabled processes read their whole
  // neighborhood during guard evaluation when selected.
  for (int extra = 0; extra < 100; ++extra) engine.step();
  // The hub's guard scans all Delta neighbors: Delta-efficient, not less.
  EXPECT_EQ(engine.read_counter().max_reads_per_process_step(),
            g.max_degree());
  EXPECT_EQ(engine.read_counter().max_bits_per_process_step(),
            coloring_comm_bits_full_read(g.max_degree(), g.max_degree()));
}

TEST(FullReadColoring, RedrawAvoidsNeighborColors) {
  // The action picks among colors free in the whole neighborhood, so a
  // central-daemon step resolves the conflict permanently.
  const Graph g = star(4);
  const FullReadColoring protocol(g, 5);
  Configuration config(g, protocol.spec());
  config.set_comm(0, 0, 1);
  for (ProcessId leaf = 1; leaf <= 4; ++leaf) {
    config.set_comm(leaf, 0, leaf);  // leaf 1 conflicts with the hub
  }
  Rng rng(63);
  const ProcessStep step = apply_solo_step(g, protocol, config, 0, rng);
  EXPECT_EQ(step.action, 0);
  EXPECT_EQ(config.comm(0, 0), 5);  // the only free color
}

TEST(FullReadMis, ConvergesToGreedyMisByColor) {
  const MisProblem problem(FullReadMis::kStateVar);
  for (const auto& [label, g] : sweep_graphs()) {
    const FullReadMis protocol(g, identity_coloring(g));
    Engine engine(g, protocol, make_distributed_random_daemon(), 64);
    engine.randomize_state();
    const RunStats stats = engine.run({});
    ASSERT_TRUE(stats.silent) << label;
    EXPECT_TRUE(problem.holds(g, engine.config())) << label;
    // The fixed point is the greedy MIS: process IN iff no lower-id
    // neighbor is IN, seeded by id 0.
    EXPECT_EQ(engine.config().comm(0, FullReadMis::kStateVar),
              FullReadMis::kIn)
        << label;
  }
}

TEST(FullReadMis, WorksWithLocalColorsToo) {
  const Graph g = grid(3, 4);
  const FullReadMis protocol(g, greedy_coloring(g));
  Engine engine(g, protocol, make_daemon("synchronous"), 65);
  engine.randomize_state();
  const RunStats stats = engine.run({});
  ASSERT_TRUE(stats.silent);
  EXPECT_TRUE(MisProblem(FullReadMis::kStateVar).holds(g, engine.config()));
}

TEST(FullReadMatching, ConvergesToMaximalMatching) {
  const MutualPrMatchingProblem problem;
  for (const auto& [label, g] : sweep_graphs()) {
    const FullReadMatching protocol(g, identity_coloring(g));
    for (const char* daemon : {"distributed", "central-rr"}) {
      Engine engine(g, protocol, make_daemon(daemon), 66);
      engine.randomize_state();
      RunOptions options;
      options.max_steps = 4'000'000;
      const RunStats stats = engine.run(options);
      ASSERT_TRUE(stats.silent) << label << "/" << daemon;
      EXPECT_TRUE(problem.holds(g, engine.config())) << label;
    }
  }
}

TEST(FullReadMatching, MarriageAnnouncementsConsistentAtSilence) {
  const Graph g = cycle(8);
  const FullReadMatching protocol(g, greedy_coloring(g));
  Engine engine(g, protocol, make_distributed_random_daemon(), 67);
  engine.randomize_state();
  ASSERT_TRUE(engine.run({}).silent);
  const Configuration& config = engine.config();
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    const Value pr = config.comm(p, FullReadMatching::kPrVar);
    bool married = false;
    if (pr != 0) {
      const ProcessId q = g.neighbor(p, static_cast<NbrIndex>(pr));
      married = config.comm(q, FullReadMatching::kPrVar) ==
                static_cast<Value>(g.local_index_of(q, p));
    }
    EXPECT_EQ(config.comm(p, FullReadMatching::kMarriedVar), married ? 1 : 0);
  }
}

TEST(Baselines, EfficientColoringReadsFewerBitsPostStabilization) {
  // The paper's headline: after stabilization the 1-efficient protocol
  // keeps paying log2(Delta+1) bits per process step while the full-read
  // baseline pays delta.p * log2(Delta+1) for its (always-evaluated)
  // guards. Compare measured post-silence read bits over the same window.
  const Graph g = complete(6);
  const ColoringProtocol efficient(g);
  const FullReadColoring baseline(g);

  auto post_silence_bits = [&](const Protocol& protocol) {
    Engine engine(g, protocol, make_fair_enumerator_daemon(), 68);
    engine.randomize_state();
    const RunStats to_silence = engine.run({});
    EXPECT_TRUE(to_silence.silent);
    const std::uint64_t before = engine.read_counter().total_bits();
    for (int step = 0; step < 600; ++step) engine.step();
    return engine.read_counter().total_bits() - before;
  };

  const std::uint64_t efficient_bits = post_silence_bits(efficient);
  const std::uint64_t baseline_bits = post_silence_bits(baseline);
  // Delta = 5 here, so the gap should be about 5x.
  EXPECT_LT(4 * efficient_bits, baseline_bits);
}

}  // namespace
}  // namespace sss
