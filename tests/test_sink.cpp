/// Tests for the streaming result sinks (analysis/sink.hpp) and the batch
/// runner's per-trial callback: row completeness, serialization of the
/// stream hook, and the core determinism contract — streamed JSONL rows
/// are identical modulo order at 1 vs N threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/plan.hpp"
#include "analysis/sink.hpp"
#include "support/json.hpp"
#include "support/require.hpp"
#include "support/string_util.hpp"

namespace sss {
namespace {

constexpr const char* kPlanManifest = R"({
  "name": "sink-test",
  "sweeps": [{
    "graphs": [
      {"family": "star", "leaves": 5},
      {"family": "grid", "rows": 3, "cols": 3}
    ],
    "protocols": [{"name": "coloring"}, {"name": "mis"}],
    "problem": "coloring",
    "daemons": ["distributed", "central-rr"],
    "seeds_per_daemon": 2,
    "max_steps": 30000
  }]
})";

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines = split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string run_to_jsonl(const ExperimentPlan& plan, int threads) {
  std::ostringstream out;
  JsonlSink sink(out);
  BatchOptions options;
  options.threads = threads;
  run_batch_to_sinks(plan.items, options, {&sink});
  return out.str();
}

TEST(Sink, JsonlRowsIdenticalModuloOrderAcrossThreadCounts) {
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  const std::vector<std::string> serial = sorted_lines(run_to_jsonl(plan, 1));
  ASSERT_EQ(static_cast<int>(serial.size()), plan.total_trials());
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(sorted_lines(run_to_jsonl(plan, threads)), serial)
        << "threads=" << threads;
  }
}

TEST(Sink, JsonlRowsAreCompleteAndWellFormed) {
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  const std::vector<std::string> lines = sorted_lines(run_to_jsonl(plan, 4));
  std::set<std::pair<int, int>> coordinates;
  for (const std::string& line : lines) {
    const JsonValue row = JsonValue::parse(line);
    const int item = static_cast<int>(row.at("item").as_int());
    const int trial = static_cast<int>(row.at("trial").as_int());
    coordinates.insert({item, trial});
    ASSERT_LT(static_cast<std::size_t>(item), plan.items.size());
    const BatchItem& source = plan.items[static_cast<std::size_t>(item)];
    EXPECT_EQ(row.at("label").as_string(), source.label);
    EXPECT_EQ(row.at("graph").as_string(), source.graph->name());
    EXPECT_EQ(row.at("protocol").as_string(), source.protocol->name());
    // Trial seed contract: base_seed + 1 + trial index.
    EXPECT_EQ(row.at("engine_seed").as_int(),
              static_cast<std::int64_t>(source.base_seed) + 1 + trial);
    const std::string& daemon = row.at("daemon").as_string();
    EXPECT_EQ(daemon,
              source.daemons[static_cast<std::size_t>(trial) /
                             static_cast<std::size_t>(
                                 source.seeds_per_daemon)]);
    EXPECT_TRUE(row.at("silent").is_bool());
    EXPECT_GE(row.at("steps").as_int(), 0);
  }
  // Every (item, trial) coordinate exactly once.
  EXPECT_EQ(static_cast<int>(coordinates.size()), plan.total_trials());
}

TEST(Sink, CsvEmitsHeaderPlusOneRowPerTrial) {
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  std::ostringstream out;
  CsvSink sink(out);
  BatchOptions options;
  options.threads = 1;
  run_batch_to_sinks(plan.items, options, {&sink});
  std::vector<std::string> lines = split(out.str(), '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  ASSERT_EQ(static_cast<int>(lines.size()), plan.total_trials() + 1);
  EXPECT_EQ(lines.front().substr(0, 11), "item,trial,");
}

TEST(Sink, RowSinksAreDurablePerRow) {
  // The durability contract: each on_trial leaves one whole, flushed,
  // newline-terminated row on the stream — before finish() ever runs.
  BatchTrialRow row;
  row.item = 2;
  row.trial = 5;
  row.label = "X/y(3)";
  row.graph = "y(3)";
  row.protocol = "X";
  row.daemon = "central-rr";
  row.engine_seed = 9;

  std::ostringstream jsonl_out;
  JsonlSink jsonl(jsonl_out);
  jsonl.on_trial(row);
  EXPECT_EQ(jsonl_out.str(), format_trial_row_jsonl(row) + "\n");
  jsonl.on_trial(row);
  EXPECT_EQ(jsonl_out.str().size(),
            2 * (format_trial_row_jsonl(row).size() + 1));

  std::ostringstream csv_out;
  CsvSink csv(csv_out);
  csv.on_trial(row);
  const std::vector<std::string> lines = split(csv_out.str(), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].substr(0, 11), "item,trial,");
  EXPECT_EQ(lines[1].substr(0, 4), "2,5,");
  EXPECT_EQ(csv_out.str().back(), '\n');
}

TEST(Sink, CsvWritesHeaderEvenForZeroTrials) {
  // A plan that yields no rows must still produce the column contract:
  // finish() backstops the header.
  std::ostringstream out;
  CsvSink sink(out);
  sink.finish();
  const std::vector<std::string> lines = split(out.str(), '\n');
  ASSERT_EQ(lines.size(), 2u);  // header + trailing empty from split
  EXPECT_EQ(lines[0].substr(0, 11), "item,trial,");
  EXPECT_TRUE(lines[1].empty());
}

TEST(Sink, BenchJsonSinkStrictThrowsWhenArtifactUnwritable) {
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  BenchJsonSink lax("sink_test_artifact", "/nonexistent-dir-no-write");
  BatchOptions options;
  options.threads = 1;
  // Non-strict: the lost artifact is a warning, the run succeeds.
  EXPECT_NO_THROW(run_batch_to_sinks(plan.items, options, {&lax}));
  // Strict (what sss_lab run --bench uses): the loss is an error.
  BenchJsonSink strict("sink_test_artifact", "/nonexistent-dir-no-write",
                       /*strict=*/true);
  EXPECT_THROW(run_batch_to_sinks(plan.items, options, {&strict}),
               PreconditionError);
}

TEST(Sink, BenchJsonSinkRecordsOneSummaryPerItem) {
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  BenchJsonSink sink("sink_test_artifact", "/nonexistent-dir-no-write");
  BatchOptions options;
  options.threads = 2;
  run_batch_to_sinks(plan.items, options, {&sink});
  const JsonValue doc = JsonValue::parse(sink.writer().str());
  EXPECT_EQ(doc.at("bench").as_string(), "sink_test_artifact");
  EXPECT_EQ(doc.at("records").items().size(), plan.items.size());
  EXPECT_EQ(doc.at("records").items()[0].at("label").as_string(),
            plan.items[0].label);
}

TEST(Sink, StreamedStatsMatchTheReduction) {
  // The rows the sink saw, re-reduced per item, must equal run_batch's
  // own in-order reduction.
  const ExperimentPlan plan = plan_from_manifest_text(kPlanManifest);
  std::vector<std::vector<RunStats>> rows(plan.items.size());
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    rows[i].resize(static_cast<std::size_t>(
        plan.items[i].daemons.size() *
        static_cast<std::size_t>(plan.items[i].seeds_per_daemon)));
  }
  BatchOptions options;
  options.threads = 4;
  options.on_trial = [&](const BatchTrialRow& row) {
    rows[static_cast<std::size_t>(row.item)]
        [static_cast<std::size_t>(row.trial)] = row.stats;
  };
  const BatchResult result = run_batch(plan.items, options);
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    const SweepSummary streamed = summarize_runs(
        rows[i].data(), static_cast<int>(rows[i].size()));
    EXPECT_EQ(streamed.runs, result.summaries[i].runs);
    EXPECT_EQ(streamed.silent_runs, result.summaries[i].silent_runs);
    EXPECT_EQ(streamed.mean_total_reads,
              result.summaries[i].mean_total_reads);
    EXPECT_EQ(streamed.max_steps_to_silence,
              result.summaries[i].max_steps_to_silence);
  }
}

}  // namespace
}  // namespace sss
