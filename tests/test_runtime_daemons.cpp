/// Tests for the daemon family: selection shape, fairness, the factory,
/// and the enabled-set feed — daemons now consume the engine-maintained
/// `EnabledSet` instead of rescanning an n-byte bitmap, and the random
/// daemons must keep their historical sorted-enumeration semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/coloring_protocol.hpp"
#include "graph/builders.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "runtime/enabled_set.hpp"
#include "runtime/reference_engine.hpp"
#include "support/require.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::AlwaysFlip;
using testing::Inert;

EnabledSet set_from_bitmap(const std::vector<std::uint8_t>& bitmap) {
  EnabledSet set(static_cast<int>(bitmap.size()));
  for (std::size_t p = 0; p < bitmap.size(); ++p) {
    set.assign(static_cast<ProcessId>(p), bitmap[p] != 0);
  }
  return set;
}

EnabledSet all_enabled(int n) {
  return set_from_bitmap(std::vector<std::uint8_t>(
      static_cast<std::size_t>(n), 1));
}

TEST(EnabledSetTest, AssignCountKthNextCyclic) {
  EnabledSet set(130);  // spans three words
  EXPECT_EQ(set.count(), 0);
  EXPECT_EQ(set.next_cyclic(5), -1);
  for (ProcessId p : {3, 64, 65, 129}) set.assign(p, true);
  set.assign(64, true);  // idempotent
  EXPECT_EQ(set.count(), 4);
  EXPECT_TRUE(set.test(64));
  EXPECT_FALSE(set.test(63));
  EXPECT_EQ(set.kth(0), 3);
  EXPECT_EQ(set.kth(1), 64);
  EXPECT_EQ(set.kth(2), 65);
  EXPECT_EQ(set.kth(3), 129);
  EXPECT_EQ(set.next_cyclic(-1), 3);
  EXPECT_EQ(set.next_cyclic(3), 64);
  EXPECT_EQ(set.next_cyclic(129), 3);  // wraps
  set.assign(64, false);
  set.assign(64, false);  // idempotent
  EXPECT_EQ(set.count(), 3);
  EXPECT_EQ(set.kth(1), 65);
  std::vector<ProcessId> seen;
  set.for_each([&](ProcessId p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<ProcessId>{3, 65, 129}));
}

TEST(Daemons, FactoryKnowsAllNames) {
  for (const std::string& name : daemon_names()) {
    const auto daemon = make_daemon(name);
    EXPECT_EQ(daemon->name(), name);
  }
  EXPECT_THROW(make_daemon("nonsense"), PreconditionError);
}

TEST(Daemons, SynchronousSelectsExactlyTheEnabled) {
  const Graph g = path(5);
  auto daemon = make_synchronous_daemon();
  const EnabledSet enabled = set_from_bitmap({1, 0, 1, 0, 1});
  Rng rng(1);
  std::vector<ProcessId> out;
  daemon->select(g, enabled, rng, out);
  EXPECT_EQ(out, (std::vector<ProcessId>{0, 2, 4}));
}

TEST(Daemons, SynchronousFallsBackToEveryone) {
  const Graph g = path(3);
  auto daemon = make_synchronous_daemon();
  const EnabledSet enabled(3);
  Rng rng(1);
  std::vector<ProcessId> out;
  daemon->select(g, enabled, rng, out);
  EXPECT_EQ(out.size(), 3u);  // no-op step, but non-empty as the model asks
}

TEST(Daemons, CentralDaemonsPickOneEnabledProcess) {
  const Graph g = path(6);
  Rng rng(2);
  for (const char* name : {"central-rr", "central-random"}) {
    auto daemon = make_daemon(name);
    const EnabledSet enabled = set_from_bitmap({0, 1, 0, 1, 1, 0});
    for (int step = 0; step < 20; ++step) {
      std::vector<ProcessId> out;
      daemon->select(g, enabled, rng, out);
      ASSERT_EQ(out.size(), 1u) << name;
      EXPECT_TRUE(enabled.test(out[0])) << name;
    }
  }
}

TEST(Daemons, CentralRoundRobinCyclesFairly) {
  const Graph g = path(4);
  auto daemon = make_central_round_robin_daemon();
  Rng rng(3);
  std::vector<ProcessId> seen;
  for (int step = 0; step < 8; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(4), rng, out);
    seen.push_back(out[0]);
  }
  EXPECT_EQ(seen, (std::vector<ProcessId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Daemons, EnumeratorIsPeriodic) {
  const Graph g = path(3);
  auto daemon = make_fair_enumerator_daemon();
  Rng rng(4);
  for (int step = 0; step < 9; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, EnabledSet(3), rng, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], step % 3);
  }
}

TEST(Daemons, DistributedSelectsNonEmptySubsets) {
  const Graph g = path(8);
  auto daemon = make_distributed_random_daemon(0.4);
  Rng rng(5);
  for (int step = 0; step < 100; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(8), rng, out);
    EXPECT_GE(out.size(), 1u);
    std::set<ProcessId> dedup(out.begin(), out.end());
    EXPECT_EQ(dedup.size(), out.size());
  }
}

TEST(Daemons, DistributedIsFairOverWindows) {
  const Graph g = path(6);
  auto daemon = make_distributed_random_daemon(0.5);
  Rng rng(6);
  std::vector<int> selected(6, 0);
  for (int step = 0; step < 200; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(6), rng, out);
    for (ProcessId p : out) ++selected[static_cast<std::size_t>(p)];
  }
  for (int count : selected) EXPECT_GT(count, 50);
}

TEST(Daemons, DistributedTossesCoinsOverTheEnabledSetOnly) {
  const Graph g = path(8);
  auto daemon = make_distributed_random_daemon(0.5);
  Rng rng(9);
  const EnabledSet enabled = set_from_bitmap({0, 1, 0, 0, 1, 1, 0, 1});
  for (int step = 0; step < 50; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, enabled, rng, out);
    ASSERT_GE(out.size(), 1u);
    for (ProcessId p : out) EXPECT_TRUE(enabled.test(p));
  }
}

TEST(Daemons, DistributedFallsBackToOneProcessWhenNothingEnabled) {
  const Graph g = path(8);
  auto daemon = make_distributed_random_daemon(0.5);
  Rng rng(10);
  for (int step = 0; step < 50; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, EnabledSet(8), rng, out);
    ASSERT_EQ(out.size(), 1u);  // no-op step: one process, zero O(n) passes
    EXPECT_GE(out[0], 0);
    EXPECT_LT(out[0], 8);
  }
}

TEST(Daemons, DistributedRejectsBadProbability) {
  EXPECT_THROW(make_distributed_random_daemon(0.0), PreconditionError);
  EXPECT_THROW(make_distributed_random_daemon(1.5), PreconditionError);
}

/// The enabled-set feed must not change what "uniform over the enabled
/// processes" means: central-random's draw indexes the enabled ids in
/// ascending order, exactly as the retired sorted-scratch scan did.
TEST(Daemons, CentralRandomKeepsSortedEnumerationSemantics) {
  const Graph g = path(10);
  const std::vector<std::vector<std::uint8_t>> patterns = {
      {0, 1, 0, 1, 1, 0, 0, 1, 0, 1}, {1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 0}};
  for (const auto& bitmap : patterns) {
    const EnabledSet enabled = set_from_bitmap(bitmap);
    auto daemon = make_central_random_daemon();
    Rng rng(77);
    Rng oracle_rng = rng;  // identical stream for the scratch-scan oracle
    for (int step = 0; step < 40; ++step) {
      std::vector<ProcessId> out;
      daemon->select(g, enabled, rng, out);
      std::vector<ProcessId> scratch;  // the pre-EnabledSet implementation
      for (ProcessId p = 0; p < 10; ++p) {
        if (bitmap[static_cast<std::size_t>(p)]) scratch.push_back(p);
      }
      if (scratch.empty()) {
        for (ProcessId p = 0; p < 10; ++p) scratch.push_back(p);
      }
      const ProcessId expected = scratch[oracle_rng.below(scratch.size())];
      ASSERT_EQ(out, (std::vector<ProcessId>{expected})) << "step " << step;
    }
  }
}

TEST(Daemons, AdversarialSelectsClusters) {
  const Graph g = star(5);
  auto daemon = make_adversarial_cluster_daemon();
  Rng rng(7);
  bool saw_cluster = false;
  for (int step = 0; step < 50; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(6), rng, out);
    EXPECT_GE(out.size(), 1u);
    if (out.size() >= 2) saw_cluster = true;
  }
  EXPECT_TRUE(saw_cluster);
}

TEST(Daemons, AdversarialStarvationPatchKeepsFairness) {
  const Graph g = path(8);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_adversarial_cluster_daemon(), 11);
  // Run long enough that the 8n-step patience must have force-included
  // every process at least once.
  std::vector<std::uint64_t> rounds_seen;
  for (int step = 0; step < 8 * 8 * 10; ++step) engine.step();
  EXPECT_GE(engine.rounds(), 1u);
}

TEST(Daemons, EveryDaemonDrivesAlwaysFlip) {
  const Graph g = cycle(5);
  const AlwaysFlip protocol(g);
  for (const std::string& name : daemon_names()) {
    Engine engine(g, protocol, make_daemon(name), 13);
    for (int step = 0; step < 50; ++step) {
      const auto info = engine.step();
      EXPECT_GE(info.selected, 1) << name;
      EXPECT_GE(info.fired, 1) << name;  // AlwaysFlip is always enabled
    }
  }
}

TEST(Daemons, InertProtocolMakesNoOpSteps) {
  const Graph g = path(3);
  const Inert protocol(g);
  Engine engine(g, protocol, make_central_round_robin_daemon(), 17);
  const Configuration before = engine.config();
  for (int step = 0; step < 10; ++step) {
    const auto info = engine.step();
    EXPECT_EQ(info.fired, 0);
  }
  EXPECT_TRUE(before == engine.config());
}

/// Regression for the enabled-set feed: the random daemons driven by the
/// incremental engine's set must match the full-scan ReferenceEngine
/// step-for-step on the whole menagerie — selections, firings, and
/// configurations alike.
TEST(Daemons, EnabledSetFedRandomDaemonsMatchReferenceEngine) {
  for (const auto& named : testing::sweep_graphs()) {
    const ColoringProtocol protocol(named.graph);
    for (const char* daemon_name : {"central-random", "distributed"}) {
      Engine fast(named.graph, protocol, make_daemon(daemon_name), 4242);
      ReferenceEngine oracle(named.graph, protocol, make_daemon(daemon_name),
                             4242);
      fast.randomize_state();
      oracle.randomize_state();
      ASSERT_TRUE(fast.config() == oracle.config());
      for (int step = 0; step < 200; ++step) {
        const Engine::StepInfo a = fast.step();
        const Engine::StepInfo b = oracle.step();
        ASSERT_EQ(a.selected, b.selected)
            << named.label << "/" << daemon_name << " step " << step;
        ASSERT_EQ(a.fired, b.fired)
            << named.label << "/" << daemon_name << " step " << step;
        ASSERT_TRUE(fast.config() == oracle.config())
            << named.label << "/" << daemon_name << " diverged at " << step;
      }
    }
  }
}

}  // namespace
}  // namespace sss
