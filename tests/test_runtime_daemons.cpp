/// Tests for the daemon family: selection shape, fairness, and the factory.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builders.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "support/require.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::AlwaysFlip;
using testing::Inert;

std::vector<std::uint8_t> all_enabled(int n) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(n), 1);
}

TEST(Daemons, FactoryKnowsAllNames) {
  for (const std::string& name : daemon_names()) {
    const auto daemon = make_daemon(name);
    EXPECT_EQ(daemon->name(), name);
  }
  EXPECT_THROW(make_daemon("nonsense"), PreconditionError);
}

TEST(Daemons, SynchronousSelectsExactlyTheEnabled) {
  const Graph g = path(5);
  auto daemon = make_synchronous_daemon();
  std::vector<std::uint8_t> enabled = {1, 0, 1, 0, 1};
  Rng rng(1);
  std::vector<ProcessId> out;
  daemon->select(g, enabled, rng, out);
  EXPECT_EQ(out, (std::vector<ProcessId>{0, 2, 4}));
}

TEST(Daemons, SynchronousFallsBackToEveryone) {
  const Graph g = path(3);
  auto daemon = make_synchronous_daemon();
  std::vector<std::uint8_t> enabled = {0, 0, 0};
  Rng rng(1);
  std::vector<ProcessId> out;
  daemon->select(g, enabled, rng, out);
  EXPECT_EQ(out.size(), 3u);  // no-op step, but non-empty as the model asks
}

TEST(Daemons, CentralDaemonsPickOneEnabledProcess) {
  const Graph g = path(6);
  Rng rng(2);
  for (const char* name : {"central-rr", "central-random"}) {
    auto daemon = make_daemon(name);
    std::vector<std::uint8_t> enabled = {0, 1, 0, 1, 1, 0};
    for (int step = 0; step < 20; ++step) {
      std::vector<ProcessId> out;
      daemon->select(g, enabled, rng, out);
      ASSERT_EQ(out.size(), 1u) << name;
      EXPECT_TRUE(enabled[static_cast<std::size_t>(out[0])]) << name;
    }
  }
}

TEST(Daemons, CentralRoundRobinCyclesFairly) {
  const Graph g = path(4);
  auto daemon = make_central_round_robin_daemon();
  Rng rng(3);
  std::vector<ProcessId> seen;
  for (int step = 0; step < 8; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(4), rng, out);
    seen.push_back(out[0]);
  }
  EXPECT_EQ(seen, (std::vector<ProcessId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Daemons, EnumeratorIsPeriodic) {
  const Graph g = path(3);
  auto daemon = make_fair_enumerator_daemon();
  Rng rng(4);
  for (int step = 0; step < 9; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, {}, rng, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], step % 3);
  }
}

TEST(Daemons, DistributedSelectsNonEmptySubsets) {
  const Graph g = path(8);
  auto daemon = make_distributed_random_daemon(0.4);
  Rng rng(5);
  for (int step = 0; step < 100; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, {}, rng, out);
    EXPECT_GE(out.size(), 1u);
    std::set<ProcessId> dedup(out.begin(), out.end());
    EXPECT_EQ(dedup.size(), out.size());
  }
}

TEST(Daemons, DistributedIsFairOverWindows) {
  const Graph g = path(6);
  auto daemon = make_distributed_random_daemon(0.5);
  Rng rng(6);
  std::vector<int> selected(6, 0);
  for (int step = 0; step < 200; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, {}, rng, out);
    for (ProcessId p : out) ++selected[static_cast<std::size_t>(p)];
  }
  for (int count : selected) EXPECT_GT(count, 50);
}

TEST(Daemons, DistributedRejectsBadProbability) {
  EXPECT_THROW(make_distributed_random_daemon(0.0), PreconditionError);
  EXPECT_THROW(make_distributed_random_daemon(1.5), PreconditionError);
}

TEST(Daemons, AdversarialSelectsClusters) {
  const Graph g = star(5);
  auto daemon = make_adversarial_cluster_daemon();
  Rng rng(7);
  bool saw_cluster = false;
  for (int step = 0; step < 50; ++step) {
    std::vector<ProcessId> out;
    daemon->select(g, all_enabled(6), rng, out);
    EXPECT_GE(out.size(), 1u);
    if (out.size() >= 2) saw_cluster = true;
  }
  EXPECT_TRUE(saw_cluster);
}

TEST(Daemons, AdversarialStarvationPatchKeepsFairness) {
  const Graph g = path(8);
  const AlwaysFlip protocol(g);
  Engine engine(g, protocol, make_adversarial_cluster_daemon(), 11);
  // Run long enough that the 8n-step patience must have force-included
  // every process at least once.
  std::vector<std::uint64_t> rounds_seen;
  for (int step = 0; step < 8 * 8 * 10; ++step) engine.step();
  EXPECT_GE(engine.rounds(), 1u);
}

TEST(Daemons, EveryDaemonDrivesAlwaysFlip) {
  const Graph g = cycle(5);
  const AlwaysFlip protocol(g);
  for (const std::string& name : daemon_names()) {
    Engine engine(g, protocol, make_daemon(name), 13);
    for (int step = 0; step < 50; ++step) {
      const auto info = engine.step();
      EXPECT_GE(info.selected, 1) << name;
      EXPECT_GE(info.fired, 1) << name;  // AlwaysFlip is always enabled
    }
  }
}

TEST(Daemons, InertProtocolMakesNoOpSteps) {
  const Graph g = path(3);
  const Inert protocol(g);
  Engine engine(g, protocol, make_central_round_robin_daemon(), 17);
  const Configuration before = engine.config();
  for (int step = 0; step < 10; ++step) {
    const auto info = engine.step();
    EXPECT_EQ(info.fired, 0);
  }
  EXPECT_TRUE(before == engine.config());
}

}  // namespace
}  // namespace sss
