/// Tests for Protocol COLORING (Figure 7): action semantics, closure
/// (Lemma 1), probabilistic convergence (Lemma 2 / Theorem 3), 1-efficiency
/// and the Section 3.2 communication-complexity numbers.

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/coloring_protocol.hpp"
#include "core/problems.hpp"
#include "graph/builders.hpp"
#include "runtime/engine.hpp"
#include "support/require.hpp"
#include "test_util.hpp"

namespace sss {
namespace {

using testing::NamedGraph;
using testing::sweep_graphs;

TEST(ColoringProtocol, SpecMatchesFigure7) {
  const Graph g = star(3);
  const ColoringProtocol protocol(g);
  EXPECT_EQ(protocol.palette_size(), 4);  // Delta+1
  ASSERT_EQ(protocol.spec().num_comm(), 1);
  ASSERT_EQ(protocol.spec().num_internal(), 1);
  EXPECT_EQ(protocol.spec().comm[0].name(), "C");
  EXPECT_EQ(protocol.spec().comm[0].domain(g, 0).lo, 1);
  EXPECT_EQ(protocol.spec().comm[0].domain(g, 0).hi, 4);
  EXPECT_EQ(protocol.spec().internal[0].domain(g, 0).hi, 3);  // cur at hub
  EXPECT_EQ(protocol.spec().internal[0].domain(g, 1).hi, 1);  // cur at leaf
}

TEST(ColoringProtocol, RejectsTooSmallPalette) {
  const Graph g = star(3);
  EXPECT_THROW(ColoringProtocol(g, 3), PreconditionError);  // needs Delta+1=4
  EXPECT_NO_THROW(ColoringProtocol(g, 4));
  EXPECT_NO_THROW(ColoringProtocol(g, 7));
}

TEST(ColoringProtocol, ConflictActionRedrawsAndAdvances) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  // Process 1 checks channel 1 (= process 0); make them conflict.
  config.set_comm(0, 0, 2);
  config.set_comm(1, 0, 2);
  config.set_internal(1, 0, 1);
  Rng rng(1);
  const ProcessStep step = apply_solo_step(g, protocol, config, 1, rng);
  EXPECT_EQ(step.action, 0);  // first (conflict) action
  EXPECT_TRUE(step.comm_write_attempted);
  EXPECT_EQ(config.internal_var(1, 0), 2);  // cur advanced
  const Value c = config.comm(1, 0);
  EXPECT_GE(c, 1);
  EXPECT_LE(c, 3);
}

TEST(ColoringProtocol, NoConflictOnlyAdvancesCur) {
  const Graph g = path(3);
  const ColoringProtocol protocol(g);
  Configuration config(g, protocol.spec());
  config.set_comm(0, 0, 1);
  config.set_comm(1, 0, 2);
  config.set_comm(2, 0, 3);
  config.set_internal(1, 0, 2);  // checks channel 2 (= process 2)
  Rng rng(2);
  const ProcessStep step = apply_solo_step(g, protocol, config, 1, rng);
  EXPECT_EQ(step.action, 1);  // second action
  EXPECT_FALSE(step.comm_write_attempted);
  EXPECT_EQ(config.comm(1, 0), 2);          // color untouched
  EXPECT_EQ(config.internal_var(1, 0), 1);  // cur wrapped 2 -> 1
}

TEST(ColoringProtocol, AlwaysEnabled) {
  // Figure 7's two guards are complementary; every process is enabled in
  // every configuration.
  const Graph g = cycle(4);
  const ColoringProtocol protocol(g);
  Engine engine(g, protocol, make_fair_enumerator_daemon(), 3);
  engine.randomize_state();
  for (ProcessId p = 0; p < g.num_vertices(); ++p) {
    EXPECT_TRUE(engine.is_enabled(p));
  }
}

TEST(ColoringProtocol, RoundRobinScanCyclesAllChannels) {
  const Graph g = star(4);  // hub degree 4
  const ColoringProtocol protocol(g, 5);
  Configuration config(g, protocol.spec());
  // Give everyone distinct colors so only the advance action fires.
  config.set_comm(0, 0, 5);
  for (ProcessId leaf = 1; leaf <= 4; ++leaf) config.set_comm(leaf, 0, leaf);
  config.set_internal(0, 0, 1);
  Rng rng(4);
  for (Value expected : {2, 3, 4, 1, 2}) {
    apply_solo_step(g, protocol, config, 0, rng);
    EXPECT_EQ(config.internal_var(0, 0), expected);
  }
}

// Lemma 1: the vertex coloring predicate is closed.
TEST(ColoringProtocol, ClosureFromLegitimateConfigurations) {
  const ColoringProblem problem;
  for (const auto& [label, g] : sweep_graphs()) {
    const ColoringProtocol protocol(g);
    Engine engine(g, protocol, make_distributed_random_daemon(), 5);
    // Start from a proper coloring with arbitrary cur pointers.
    Configuration init = engine.config();
    const Coloring proper = greedy_coloring(g);
    Rng rng(6);
    for (ProcessId p = 0; p < g.num_vertices(); ++p) {
      init.set_comm(p, 0, proper[static_cast<std::size_t>(p)]);
      init.set_internal(p, 0,
                        static_cast<Value>(rng.range(1, g.degree(p))));
    }
    engine.set_config(init);
    ASSERT_TRUE(problem.holds(g, engine.config())) << label;
    for (int step = 0; step < 200; ++step) {
      engine.step();
      ASSERT_TRUE(problem.holds(g, engine.config()))
          << label << " closure broke at step " << step;
    }
  }
}

struct ConvergenceCase {
  std::string graph;
  std::string daemon;
};

class ColoringConvergence
    : public ::testing::TestWithParam<ConvergenceCase> {};

// Theorem 3: stabilizes to the coloring predicate with probability 1, is
// silent afterwards, and is 1-efficient throughout.
TEST_P(ColoringConvergence, StabilizesSilentAndOneEfficient) {
  const auto& param = GetParam();
  Graph g = path(2);
  for (auto& [label, graph] : sweep_graphs()) {
    if (label == param.graph) g = graph;
  }
  const ColoringProtocol protocol(g);
  const ColoringProblem problem;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Engine engine(g, protocol, make_daemon(param.daemon), seed);
    engine.randomize_state();
    RunOptions options;
    options.max_steps = 2'000'000;
    options.legitimacy = problem.predicate();
    const RunStats stats = engine.run(options);
    ASSERT_TRUE(stats.silent) << param.graph << "/" << param.daemon;
    EXPECT_TRUE(problem.holds(g, engine.config()));
    EXPECT_TRUE(stats.reached_legitimate);
    // Keep observing after silence: COLORING stays always-enabled (the cur
    // scan never stops), so reads keep happening and the efficiency
    // certificate is non-vacuous even when the initial configuration was
    // already proper.
    for (int extra = 0; extra < 100; ++extra) engine.step();
    // Definition 4: 1-efficient — never more than one neighbor per step.
    EXPECT_EQ(engine.read_counter().max_reads_per_process_step(), 1);
    // Definition 5: log2(Delta+1) bits per step.
    EXPECT_LE(engine.read_counter().max_bits_per_process_step(),
              coloring_comm_bits_efficient(g.max_degree()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColoringConvergence,
    ::testing::Values(ConvergenceCase{"path8", "distributed"},
                      ConvergenceCase{"path8", "synchronous"},
                      ConvergenceCase{"cycle9", "central-rr"},
                      ConvergenceCase{"cycle9", "adversarial"},
                      ConvergenceCase{"complete5", "distributed"},
                      ConvergenceCase{"complete5", "synchronous"},
                      ConvergenceCase{"star6", "enumerator"},
                      ConvergenceCase{"grid3x4", "distributed"},
                      ConvergenceCase{"petersen", "central-random"},
                      ConvergenceCase{"bintree10", "adversarial"},
                      ConvergenceCase{"gnp12", "distributed"},
                      ConvergenceCase{"rtree11", "synchronous"}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& param_info) {
      return testing::sanitize(param_info.param.graph + "_" +
                               param_info.param.daemon);
    });

TEST(ColoringProtocol, SilenceImpliesProperColoring) {
  // Definition 3 + Theorem 3: once communication variables are fixed, the
  // coloring must be proper (a conflict would keep triggering redraws).
  for (const auto& [label, g] : sweep_graphs()) {
    const ColoringProtocol protocol(g);
    Engine engine(g, protocol, make_distributed_random_daemon(), 8);
    engine.randomize_state();
    RunOptions options;
    options.max_steps = 2'000'000;
    const RunStats stats = engine.run(options);
    ASSERT_TRUE(stats.silent) << label;
    EXPECT_TRUE(ColoringProblem().holds(g, engine.config())) << label;
  }
}

TEST(ColoringProtocol, LargerPalettesAlsoWork) {
  const Graph g = cycle(7);
  const ColoringProtocol protocol(g, 6);
  Engine engine(g, protocol, make_distributed_random_daemon(), 9);
  engine.randomize_state();
  const RunStats stats = engine.run({});
  EXPECT_TRUE(stats.silent);
  EXPECT_TRUE(ColoringProblem().holds(g, engine.config()));
}

// Port-numbering invariance: COLORING scans all channels round-robin, so
// it stabilizes under any port permutation — unlike the lazy candidates
// of the impossibility module, whose correctness depends on the ports.
TEST(ColoringProtocol, PortNumberingInvariance) {
  // The same 5-path with three different port assignments.
  const std::vector<std::vector<std::vector<ProcessId>>> port_variants = {
      {{1}, {0, 2}, {1, 3}, {2, 4}, {3}},   // left-first
      {{1}, {2, 0}, {3, 1}, {4, 2}, {3}},   // right-first
      {{1}, {2, 0}, {1, 3}, {4, 2}, {3}}};  // mixed
  const ColoringProblem problem;
  for (const auto& ports : port_variants) {
    const Graph g = Graph::from_ports(ports);
    const ColoringProtocol protocol(g);
    Engine engine(g, protocol, make_distributed_random_daemon(), 77);
    engine.randomize_state();
    const RunStats stats = engine.run({});
    ASSERT_TRUE(stats.silent);
    EXPECT_TRUE(problem.holds(g, engine.config()));
  }
}

TEST(ColoringProtocol, SpaceComplexityFormula) {
  // Section 3.2: 2*log2(Delta+1) + log2(delta.p) bits per process.
  EXPECT_EQ(coloring_space_bits(/*degree=*/4, /*max_degree=*/4), 2 * 3 + 2);
  EXPECT_EQ(coloring_space_bits(1, 2), 2 * 2 + 0);
  const Graph g = star(4);
  const ColoringProtocol protocol(g);
  // Measured: C-domain bits twice (read + own) plus cur bits.
  const int c_bits = protocol.spec().comm[0].domain(g, 0).bits();
  const int cur_bits = protocol.spec().internal[0].domain(g, 0).bits();
  EXPECT_EQ(2 * c_bits + cur_bits,
            coloring_space_bits(g.degree(0), g.max_degree()));
}

}  // namespace
}  // namespace sss
